#!/usr/bin/env python
"""Documentation consistency checks (the CI docs job).

Four passes:

1. **Relative links resolve.** Every ``[text](target)`` markdown link
   in the top-level docs and ``docs/*.md`` whose target is not an URL
   or a pure anchor must point at an existing file or directory.
2. **Documented CLI invocations parse.** Every ``python -m repro ...``
   line inside a fenced code block must be accepted by the real
   argument parser (``repro.cli.build_parser``), so command renames or
   flag removals cannot silently strand the docs.
3. **Referenced files exist.** Backtick references to
   ``benchmarks/...``, ``tests/...``, ``examples/...`` and
   ``scripts/...`` paths must exist — including
   ``benchmarks/results/*.txt``, which are tracked in the repository.
4. **Kernel-contract cross-references.** The modules that carry the
   packed/unpacked equivalence invariant (``repro._kernels``,
   ``repro.dram.bank``) must cite ``docs/KERNELS.md`` in their module
   docstrings, and ``docs/KERNELS.md`` must exist — the layout
   contract cannot silently detach from the code that implements it.

Run from the repository root:

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import pathlib
import re
import shlex
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [ROOT / name for name in
     ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")
     if (ROOT / name).exists()]
    + list((ROOT / "docs").glob("*.md")))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
CLI_RE = re.compile(r"^\s*python -m repro\b(.*)$")
FILE_REF_RE = re.compile(r"`((?:benchmarks|tests|examples|scripts)/"
                         r"[\w./-]+\.(?:py|txt))`")


def check_links(path: pathlib.Path, text: str) -> list:
    errors = []
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(ROOT)}: broken link "
                          f"-> {target}")
    return errors


def check_cli_commands(path: pathlib.Path, text: str) -> list:
    from repro.cli import build_parser

    errors = []
    for block in FENCE_RE.findall(text):
        for line in block.splitlines():
            match = CLI_RE.match(line)
            if not match:
                continue
            argv = shlex.split(match.group(1), comments=True)
            try:
                build_parser().parse_args(argv)
            except SystemExit:
                errors.append(f"{path.relative_to(ROOT)}: documented "
                              f"command does not parse: "
                              f"python -m repro {' '.join(argv)}")
    return errors


def check_file_refs(path: pathlib.Path, text: str) -> list:
    errors = []
    for ref in FILE_REF_RE.findall(text):
        if not (ROOT / ref).exists():
            errors.append(f"{path.relative_to(ROOT)}: referenced file "
                          f"missing -> {ref}")
    return errors


# Modules whose docstrings must cite the kernel contract: they hold
# the two halves of the packed/unpacked equivalence invariant.
KERNEL_CONTRACT_MODULES = ("src/repro/_kernels.py",
                           "src/repro/dram/bank.py")


def check_kernel_contract() -> list:
    import ast

    errors = []
    contract = ROOT / "docs" / "KERNELS.md"
    if not contract.exists():
        return [f"missing kernel contract document -> "
                f"{contract.relative_to(ROOT)}"]
    for rel in KERNEL_CONTRACT_MODULES:
        module = ROOT / rel
        if not module.exists():
            errors.append(f"{rel}: kernel-contract module missing")
            continue
        doc = ast.get_docstring(ast.parse(module.read_text())) or ""
        if "docs/KERNELS.md" not in doc:
            errors.append(f"{rel}: module docstring does not cite "
                          f"docs/KERNELS.md (the packed-layout "
                          f"contract)")
    return errors


def main() -> int:
    errors = []
    for path in DOC_FILES:
        text = path.read_text()
        errors += check_links(path, text)
        errors += check_cli_commands(path, text)
        errors += check_file_refs(path, text)
    errors += check_kernel_contract()
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    checked = ", ".join(str(p.relative_to(ROOT)) for p in DOC_FILES)
    print(f"checked {len(DOC_FILES)} documents ({checked}): "
          f"{len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation: first-order vs. command-level memory model.

DESIGN.md Section 4.5: the first-order engine models refresh as a
per-slot service deduction and lands near the bandwidth-ratio bound
(~+10% for DC-REF at 32 Gbit), while the command-level FR-FCFS model
exposes queueing behind refresh-blocked banks and reaches the paper's
+18%. The refresh *statistics* are identical by construction - only
the performance translation differs.
"""

import pytest

from repro.analysis import format_table
from repro.dcref import run_fig16
from repro.sim import DEFAULT_CONFIG_32G

from ._report import report


def test_engine_ablation(benchmark):
    def both():
        return {engine: run_fig16(n_workloads=8,
                                  config=DEFAULT_CONFIG_32G,
                                  seed=2016, n_instructions=80_000,
                                  engine=engine)
                for engine in ("fast", "detailed")}

    summaries = benchmark.pedantic(both, rounds=1, iterations=1)

    rows = []
    for engine, summary in summaries.items():
        rows.append([engine,
                     f"{summary.mean_improvement('dcref'):+.1f}%",
                     f"{summary.mean_improvement('raidr'):+.1f}%",
                     f"{summary.mean_refresh_reduction('dcref'):.1f}%"])
    rows.append(["paper (Ramulator)", "+18.0%", "~+15%", "73%"])
    report("ablation_engine", format_table(
        ["Memory model", "DC-REF gain", "RAIDR gain", "Refresh cut"],
        rows))

    fast = summaries["fast"]
    detailed = summaries["detailed"]
    # Queueing amplification: the detailed model at least 1.5x the
    # first-order gain, refresh statistics identical.
    assert detailed.mean_improvement("dcref") \
        > 1.5 * fast.mean_improvement("dcref")
    assert detailed.mean_refresh_reduction("dcref") \
        == pytest.approx(fast.mean_refresh_reduction("dcref"), abs=1.0)

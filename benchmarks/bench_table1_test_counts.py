"""Table 1: number of tests performed by PARBOR per recursion level.

Paper values (144 real chips):

    Manufacturer  L1  L2  L3  L4  L5  Total
    A              2   8   8  24  48     90
    B              2   8   8  24  24     66
    C              2   8   8  24  48     90
"""

import pytest

from repro.analysis import format_table, recursion_for_vendor

from ._report import report

PAPER = {"A": [2, 8, 8, 24, 48], "B": [2, 8, 8, 24, 24],
         "C": [2, 8, 8, 24, 48]}


@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_table1_tests_per_level(benchmark, name):
    result = benchmark.pedantic(
        recursion_for_vendor, args=(name,),
        kwargs=dict(seed=2016, n_rows=128, sample_size=2000),
        rounds=1, iterations=1)
    counts = result.recursion.tests_per_level
    rows = [[name, *counts, sum(counts), "paper:", *PAPER[name],
             sum(PAPER[name])]]
    report(f"table1_vendor_{name}", format_table(
        ["Mfr", "L1", "L2", "L3", "L4", "L5", "Total", "",
         "pL1", "pL2", "pL3", "pL4", "pL5", "pTotal"], rows))
    assert counts == PAPER[name]
    benchmark.extra_info["tests_per_level"] = counts
    benchmark.extra_info["total_tests"] = sum(counts)

"""Shared reporting helper for the benchmark harness.

Each benchmark regenerates one table/figure of the paper and both
prints it (visible with ``pytest -s``) and writes it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference the
exact runs.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a figure/table reproduction and persist it."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

"""Figure 11: union of neighbour-region distances at each recursion
level, for modules from vendors A, B, and C.

Paper values:

    A: L1 {0}  L2 {0}  L3 {0, +-1}  L4 {+-1, +-2, +-6}  L5 {+-8, +-16, +-48}
    B: L1 {0}  L2 {0}  L3 {0, +-1}  L4 {0, +-8}         L5 {+-1, +-64}
    C: L1 {0}  L2 {0}  L3 {0, +-1}  L4 {+-2, +-4, +-6}  L5 {+-16, +-33, +-49}
"""

import pytest

from repro.analysis import (format_distance_set, format_table,
                            recursion_for_vendor)

from ._report import report

PAPER_L5 = {"A": {8, 16, 48}, "B": {1, 64}, "C": {16, 33, 49}}
PAPER_L4 = {"A": {1, 2, 6}, "B": {0, 8}, "C": {2, 4, 6}}


@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_fig11_distances_per_level(benchmark, name):
    result = benchmark.pedantic(
        recursion_for_vendor, args=(name,),
        kwargs=dict(seed=2016, n_rows=128, sample_size=2000),
        rounds=1, iterations=1)
    rows = [[f"L{lv.level}", lv.region_size,
             format_distance_set(lv.kept_distances)]
            for lv in result.recursion.levels]
    report(f"fig11_vendor_{name}", format_table(
        ["Level", "Region size", "Neighbour-region distances"], rows))

    levels = {lv.level: lv for lv in result.recursion.levels}
    assert {abs(d) for d in levels[4].kept_distances} == PAPER_L4[name]
    assert {abs(d) for d in levels[5].kept_distances} == PAPER_L5[name]
    assert levels[1].kept_distances == [0]
    assert levels[2].kept_distances == [0]
    assert {abs(d) for d in levels[3].kept_distances} == {0, 1}

"""Packed-kernel speedup: reference loops vs word-wise kernels.

The bit-packed substrate (docs/KERNELS.md) exists for one reason:
every figure's campaign runs through the write -> decay -> read hot
path.  This bench times the same single-process campaigns under
:func:`repro.runtime.reference_kernels` and under the packed kernels,
reports the ratios, and enforces the floor CI gates on: the fig11
recursion campaign must be at least 5x faster packed (the target,
usually met on an idle machine, is 10x).

The fig12 module comparison is also reported for honesty: it is
bounded by equal-budget *random-pattern generation* (drawing ~100 M
random bits costs the same in both modes), so its ratio is structural,
not a kernel property.
"""

import time

from repro.analysis import recursion_for_vendor
from repro.analysis.experiments import compare_module, make_module
from repro.runtime import reference_kernels

from ._report import report

SPEEDUP_FLOOR = 5.0
SPEEDUP_TARGET = 10.0


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fig11_campaign():
    recursion_for_vendor("A", seed=2016, n_rows=128, sample_size=2000)


def _fig12_campaign():
    module = make_module("A", 0, seed=2016, n_rows=96)
    compare_module(module, seed=7)


def test_fig11_packed_speedup_floor(benchmark):
    _fig11_campaign()  # warm mapping/pattern caches out of the timing
    packed = benchmark.pedantic(lambda: _best_of(_fig11_campaign),
                                rounds=1, iterations=1)
    with reference_kernels():
        ref = _best_of(_fig11_campaign, repeats=2)
    ratio = ref / packed
    report("packed_speedup_fig11",
           f"fig11 vendor-A campaign (n_rows=128, sample=2000), "
           f"single process\n"
           f"  reference kernels : {ref:8.3f} s\n"
           f"  packed kernels    : {packed:8.3f} s\n"
           f"  speedup           : {ratio:8.1f} x  "
           f"(floor {SPEEDUP_FLOOR:.0f}x, target {SPEEDUP_TARGET:.0f}x)")
    assert ratio >= SPEEDUP_FLOOR, (
        f"packed fig11 campaign only {ratio:.1f}x faster than the "
        f"reference kernels (floor {SPEEDUP_FLOOR}x)")


def test_fig12_module_comparison_reported(benchmark):
    packed = benchmark.pedantic(lambda: _best_of(_fig12_campaign,
                                                 repeats=1),
                                rounds=1, iterations=1)
    with reference_kernels():
        ref = _best_of(_fig12_campaign, repeats=1)
    ratio = ref / packed
    report("packed_speedup_fig12",
           f"fig12 module comparison (PARBOR + equal-budget random), "
           f"single process\n"
           f"  reference kernels : {ref:8.3f} s\n"
           f"  packed kernels    : {packed:8.3f} s\n"
           f"  speedup           : {ratio:8.1f} x\n"
           f"  note: bounded by random-pattern generation, which is\n"
           f"  identical in both modes (see docs/KERNELS.md).")
    # The random baseline dominates; any real kernel win shows as >1.
    assert ratio > 1.0

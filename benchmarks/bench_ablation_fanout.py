"""Ablation: recursion fan-out choice (paper Section 7.1 / Appendix).

The paper divides rows 8192 -> 4096 -> 512 -> 64 -> 8 -> 1 (one halving
then 8-way). The appendix's recurrence T(n) = aT(n/b) + O(1) admits
other schedules; this bench uses the analytic planner to compare
fan-out families on every vendor: binary (13 levels), the paper's
(5 levels), and a flat 2-level split. Fewer levels mean fewer
retention waits serialised on the critical path; more levels prune
candidate regions sooner. The paper's choice sits at the sweet spot.
"""

import pytest

from repro.analysis import format_table
from repro.core import ParborConfig, plan_campaign

from ._report import report

VENDOR_SETS = {"A": [-8, 8, -16, 16, -48, 48],
               "B": [-1, 1, -64, 64],
               "C": [-16, 16, -33, 33, -49, 49]}

FANOUTS = {
    "binary (13 levels)": (2,) * 13,
    "paper (2,8,8,8,8)": (2, 8, 8, 8, 8),
    "shallow (2,64,64)": (2, 64, 64),
}


def test_fanout_ablation(benchmark):
    def sweep():
        out = {}
        for label, fanouts in FANOUTS.items():
            cfg = ParborConfig(fanouts=fanouts)
            out[label] = {name: plan_campaign(dset, cfg)
                          for name, dset in VENDOR_SETS.items()}
        return out

    plans = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for label, per_vendor in plans.items():
        for name, plan in per_vendor.items():
            rows.append([label, name, len(plan.levels),
                         plan.recursion_tests,
                         f"{plan.wall_clock_s():.1f} s"])
    report("ablation_fanout", format_table(
        ["Fan-out family", "Vendor", "Levels", "Recursion tests",
         "Wall clock"], rows))

    paper = plans["paper (2,8,8,8,8)"]
    binary = plans["binary (13 levels)"]
    shallow = plans["shallow (2,64,64)"]
    # The paper's counts reproduce; binary needs fewer tests but ~3x
    # the serialised retention waits (levels); the shallow split burns
    # far more tests.
    assert paper["A"].recursion_tests == 90
    assert paper["B"].recursion_tests == 66
    for name in VENDOR_SETS:
        assert binary[name].recursion_tests \
            <= paper[name].recursion_tests
        assert len(binary[name].levels) > 2 * len(paper[name].levels)
        assert shallow[name].recursion_tests \
            > 2 * paper[name].recursion_tests

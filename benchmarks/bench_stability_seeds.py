"""Robustness: Table 1 and Figure 11 across independent chips.

The paper reports that "all modules from a specific vendor and
generation exhibit the same distances" and "different modules from a
given vendor require the same number of tests". This bench runs the
campaign on several independently drawn chips per vendor and checks
that the counts and distance sets never vary.
"""

import os

import pytest

from repro.analysis import format_table
from repro.runtime import CampaignSpec, run_fleet

from ._report import report

PAPER_TESTS = {"A": [2, 8, 8, 24, 48], "B": [2, 8, 8, 24, 24],
               "C": [2, 8, 8, 24, 48]}
PAPER_MAGS = {"A": [8, 16, 48], "B": [1, 64], "C": [16, 33, 49]}
SEEDS = (101, 211, 307, 401, 503)
JOBS = int(os.environ.get("REPRO_JOBS", "1"))


@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_stability_across_chips(benchmark, name):
    # Same seeds as recursion_for_vendor(name, seed=s): the chip is
    # built from s and the campaign runs with s + 1.
    specs = [CampaignSpec(experiment="characterize", vendor=name,
                          build_seed=seed, run_seed=seed + 1,
                          n_rows=96, sample_size=1500, run_sweep=False)
             for seed in SEEDS]

    def sweep():
        return [o.result for o in run_fleet(specs, jobs=JOBS).outcomes]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[seed, " ".join(str(t) for t in
                            r.recursion.tests_per_level),
             str(r.magnitudes())]
            for seed, r in zip(SEEDS, results)]
    report(f"stability_seeds_{name}", format_table(
        ["Chip seed", "Tests per level", "Magnitudes"], rows))

    for r in results:
        assert r.recursion.tests_per_level == PAPER_TESTS[name]
        assert r.magnitudes() == PAPER_MAGS[name]

"""Figure 16: weighted-speedup of DC-REF vs. RAIDR vs. the uniform
64 ms baseline over 32 8-core workloads, at 16 and 32 Gbit densities.

Paper headline numbers: DC-REF improves performance by 18% over the
baseline at 32 Gbit and by 3% over RAIDR, reduces refreshes by 73% vs.
the baseline and 27.6% vs. RAIDR, and keeps only 2.7% of rows at the
fast refresh rate (RAIDR: 16.4%). On the command-level FR-FCFS memory
model we measure +18.9% at 32 Gbit - queueing behind refresh-blocked
banks amplifies the raw bandwidth loss, exactly as in the paper's
cycle-accurate setup (the first-order engine stops at +10%; see the
engine ablation bench).
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.dcref import run_fig16
from repro.sim import DEFAULT_CONFIG_16G, DEFAULT_CONFIG_32G

from ._report import report

CONFIGS = {"16Gbit": DEFAULT_CONFIG_16G, "32Gbit": DEFAULT_CONFIG_32G}


@pytest.mark.parametrize("density", ["16Gbit", "32Gbit"])
def test_fig16_dcref_vs_raidr(benchmark, density):
    summary = benchmark.pedantic(
        run_fig16,
        kwargs=dict(n_workloads=32, config=CONFIGS[density], seed=2016,
                    n_instructions=120_000),
        rounds=1, iterations=1)

    rows = [[o.workload_id,
             f"{o.weighted_speedup['baseline']:.2f}",
             f"{o.improvement('raidr'):+.1f}%",
             f"{o.improvement('dcref'):+.1f}%"]
            for o in summary.outcomes]
    rows.append(["mean", "",
                 f"{summary.mean_improvement('raidr'):+.1f}%",
                 f"{summary.mean_improvement('dcref'):+.1f}%"])
    rows.append(["refresh cut vs base", "", "",
                 f"{summary.mean_refresh_reduction('dcref'):.1f}%"
                 " (paper 73%)"])
    rows.append(["refresh cut vs RAIDR", "", "",
                 f"{summary.mean_refresh_reduction('dcref', 'raidr'):.1f}%"
                 " (paper 27.6%)"])
    rows.append(["fast-rate rows", "",
                 f"{100 * summary.mean_high_rate_fraction('raidr'):.1f}%",
                 f"{100 * summary.mean_high_rate_fraction('dcref'):.1f}%"
                 " (paper 2.7%)"])
    report(f"fig16_dcref_{density}", format_table(
        ["Workload", "WS(base)", "RAIDR", "DC-REF"], rows))

    # Shape: DC-REF > RAIDR > baseline on average, refresh statistics
    # at the paper's values, and the 32 Gbit gain in the paper's band.
    assert summary.mean_improvement("dcref") \
        > summary.mean_improvement("raidr") > 0
    if density == "32Gbit":
        assert 13.0 <= summary.mean_improvement("dcref") <= 24.0
    assert summary.mean_refresh_reduction("dcref") \
        == pytest.approx(73.0, abs=2.0)
    assert summary.mean_refresh_reduction("dcref", "raidr") \
        == pytest.approx(27.6, abs=2.5)
    assert summary.mean_high_rate_fraction("dcref") \
        == pytest.approx(0.027, abs=0.01)
    # Every workload individually benefits from DC-REF.
    assert all(o.improvement("dcref") > 0 for o in summary.outcomes)
    benchmark.extra_info["mean_dcref_improvement"] = \
        summary.mean_improvement("dcref")


def test_fig16_density_scaling(benchmark):
    """Refresh pain - and DC-REF's benefit - grows with density."""
    def both():
        return {d: run_fig16(n_workloads=8, config=cfg, seed=2016,
                             n_instructions=60_000)
                for d, cfg in CONFIGS.items()}

    summaries = benchmark.pedantic(both, rounds=1, iterations=1)
    gain_16 = summaries["16Gbit"].mean_improvement("dcref")
    gain_32 = summaries["32Gbit"].mean_improvement("dcref")
    report("fig16_density_scaling",
           f"DC-REF gain at 16 Gbit: {gain_16:+.1f}%\n"
           f"DC-REF gain at 32 Gbit: {gain_32:+.1f}%")
    assert gain_32 > gain_16 > 0

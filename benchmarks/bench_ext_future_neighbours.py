"""Extension: future-node chips with second-order coupling.

Paper Sections 1/3: "as cells get smaller ... it is likely that
potentially more neighboring cells will affect each other in the
future [2]", pushing exhaustive neighbour location from 49 days
(O(n^2)) to 1115 years (O(n^3)). This bench builds such a chip - a
fraction of strongly coupled victims disturbed by their *second*
physical neighbour - and shows that the unchanged PARBOR campaign
discovers the extended distance set in the same constant number of
tests.
"""

import pytest

from repro.analysis import format_distance_set, format_table
from repro.core import (ParborConfig, exhaustive_test_time_s,
                        humanise_seconds, run_parbor)
from repro.dram import CouplingSpec, DramChip, vendor

from ._report import report


def future_chip(second_order_fraction: float, seed: int = 9) -> DramChip:
    profile = vendor("B")
    spec = CouplingSpec(n_cells=1500,
                        second_order_fraction=second_order_fraction)
    return DramChip(mapping=profile.mapping(8192), n_rows=96,
                    coupling_spec=spec, fault_spec=profile.faults,
                    seed=seed)


def test_future_node_distance_discovery(benchmark):
    def campaign():
        results = {}
        for frac in (0.0, 0.45):
            chip = future_chip(frac)
            results[frac] = run_parbor(
                chip, ParborConfig(sample_size=1500), seed=2,
                run_sweep=False)
        return results

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)

    mapping = vendor("B").mapping(8192)
    rows = []
    for frac, res in sorted(results.items()):
        rows.append([f"{frac:.0%}",
                     format_distance_set(res.distances),
                     res.recursion.total_tests])
    rows.append(["ground truth order-1",
                 format_distance_set(mapping.neighbour_distance_set(1)),
                 ""])
    rows.append(["ground truth order-2",
                 format_distance_set(mapping.neighbour_distance_set(2)),
                 ""])
    rows.append(["naive O(n^3) search", "",
                 humanise_seconds(exhaustive_test_time_s(8192, 3))])
    report("ext_future_neighbours", format_table(
        ["2nd-order victims", "Distances found", "Tests"], rows))

    today = set(results[0.0].magnitudes())
    future = set(results[0.45].magnitudes())
    assert today == {1, 64}
    assert {1, 64} <= future
    assert future & {63, 65}, "second-order distances not discovered"
    # Still a constant-test campaign, nowhere near O(n^3).
    assert results[0.45].recursion.total_tests < 250

"""Section 6 sensitivity study: temperature independence.

Paper: experiments run at 45 degC with sensitivity tests at 40 and
50 degC; "we find that neighbor locations determined by PARBOR are
*not* dependent on temperature". Hotter cells fail more (retention
halves per +10 degC), but they fail at the same scrambler-determined
distances.
"""

import pytest

from repro.analysis import (format_distance_set, format_table,
                            temperature_sensitivity)

from ._report import report


@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_temperature_independence(benchmark, name):
    results = benchmark.pedantic(
        temperature_sensitivity, args=(name,),
        kwargs=dict(temperatures_c=(40.0, 45.0, 50.0), seed=2016,
                    n_rows=96, sample_size=1500),
        rounds=1, iterations=1)

    rows = [[f"{t:.0f} degC", len(r.sample),
             format_distance_set(r.distances)]
            for t, r in sorted(results.items())]
    report(f"sensitivity_temperature_{name}", format_table(
        ["Temperature", "Victim sample", "Distances"], rows))

    mags = [tuple(r.magnitudes()) for _, r in sorted(results.items())]
    assert mags[0] == mags[1] == mags[2]
    # More cells are vulnerable when hotter (the 45 vs 50 degC gap can
    # be small because the victim population saturates near stress 1).
    samples = [len(r.sample) for t, r in sorted(results.items())]
    assert samples[0] < samples[2]
    assert samples[1] >= 0.85 * samples[2]

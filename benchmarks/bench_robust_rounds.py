"""Repeat-and-vote cost/benefit: rounds=1/2/4 vs false positives.

The robust layer's overhead contract (docs/ROBUSTNESS.md): thanks to
the adaptive early exit - re-testing stops for every cell whose
verdict is already decided (definite sweeps, control failures,
vote-bounded cells) and region re-votes are sequential best-of-three -
a ``rounds=4`` campaign must stay under 2x the single-pass test time,
while shrinking the noise contamination of the trusted profile and
quarantining the injected populations.

False positives are measured against the noise-free run at the same
rounds setting: any cell the noisy campaign *trusts* (its ``detected``
set) that the clean campaign does not is injected-noise contamination.
Timings are best-of-``ROUNDS`` interleaved, the standard robust
estimator under external load.
"""

import time

import pytest

from repro import ParborConfig, run_parbor
from repro.analysis import format_table
from repro.dram import vendor
from repro.dram.faults import DeviceNoiseModel, NoiseSpec
from repro.runtime.seeds import ladder_seed

from ._report import report

BUILD_SEED = 5
RUN_SEED = 6
N_ROWS = 96
SAMPLE = 1000
ROUNDS = 3  # timing repetitions (best-of)
OVERHEAD_BUDGET = 2.0  # rounds=4 must stay under 2x single-pass

NOISE = NoiseSpec(n_vrt_cells=4, vrt_fail_prob=1.0,
                  n_marginal_cells=4, marginal_fail_prob=0.8,
                  soft_error_rate=1e-6)


def campaign(rounds, noisy):
    chip = vendor("A").make_chip(seed=BUILD_SEED, n_rows=N_ROWS)
    if noisy:
        for bank_idx, bank in enumerate(chip.banks):
            bank.noise = DeviceNoiseModel(
                NOISE, n_rows=bank.n_rows, row_bits=bank.row_bits,
                seed=ladder_seed(17, "device-noise", 0, bank_idx))
    return run_parbor(chip, ParborConfig(sample_size=SAMPLE),
                      seed=RUN_SEED, rounds=rounds)


def timed(rounds):
    t0 = time.perf_counter()
    result = campaign(rounds, noisy=True)
    return time.perf_counter() - t0, result


@pytest.mark.slow
def test_robust_rounds_overhead_and_false_positives(benchmark):
    clean = {r: campaign(r, noisy=False) for r in (1, 2, 4)}

    def first_pass():
        return timed(1)

    times = {}
    noisy = {}
    t, noisy[1] = benchmark.pedantic(first_pass, rounds=1,
                                     iterations=1)
    times[1] = t
    for _ in range(ROUNDS):
        for r in (1, 2, 4):
            t, result = timed(r)
            noisy[r] = result
            times[r] = min(times.get(r, t), t)

    rows = []
    false_positives = {}
    for r in (1, 2, 4):
        fp = noisy[r].detected - clean[r].detected
        false_positives[r] = len(fp)
        quarantined = (len(noisy[r].quarantine)
                       if noisy[r].quarantine is not None else 0)
        rows.append([
            r, f"{times[r]:.2f} s",
            f"{times[r] / times[1]:.2f}x",
            len(fp), quarantined,
        ])
    report("robust_rounds", format_table(
        ["Rounds", "Wall clock", "vs single-pass",
         "False positives", "Quarantined"], rows))

    # Single-pass trusts every injected observation; voting
    # quarantines the injected populations instead and shrinks the
    # contamination of the trusted profile.
    assert false_positives[1] > 0, "noise never contaminated rounds=1"
    assert false_positives[4] < false_positives[1]
    quarantined = {r: len(noisy[r].quarantine)
                   if noisy[r].quarantine is not None else 0
                   for r in (1, 2, 4)}
    assert quarantined[1] == 0 and quarantined[4] > quarantined[1]
    # The definite core is noise-immune at every voting depth.
    for r in (2, 4):
        assert (noisy[r].verdicts.definite()
                == clean[r].verdicts.definite())
    # Adaptive early exit keeps the 4x policy under 2x wall clock.
    overhead = times[4] / times[1]
    assert overhead < OVERHEAD_BUDGET, (
        f"rounds=4 cost {overhead:.2f}x single-pass "
        f"(budget {OVERHEAD_BUDGET:.1f}x)")

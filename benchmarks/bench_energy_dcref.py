"""Energy companion to Figure 16: DRAM energy under the three refresh
policies.

The paper motivates DC-REF with performance *and* energy efficiency
(Sections 1 and 8). Refresh is a large share of dense-DRAM energy (the
"refresh wall" of its refs [46, 62]); cutting 73% of refreshes - and
finishing the same work sooner - cuts total DRAM energy accordingly.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.sim import (DEFAULT_CONFIG_32G, app, energy_of, make_policy,
                       make_workloads, simulate_detailed,
                       workload_profiles)

from ._report import report


def test_dcref_energy(benchmark):
    def sweep():
        out = {}
        mixes = make_workloads(n_workloads=6, seed=2016)
        for policy_name in ("baseline", "raidr", "dcref"):
            energies = []
            shares = []
            for i, mix in enumerate(mixes):
                policy = make_policy(policy_name, DEFAULT_CONFIG_32G,
                                     seed=2016 + i)
                result = simulate_detailed(
                    workload_profiles(mix), policy, DEFAULT_CONFIG_32G,
                    seed=2016 + i, n_instructions=60_000)
                e = energy_of(result, DEFAULT_CONFIG_32G)
                energies.append(e.total_uj)
                shares.append(e.refresh_share)
            out[policy_name] = (float(np.mean(energies)),
                                float(np.mean(shares)))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base_total = out["baseline"][0]
    rows = [[name, f"{total:.1f} uJ", f"{share:.1%}",
             f"{100 * (total / base_total - 1):+.1f}%"]
            for name, (total, share) in out.items()]
    report("energy_dcref_32Gbit", format_table(
        ["Policy", "DRAM energy", "Refresh share", "vs baseline"],
        rows))

    assert out["dcref"][0] < out["raidr"][0] < out["baseline"][0]
    assert 0.15 <= out["baseline"][1] <= 0.5
    # DC-REF cuts total DRAM energy by a double-digit percentage.
    assert out["dcref"][0] < 0.9 * base_total

"""Fleet-campaign runtime: wall-clock and equivalence acceptance.

A 12-chip characterization fleet (4 chips per vendor, seeds from the
SHA-256 ladder) is run three ways:

* **reference** - the original per-cell loops, serial (the seed
  repository's execution path, kept executable behind the
  reference-kernel switch);
* **jobs=1** - the optimized engine (vectorized bank verification,
  memoized schedules/batteries), serial;
* **jobs=4** - the optimized engine fanned over 4 worker processes.

The acceptance criteria: all three produce identical outcomes, and
the optimized fleet at ``jobs=4`` is at least 2x faster than the
reference baseline.  On multi-core hosts the parallel fan-out
multiplies the engine speedup further; the guarantee holds even on a
single core because the engine alone clears 2x.
"""

import time

import pytest

from repro.analysis import format_table
from repro.runtime import (CampaignSpec, chip_seed, reference_kernels,
                           run_fleet)

from ._report import report

ROOT_SEED = 2016
CHIPS_PER_VENDOR = 4


def _fleet_specs():
    return [
        CampaignSpec(experiment="characterize", vendor=v, index=i + 1,
                     build_seed=chip_seed(ROOT_SEED, v, i, "build"),
                     run_seed=chip_seed(ROOT_SEED, v, i, "run"),
                     n_rows=128, sample_size=2000, run_sweep=False)
        for v in ("A", "B", "C") for i in range(CHIPS_PER_VENDOR)
    ]


@pytest.mark.slow
def test_fleet_parallel_speedup(benchmark):
    specs = _fleet_specs()

    t0 = time.perf_counter()
    with reference_kernels():
        ref = run_fleet(specs, jobs=1)
    t_ref = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = run_fleet(specs, jobs=1)
    t_serial = time.perf_counter() - t0

    def fan_out():
        return run_fleet(specs, jobs=4)

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(fan_out, rounds=1, iterations=1)
    t_parallel = time.perf_counter() - t0

    # Byte-identical across engines and jobs settings.
    assert ref.signatures() == serial.signatures()
    assert serial.signatures() == parallel.signatures()
    assert ref.stats.tests == parallel.stats.tests
    assert ref.stats.rows_written == parallel.stats.rows_written
    assert ref.stats.rows_read == parallel.stats.rows_read

    speedup_engine = t_ref / t_serial
    speedup_total = t_ref / t_parallel
    rows = [
        ["reference kernels, serial", f"{t_ref:.2f} s", "1.00x"],
        ["optimized, jobs=1", f"{t_serial:.2f} s",
         f"{speedup_engine:.2f}x"],
        ["optimized, jobs=4", f"{t_parallel:.2f} s",
         f"{speedup_total:.2f}x"],
    ]
    rows.append(["fleet", f"{len(specs)} chips",
                 "identical outcomes on all paths"])
    report("fleet_parallel", format_table(
        ["Configuration", "Wall clock", "Speedup"], rows))

    benchmark.extra_info["speedup_vs_reference"] = speedup_total
    assert speedup_total >= 2.0

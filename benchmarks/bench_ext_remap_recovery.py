"""Extension: recovering remapped-column victims (paper Section 7.3).

The paper's stated limitation: victims in remapped spare columns have
irregular neighbourhoods, their distances are filtered as infrequent,
and the neighbour-aware sweep misses them (part of Figure 13's
only-random slice). Its sketched fix - handling the infrequent regions
intelligently - is implemented here as adaptive two-defective group
testing per residual victim (O(log n) tests each).
"""

from repro.analysis import format_table
from repro.core import ParborConfig, run_parbor
from repro.dram import vendor

from ._report import report


def test_remap_recovery_closes_coverage_gap(benchmark):
    def campaign():
        chip = vendor("B").make_chip(seed=13, n_rows=96)
        return chip, run_parbor(chip, ParborConfig(sample_size=1500),
                                seed=4, recover_remapped=True)

    chip, result = benchmark.pedantic(campaign, rounds=1, iterations=1)

    pop = chip.banks[0].coupled
    p2s = chip.mapping.phys_to_sys()
    remapped = {(0, 0, int(pop.row[i]), int(p2s[pop.phys[i]])): i
                for i in range(len(pop)) if pop.remapped[i]}
    recovery = result.recovery
    correct = 0
    for coord, aggs in recovery.aggressors.items():
        i = remapped.get(coord)
        if i is None:
            continue
        truth = {int(p2s[a]) for a in (pop.left_phys[i],
                                       pop.right_phys[i]) if a >= 0}
        if set(aggs) and set(aggs) <= truth:
            correct += 1

    rows = [
        ["remapped victims (ground truth)", len(remapped)],
        ["residual after sweep (attempted)", recovery.attempted],
        ["recovered with aggressor map", len(recovery)],
        ["recovered & exactly correct", correct],
        ["extra tests spent", recovery.tests],
        ["tests per recovered victim",
         f"{recovery.tests / max(1, recovery.attempted):.0f} "
         "(vs 33.5M for the O(n^2) pair test)"],
    ]
    report("ext_remap_recovery", format_table(["Quantity", "Value"],
                                              rows))

    assert recovery.attempted > 0
    assert len(recovery) >= recovery.attempted // 3
    assert correct == sum(1 for c in recovery.aggressors if c in remapped)
    assert recovery.tests / max(1, recovery.attempted) < 100

"""Figure 15: ranking robustness vs. initial victim sample size.

Paper: with a small sample, noise distances can look frequent (module
C1's distance 5 at 1 K victims); larger samples separate the true
regions cleanly. Sample sizes are scaled to our bank geometry
(96-row banks vs. the paper's 32 K-row chips).
"""

import pytest

from repro.analysis import format_table, sample_size_sweep
from repro.dram.faults import NoiseSpec

from ._report import report

TRUE_REGIONS = {"B": {0, -8, 8}, "C": {-2, 2, -4, 4, -6, 6}}
SAMPLE_SIZES = (150, 600, 1500, 3000)

NOISE = NoiseSpec(n_vrt_cells=4, vrt_fail_prob=0.9,
                  n_marginal_cells=4, marginal_fail_prob=0.6,
                  soft_error_rate=2e-6)


@pytest.mark.parametrize("name", ["B", "C"])
def test_fig15_sample_size_sensitivity(benchmark, name):
    sweep = benchmark.pedantic(
        sample_size_sweep, args=(name, SAMPLE_SIZES),
        kwargs=dict(level=4, seed=2016, n_rows=192),
        rounds=1, iterations=1)

    distances = sorted({d for hist in sweep.values() for d in hist})
    rows = [[d] + [f"{sweep[s].get(d, 0.0):.3f}" for s in SAMPLE_SIZES]
            for d in distances]
    report(f"fig15_sample_size_{name}1", format_table(
        ["Distance"] + [f"n={s}" for s in SAMPLE_SIZES], rows))

    def noise_amplitude(hist):
        noise = set(hist) - TRUE_REGIONS[name]
        return max((hist[d] for d in noise), default=0.0)

    small = sweep[SAMPLE_SIZES[0]]
    large = sweep[SAMPLE_SIZES[-1]]
    # Larger samples never make noise look MORE frequent, and the true
    # regions stay on top.
    assert noise_amplitude(large) <= noise_amplitude(small) + 0.05
    true_found = TRUE_REGIONS[name] & set(large)
    assert true_found
    assert min(large[d] for d in true_found) > noise_amplitude(large)


@pytest.mark.slow
@pytest.mark.parametrize("name", ["B", "C"])
def test_fig15_sample_size_stable_under_noise(benchmark, name):
    """Figure 15 on a noisy device with robust verdicts: at every
    sample size the true regions still outrank the noise tail once
    ``rounds=3`` voting filters the flaky observations."""
    sizes = SAMPLE_SIZES[1:3]  # the separating regime
    sweep = benchmark.pedantic(
        sample_size_sweep, args=(name, sizes),
        kwargs=dict(level=4, seed=2016, n_rows=192, rounds=3,
                    noise=NOISE),
        rounds=1, iterations=1)

    distances = sorted({d for hist in sweep.values() for d in hist})
    rows = [[d] + [f"{sweep[s].get(d, 0.0):.3f}" for s in sizes]
            for d in distances]
    report(f"fig15_sample_size_robust_{name}1", format_table(
        ["Distance"] + [f"n={s}" for s in sizes], rows))

    for size in sizes:
        hist = sweep[size]
        true_found = TRUE_REGIONS[name] & set(hist)
        tail = set(hist) - TRUE_REGIONS[name]
        assert true_found, f"no true regions at n={size}"
        assert (min(hist[d] for d in true_found)
                > max((hist[d] for d in tail), default=0.0))

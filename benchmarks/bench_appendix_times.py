"""Appendix: test-time arithmetic.

Paper: exhaustive neighbour location takes 8.73 minutes (O(n)),
49 days (O(n^2)), 1115 years (O(n^3)), 9.1 M years (O(n^4)) per 8 K
row; one whole-module test takes 413.96 ms; PARBOR's 92-132 test
campaigns take 38-55 seconds; the reduction over the O(n^2) test is
745,654x.
"""

import pytest

from repro.analysis import format_table
from repro.core import (exhaustive_cost_table, module_test_time_s,
                        parbor_campaign_time_s, reduction_factor)

from ._report import report


def test_appendix_exhaustive_cost_ladder(benchmark):
    rows_data = benchmark.pedantic(exhaustive_cost_table,
                                   rounds=1, iterations=1)
    rows = [[f"O(n^{r.k_neighbours})", f"{r.tests:.3g}", r.human]
            for r in rows_data]
    report("appendix_exhaustive_times", format_table(
        ["Test", "Bit tests", "Wall clock"], rows))

    seconds = {r.k_neighbours: r.seconds for r in rows_data}
    assert seconds[1] / 60 == pytest.approx(8.74, rel=0.01)
    assert seconds[2] / 86_400 == pytest.approx(49.7, rel=0.01)
    assert seconds[3] / (365 * 86_400) == pytest.approx(1115, rel=0.01)
    assert seconds[4] / (365 * 86_400 * 1e6) == pytest.approx(9.13,
                                                              rel=0.01)


def test_appendix_parbor_campaign_times(benchmark):
    def campaign_times():
        return {
            "one module test": module_test_time_s(1),
            "92-test campaign": parbor_campaign_time_s(66, 16, 10),
            "132-test campaign": parbor_campaign_time_s(90, 32, 10),
        }

    times = benchmark.pedantic(campaign_times, rounds=1, iterations=1)
    rows = [[k, f"{v:.2f} s"] for k, v in times.items()]
    rows.append(["reduction vs O(n^2)",
                 f"{reduction_factor(8192, 2, 90):,.0f}x (paper 745,654x)"])
    report("appendix_campaign_times", format_table(
        ["Quantity", "Value"], rows))

    assert times["one module test"] == pytest.approx(0.41396, rel=0.001)
    assert 35 <= times["92-test campaign"] <= 40
    assert 50 <= times["132-test campaign"] <= 58
    assert reduction_factor(8192, 2, 90) == pytest.approx(745_654,
                                                          rel=0.001)

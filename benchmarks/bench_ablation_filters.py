"""Ablation: the noise filters of Section 5.2.4.

Two filters keep the recursion honest: the *marginal* filter discards
victims failing in most tested regions (VRT/marginal cells), and the
*ranking* filter keeps only distances reported by a meaningful share
of the sample. This bench disables each (by pushing its threshold to
the permissive extreme) and measures the damage: spurious distances
survive and the test budget balloons.
"""

import pytest

from repro.analysis import format_distance_set, format_table
from repro.core import ParborConfig, run_parbor
from repro.dram import vendor

from ._report import report

TRUE_MAGS = {"B": {1, 64}}

CONFIGS = {
    "full filtering": dict(ranking_threshold=0.06,
                           marginal_region_fraction=0.3),
    "no ranking": dict(ranking_threshold=1e-9,
                       marginal_region_fraction=0.3),
    "no marginal filter": dict(ranking_threshold=0.06,
                               marginal_region_fraction=1.0),
}


def test_filter_ablation(benchmark):
    def sweep_all():
        out = {}
        for label, overrides in CONFIGS.items():
            chip = vendor("B").make_chip(seed=23, n_rows=96)
            cfg = ParborConfig(sample_size=1500, **overrides)
            out[label] = run_parbor(chip, cfg, seed=6, run_sweep=False)
        return out

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    rows = []
    for label, res in results.items():
        mags = set(res.magnitudes())
        spurious = len(mags - TRUE_MAGS["B"])
        rows.append([label, res.recursion.total_tests,
                     format_distance_set(res.distances)[:48], spurious])
    report("ablation_filters", format_table(
        ["Configuration", "Recursion tests", "Distances", "Spurious"],
        rows))

    full = results["full filtering"]
    no_rank = results["no ranking"]
    assert set(full.magnitudes()) == TRUE_MAGS["B"]
    # Without ranking, noise distances survive and the budget grows.
    spurious_norank = set(no_rank.magnitudes()) - TRUE_MAGS["B"]
    assert spurious_norank
    assert no_rank.recursion.total_tests \
        > 2 * full.recursion.total_tests

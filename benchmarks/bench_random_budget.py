"""Section 3's guarantee argument: random testing vs. budget.

The paper: random-pattern tests "take very long, are expensive, and
make it difficult to provide any guarantees on the fraction of
data-dependent failures that remain undetected". This bench gives the
random test 1x to 16x PARBOR's whole budget and measures how much of
PARBOR's detected set it reaches - the asymptote stays below 100%
because context-sensitive weak cells have exponentially rare random
worst cases.
"""

import pytest

from repro.analysis import format_table, hbar_chart, random_budget_sweep

from ._report import report

MULTIPLIERS = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("name", ["A"])
def test_random_budget_sweep(benchmark, name):
    result, coverages = benchmark.pedantic(
        random_budget_sweep, args=(name,),
        kwargs=dict(budget_multipliers=MULTIPLIERS, seed=2016,
                    n_rows=96),
        rounds=1, iterations=1)

    chart = hbar_chart(
        {f"{m}x PARBOR budget": 100 * coverages[m]
         for m in MULTIPLIERS},
        width=40, fmt="{:.1f}%",
        title=f"Random-test coverage of PARBOR's detections "
              f"(vendor {name}, budget {result.total_tests} tests):")
    report(f"random_budget_{name}", chart)

    # Monotone, but saturating below full coverage even at 16x.
    values = [coverages[m] for m in MULTIPLIERS]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    assert values[0] < 0.95
    assert values[-1] < 0.995
    # Diminishing returns: the last doubling buys less than the first.
    assert (values[1] - values[0]) > (values[-1] - values[-2])

"""Extension: DC-LAT, the paper's suggested latency use case.

Section 8's closing line: "similar data-content aware optimizations
can also be developed on top of DRAM latency reduction mechanisms
[17, 18, 27, 43, 69] to achieve further latency reduction benefits."
DC-LAT applies AL-DRAM-style reduced tRCD/tCAS to every access whose
target row's current content cannot trigger its coupling failures -
on top of DC-REF's refresh reduction.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.dcref import DcLatPolicy
from repro.sim import (DEFAULT_CONFIG_32G, make_policy, make_workloads,
                       simulate_detailed, workload_profiles)

from ._report import report


def test_dclat_extension(benchmark):
    def sweep():
        mixes = make_workloads(n_workloads=8, seed=2016)
        sums = {"baseline": [], "dcref": [], "dclat": []}
        fast_fracs = []
        for i, mix in enumerate(mixes):
            profiles = workload_profiles(mix)
            match = float(np.mean([p.worst_match_prob
                                   for p in profiles]))
            policies = {
                "baseline": make_policy("baseline", DEFAULT_CONFIG_32G,
                                        seed=2016 + i),
                "dcref": make_policy("dcref", DEFAULT_CONFIG_32G,
                                     match_prob=match, seed=2016 + i),
                "dclat": DcLatPolicy(DEFAULT_CONFIG_32G,
                                     match_prob=match, seed=2016 + i),
            }
            for name, policy in policies.items():
                result = simulate_detailed(profiles, policy,
                                           DEFAULT_CONFIG_32G,
                                           seed=2016 + i,
                                           n_instructions=60_000)
                sums[name].append(sum(result.ipcs))
                if name == "dclat":
                    fast_fracs.append(policy.fast_fraction())
        return sums, float(np.mean(fast_fracs))

    sums, fast_fraction = benchmark.pedantic(sweep, rounds=1,
                                             iterations=1)

    base = float(np.mean(sums["baseline"]))
    rows = [[name, f"{float(np.mean(v)):.2f}",
             f"{100 * (float(np.mean(v)) / base - 1):+.1f}%"]
            for name, v in sums.items()]
    rows.append(["fast-eligible rows", f"{fast_fraction:.1%}", ""])
    report("ext_dclat", format_table(
        ["Policy", "Mean sum-IPC", "vs baseline"], rows))

    dcref = float(np.mean(sums["dcref"]))
    dclat = float(np.mean(sums["dclat"]))
    assert dclat > dcref > base
    # The latency path adds measurably on top of the refresh path
    # (~2% on random mixes; more on memory-bound ones).
    assert (dclat - dcref) / base > 0.01
    assert fast_fraction > 0.9

"""Figure 12: extra failures uncovered by PARBOR over an equal-budget
random-pattern test, across the 18-module fleet.

Paper: 1 K - 45 K extra failures per module, a 2 - 55% increase,
21.9% on average; vendor C's modules are the most vulnerable.
Our fleet is geometry-scaled (128-row banks instead of 32 K-row
chips), so absolute counts scale down accordingly; the relative
increase is the reproduced quantity.
"""

import os

import numpy as np

from repro.analysis import fleet_comparison, format_table

from ._report import report

# The fleet fan-out worker count; results are identical for any value
# (tests/runtime/test_parallel_equivalence.py), so benchmarking hosts
# can raise it freely.
JOBS = int(os.environ.get("REPRO_JOBS", "1"))


def test_fig12_fleet_extra_failures(benchmark):
    comparisons = benchmark.pedantic(
        fleet_comparison,
        kwargs=dict(modules_per_vendor=6, seed=2016, n_rows=96,
                    jobs=JOBS),
        rounds=1, iterations=1)

    rows = [[c.module_id, c.budget, c.parbor_failures,
             c.random_failures, c.extra_failures,
             f"{c.extra_percent:+.1f}%"] for c in comparisons]
    extras = [c.extra_percent for c in comparisons]
    rows.append(["mean", "", "", "", "",
                 f"{np.mean(extras):+.1f}% (paper +21.9%)"])
    report("fig12_extra_failures", format_table(
        ["Module", "Budget", "PARBOR", "Random", "Extra", "Increase"],
        rows))

    # Shape assertions: PARBOR uncovers more on (almost) every module,
    # the fleet mean sits in the paper's band, and vendor C modules
    # are the most vulnerable in absolute counts.
    assert sum(1 for c in comparisons if c.extra_failures > 0) >= 16
    assert 8.0 <= float(np.mean(extras)) <= 40.0
    by_vendor = {v: [c.parbor_failures for c in comparisons
                     if c.module_id.startswith(v)] for v in "ABC"}
    assert np.mean(by_vendor["C"]) > 2 * np.mean(by_vendor["A"])
    assert np.mean(by_vendor["C"]) > 2 * np.mean(by_vendor["B"])
    benchmark.extra_info["mean_extra_percent"] = float(np.mean(extras))

"""Checkpoint journal overhead: must stay under 5% on a 16-target fleet.

The journal writes one flushed (not fsynced) JSON line per completed
target - bounded work per *target*, not per test, so its relative cost
shrinks as campaigns grow.  This benchmark times the same seeded
16-target fleet bare, with a checkpoint journal, and resumed from a
complete journal, asserts the outcomes are byte-identical, and pins
journal overhead below 5%.

Timings are interleaved best-of-``ROUNDS``: on a loaded shared box the
run-to-run noise of a ~4 s fleet exceeds the journal's real cost, and
the minimum is the standard robust estimator for "how fast can this
go" under external load.
"""

import time

import pytest

from repro.analysis import format_table
from repro.runtime import CampaignSpec, chip_seed, run_fleet

from ._report import report

ROOT_SEED = 2016
N_TARGETS = 16
ROUNDS = 3
OVERHEAD_BUDGET = 0.05


def _specs():
    return [
        CampaignSpec(experiment="characterize", vendor="ABC"[i % 3],
                     index=i, build_seed=chip_seed(ROOT_SEED, "ABC"[i % 3],
                                                   i, "build"),
                     run_seed=chip_seed(ROOT_SEED, "ABC"[i % 3], i, "run"),
                     n_rows=64, sample_size=600, run_sweep=False)
        for i in range(N_TARGETS)
    ]


def _timed(**kwargs):
    t0 = time.perf_counter()
    fleet = run_fleet(_specs(), jobs=1, **kwargs)
    return time.perf_counter() - t0, fleet


@pytest.mark.slow
def test_checkpoint_overhead(benchmark, tmp_path):
    def run_bare():
        return run_fleet(_specs(), jobs=1)

    t0 = time.perf_counter()
    bare = benchmark.pedantic(run_bare, rounds=1, iterations=1)
    t_bare = time.perf_counter() - t0
    t_journaled = None
    for r in range(ROUNDS):
        ckpt = str(tmp_path / f"fleet-{r}.ckpt")
        t, journaled = _timed(checkpoint=ckpt)
        t_journaled = t if t_journaled is None else min(t_journaled, t)
        t, _ = _timed()
        t_bare = min(t_bare, t)
    t_resumed, resumed = _timed(checkpoint=ckpt, resume=True)

    # The journal must not change what is computed.
    assert journaled.signatures() == bare.signatures()
    assert resumed.signatures() == bare.signatures()
    assert resumed.checkpoint_hits == N_TARGETS
    assert resumed.attempts == 0

    overhead = t_journaled / t_bare - 1.0
    rows = [
        ["no checkpoint", f"{t_bare:.2f} s", "baseline"],
        ["checkpoint journal", f"{t_journaled:.2f} s",
         f"{overhead * 100:+.1f}%"],
        ["resume (all journaled)", f"{t_resumed:.2f} s",
         f"{(t_resumed / t_bare - 1.0) * 100:+.1f}%"],
        ["targets", f"{N_TARGETS}", ""],
        ["outcomes", "byte-identical", ""],
    ]
    report("checkpoint_overhead",
           format_table(["Configuration", "Wall clock", "Delta"], rows))
    assert overhead < OVERHEAD_BUDGET, (
        f"checkpoint journal cost {overhead * 100:.1f}% "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%)")

"""Section 3, Challenge 2: why simple and classic tests are not enough.

The paper argues that prior system-level mechanisms assuming "a simple
test with all 0s/1s data pattern or random patterns can detect all
data-dependent failures ... could face serious reliability issues".
This bench quantifies the detection ladder on one chip per vendor:
solid March C-, checkerboard March C-, the equal-budget random test,
and the full PARBOR campaign, each measured against the ground-truth
coupled-cell population.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (MARCH_C_MINUS, ParborConfig, checkerboard,
                        controllers_for, random_pattern_test, run_march,
                        run_parbor)
from repro.dram import vendor

from ._report import report


def coupled_coords(chip):
    pop = chip.banks[0].coupled
    p2s = chip.mapping.phys_to_sys()
    return {(0, 0, int(pop.row[i]), int(p2s[pop.phys[i]]))
            for i in range(len(pop)) if not pop.remapped[i]}


@pytest.mark.parametrize("name", ["A", "B"])
def test_detection_ladder(benchmark, name):
    def ladder():
        chip = vendor(name).make_chip(seed=11, n_rows=96)
        truth = coupled_coords(chip)
        ctrls = controllers_for(chip)
        out = {}
        out["march_solid"] = run_march(ctrls, MARCH_C_MINUS).detected
        out["march_checker"] = run_march(
            ctrls, MARCH_C_MINUS,
            background=checkerboard(chip.row_bits)).detected
        parbor = run_parbor(chip, ParborConfig(sample_size=1500), seed=5)
        out["parbor"] = parbor.detected
        out["random"] = random_pattern_test(
            ctrls, n_tests=parbor.total_tests,
            rng=np.random.default_rng(99))
        return truth, out

    truth, out = benchmark.pedantic(ladder, rounds=1, iterations=1)

    coverage = {k: len(v & truth) / len(truth) for k, v in out.items()}
    rows = [[k, len(v), f"{coverage[k]:.1%}"]
            for k, v in out.items()]
    report(f"challenge2_ladder_{name}", format_table(
        ["Test", "Detected cells", "Coupled-cell coverage"], rows))

    # The paper's ladder: solid ~0, checkerboard little (vendor A's
    # even distances: nothing; vendor B's +-1: some), random most,
    # PARBOR nearly all.
    assert coverage["march_solid"] < 0.01
    assert coverage["march_checker"] < 0.5
    assert coverage["march_checker"] <= coverage["random"]
    assert coverage["random"] < coverage["parbor"]
    assert coverage["parbor"] > 0.9

"""Figure 14: frequency ranking of level-4 neighbour regions.

Paper: the true neighbour regions (A1: +-1, +-2, +-6; B1: 0, +-8;
C1: +-2, +-4, +-6) occur very frequently, while random failures
produce a low-amplitude tail of infrequent distances that the ranking
filter removes.
"""

import pytest

from repro.analysis import format_table, ranking_histogram

from ._report import report

TRUE_REGIONS = {"A": {-1, 1, -2, 2, -6, 6},
                "B": {0, -8, 8},
                "C": {-2, 2, -4, 4, -6, 6}}


@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_fig14_level4_ranking(benchmark, name):
    hist = benchmark.pedantic(
        ranking_histogram, args=(name,),
        kwargs=dict(level=4, seed=2016, n_rows=128, sample_size=2000),
        rounds=1, iterations=1)

    rows = [[d, f"{v:.3f}", "*" if d in TRUE_REGIONS[name] else ""]
            for d, v in sorted(hist.items())]
    report(f"fig14_ranking_{name}1", format_table(
        ["Distance", "Normalised frequency", "True region"], rows))

    true_found = TRUE_REGIONS[name] & set(hist)
    noise = set(hist) - TRUE_REGIONS[name]
    assert true_found, "no true regions reported"
    min_true = min(hist[d] for d in true_found)
    max_noise = max((hist[d] for d in noise), default=0.0)
    # The frequent/infrequent separation that makes ranking work.
    assert min_true > max_noise

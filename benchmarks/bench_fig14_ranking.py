"""Figure 14: frequency ranking of level-4 neighbour regions.

Paper: the true neighbour regions (A1: +-1, +-2, +-6; B1: 0, +-8;
C1: +-2, +-4, +-6) occur very frequently, while random failures
produce a low-amplitude tail of infrequent distances that the ranking
filter removes.
"""

import pytest

from repro.analysis import format_table, ranking_histogram
from repro.dram.faults import NoiseSpec

from ._report import report

TRUE_REGIONS = {"A": {-1, 1, -2, 2, -6, 6},
                "B": {0, -8, 8},
                "C": {-2, 2, -4, 4, -6, 6}}

#: Injected device noise for the robustness variant: persistent VRT,
#: flaky marginal cells, and a soft-error drizzle (docs/ROBUSTNESS.md).
NOISE = NoiseSpec(n_vrt_cells=4, vrt_fail_prob=0.9,
                  n_marginal_cells=4, marginal_fail_prob=0.6,
                  soft_error_rate=2e-6)


@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_fig14_level4_ranking(benchmark, name):
    hist = benchmark.pedantic(
        ranking_histogram, args=(name,),
        kwargs=dict(level=4, seed=2016, n_rows=128, sample_size=2000),
        rounds=1, iterations=1)

    rows = [[d, f"{v:.3f}", "*" if d in TRUE_REGIONS[name] else ""]
            for d, v in sorted(hist.items())]
    report(f"fig14_ranking_{name}1", format_table(
        ["Distance", "Normalised frequency", "True region"], rows))

    true_found = TRUE_REGIONS[name] & set(hist)
    noise = set(hist) - TRUE_REGIONS[name]
    assert true_found, "no true regions reported"
    min_true = min(hist[d] for d in true_found)
    max_noise = max((hist[d] for d in noise), default=0.0)
    # The frequent/infrequent separation that makes ranking work.
    assert min_true > max_noise


def _ranked(hist):
    """Distances sorted most-frequent first (frequency ties by value)."""
    return [d for d, _v in sorted(hist.items(),
                                  key=lambda kv: (-kv[1], kv[0]))]


@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_fig14_ranking_stable_under_noise(benchmark, name):
    """Robust verdicts keep Figure 14's ranking usable on a noisy
    device: with injected VRT/marginal/soft-error populations and
    ``rounds=3`` voting, the true regions still outrank every noise
    distance, and their relative order matches the clean run."""
    clean = ranking_histogram(name, level=4, seed=2016, n_rows=128,
                              sample_size=2000)
    noisy = benchmark.pedantic(
        ranking_histogram, args=(name,),
        kwargs=dict(level=4, seed=2016, n_rows=128, sample_size=2000,
                    rounds=3, noise=NOISE),
        rounds=1, iterations=1)

    rows = [[d, f"{clean.get(d, 0.0):.3f}", f"{noisy.get(d, 0.0):.3f}",
             "*" if d in TRUE_REGIONS[name] else ""]
            for d in sorted(set(clean) | set(noisy))]
    report(f"fig14_ranking_robust_{name}1", format_table(
        ["Distance", "Clean frequency", "Noisy+rounds=3 frequency",
         "True region"], rows))

    true_found = TRUE_REGIONS[name] & set(noisy)
    tail = set(noisy) - TRUE_REGIONS[name]
    assert true_found == TRUE_REGIONS[name] & set(clean)
    min_true = min(noisy[d] for d in true_found)
    max_noise = max((noisy[d] for d in tail), default=0.0)
    assert min_true > max_noise
    # Ranking order of the true regions is stable under noise.
    k = len(true_found)
    clean_top = [d for d in _ranked(clean) if d in true_found][:k]
    noisy_top = [d for d in _ranked(noisy) if d in true_found][:k]
    assert noisy_top == clean_top

"""Observability overhead: tracing off vs. on, identical outcomes.

The ``repro.obs`` contract is *zero overhead when disabled* (the hooks
are a global load plus a ``None`` check) and *no behavioural change
when enabled* (spans wrap the existing statements; they never reorder
them).  This benchmark times the same seeded campaign fleet with
tracing off and on, asserts the outcomes are byte-identical, and
reports the relative cost of collecting a full trace.
"""

import dataclasses
import time

import pytest

from repro.analysis import format_table
from repro.runtime import CampaignSpec, chip_seed, run_fleet

from ._report import report

ROOT_SEED = 2016


def _specs(trace):
    return [
        CampaignSpec(experiment="characterize", vendor=v, index=1,
                     build_seed=chip_seed(ROOT_SEED, v, 0, "build"),
                     run_seed=chip_seed(ROOT_SEED, v, 0, "run"),
                     n_rows=96, sample_size=1000, run_sweep=False,
                     trace=trace)
        for v in ("A", "B", "C")
    ]


@pytest.mark.slow
def test_obs_overhead(benchmark):
    untraced = _specs(trace=False)
    traced = _specs(trace=True)

    def run_untraced():
        return run_fleet(untraced, jobs=1)

    t0 = time.perf_counter()
    off = benchmark.pedantic(run_untraced, rounds=1, iterations=1)
    t_off = time.perf_counter() - t0

    t0 = time.perf_counter()
    on = run_fleet(traced, jobs=1)
    t_on = time.perf_counter() - t0

    # Tracing must not change what is computed.
    assert off.signatures() == on.signatures()
    assert off.stats.tests == on.stats.tests
    assert on.metrics is not None
    n_records = len(on.trace_records())
    assert n_records > 0

    overhead = (t_on / t_off - 1.0) * 100 if t_off > 0 else 0.0
    rows = [
        ["tracing off", f"{t_off:.2f} s", "baseline"],
        ["tracing on", f"{t_on:.2f} s", f"{overhead:+.0f}%"],
        ["trace records", f"{n_records}", ""],
        ["outcomes", "byte-identical", ""],
    ]
    report("obs_overhead",
           format_table(["Configuration", "Wall clock", "Delta"], rows))

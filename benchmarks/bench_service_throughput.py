"""Campaign-service throughput: socket-to-results cost of the daemon.

Runs a real ``repro serve`` daemon (subprocess, unix socket,
``jobs=2`` so shards execute under the parallel watchdog path) and
measures the service's two user-visible latencies on an 8-target
campaign:

* **admission latency** - submit call to durable acknowledgement
  (the submission is fsync'd into the queue journal before the ack);
* **completion wall clock** - submit to the last streamed result,
  giving end-to-end shard throughput in targets/s.

The floors are deliberately loose (shared CI boxes): the point is to
catch a collapse - an accidental fsync-per-test, a scheduler spin, a
serialization stall - not to benchmark the hardware.
"""

import time

import pytest

from repro.analysis import format_table
from repro.runtime import CampaignSpec, chip_seed

from ._report import report

ROOT_SEED = 2016
N_TARGETS = 8
SHARD_SIZE = 2
JOBS = 2

MAX_ADMISSION_S = 2.0
MIN_TARGETS_PER_S = 0.2


def _specs():
    return [
        CampaignSpec(experiment="characterize", vendor="ABC"[i % 3],
                     index=i,
                     build_seed=chip_seed(ROOT_SEED, "ABC"[i % 3], i,
                                          "build"),
                     run_seed=chip_seed(ROOT_SEED, "ABC"[i % 3], i,
                                        "run"),
                     n_rows=48, sample_size=400, run_sweep=False)
        for i in range(N_TARGETS)
    ]


@pytest.mark.slow
def test_service_throughput(tmp_path):
    from repro.service import client
    from tests.service.harness import start_daemon, stop_daemon

    sock = tmp_path / "svc.sock"
    proc = start_daemon(sock, tmp_path / "state",
                        shard_size=SHARD_SIZE, jobs=JOBS,
                        max_queued_targets=N_TARGETS)
    try:
        t_submit = time.perf_counter()
        response = client.submit(str(sock), _specs(), tenant="bench")
        t_admitted = time.perf_counter()
        results = client.wait_results(str(sock),
                                      response["campaign"],
                                      timeout=600.0)
        t_done = time.perf_counter()
        counters = client.status(str(sock))["counters"]
    finally:
        assert stop_daemon(proc, sock) == 0

    assert results["end"]["ok"]
    assert len(results["results"]) == N_TARGETS
    admission_s = t_admitted - t_submit
    total_s = t_done - t_submit
    shards = response["shards"]
    throughput = N_TARGETS / total_s

    rows = [
        ["targets / shard size / jobs",
         f"{N_TARGETS} / {SHARD_SIZE} / {JOBS}"],
        ["admission latency (durable ack)", f"{admission_s * 1e3:.1f} ms"],
        ["submission -> completion", f"{total_s:.2f} s"],
        ["shard throughput", f"{shards / total_s:.2f} shards/s"],
        ["target throughput", f"{throughput:.2f} targets/s"],
        ["shards done (counter)",
         f"{counters.get('proc.service.shards_done', 0):g}"],
    ]
    report("bench_service_throughput",
           format_table(["Quantity", "Value"], rows))

    assert admission_s < MAX_ADMISSION_S
    assert throughput > MIN_TARGETS_PER_S

"""ECC lens: profile distortion and read-path overhead.

Runs the same seeded characterization campaign three ways - ECC off,
through the on-die SEC-DED lens (``ecc="lens"``), and with BEER-style
recovery (``ecc="recover"``) - then reports how much of the raw
failure profile the lens hides, confirms the recovered profile is
byte-identical to the ECC-off truth, and bounds the cost of the
decode stage: the lens campaign must stay under 1.5x the ECC-off
wall clock.
"""

import time

import pytest

from repro.analysis import format_table
from repro.ecc import EccCampaignSpec, ecc_distortion, format_distortion
from repro.runtime import CampaignSpec

from ._report import report

KW = dict(experiment="characterize", vendor="A", build_seed=7,
          run_seed=2016, n_rows=96, sample_size=1000, run_sweep=True)

MAX_OVERHEAD = 1.5


def _timed(spec):
    t0 = time.perf_counter()
    outcome = spec.run()
    return outcome, time.perf_counter() - t0


@pytest.mark.slow
def test_ecc_distortion(benchmark):
    def run_base():
        return _timed(CampaignSpec(**KW))

    base, t_base = benchmark.pedantic(run_base, rounds=1, iterations=1)
    lens, t_lens = _timed(EccCampaignSpec(**KW, ecc="lens"))
    rec, t_rec = _timed(EccCampaignSpec(**KW, ecc="recover"))

    # Recovery is exact: every result-bearing signature field matches.
    assert rec.signature()[1:] == base.signature()[1:]
    dist = ecc_distortion(base, lens)
    assert dist.base_detected > 0
    assert dist.hidden_fraction > 0.5

    ratio_lens = t_lens / t_base if t_base > 0 else 1.0
    ratio_rec = t_rec / t_base if t_base > 0 else 1.0
    assert ratio_lens < MAX_OVERHEAD, (
        f"ECC lens overhead {ratio_lens:.2f}x exceeds {MAX_OVERHEAD}x")

    timing = format_table(
        ["Configuration", "Wall clock", "vs ECC-off"],
        [["ECC off", f"{t_base:.2f} s", "baseline"],
         ["ECC lens", f"{t_lens:.2f} s", f"{ratio_lens:.2f}x"],
         ["ECC recover (incl. BEER)", f"{t_rec:.2f} s",
          f"{ratio_rec:.2f}x"]])
    table = format_distortion(dist, base.spec.label(), lens.spec.label())
    report("ecc_distortion",
           table + "\n\nrecovered profile: byte-identical to ECC-off\n\n"
           + timing)

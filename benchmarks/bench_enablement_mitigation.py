"""Enablement study: mitigation mechanisms over PARBOR's failure map.

The paper's Section 1 argument: system-level detection enables
reliability mechanisms (its refs [6, 35, 47, 59, 62]). Given one
characterised chip, compare what each classic mechanism costs and
covers - the trade-off its ref [35] measures on real chips.
"""

from repro.analysis import format_table
from repro.core import ParborConfig, run_parbor
from repro.dram import vendor
from repro.mitigate import compare_mitigations

from ._report import report


def test_mitigation_enablement(benchmark):
    def study():
        # Low per-row failure density (as on real 32 K-row chips),
        # so the per-mechanism trade-offs are meaningful.
        chip = vendor("A").make_chip(seed=17, n_rows=256,
                                     vulnerability=0.06)
        result = run_parbor(chip, ParborConfig(sample_size=1200),
                            seed=2)
        return chip, result, compare_mitigations(chip, result)

    chip, result, rep = benchmark.pedantic(study, rounds=1, iterations=1)

    rows = rep.as_table_rows()
    rows.append(["(failures detected)", str(len(result.detected)),
                 "words affected", str(rep.ecc.words_with_failures)])
    report("enablement_mitigation", format_table(
        ["Mechanism", "Coverage", "Overhead kind", "Overhead"], rows))

    assert rep.ecc.coverage > 0.9          # sparse failures: ECC works
    assert rep.retirement.retired_rows > 0
    overheads = {r.mechanism: r.overhead for r in rep.rows}
    assert overheads["ECC (SEC-DED 72,64)"] == 0.125
    # Retirement/binning touch a minority of rows at realistic density.
    assert overheads["Row retirement"] < 0.5

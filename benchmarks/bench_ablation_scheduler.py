"""Ablation: why the sweep scheduler's victim sparsity matters.

DESIGN.md Section 4.3: the greedy conflict-graph colouring achieves
the fewest rounds, but its dense victim classes blanket the row with
aggressor zeros and destroy the wider analog context that weakly
coupled cells depend on. The sparse stride scheduler spends more
rounds and keeps them. This bench quantifies that trade-off - rounds
vs. detected failures - for all three schedulers on the same chip.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import ParborConfig, run_parbor
from repro.dram import vendor

from ._report import report

SCHEMES = ("sparse", "greedy", "paper")


@pytest.mark.parametrize("name", ["A"])
def test_scheduler_ablation(benchmark, name):
    def sweep_all():
        out = {}
        for scheme in SCHEMES:
            chip = vendor(name).make_chip(seed=11, n_rows=96)
            cfg = ParborConfig(sample_size=1500, scheduler=scheme)
            out[scheme] = (chip, run_parbor(chip, cfg, seed=5))
        return out

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    rows = []
    coverage = {}
    for scheme in SCHEMES:
        chip, res = results[scheme]
        pop = chip.banks[0].coupled
        p2s = chip.mapping.phys_to_sys()
        regular = {(0, 0, int(pop.row[i]), int(p2s[pop.phys[i]]))
                   for i in range(len(pop)) if not pop.remapped[i]}
        hit = len(regular & res.detected) / len(regular)
        coverage[scheme] = hit
        rows.append([scheme, res.n_sweep_rounds,
                     len(res.detected), f"{hit:.1%}"])
    report(f"ablation_scheduler_{name}", format_table(
        ["Scheduler", "Sweep rounds", "Detected", "Coupled coverage"],
        rows))

    # Sparse trades rounds for coverage; greedy is cheapest but lossy.
    assert coverage["sparse"] > coverage["greedy"] + 0.05
    assert results["greedy"][1].n_sweep_rounds \
        < results["sparse"][1].n_sweep_rounds
    assert coverage["sparse"] > 0.9

"""Figure 13: coverage of failures for modules A1, B1, C1.

Paper: 20-30% of all uncovered failures are found *only* by PARBOR;
less than 1% (A1, C1) to ~5% (B1) are found only by the equal-budget
random test (randomly-occurring failures and remapped columns).
"""

from repro.analysis import coverage_split, format_percent, format_table

from ._report import report


def test_fig13_coverage_split(benchmark):
    splits = benchmark.pedantic(
        coverage_split, kwargs=dict(seed=2016, n_rows=96),
        rounds=1, iterations=1)

    rows = [[s.module_id, format_percent(s.only_parbor),
             format_percent(s.only_random), format_percent(s.both)]
            for s in splits]
    report("fig13_coverage", format_table(
        ["Module", "Only PARBOR", "Only random", "Both"], rows))

    for s in splits:
        # A significant slice is PARBOR-exclusive...
        assert s.only_parbor > 0.03
        # ... while the random-exclusive slice stays small.
        assert s.only_random < 0.08
        assert s.both > 0.5
    benchmark.extra_info["splits"] = [
        (s.module_id, s.only_parbor, s.only_random) for s in splits]

"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the evaluation drivers:

* ``characterize`` - run PARBOR's neighbour search on one vendor's
  chip (Table 1 / Figure 11).
* ``compare`` - PARBOR vs. the equal-budget random test on one module
  (Figure 12/13).
* ``dcref`` - the refresh-policy comparison (Figure 16).
* ``appendix`` - the test-time arithmetic.
* ``report`` - render a ``--trace`` JSONL capture (and/or a
  checkpoint journal via ``--journal``) as breakdown tables
  (see ``docs/OBSERVABILITY.md``).
* ``serve`` / ``submit`` / ``status`` - the campaign service: a
  crash-safe daemon executing sharded submissions over a unix socket
  (see ``docs/SERVICE.md``).

Every command prints a human table and optionally dumps machine-
readable JSON with ``--json FILE``.  ``characterize``, ``compare``,
and ``fleet`` also accept ``--trace FILE`` / ``--metrics FILE`` to
capture an observability record of the run (:mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .analysis import (campaign_to_json, compare_module,
                       comparisons_to_csv, comparisons_to_json,
                       format_distance_set, format_table)
from .core import (MARCH_B, MARCH_C_MINUS, MATS_PLUS, ParborConfig,
                   checkerboard, controllers_for, exhaustive_cost_table,
                   module_test_time_s, plan_campaign, reduction_factor,
                   run_march)
from .dcref import run_fig16
from .sim import DEFAULT_CONFIG_16G, DEFAULT_CONFIG_32G

__all__ = ["main", "build_parser"]


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be non-negative, got {jobs}")
    return jobs


def _dump_json(path: Optional[str], payload: Dict[str, Any]) -> None:
    if not path:
        return
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def _fleet_trace_id(specs) -> str:
    """Deterministic session ID for a CLI-observed fleet run."""
    from .runtime.seeds import ladder_seed
    first = specs[0]
    digest = ladder_seed(first.build_seed, "trace", "fleet", len(specs),
                         first.run_seed)
    return f"fleet:{len(specs)}#{digest:016x}"


def _fleet_kwargs(args) -> Dict[str, Any]:
    """Map the resilience CLI flags onto ``run_fleet`` keywords."""
    kwargs: Dict[str, Any] = {"jobs": args.jobs}
    checkpoint = getattr(args, "checkpoint", None)
    if getattr(args, "resume", False) and not checkpoint:
        raise SystemExit("error: --resume requires --checkpoint FILE")
    if checkpoint:
        kwargs["checkpoint"] = checkpoint
        kwargs["resume"] = bool(getattr(args, "resume", False))
    if getattr(args, "timeout", None) is not None:
        kwargs["timeout_s"] = args.timeout
    if getattr(args, "max_failures", None) is not None:
        kwargs["strict"] = False
        kwargs["max_failures"] = args.max_failures
    return kwargs


def _report_degraded(fleet) -> None:
    """Print the per-target status table of a degraded fleet."""
    if not fleet.ok:
        from .runtime import render_degraded
        print(render_degraded(fleet), file=sys.stderr)


def _run_fleet_observed(specs, args):
    """Run a fleet, honouring ``--trace`` / ``--metrics`` when present.

    Without either flag this is a plain :func:`run_fleet` call.  With
    them, every spec is marked ``trace=True`` and the run happens
    inside a parent observability session: in-process targets record
    into the parent session directly, worker-process targets ship
    their records back on the outcome, and the two streams are merged
    before writing.  The campaign outcomes are identical either way.
    The resilience flags (``--checkpoint`` / ``--resume`` /
    ``--timeout`` / ``--max-failures``) pass straight through to
    :func:`run_fleet` in every mode.
    """
    from .runtime import run_fleet
    kwargs = _fleet_kwargs(args)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if not trace_path and not metrics_path:
        fleet = run_fleet(specs, **kwargs)
        _report_degraded(fleet)
        return fleet

    import dataclasses

    from . import obs
    from .obs.trace import write_jsonl

    specs = [dataclasses.replace(s, trace=True) for s in specs]
    with obs.session(_fleet_trace_id(specs), label="fleet") as sess:
        fleet = run_fleet(specs, **kwargs)
    _report_degraded(fleet)
    records = sess.export_records() + fleet.trace_records()
    if trace_path:
        n = write_jsonl(trace_path, records)
        print(f"wrote {n} trace records to {trace_path}")
    if metrics_path:
        from .analysis import metrics_to_json
        merged = obs.MetricsRegistry.merge(
            [sess.metrics, fleet.metrics])
        with open(metrics_path, "w") as fh:
            metrics_to_json(merged, fh)
        print(f"wrote metrics to {metrics_path}")
    return fleet


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .runtime import CampaignSpec
    spec = CampaignSpec(experiment="characterize", vendor=args.vendor,
                        build_seed=args.seed, run_seed=args.seed + 1,
                        n_rows=args.rows, sample_size=args.sample,
                        run_sweep=args.rounds > 1, rounds=args.rounds)
    ecc_spec = _ecc_companion(spec, args)
    specs = [spec] + ([ecc_spec] if ecc_spec else [])
    fleet = _run_fleet_observed(specs, args)
    if len(fleet.outcomes) < len(specs):
        return 1  # degraded away entirely; table already printed
    _write_quarantine(args, fleet)
    result = fleet.outcomes[0].result
    rows = [[f"L{lv.level}", lv.region_size, lv.tests,
             format_distance_set(lv.kept_distances)]
            for lv in result.recursion.levels]
    print(f"Vendor {args.vendor}: distances "
          f"{format_distance_set(result.distances)} in "
          f"{result.recursion.total_tests} tests")
    print(format_table(["Level", "Region size", "Tests", "Distances"],
                       rows))
    payload = {
        "vendor": args.vendor,
        "distances": result.distances,
        "tests_per_level": result.recursion.tests_per_level,
        "total_tests": result.recursion.total_tests,
    }
    if args.rounds > 1 and result.verdicts is not None:
        counts = result.verdicts.counts()
        print(f"verdicts ({args.rounds} rounds): "
              + ", ".join(f"{k}={v}" for k, v in sorted(counts.items())))
        payload["verdicts"] = counts
        payload["quarantined"] = len(result.quarantine)
    if ecc_spec:
        _report_ecc(fleet.outcomes[0], fleet.outcomes[1], payload)
    _dump_json(args.json, payload)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .runtime import CampaignSpec
    spec = CampaignSpec(experiment="compare", vendor=args.vendor, index=1,
                        build_seed=args.seed, run_seed=args.seed + 1,
                        n_rows=args.rows, rounds=args.rounds)
    ecc_spec = _ecc_companion(spec, args)
    specs = [spec] + ([ecc_spec] if ecc_spec else [])
    fleet = _run_fleet_observed(specs, args)
    if len(fleet.outcomes) < len(specs):
        return 1  # degraded away entirely; table already printed
    _write_quarantine(args, fleet)
    comparison = fleet.outcomes[0].comparison
    result = fleet.outcomes[0].result
    rows = [
        ["budget (whole-module tests)", comparison.budget],
        ["PARBOR failures", comparison.parbor_failures],
        ["random-test failures", comparison.random_failures],
        ["extra failures", comparison.extra_failures],
        ["increase", f"{comparison.extra_percent:+.1f}%"],
        ["only PARBOR / only random / both",
         f"{comparison.parbor_only} / {comparison.random_only} / "
         f"{comparison.both}"],
        ["distances", format_distance_set(result.distances)],
    ]
    if args.rounds > 1 and result.quarantine is not None:
        rows.append(["quarantined (unstable)", len(result.quarantine)])
    print(format_table(["Quantity", "Value"], rows))
    payload = {
        "module": comparison.module_id,
        "budget": comparison.budget,
        "parbor_failures": comparison.parbor_failures,
        "random_failures": comparison.random_failures,
        "extra_percent": comparison.extra_percent,
        "distances": result.distances,
    }
    if ecc_spec:
        _report_ecc(fleet.outcomes[0], fleet.outcomes[1], payload)
    _dump_json(args.json, payload)
    return 0


def _cmd_dcref(args: argparse.Namespace) -> int:
    config = (DEFAULT_CONFIG_32G if args.density == 32
              else DEFAULT_CONFIG_16G)
    summary = run_fig16(n_workloads=args.workloads, config=config,
                        seed=args.seed,
                        n_instructions=args.instructions)
    rows = [
        ["RAIDR speedup", f"{summary.mean_improvement('raidr'):+.1f}%"],
        ["DC-REF speedup", f"{summary.mean_improvement('dcref'):+.1f}%"],
        ["DC-REF vs RAIDR",
         f"{summary.mean_improvement('dcref', 'raidr'):+.1f}%"],
        ["refresh cut vs baseline",
         f"{summary.mean_refresh_reduction('dcref'):.1f}%"],
        ["refresh cut vs RAIDR",
         f"{summary.mean_refresh_reduction('dcref', 'raidr'):.1f}%"],
        ["fast-rate rows (DC-REF)",
         f"{100 * summary.mean_high_rate_fraction('dcref'):.1f}%"],
    ]
    print(f"{args.workloads} workloads at {args.density} Gbit:")
    print(format_table(["Quantity", "Value"], rows))
    _dump_json(args.json, {
        "density_gbit": args.density,
        "workloads": args.workloads,
        "dcref_speedup_pct": summary.mean_improvement("dcref"),
        "raidr_speedup_pct": summary.mean_improvement("raidr"),
        "refresh_cut_pct": summary.mean_refresh_reduction("dcref"),
    })
    return 0


def _cmd_march(args: argparse.Namespace) -> int:
    from .dram import vendor
    tests = {"mats+": MATS_PLUS, "march-c-": MARCH_C_MINUS,
             "march-b": MARCH_B}
    test = tests[args.test]
    chip = vendor(args.vendor).make_chip(seed=args.seed, n_rows=args.rows)
    ctrls = controllers_for(chip)
    background = (checkerboard(chip.row_bits) if args.background ==
                  "checker" else None)
    outcome = run_march(ctrls, test, background=background)
    truth = chip.coupled_cell_count()
    rows = [
        ["test", str(test)],
        ["background", args.background],
        ["row operations", outcome.row_operations],
        ["retention waits", outcome.retention_waits],
        ["cells detected", len(outcome.detected)],
        ["coupled cells on chip", truth],
    ]
    print(format_table(["Quantity", "Value"], rows))
    _dump_json(args.json, {
        "test": test.name, "background": args.background,
        "detected": len(outcome.detected), "coupled_cells": truth,
    })
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .analysis import fleet_specs
    specs = fleet_specs(args.modules_per_vendor, seed=args.seed,
                        n_rows=args.rows, rounds=args.rounds)
    fleet = _run_fleet_observed(specs, args)
    _write_quarantine(args, fleet)
    comparisons = [o.comparison for o in fleet.outcomes]
    rows = [[c.module_id, c.budget, c.parbor_failures,
             c.random_failures, f"{c.extra_percent:+.1f}%"]
            for c in comparisons]
    print(format_table(["Module", "Budget", "PARBOR", "Random",
                        "Increase"], rows))
    if args.csv:
        with open(args.csv, "w") as fh:
            comparisons_to_csv(comparisons, fh)
        print(f"wrote {args.csv}")
    _dump_json(args.json, {
        "modules": [{"module": c.module_id,
                     "extra_percent": c.extra_percent}
                    for c in comparisons],
    })
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    """Generate the release dataset: per-module campaign records.

    The paper promised releasing "the source code of PARBOR and data
    for all DRAM chips we tested"; this is the simulated-fleet
    equivalent: one campaign JSON per module plus a fleet-level CSV
    and JSON of the Figure 12 comparison.
    """
    import os

    from .analysis import ModuleComparison
    from .core import ParborConfig
    from .dram import make_module

    os.makedirs(args.out, exist_ok=True)
    import numpy as np
    rng = np.random.default_rng(args.seed)
    comparisons = []
    for name in ("A", "B", "C"):
        for i in range(args.modules_per_vendor):
            module = make_module(name, i + 1,
                                 seed=int(rng.integers(0, 2**63)),
                                 n_rows=args.rows)
            comparison, result = compare_module(
                module, seed=int(rng.integers(0, 2**31)))
            comparisons.append(comparison)
            path = os.path.join(args.out,
                                f"campaign_{module.module_id}.json")
            with open(path, "w") as fh:
                campaign_to_json(result, fh)
            print(f"{module.module_id}: budget={comparison.budget} "
                  f"extra={comparison.extra_percent:+.1f}% -> {path}")
    with open(os.path.join(args.out, "fleet.csv"), "w") as fh:
        comparisons_to_csv(comparisons, fh)
    with open(os.path.join(args.out, "fleet.json"), "w") as fh:
        comparisons_to_json(comparisons, fh)
    print(f"wrote {args.out}/fleet.csv and fleet.json")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    distances = sorted({d for m in args.distances for d in (m, -m)})
    config = ParborConfig(ranking_threshold=args.threshold)
    try:
        plan = plan_campaign(distances, config=config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [[f"L{i + 1}", tests,
             format_distance_set(kept)]
            for i, (tests, kept) in enumerate(plan.levels)]
    rows.append(["discovery", plan.discovery_tests, ""])
    rows.append(["sweep", plan.sweep_rounds, ""])
    rows.append(["total", plan.total_tests,
                 f"~{plan.wall_clock_s():.0f} s per 2 GB module"])
    print(format_table(["Stage", "Tests", "Kept distances"], rows))
    _dump_json(args.json, {
        "distances": distances,
        "tests_per_level": [t for t, _ in plan.levels],
        "total_tests": plan.total_tests,
        "wall_clock_s": plan.wall_clock_s(),
    })
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a ``--trace`` capture and/or a checkpoint journal."""
    # Imported lazily: obs.report pulls in repro.analysis, which the
    # always-imported repro.obs package deliberately does not.
    from .obs.report import render_journal, render_report, summarise
    from .obs.trace import read_jsonl
    if not args.trace_file and not args.journal:
        print("error: nothing to render - give a TRACE file and/or "
              "--journal FILE", file=sys.stderr)
        return 2
    if args.journal:
        try:
            print(render_journal(args.journal))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.trace_file:
            print()
    if not args.trace_file:
        return 0
    try:
        records = read_jsonl(args.trace_file)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"error: {args.trace_file} holds no trace records",
              file=sys.stderr)
        return 2
    print(render_report(records, include_timing=not args.no_timing))
    _dump_json(args.json, summarise(records))
    return 0


def _build_submit_specs(args: argparse.Namespace):
    """Specs for ``repro submit``: a file of wire-form objects, or
    one spec per ``--vendors`` entry derived from the seed ladder."""
    from .runtime import CampaignSpec, chip_seed
    if args.spec_json:
        from .service import spec_from_json
        with open(args.spec_json) as fh:
            payload = json.load(fh)
        if not isinstance(payload, list) or not payload:
            raise SystemExit(f"error: {args.spec_json} must hold a "
                             f"non-empty JSON list of specs")
        return [spec_from_json(item) for item in payload]
    return [CampaignSpec(experiment=args.experiment, vendor=v, index=1,
                         build_seed=chip_seed(args.seed, v, 0, "build"),
                         run_seed=chip_seed(args.seed, v, 0, "run"),
                         n_rows=args.rows, sample_size=args.sample,
                         run_sweep=args.sweep)
            for v in args.vendors]


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceConfig, serve
    try:
        config = ServiceConfig(
            socket_path=args.socket, state_dir=args.state_dir,
            jobs=args.jobs, shard_size=args.shard_size,
            max_queued_targets=args.max_queued_targets,
            retries=args.retries, shard_retries=args.shard_retries,
            timeout_s=args.timeout,
            max_tenant_failures=args.max_tenant_failures,
            fsync=not args.no_fsync,
            resume_mode=(True if args.resume == "skip" else "verify"))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"serving campaigns on {args.socket} "
          f"(state in {args.state_dir})", flush=True)
    return serve(config)


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceRejected, client, spec_to_json
    try:
        specs = _build_submit_specs(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        response = client.submit(args.socket, specs,
                                 tenant=args.tenant,
                                 priority=args.priority)
    except ServiceRejected as exc:
        print(f"rejected: {exc} (retry after "
              f"{exc.retry_after:g} s)", file=sys.stderr)
        return 75  # EX_TEMPFAIL: back off and resubmit
    except (OSError, client.ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    campaign = response["campaign"]
    attached = " (attached to existing campaign)" \
        if response.get("attached") else ""
    print(f"campaign {campaign}: {response['targets']} target(s) in "
          f"{response['shards']} shard(s){attached}")
    _dump_json(args.json, {"campaign": campaign,
                           "specs": [spec_to_json(s) for s in specs],
                           **{k: response[k] for k in
                              ("targets", "shards", "done")}})
    if not args.wait:
        return 0
    results = client.wait_results(args.socket, campaign)
    out = open(args.results, "w") if args.results else sys.stdout
    try:
        for record in results["results"]:
            out.write(json.dumps(record, sort_keys=True) + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
            print(f"wrote {len(results['results'])} result records "
                  f"to {args.results}")
    end = results["end"]
    if not end["ok"]:
        print(f"campaign {campaign} finished degraded: shards "
              f"{end['failed_shards']} failed", file=sys.stderr)
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .service import client
    try:
        status = client.status(args.socket, campaign=args.campaign)
    except (OSError, client.ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"service {status['state']}, "
          f"{status['pending_targets']}/{status['max_queued_targets']}"
          f" targets queued, "
          f"{status['corrupt_records']} corrupt queue record(s)")
    if status["campaigns"]:
        rows = [[c["id"], c["tenant"], c["priority"], c["targets"],
                 f"{c['shards_done']}/{c['shards']}",
                 c["shards_failed"], "yes" if c["done"] else ""]
                for c in status["campaigns"]]
        print(format_table(["Campaign", "Tenant", "Prio", "Targets",
                            "Shards", "Failed", "Done"], rows))
    if status["tenants"]:
        rows = [[name, t["served"], t["failures"],
                 "degraded" if t["degraded"] else "ok"]
                for name, t in status["tenants"].items()]
        print(format_table(["Tenant", "Served", "Failures", "State"],
                           rows))
    _dump_json(args.json, status)
    return 0


def _cmd_appendix(args: argparse.Namespace) -> int:
    rows = [[f"O(n^{r.k_neighbours})", f"{r.tests:.3g}", r.human]
            for r in exhaustive_cost_table()]
    rows.append(["one module test", "",
                 f"{module_test_time_s(1) * 1000:.2f} ms"])
    rows.append(["PARBOR (92 tests)", "",
                 f"{module_test_time_s(92):.1f} s"])
    rows.append(["reduction vs O(n^2)", "",
                 f"{reduction_factor(8192, 2, 90):,.0f}x"])
    print(format_table(["Test", "Bit tests", "Wall clock"], rows))
    _dump_json(args.json, {
        "module_test_s": module_test_time_s(1),
        "campaign_92_s": module_test_time_s(92),
        "reduction_n2": reduction_factor(8192, 2, 90),
    })
    return 0


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    """``--trace`` / ``--metrics`` for the fleet-backed commands."""
    p.add_argument("--trace", metavar="FILE",
                   help="capture an observability trace as JSON Lines "
                        "(render it with `repro report FILE`)")
    p.add_argument("--metrics", metavar="FILE",
                   help="write the run's merged metrics registry as "
                        "JSON")


def _add_robust_flags(p: argparse.ArgumentParser) -> None:
    """``--rounds`` / ``--quarantine-out`` for campaign commands."""
    p.add_argument("--rounds", type=int, default=1, metavar="N",
                   help="repeat-and-vote repetitions per test round; "
                        "1 (default) is the legacy single-pass path, "
                        "N>1 classifies failures definite / "
                        "probabilistic / unstable and quarantines "
                        "the unstable ones")
    p.add_argument("--quarantine-out", metavar="FILE",
                   help="write the quarantined (unstable) cells as "
                        "JSON, keyed by campaign label (requires "
                        "--rounds > 1)")
    p.add_argument("--ecc", action="store_true",
                   help="also run the campaign through a vendor-true "
                        "on-die SEC-DED lens and report how the "
                        "post-correction view distorts the profile")
    p.add_argument("--ecc-recover", action="store_true",
                   help="like --ecc, but BEER-infer the code on a "
                        "probe device first and un-distort every "
                        "read; a failed inference degrades the "
                        "campaign fail-closed (implies --ecc)")


def _ecc_companion(spec, args):
    """The ECC twin of ``spec`` when ``--ecc``/``--ecc-recover`` asks
    for one; None otherwise."""
    if not (getattr(args, "ecc", False)
            or getattr(args, "ecc_recover", False)):
        return None
    from .ecc import EccCampaignSpec
    import dataclasses
    mode = "recover" if args.ecc_recover else "lens"
    return EccCampaignSpec(ecc=mode,
                           **{f.name: getattr(spec, f.name)
                              for f in dataclasses.fields(spec)})


def _report_ecc(base_outcome, ecc_outcome, payload) -> None:
    """Print the ECC distortion table and extend the JSON payload."""
    from .ecc import ecc_distortion, format_distortion
    dist = ecc_distortion(base_outcome, ecc_outcome)
    print(format_distortion(dist, base_outcome.spec.label(),
                            ecc_outcome.spec.label()))
    degraded = getattr(getattr(ecc_outcome.result, "verdicts", None),
                       "degraded", False)
    if degraded:
        print("ECC inference failed validation: campaign degraded "
              "fail-closed (all detections quarantined, verdicts "
              "capped at probabilistic)")
    payload["ecc"] = {
        "mode": ecc_outcome.spec.ecc,
        "base_detected": dist.base_detected,
        "observed_detected": dist.observed_detected,
        "hidden": dist.hidden,
        "hidden_fraction": dist.hidden_fraction,
        "spurious": dist.spurious,
        "base_distances": dist.base_distances,
        "observed_distances": dist.observed_distances,
        "degraded": bool(degraded),
    }


def _write_quarantine(args, fleet) -> None:
    """Honour ``--quarantine-out`` for a finished fleet."""
    path = getattr(args, "quarantine_out", None)
    if not path:
        return
    if getattr(args, "rounds", 1) <= 1:
        raise SystemExit("error: --quarantine-out requires --rounds > 1")
    payload = {o.spec.label(): o.quarantine.to_json()
               for o in fleet.outcomes if o.quarantine is not None}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote quarantine sets to {path}")


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    """Checkpoint/deadline flags for the fleet-backed commands."""
    p.add_argument("--checkpoint", metavar="FILE",
                   help="journal every completed target to FILE "
                        "(JSON Lines) as soon as it finishes")
    p.add_argument("--resume", action="store_true",
                   help="load targets already completed in "
                        "--checkpoint FILE instead of re-running them")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-target deadline in seconds; a hung "
                        "worker is killed and the target retried")
    p.add_argument("--max-failures", type=int, default=None,
                   metavar="N",
                   help="degrade gracefully: tolerate up to N failed "
                        "targets (reported in a status table) instead "
                        "of aborting on the first one")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PARBOR (DSN 2016) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize",
                       help="locate a vendor's neighbour distances")
    p.add_argument("--vendor", choices=["A", "B", "C"], default="A")
    p.add_argument("--rows", type=int, default=128)
    p.add_argument("--sample", type=int, default=2000)
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("--jobs", type=_jobs_arg, default=1,
                   help="worker processes (results are identical "
                        "for any value)")
    _add_obs_flags(p)
    _add_resilience_flags(p)
    _add_robust_flags(p)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("compare",
                       help="PARBOR vs equal-budget random test")
    p.add_argument("--vendor", choices=["A", "B", "C"], default="A")
    p.add_argument("--rows", type=int, default=96)
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("--jobs", type=_jobs_arg, default=1,
                   help="worker processes (results are identical "
                        "for any value)")
    _add_obs_flags(p)
    _add_resilience_flags(p)
    _add_robust_flags(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("dcref", help="refresh-policy comparison")
    p.add_argument("--workloads", type=int, default=8)
    p.add_argument("--density", type=int, choices=[16, 32], default=32)
    p.add_argument("--instructions", type=int, default=80_000)
    p.add_argument("--seed", type=int, default=2016)
    p.set_defaults(func=_cmd_dcref)

    p = sub.add_parser("march", help="run a classic March test")
    p.add_argument("--test", choices=["mats+", "march-c-", "march-b"],
                   default="march-c-")
    p.add_argument("--vendor", choices=["A", "B", "C"], default="A")
    p.add_argument("--background", choices=["solid", "checker"],
                   default="solid")
    p.add_argument("--rows", type=int, default=64)
    p.add_argument("--seed", type=int, default=2016)
    p.set_defaults(func=_cmd_march)

    p = sub.add_parser("fleet", help="Figure 12 fleet comparison")
    p.add_argument("--modules-per-vendor", type=int, default=2)
    p.add_argument("--rows", type=int, default=96)
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("--jobs", type=_jobs_arg, default=1,
                   help="worker processes (results are identical "
                        "for any value)")
    p.add_argument("--csv", metavar="FILE",
                   help="write per-module rows as CSV")
    _add_obs_flags(p)
    _add_resilience_flags(p)
    _add_robust_flags(p)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser("report",
                       help="render a --trace capture and/or a "
                            "checkpoint journal as breakdown tables")
    p.add_argument("trace_file", metavar="TRACE", nargs="?",
                   default=None,
                   help="JSON Lines file written by --trace")
    p.add_argument("--journal", metavar="FILE",
                   help="also render a checkpoint journal (tolerates "
                        "the truncated tail of a live or killed run)")
    p.add_argument("--no-timing", action="store_true",
                   help="omit the wall-clock sections (deterministic "
                        "output for goldens/diffs)")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("serve",
                       help="run the campaign service daemon")
    p.add_argument("--socket", required=True, metavar="PATH",
                   help="unix socket to listen on")
    p.add_argument("--state-dir", required=True, metavar="DIR",
                   help="durable state: queue journal, per-campaign "
                        "checkpoints, shutdown trace")
    p.add_argument("--jobs", type=_jobs_arg, default=1,
                   help="worker processes per shard (>= 2 enables "
                        "the hung-target watchdog)")
    p.add_argument("--shard-size", type=int, default=4, metavar="N",
                   help="targets per schedulable shard")
    p.add_argument("--max-queued-targets", type=int, default=64,
                   metavar="N",
                   help="admission bound; beyond it submissions are "
                        "rejected with a retry-after hint")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="per-target retry budget inside a shard")
    p.add_argument("--shard-retries", type=int, default=1,
                   metavar="N",
                   help="extra attempts for a shard whose fleet "
                        "raised")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-target watchdog deadline (needs "
                        "--jobs >= 2)")
    p.add_argument("--max-tenant-failures", type=int, default=None,
                   metavar="N",
                   help="failed shards a tenant may accumulate "
                        "before being degraded")
    p.add_argument("--resume", choices=["verify", "skip"],
                   default="verify",
                   help="how restarts treat already-journaled "
                        "targets: verify (re-run and require "
                        "byte-identical signatures, default) or skip")
    p.add_argument("--no-fsync", action="store_true",
                   help="trade crash-safety for speed: flush but do "
                        "not fsync the queue/checkpoint journals")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit",
                       help="submit a campaign to a running service")
    p.add_argument("--socket", required=True, metavar="PATH")
    p.add_argument("--tenant", default="default")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--spec-json", metavar="FILE",
                   help="JSON list of wire-form specs to submit "
                        "(overrides the spec-building flags)")
    p.add_argument("--experiment", choices=["characterize", "compare"],
                   default="characterize")
    p.add_argument("--vendors", nargs="+", choices=["A", "B", "C"],
                   default=["A"], metavar="V",
                   help="one spec per vendor (A B C)")
    p.add_argument("--rows", type=int, default=64)
    p.add_argument("--sample", type=int, default=1000)
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("--sweep", action="store_true",
                   help="include the full verification sweep")
    p.add_argument("--wait", action="store_true",
                   help="block until the campaign settles and stream "
                        "its results as JSON Lines")
    p.add_argument("--results", metavar="FILE",
                   help="with --wait, write the result records to "
                        "FILE instead of stdout")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("status",
                       help="query a running campaign service")
    p.add_argument("--socket", required=True, metavar="PATH")
    p.add_argument("--campaign", metavar="ID",
                   help="limit to one campaign")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("dataset",
                       help="generate the release dataset (per-module "
                            "campaign JSONs + fleet CSV)")
    p.add_argument("--out", default="dataset")
    p.add_argument("--modules-per-vendor", type=int, default=6)
    p.add_argument("--rows", type=int, default=96)
    p.add_argument("--seed", type=int, default=2016)
    p.set_defaults(func=_cmd_dataset)

    p = sub.add_parser("plan",
                       help="predict a campaign budget analytically")
    p.add_argument("distances", type=int, nargs="+", metavar="D",
                   help="unsigned neighbour distances, e.g. 8 16 48")
    p.add_argument("--threshold", type=float, default=0.06)
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("appendix", help="test-time arithmetic")
    p.set_defaults(func=_cmd_appendix)

    for sub_parser in sub.choices.values():
        sub_parser.add_argument("--json", metavar="FILE",
                                help="also write results as JSON")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

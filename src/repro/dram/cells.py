"""Coupled-cell populations: the data-dependent failure model.

A *victim* cell fails when the parasitic bitline coupling from its
physical neighbours disturbs its read-out enough to flip the sensed
value (paper Section 2.3). We normalise the victim's disturb threshold
to 1.0 and give each victim a left and a right coupling weight:

* **strongly coupled** victims have one weight >= 1.0 - a single
  opposite-charge neighbour flips them (paper Figure 6a);
* **weakly coupled** victims have both weights < 1.0 but a sum >= 1.0 -
  they flip only when *both* neighbours hold the opposite charge
  (Figure 6b).

A victim is disturbed only while *charged* (the paper's charge-sharing
and sensing failures both flip a charged victim towards 0), and only by
neighbours that are *discharged*, so uniform data never fails - the
defining property of a data-dependent failure.

Weakly coupled victims are additionally *context sensitive*: their
marginal disturbance only crosses the threshold when ``k`` second-order
physical neighbours (positions two and three cells out) hold the
victim's own charge, so their bitlines swing with the victim instead of
shielding it. This wider pattern specificity is well documented in the
NPSF literature the paper builds on (its refs [19, 70, 77]) and is what
makes random-pattern testing ineffective: a random background matches a
context-k cell's full worst-case configuration with probability
``2^-(3+2k)`` per test, while a neighbour-aware pattern - victim
charged, immediate neighbours discharged, everything else at the
victim's value - matches it *by construction*. Without it, an
equal-budget random test would saturate and the paper's Figure 12/13
gaps could not exist.

Because cells sit at the retention margin, even a full worst-case
exposure fails with a per-cell probability ``p_fail`` rather than
deterministically.

The population is stored as parallel numpy arrays (struct-of-arrays)
so a whole bank's failure evaluation is a handful of vectorised
gathers. Neighbour *positions* are stored explicitly, which lets
remapped spare columns (paper Section 7.3) carry irregular
neighbourhoods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["CoupledCellPopulation", "CouplingSpec", "MAX_CONTEXT",
           "NO_NEIGHBOUR"]

#: Sentinel for "no physical neighbour on this side" (tile edge).
NO_NEIGHBOUR = -1


#: Maximum context cells per side for weakly coupled victims.
MAX_CONTEXT = 4


@dataclass(frozen=True)
class CouplingSpec:
    """Parameters for generating a coupled-cell population.

    Attributes:
        n_cells: number of coupled victim cells in the bank.
        strong_fraction: fraction of victims that are strongly coupled;
            the rest are weakly coupled.
        p_fail_range: uniform range of the per-exposure failure
            probability under the cell's full worst-case configuration.
        context_k_probs: probabilities of a weak victim requiring
            k = 0..MAX_CONTEXT context cells *per side* to hold the
            victim's value. Larger k means a rarer random-pattern
            worst case and a bigger PARBOR advantage.
        second_order_fraction: fraction of strongly coupled victims
            whose dominant aggressor is a *second-order* physical
            neighbour (two cells out) instead of an immediate one -
            the paper's future-scaling scenario where more neighbours
            interfere (Sections 1/3, its ref [2]). Zero for today's
            chips.
        min_stress_range: uniform range of each victim's minimum
            *retention stress* - the normalised combination of
            temperature and refresh interval (paper Section 6) at
            which the cell's charge is depleted enough for coupling to
            flip it. Stress 1.0 is the paper's test condition (45 degC,
            4 s interval); retention roughly halves per +10 degC, so
            stress scales as ``2^((T-45)/10) * interval/4s``. The
            default upper bound of 1.0 means every coupled cell is
            active at test conditions.
    """

    n_cells: int
    strong_fraction: float = 0.55
    p_fail_range: tuple = (0.97, 1.0)
    context_k_probs: tuple = (0.05, 0.08, 0.14, 0.25, 0.48)
    min_stress_range: tuple = (0.55, 1.0)
    second_order_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_cells < 0:
            raise ValueError("n_cells must be non-negative")
        if not 0.0 <= self.strong_fraction <= 1.0:
            raise ValueError("strong_fraction must be in [0, 1]")
        if len(self.context_k_probs) != MAX_CONTEXT + 1:
            raise ValueError(
                f"context_k_probs needs {MAX_CONTEXT + 1} entries")
        if abs(sum(self.context_k_probs) - 1.0) > 1e-9:
            raise ValueError("context_k_probs must sum to 1")
        if not 0.0 <= self.second_order_fraction <= 1.0:
            raise ValueError("second_order_fraction must be in [0, 1]")


class CoupledCellPopulation:
    """Sparse struct-of-arrays population of coupled victim cells.

    Attributes (all numpy arrays of equal length ``n``):
        row: row index of each victim.
        phys: physical column of each victim.
        left_phys / right_phys: physical columns of the two coupling
            aggressors (``NO_NEIGHBOUR`` at a tile edge).
        w_left / w_right: coupling weights (threshold normalised to 1).
        p_fail: per-worst-case-exposure failure probability.
        context: ``(n, 2 * MAX_CONTEXT)`` physical columns of the
            second-order context cells a weak victim requires to hold
            its own value; ``NO_NEIGHBOUR``-padded. Strong victims have
            no context requirement.
        remapped: True for victims living in remapped spare columns.
    """

    def __init__(self, row: np.ndarray, phys: np.ndarray,
                 left_phys: np.ndarray, right_phys: np.ndarray,
                 w_left: np.ndarray, w_right: np.ndarray,
                 p_fail: np.ndarray,
                 context: Optional[np.ndarray] = None,
                 remapped: Optional[np.ndarray] = None,
                 min_stress: Optional[np.ndarray] = None) -> None:
        n = len(row)
        arrays = (phys, left_phys, right_phys, w_left, w_right, p_fail)
        if any(len(a) != n for a in arrays):
            raise ValueError("population arrays must have equal length")
        self.row = np.asarray(row, dtype=np.int64)
        self.phys = np.asarray(phys, dtype=np.int64)
        self.left_phys = np.asarray(left_phys, dtype=np.int64)
        self.right_phys = np.asarray(right_phys, dtype=np.int64)
        self.w_left = np.asarray(w_left, dtype=np.float64)
        self.w_right = np.asarray(w_right, dtype=np.float64)
        self.p_fail = np.asarray(p_fail, dtype=np.float64)
        if context is None:
            context = np.full((n, 2 * MAX_CONTEXT), NO_NEIGHBOUR,
                              dtype=np.int64)
        if context.shape != (n, 2 * MAX_CONTEXT):
            raise ValueError("context must have shape (n, 2*MAX_CONTEXT)")
        self.context = np.asarray(context, dtype=np.int64)
        if remapped is None:
            remapped = np.zeros(n, dtype=bool)
        self.remapped = np.asarray(remapped, dtype=bool)
        if min_stress is None:
            min_stress = np.zeros(n, dtype=np.float64)
        self.min_stress = np.asarray(min_stress, dtype=np.float64)
        # Per-word-count gather plans for the packed evaluation (one
        # bank geometry per population in practice).
        self._packed_plans: dict = {}

    def __len__(self) -> int:
        return len(self.row)

    @property
    def strong_mask(self) -> np.ndarray:
        """Victims flipped by a single opposite neighbour."""
        return (self.w_left >= 1.0) | (self.w_right >= 1.0)

    @property
    def weak_mask(self) -> np.ndarray:
        """Victims that need both neighbours opposite."""
        return ~self.strong_mask

    # ------------------------------------------------------------------

    @classmethod
    def generate(cls, spec: CouplingSpec, n_rows: int, row_bits: int,
                 tile_bits: int, rng: np.random.Generator,
                 mapping=None) -> "CoupledCellPopulation":
        """Draw a random population over a bank's physical array.

        Victims are placed uniformly over (row, physical column); the
        aggressors are the physically adjacent columns, honouring tile
        edges. Strongly coupled victims get one dominant weight on a
        uniformly chosen side; weakly coupled victims split the weight
        so that only the two-sided worst case crosses the threshold.

        When ``mapping`` (an :class:`~repro.dram.mapping
        .AddressMapping`) is given, context cells whose *system*
        distance from the victim coincides with a first-order
        neighbour distance are not required - their bitline swing is
        already part of the first-order aggressor budget, so requiring
        them would double-count the same analog contribution.
        """
        n = spec.n_cells
        row = rng.integers(0, n_rows, size=n)
        phys = rng.integers(0, row_bits, size=n)

        in_tile = phys % tile_bits
        left = np.where(in_tile == 0, NO_NEIGHBOUR, phys - 1)
        right = np.where(in_tile == tile_bits - 1, NO_NEIGHBOUR, phys + 1)

        strong = rng.random(n) < spec.strong_fraction
        # A strong victim at a tile edge keeps its surviving side.
        side_left = rng.random(n) < 0.5
        side_left = np.where(left == NO_NEIGHBOUR, False, side_left)
        side_left = np.where(right == NO_NEIGHBOUR, True, side_left)

        w_left = np.empty(n)
        w_right = np.empty(n)
        dominant = rng.uniform(1.0, 1.5, size=n)
        minor = rng.uniform(0.0, 0.4, size=n)
        w_left[:] = np.where(side_left, dominant, minor)
        w_right[:] = np.where(side_left, minor, dominant)

        # Weak victims: each side in [0.5, 1.0) so neither alone flips,
        # but the sum always crosses 1.0.
        weak = ~strong
        n_weak = int(weak.sum())
        w_left[weak] = rng.uniform(0.52, 0.98, size=n_weak)
        w_right[weak] = rng.uniform(0.52, 0.98, size=n_weak)
        # A weak victim at a tile edge can never fail; nudge it inward.
        edge_weak = weak & ((left == NO_NEIGHBOUR) | (right == NO_NEIGHBOUR))
        if edge_weak.any():
            phys = phys.copy()
            shift = np.where(left == NO_NEIGHBOUR, 1, -1)
            phys[edge_weak] += shift[edge_weak]
            in_tile = phys % tile_bits
            left = np.where(in_tile == 0, NO_NEIGHBOUR, phys - 1)
            right = np.where(in_tile == tile_bits - 1, NO_NEIGHBOUR,
                             phys + 1)

        lo, hi = spec.p_fail_range
        p_fail = rng.uniform(lo, hi, size=n)

        # Context sensitivity: weak victims require k second-order
        # neighbours per side (positions 2..k+1 cells out) to hold the
        # victim's value. Tile edges truncate the requirement.
        context = np.full((n, 2 * MAX_CONTEXT), NO_NEIGHBOUR,
                          dtype=np.int64)
        k_choices = rng.choice(MAX_CONTEXT + 1, size=n,
                               p=spec.context_k_probs)
        k_choices[strong] = 0
        tile_base = (phys // tile_bits) * tile_bits
        tile_end = tile_base + tile_bits
        first_order = None
        phys_to_sys = None
        if mapping is not None:
            first_order = set(mapping.neighbour_distance_set())
            phys_to_sys = mapping.phys_to_sys()
        for j in range(MAX_CONTEXT):
            offset = j + 2
            need = k_choices > j
            lpos = phys - offset
            rpos = phys + offset
            left_ctx = np.where(need & (lpos >= tile_base), lpos,
                                NO_NEIGHBOUR)
            right_ctx = np.where(need & (rpos < tile_end), rpos,
                                 NO_NEIGHBOUR)
            if first_order is not None:
                for ctx in (left_ctx, right_ctx):
                    ok = ctx != NO_NEIGHBOUR
                    sys_d = (phys_to_sys[ctx[ok]]
                             - phys_to_sys[phys[ok]])
                    collide = np.asarray(
                        [int(d) in first_order for d in sys_d],
                        dtype=bool)
                    tmp = ctx[ok]
                    tmp[collide] = NO_NEIGHBOUR
                    ctx[ok] = tmp
            context[:, j] = left_ctx
            context[:, MAX_CONTEXT + j] = right_ctx

        # Future-node extension: some strong victims couple two cells
        # out. Their dominant side keeps its weight but targets p +- 2
        # (clamped inside the tile; edge cases fall back to order 1).
        if spec.second_order_fraction > 0.0:
            promote = strong & (rng.random(n) < spec.second_order_fraction)
            l2 = phys - 2
            r2 = phys + 2
            use_l2 = promote & side_left & (l2 >= tile_base)
            use_r2 = promote & ~side_left & (r2 < tile_end)
            left = np.where(use_l2, l2, left)
            right = np.where(use_r2, r2, right)

        s_lo, s_hi = spec.min_stress_range
        min_stress = rng.uniform(s_lo, s_hi, size=n)

        return cls(row=row, phys=phys, left_phys=left, right_phys=right,
                   w_left=w_left, w_right=w_right, p_fail=p_fail,
                   context=context, min_stress=min_stress)

    # ------------------------------------------------------------------

    def evaluate_failures(self, charge: np.ndarray,
                          rng: np.random.Generator,
                          stress: float = 1.0) -> np.ndarray:
        """Which victims flip on a retention read of the given bank state.

        Args:
            charge: 2-D uint8 array ``(n_rows, row_bits)`` of cell
                *charge* states in physical order (1 = charged).
            rng: randomness source for the per-exposure coin flips.
            stress: retention stress of the read (1.0 = the paper's
                45 degC / 4 s test condition); victims whose
                ``min_stress`` exceeds it hold enough charge to ride
                out the interference.

        Returns:
            Boolean mask over the population: True where the victim's
            stored value is corrupted by this read.
        """
        v = charge[self.row, self.phys]
        left_ok = self.left_phys != NO_NEIGHBOUR
        right_ok = self.right_phys != NO_NEIGHBOUR
        l_charge = np.ones(len(self), dtype=np.uint8)
        r_charge = np.ones(len(self), dtype=np.uint8)
        l_charge[left_ok] = charge[self.row[left_ok],
                                   self.left_phys[left_ok]]
        r_charge[right_ok] = charge[self.row[right_ok],
                                    self.right_phys[right_ok]]

        interference = (self.w_left * ((v == 1) & (l_charge == 0))
                        + self.w_right * ((v == 1) & (r_charge == 0)))
        candidate = interference >= 1.0

        # Context condition: every present context cell must hold the
        # victim's charge (no shielding of the victim bitline).
        ctx_ok = np.ones(len(self), dtype=bool)
        for j in range(self.context.shape[1]):
            pos = self.context[:, j]
            present = pos != NO_NEIGHBOUR
            if not present.any():
                continue
            same = np.ones(len(self), dtype=bool)
            same[present] = (charge[self.row[present], pos[present]]
                             == v[present])
            ctx_ok &= same

        exposed = (candidate & ctx_ok & (self.min_stress <= stress)
                   & (rng.random(len(self)) < self.p_fail))
        return exposed

    def _packed_plan(self, n_words: int):
        """Flat word indices + shifts of every cell the evaluation reads.

        One ``(n, 3 + 2*MAX_CONTEXT)`` gather covers victim, both
        aggressors, and all context cells; absent positions
        (``NO_NEIGHBOUR``) alias the victim's own cell and are masked
        out after the gather.  The plan depends only on the (immutable)
        population coordinates and the bank's word count, so it is
        built once and cached.
        """
        plan = self._packed_plans.get(n_words)
        if plan is None:
            cols = np.empty((len(self), 3 + 2 * MAX_CONTEXT),
                            dtype=np.int64)
            cols[:, 0] = self.phys
            cols[:, 1] = np.where(self.left_phys == NO_NEIGHBOUR,
                                  self.phys, self.left_phys)
            cols[:, 2] = np.where(self.right_phys == NO_NEIGHBOUR,
                                  self.phys, self.right_phys)
            cols[:, 3:] = np.where(self.context == NO_NEIGHBOUR,
                                   self.phys[:, None], self.context)
            plan = (self.row[:, None] * n_words + (cols >> 6),
                    (cols & 63).astype(np.uint8),
                    self.left_phys == NO_NEIGHBOUR,
                    self.right_phys == NO_NEIGHBOUR,
                    self.context != NO_NEIGHBOUR)
            self._packed_plans[n_words] = plan
        return plan

    def evaluate_failures_packed(self, charge_words: np.ndarray,
                                 rng: np.random.Generator,
                                 stress: float = 1.0) -> np.ndarray:
        """Packed-kernel image of :meth:`evaluate_failures`.

        Reads the bank state bit-packed (``(n_rows, n_words)`` uint64,
        see :mod:`repro._kernels`) with a single flat gather instead of
        per-column dense indexing.  Decision logic and RNG consumption
        (one ``rng.random(len(self))`` draw) are identical to the
        reference, so both produce the same mask on the same stream.
        """
        idx, shifts, no_left, no_right, ctx_present = self._packed_plan(
            charge_words.shape[1])
        flat = charge_words.reshape(-1)
        bits = ((flat[idx] >> shifts) & np.uint64(1)).astype(np.uint8)
        v = bits[:, 0]
        l_charge = np.where(no_left, np.uint8(1), bits[:, 1])
        r_charge = np.where(no_right, np.uint8(1), bits[:, 2])

        interference = (self.w_left * ((v == 1) & (l_charge == 0))
                        + self.w_right * ((v == 1) & (r_charge == 0)))
        candidate = interference >= 1.0
        ctx_ok = (~ctx_present | (bits[:, 3:] == v[:, None])).all(axis=1)
        exposed = (candidate & ctx_ok & (self.min_stress <= stress)
                   & (rng.random(len(self)) < self.p_fail))
        return exposed

    def subset(self, mask: np.ndarray) -> "CoupledCellPopulation":
        """A view-free copy restricted to ``mask``."""
        return CoupledCellPopulation(
            row=self.row[mask], phys=self.phys[mask],
            left_phys=self.left_phys[mask], right_phys=self.right_phys[mask],
            w_left=self.w_left[mask], w_right=self.w_right[mask],
            p_fail=self.p_fail[mask], context=self.context[mask],
            remapped=self.remapped[mask], min_stress=self.min_stress[mask])

    def context_k(self) -> np.ndarray:
        """Per-victim number of required context cells (both sides)."""
        return (self.context != NO_NEIGHBOUR).sum(axis=1)

"""Redundant-column remapping (paper Section 7.3, "Limitation").

Manufacturers repair faulty columns by steering them to spare columns
at the edge of the cell array. A victim cell living in a remapped
column keeps its system address but acquires *different* physical
neighbours, so its neighbourhood no longer follows the regular vendor
distance set. PARBOR's neighbour-aware patterns therefore miss these
victims, while a random-pattern test occasionally hits their true
aggressors - the source of the small "detected only by the random
test" slice in Figure 13.

We model a remapped victim by rewiring its two aggressor positions to
pseudo-random columns inside the same tile (the spare region), leaving
everything else about the cell unchanged.
"""

from __future__ import annotations

import numpy as np

from .cells import NO_NEIGHBOUR, CoupledCellPopulation
from .mapping import AddressMapping

__all__ = ["apply_column_remapping"]


def apply_column_remapping(pop: CoupledCellPopulation,
                           mapping: AddressMapping,
                           fraction: float,
                           rng: np.random.Generator) -> int:
    """Rewire a fraction of the victim population into spare columns.

    Args:
        pop: coupled-cell population to modify in place.
        mapping: the bank's address mapping (for tile geometry).
        fraction: fraction of victims to remap.
        rng: randomness source.

    Returns:
        The number of victims remapped.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    n = len(pop)
    if n == 0 or fraction == 0.0:
        return 0
    chosen = rng.random(n) < fraction
    k = int(chosen.sum())
    if k == 0:
        return 0

    tile = mapping.tile_bits
    tile_base = (pop.phys[chosen] // tile) * tile
    # Spare aggressors: two distinct pseudo-random columns in the same
    # tile, neither equal to the victim itself.
    left = tile_base + rng.integers(0, tile, size=k)
    right = tile_base + rng.integers(0, tile, size=k)
    victim = pop.phys[chosen]
    left = np.where(left == victim, (left + 1 - tile_base) % tile
                    + tile_base, left)
    right = np.where((right == victim) | (right == left),
                     (right + 2 - tile_base) % tile + tile_base, right)

    pop.left_phys[chosen] = left
    pop.right_phys[chosen] = right
    # A relocated victim's analog environment changes entirely; model
    # it as plain two-aggressor coupling at the new location.
    pop.context[chosen] = NO_NEIGHBOUR
    pop.remapped[chosen] = True
    return k

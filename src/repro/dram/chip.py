"""A DRAM chip: a set of banks sharing one vendor address mapping."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .bank import Bank
from .cells import CoupledCellPopulation, CouplingSpec
from .faults import FaultSpec, RandomFaultModel
from .mapping import AddressMapping
from .remap import apply_column_remapping

__all__ = ["DramChip"]


class DramChip:
    """A chip with ``n_banks`` banks of ``n_rows`` x ``row_bits`` cells.

    All banks of a chip share the same address mapping (the scrambler
    is a property of the chip design) but carry independent coupled
    cell and fault populations (process variation is random).

    Args:
        mapping: the chip's system<->physical address mapping.
        n_rows: rows per bank.
        n_banks: number of banks.
        coupling_spec: per-bank data-dependent failure population spec.
        fault_spec: per-bank random-failure spec.
        remap_fraction: fraction of coupled victims rewired to spare
            columns (irregular neighbourhoods).
        seed: RNG seed; the chip derives independent per-bank streams.
        chip_id: identifier used in reports.
    """

    def __init__(self, mapping: AddressMapping, n_rows: int,
                 coupling_spec: CouplingSpec, fault_spec: FaultSpec,
                 n_banks: int = 1, remap_fraction: float = 0.0,
                 seed: int = 0, chip_id: str = "chip0") -> None:
        if n_banks < 1:
            raise ValueError("a chip needs at least one bank")
        self.mapping = mapping
        self.n_rows = n_rows
        self.row_bits = mapping.row_bits
        self.n_banks = n_banks
        self.chip_id = chip_id
        self.coupling_spec = coupling_spec
        self.fault_spec = fault_spec

        root = np.random.default_rng(seed)
        self.banks: List[Bank] = []
        for b in range(n_banks):
            rng = np.random.default_rng(root.integers(0, 2**63))
            pop = CoupledCellPopulation.generate(
                coupling_spec, n_rows=n_rows, row_bits=self.row_bits,
                tile_bits=mapping.tile_bits, rng=rng, mapping=mapping)
            apply_column_remapping(pop, mapping, remap_fraction, rng)
            faults = RandomFaultModel(fault_spec, n_rows=n_rows,
                                      row_bits=self.row_bits, rng=rng)
            self.banks.append(Bank(mapping=mapping, n_rows=n_rows,
                                   coupled=pop, faults=faults, rng=rng))
        self.temperature_c = 45.0
        self.refresh_interval_s = 4.0

    def set_conditions(self, temperature_c: float = 45.0,
                       refresh_interval_s: float = 4.0) -> float:
        """Set the operating conditions for retention reads.

        DRAM retention roughly halves per +10 degC (paper Section 6),
        and a longer wait depletes more charge, so the normalised
        retention stress is ``2^((T - 45)/10) * interval / 4 s`` with
        1.0 at the paper's test condition (45 degC, 4 s). Returns the
        stress applied to every bank.
        """
        if refresh_interval_s <= 0:
            raise ValueError("refresh interval must be positive")
        stress = (2.0 ** ((temperature_c - 45.0) / 10.0)
                  * refresh_interval_s / 4.0)
        for bank in self.banks:
            bank.stress = stress
        self.temperature_c = temperature_c
        self.refresh_interval_s = refresh_interval_s
        return stress

    @property
    def n_cells(self) -> int:
        """Total cell count across all banks."""
        return self.n_banks * self.n_rows * self.row_bits

    def bank(self, index: int) -> Bank:
        if not 0 <= index < self.n_banks:
            raise ValueError(f"bank {index} out of range")
        return self.banks[index]

    def ground_truth_distances(self) -> List[int]:
        """The scrambler's true neighbour distance set (for validation)."""
        return self.mapping.neighbour_distance_set()

    def coupled_cell_count(self, strong: Optional[bool] = None) -> int:
        """Number of coupled victims, optionally by coupling class."""
        total = 0
        for bank in self.banks:
            if strong is None:
                total += len(bank.coupled)
            elif strong:
                total += int(bank.coupled.strong_mask.sum())
            else:
                total += int(bank.coupled.weak_mask.sum())
        return total

"""A DRAM module: eight chips from one vendor, as in the paper's DIMMs."""

from __future__ import annotations

from typing import Iterator, List

from .chip import DramChip

__all__ = ["DramModule"]


class DramModule:
    """A module aggregating several chips of the same vendor design.

    The paper tests 18 two-GB modules of 8 chips each. A module's chips
    share the address mapping but differ in their (random) failure
    populations, so module-level failure counts are sums over chips.
    """

    def __init__(self, module_id: str, chips: List[DramChip]) -> None:
        if not chips:
            raise ValueError("a module needs at least one chip")
        row_bits = chips[0].row_bits
        if any(c.row_bits != row_bits for c in chips):
            raise ValueError("all chips in a module must share geometry")
        self.module_id = module_id
        self.chips = chips

    def __iter__(self) -> Iterator[DramChip]:
        return iter(self.chips)

    def __len__(self) -> int:
        return len(self.chips)

    @property
    def n_cells(self) -> int:
        return sum(chip.n_cells for chip in self.chips)

    def coupled_cell_count(self) -> int:
        return sum(chip.coupled_cell_count() for chip in self.chips)

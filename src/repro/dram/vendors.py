"""Vendor profiles: scrambler + vulnerability presets for A, B, C.

The paper characterises its three (anonymised) vendors by the
neighbour distance sets PARBOR discovers (Figure 11):

* **A**: ``{+-8, +-16, +-48}`` - residue-interleaved scrambler;
* **B**: ``{+-1, +-64}`` - pair-block interleaved scrambler;
* **C**: ``{+-16, +-33, +-49}`` - irregular step-path scrambler.

Each profile also carries the vulnerability knobs that differentiate
the vendors in the evaluation: vendor C's modules are markedly more
vulnerable to data-dependent failures (Figure 12, note the log scale),
and vendor B's modules show the largest only-random slice in Figure 13
(more remapped columns and VRT cells).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from .cells import CouplingSpec
from .chip import DramChip
from .faults import FaultSpec
from .mapping import (AddressMapping, find_step_path, pair_block_path,
                      residue_interleaved_path)
from .module import DramModule

__all__ = ["VendorProfile", "VENDORS", "vendor", "custom_vendor",
           "make_module", "make_test_fleet", "DEFAULT_ROW_BITS"]

DEFAULT_ROW_BITS = 8192
CHIPS_PER_MODULE = 8


@lru_cache(maxsize=None)
def _mapping_a(row_bits: int) -> AddressMapping:
    block = 1024
    stride = 8
    path = residue_interleaved_path(block, stride)
    return AddressMapping(row_bits=row_bits, block_bits=block,
                          block_path=tuple(path),
                          tile_bits=block // stride)


@lru_cache(maxsize=None)
def _mapping_b(row_bits: int) -> AddressMapping:
    block = 128
    path = pair_block_path(block, half=64)
    return AddressMapping(row_bits=row_bits, block_bits=block,
                          block_path=tuple(path), tile_bits=block)


@lru_cache(maxsize=None)
def _mapping_c(row_bits: int) -> AddressMapping:
    block = 512
    path = find_step_path(block, steps=(16, -16, 33, -33, 49, -49))
    return AddressMapping(row_bits=row_bits, block_bits=block,
                          block_path=tuple(path), tile_bits=block)


@dataclass(frozen=True)
class VendorProfile:
    """Design + vulnerability preset for one DRAM vendor.

    Attributes:
        name: vendor letter ("A", "B", "C").
        expected_magnitudes: unsigned neighbour distances the scrambler
            induces (ground truth for validation).
        coupling: per-bank coupled-cell spec at the reference geometry.
        faults: per-bank random failure spec.
        remap_fraction: fraction of victims in remapped spare columns.
        vulnerability_sigma: module-to-module lognormal spread of the
            coupled-cell count (drives the per-module variation of
            Figure 12).
    """

    name: str
    expected_magnitudes: Tuple[int, ...]
    coupling: CouplingSpec
    faults: FaultSpec
    remap_fraction: float
    vulnerability_sigma: float = 0.6
    mapping_factory: object = None   # Callable[[int], AddressMapping]

    def mapping(self, row_bits: int = DEFAULT_ROW_BITS) -> AddressMapping:
        if self.mapping_factory is not None:
            return self.mapping_factory(row_bits)
        if self.name == "A":
            return _mapping_a(row_bits)
        if self.name == "B":
            return _mapping_b(row_bits)
        if self.name == "C":
            return _mapping_c(row_bits)
        raise ValueError(f"unknown vendor {self.name!r}")

    def make_chip(self, seed: int, n_rows: int = 256,
                  row_bits: int = DEFAULT_ROW_BITS, n_banks: int = 1,
                  vulnerability: float = 1.0,
                  strong_fraction: float = None,
                  context_k_probs: Tuple[float, ...] = None,
                  chip_id: str = "chip0") -> DramChip:
        """Build one chip, scaling the coupled population by
        ``vulnerability`` and optionally overriding the coupling mix."""
        n_cells = max(1, int(round(self.coupling.n_cells * vulnerability)))
        overrides = {"n_cells": n_cells}
        if strong_fraction is not None:
            overrides["strong_fraction"] = strong_fraction
        if context_k_probs is not None:
            overrides["context_k_probs"] = tuple(context_k_probs)
        spec = replace(self.coupling, **overrides)
        return DramChip(mapping=self.mapping(row_bits), n_rows=n_rows,
                        coupling_spec=spec, fault_spec=self.faults,
                        n_banks=n_banks, remap_fraction=self.remap_fraction,
                        seed=seed, chip_id=chip_id)


VENDORS: Dict[str, VendorProfile] = {
    "A": VendorProfile(
        name="A",
        expected_magnitudes=(8, 16, 48),
        coupling=CouplingSpec(n_cells=900),
        faults=FaultSpec(soft_error_rate=2e-8, n_vrt_cells=12,
                         n_marginal_cells=20, n_weak_cells=40),
        remap_fraction=0.004,
    ),
    "B": VendorProfile(
        name="B",
        expected_magnitudes=(1, 64),
        coupling=CouplingSpec(n_cells=700),
        faults=FaultSpec(soft_error_rate=2e-8, n_vrt_cells=110,
                         n_marginal_cells=60, n_weak_cells=40),
        remap_fraction=0.08,
    ),
    "C": VendorProfile(
        name="C",
        expected_magnitudes=(16, 33, 49),
        coupling=CouplingSpec(n_cells=4000),
        faults=FaultSpec(soft_error_rate=2e-8, n_vrt_cells=25,
                         n_marginal_cells=60, n_weak_cells=40),
        remap_fraction=0.004,
    ),
}


def vendor(name: str) -> VendorProfile:
    """Look up a vendor profile by letter."""
    try:
        return VENDORS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown vendor {name!r}; expected one of {sorted(VENDORS)}"
        ) from None


def make_module(vendor_name: str, module_index: int, seed: int,
                n_rows: int = 256, row_bits: int = DEFAULT_ROW_BITS,
                n_chips: int = CHIPS_PER_MODULE) -> DramModule:
    """Build one module: ``n_chips`` chips with a shared vulnerability.

    The module-level vulnerability multiplier is drawn lognormally, so
    modules of the same vendor differ in failure counts the way the
    paper's 18 modules do.
    """
    profile = vendor(vendor_name)
    rng = np.random.default_rng(seed)
    vulnerability = float(rng.lognormal(mean=0.0,
                                        sigma=profile.vulnerability_sigma))
    # Module-to-module process variation also shifts the coupling mix:
    # how many victims are strongly coupled, and how pattern-specific
    # the weak ones are. This is what spreads the PARBOR-vs-random gap
    # across the paper's 18 modules (Figure 12's 2-55% range).
    strong_fraction = float(rng.uniform(0.38, 0.68))
    base = np.asarray(profile.coupling.context_k_probs)
    mix = rng.dirichlet(base * 7.0)
    chips = [
        profile.make_chip(seed=int(rng.integers(0, 2**63)), n_rows=n_rows,
                          row_bits=row_bits,
                          vulnerability=vulnerability,
                          strong_fraction=strong_fraction,
                          context_k_probs=tuple(mix.tolist()),
                          chip_id=f"{vendor_name}{module_index}.c{i}")
        for i in range(n_chips)
    ]
    return DramModule(module_id=f"{vendor_name}{module_index}", chips=chips)


def make_test_fleet(modules_per_vendor: int = 6, seed: int = 2016,
                    n_rows: int = 256, row_bits: int = DEFAULT_ROW_BITS,
                    n_chips: int = CHIPS_PER_MODULE) -> Dict[str, list]:
    """The paper's fleet: 18 modules / 144 chips across three vendors."""
    rng = np.random.default_rng(seed)
    fleet: Dict[str, list] = {}
    for name in sorted(VENDORS):
        fleet[name] = [
            make_module(name, i + 1, seed=int(rng.integers(0, 2**63)),
                        n_rows=n_rows, row_bits=row_bits, n_chips=n_chips)
            for i in range(modules_per_vendor)
        ]
    return fleet


def custom_vendor(name: str, steps: Tuple[int, ...], block_bits: int = 512,
                  tile_bits: int = 0, n_coupled_cells: int = 1000,
                  faults: FaultSpec = None,
                  remap_fraction: float = 0.005) -> VendorProfile:
    """Define a hypothetical vendor from an arbitrary step set.

    Research often asks "what if the scrambler looked like X?"; this
    builds a profile whose mapping is a balanced step path over
    ``steps`` (unsigned magnitudes), so any distance set PARBOR might
    face can be synthesised and tested.

    Note: distances that are not multiples of the recursion's region
    sizes split their reporter mass across two adjacent regions; with
    three or more magnitudes this can push individual regions under
    the default ranking threshold. Use a slightly lower
    ``ParborConfig.ranking_threshold`` (e.g. 0.04) or a larger victim
    sample when characterising such scramblers - the same trade-off
    the paper's Figure 15 sweeps.

    Args:
        name: label for the profile (any string not A/B/C).
        steps: unsigned step magnitudes the scrambler should induce.
        block_bits: repeating permutation block size.
        tile_bits: physical adjacency granularity (defaults to the
            block size).
        n_coupled_cells: coupled victims per bank.
        faults: random-failure spec; a moderate default if omitted.
        remap_fraction: fraction of victims in remapped columns.

    Returns:
        A :class:`VendorProfile` usable exactly like A/B/C.
    """
    if name.upper() in VENDORS:
        raise ValueError(f"name {name!r} shadows a built-in vendor")
    mags = tuple(sorted({abs(int(m)) for m in steps if m}))
    if not mags:
        raise ValueError("need at least one non-zero step")
    signed = tuple(s for m in mags for s in (m, -m))

    @lru_cache(maxsize=None)
    def factory(row_bits: int) -> AddressMapping:
        path = find_step_path(block_bits, signed)
        return AddressMapping(row_bits=row_bits, block_bits=block_bits,
                              block_path=tuple(path),
                              tile_bits=tile_bits or block_bits)

    return VendorProfile(
        name=name, expected_magnitudes=mags,
        coupling=CouplingSpec(n_cells=n_coupled_cells),
        faults=faults or FaultSpec(soft_error_rate=2e-8, n_vrt_cells=20,
                                   n_marginal_cells=30, n_weak_cells=30),
        remap_fraction=remap_fraction,
        mapping_factory=factory)

"""System-address <-> physical-address scrambling models.

DRAM vendors internally scramble the system address space: bit ``s`` of
a row, as the memory controller sees it, is stored in physical column
``p`` of the cell array, where ``p`` is a vendor-specific permutation of
``s`` (paper Section 3, Challenge 1). The paper characterises each
vendor *only* through the set of system-address distances at which the
physical neighbours of a cell appear (Figure 8, Figure 11):

* vendor A: ``{+-8, +-16, +-48}``
* vendor B: ``{+-1, +-64}``
* vendor C: ``{+-16, +-33, +-49}``

Real scrambler wiring is proprietary, so we *construct* permutations
that induce exactly those distance sets. A row is divided into equal
*tiles* (the paper's Figure 7); cells are physically adjacent only
within a tile, and the permutation is identical in every tile and every
row (the regularity PARBOR exploits).

The construction is a *step path*: an ordering of the tile's system
addresses such that consecutive physical cells have system-address
differences drawn from the target step set. Three generators are
provided (boustrophedon, pair-block interleave, residue interleave)
plus a generic backtracking search for arbitrary step sets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._kernels import pack_rows, packed_words, tail_mask

__all__ = [
    "AddressMapping",
    "find_step_path",
    "boustrophedon_path",
    "pair_block_path",
    "residue_interleaved_path",
    "identity_mapping",
    "path_step_magnitudes",
]


def path_step_magnitudes(path: Sequence[int]) -> Dict[int, int]:
    """Histogram of ``|path[i+1] - path[i]|`` over a step path."""
    mags: Dict[int, int] = {}
    for a, b in zip(path, path[1:]):
        m = abs(b - a)
        mags[m] = mags.get(m, 0) + 1
    return mags


def _zigzag(length: int) -> List[int]:
    """Cover ``0..length-1`` with steps in {+1, +2, -1}.

    Pattern: 0, 2, 1, 3, 5, 4, 6, 8, 7, ... (triples), with a clean
    tail for any length. Used as the in-range tail of the residue
    interleave below.
    """
    out: List[int] = []
    base = 0
    while base < length:
        remaining = length - base
        if remaining == 1:
            out.append(base)
            base += 1
        elif remaining == 2:
            out.extend([base, base + 1])
            base += 2
        else:
            out.extend([base, base + 2, base + 1])
            base += 3
    return out


def boustrophedon_path(length: int, block: int) -> List[int]:
    """Snake path: ascending block, descending block, ...

    Induces step magnitudes ``{1, block}``. ``length`` must be an even
    multiple of ``block`` so the path ends on an ascending run.
    """
    if length % (2 * block):
        raise ValueError(
            f"length {length} must be a multiple of 2*block ({2 * block})"
        )
    out: List[int] = []
    for start in range(0, length, 2 * block):
        out.extend(range(start, start + block))
        out.extend(range(start + 2 * block - 1, start + block - 1, -1))
    return out


def pair_block_path(length: int, half: int) -> List[int]:
    """Interleave pairs across the two halves of a block.

    Order: ``0, half, half+1, 1, 2, half+2, half+3, 3, ...`` so that
    step magnitudes are ``{1, half}`` with the long step occurring every
    other move (frequency 1/2). Used for vendor B, where the paper's
    recursion finds the +-64 neighbour region as a *frequent* distance.
    """
    if length != 2 * half:
        raise ValueError(f"length {length} must equal 2*half ({2 * half})")
    if half % 2:
        raise ValueError(f"half {half} must be even")
    out: List[int] = []
    for k in range(0, half, 2):
        out.extend([k, half + k, half + k + 1, k + 1])
    return out


def _unit_interleave_path(length: int) -> List[int]:
    """Cover ``0..length-1`` with steps of magnitude {1, 2, 6}.

    Uses a period-12 pattern (0, 1, 2, 3, 9, 11, 5, 7, 8, 10, 4, 6)
    whose twelve steps (including the +6 hop into the next period) use
    each magnitude exactly four times - balanced usage keeps all three
    induced distances *frequent*, so PARBOR's ranking filter retains
    them (Figure 14). A zigzag tail (steps ``{+-1, +2}``) closes
    lengths that are not a multiple of 12.
    """
    period = [0, 1, 2, 3, 9, 11, 5, 7, 8, 10, 4, 6]
    units: List[int] = []
    base = 0
    while base + 12 <= length:
        units.extend(base + u for u in period)
        base += 12
    units.extend(base + u for u in _zigzag(length - base))
    return units


def residue_interleaved_path(block: int, stride: int) -> List[int]:
    """Residue-class interleaving: vendor A's scrambler family.

    The ``block`` system addresses are grouped into ``stride`` residue
    classes (addresses congruent mod ``stride``); each class occupies a
    contiguous run of ``block // stride`` physical positions, ordered
    by a unit path with step magnitudes {1, 2, 6}. Physical adjacency
    *within a class run* therefore has system-address distances
    ``{stride, 2*stride, 6*stride}`` (stride 8 gives {8, 16, 48}).

    The caller must set ``tile_bits = block // stride`` so adjacency
    breaks at class-run boundaries (the cross-run step is not a real
    neighbour relation).
    """
    if block % stride:
        raise ValueError(f"block {block} must be a multiple of {stride}")
    per_class = block // stride
    unit = _unit_interleave_path(per_class)
    out: List[int] = []
    for c in range(stride):
        out.extend(c + stride * u for u in unit)
    return out


def find_step_path(
    length: int,
    steps: Sequence[int],
    start: int = 0,
    deadline_s: float = 10.0,
) -> List[int]:
    """Find a Hamiltonian step path on ``0..length-1``.

    Consecutive elements differ by a value in ``steps`` (signed). Uses
    iterative depth-first search with the Warnsdorff heuristic (visit
    the candidate with the fewest onward moves first), which finds
    paths for the vendor step sets in well under a millisecond.

    Raises:
        ValueError: if no path exists or the search exceeds the
            deadline.
    """
    allowed = sorted(set(int(s) for s in steps), key=abs)
    if not allowed or 0 in allowed:
        raise ValueError(f"invalid step set {steps}")
    t0 = time.monotonic()
    visited = bytearray(length)
    path = [start]
    visited[start] = 1
    # Balanced magnitude usage keeps every induced distance frequent
    # enough to survive PARBOR's ranking filter.
    usage = {abs(s): 0 for s in allowed}
    # Each stack frame holds the not-yet-tried candidates from a node.
    stack: List[List[int]] = []

    def candidates(v: int) -> List[int]:
        cands = [v + s for s in allowed
                 if 0 <= v + s < length and not visited[v + s]]

        def onward(c: int) -> int:
            return sum(1 for s in allowed
                       if 0 <= c + s < length and not visited[c + s])

        # Warnsdorff first (fewest onward moves), then prefer the
        # least-used step magnitude.
        cands.sort(key=lambda c: (onward(c), usage[abs(c - v)]))
        cands.reverse()  # pop() takes from the end; keep best last
        return cands

    stack.append(candidates(start))
    while stack:
        if len(path) == length:
            return path
        if time.monotonic() - t0 > deadline_s:
            raise ValueError(
                f"step-path search timed out (length={length}, "
                f"steps={allowed})"
            )
        frame = stack[-1]
        if frame:
            nxt = frame.pop()
            usage[abs(nxt - path[-1])] += 1
            visited[nxt] = 1
            path.append(nxt)
            stack.append(candidates(nxt))
        else:
            stack.pop()
            dead = path.pop()
            visited[dead] = 0
            if path:
                usage[abs(dead - path[-1])] -= 1
    raise ValueError(
        f"no step path exists for length={length}, steps={allowed}"
    )


@dataclass(frozen=True)
class AddressMapping:
    """A row-level system<->physical address permutation.

    Two granularities describe the mapping:

    * ``block_bits`` is the *repeating permutation unit*: the row is
      split into ``row_bits // block_bits`` blocks of contiguous system
      addresses and the same ``block_path`` permutation is applied
      inside each (the regularity PARBOR exploits, paper Figure 7).
    * ``tile_bits`` is the *physical adjacency granularity*: cells are
      physically adjacent (and can couple) only within a tile of
      ``tile_bits`` consecutive physical positions; cells at a tile's
      two ends have a single neighbour. ``tile_bits`` divides
      ``block_bits`` - some scramblers (vendor A's residue
      interleaving) need several adjacency segments per repeating
      block.

    Attributes:
        row_bits: number of cells (bits) per row.
        block_bits: system addresses per repeating block.
        block_path: for physical in-block position ``i``, the in-block
            *system* address offset stored there (a permutation of
            ``0..block_bits-1``).
        tile_bits: physical positions per adjacency tile.
    """

    row_bits: int
    block_bits: int
    block_path: Tuple[int, ...]
    tile_bits: int = 0
    _sys_to_phys: np.ndarray = field(repr=False, compare=False, default=None)
    _phys_to_sys: np.ndarray = field(repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if self.tile_bits == 0:
            object.__setattr__(self, "tile_bits", self.block_bits)
        if self.row_bits % self.block_bits:
            raise ValueError(
                f"row_bits {self.row_bits} not a multiple of block_bits "
                f"{self.block_bits}"
            )
        if self.block_bits % self.tile_bits:
            raise ValueError(
                f"block_bits {self.block_bits} not a multiple of tile_bits "
                f"{self.tile_bits}"
            )
        if sorted(self.block_path) != list(range(self.block_bits)):
            raise ValueError("block_path is not a permutation of the block")
        n_blocks = self.row_bits // self.block_bits
        path = np.asarray(self.block_path, dtype=np.int64)
        bases = (np.arange(n_blocks, dtype=np.int64) * self.block_bits)
        phys_to_sys = (bases[:, None] + path[None, :]).ravel()
        sys_to_phys = np.empty_like(phys_to_sys)
        sys_to_phys[phys_to_sys] = np.arange(self.row_bits, dtype=np.int64)
        object.__setattr__(self, "_phys_to_sys", phys_to_sys)
        object.__setattr__(self, "_sys_to_phys", sys_to_phys)
        object.__setattr__(self, "_scramble_cache", {})
        # Packed-kernel lookup tables: system column s lives in word
        # _s2p_word[s], bit mask _s2p_mask[s] of a packed physical row
        # (see docs/KERNELS.md).
        object.__setattr__(self, "_s2p_word",
                           (sys_to_phys >> 6).astype(np.int64))
        object.__setattr__(self, "_s2p_mask",
                           np.uint64(1) << (sys_to_phys & 63).astype(
                               np.uint64))
        object.__setattr__(self, "_packed_cache", {})
        object.__setattr__(self, "_region_mask_cache", {})
        object.__setattr__(self, "_region_sparse_cache", {})

    @property
    def n_tiles(self) -> int:
        return self.row_bits // self.tile_bits

    @property
    def n_blocks(self) -> int:
        return self.row_bits // self.block_bits

    # -- permutation views ------------------------------------------------

    def sys_to_phys(self) -> np.ndarray:
        """Vector ``perm[s] -> p`` (do not mutate)."""
        return self._sys_to_phys

    def phys_to_sys(self) -> np.ndarray:
        """Vector ``perm[p] -> s`` (do not mutate)."""
        return self._phys_to_sys

    def scramble(self, row_sys: np.ndarray) -> np.ndarray:
        """Reorder a system-order row into physical order."""
        return row_sys[self._phys_to_sys]

    def descramble(self, row_phys: np.ndarray) -> np.ndarray:
        """Reorder a physical-order row into system order."""
        return row_phys[self._sys_to_phys]

    def scramble_cached(self, row_sys: np.ndarray) -> np.ndarray:
        """Memoized :meth:`scramble` for repeated row patterns.

        Chips of one vendor share their (lru-cached) mapping instance,
        so the neighbour-aware sweep and the discovery battery scramble
        each distinct pattern once per process instead of once per
        chip x round.  The returned array is read-only; callers must
        copy before mutating.  The cache is bounded so one-shot random
        backgrounds cannot grow it without limit.
        """
        key = row_sys.tobytes()
        cached = self._scramble_cache.get(key)
        if cached is None:
            if len(self._scramble_cache) >= 256:
                self._scramble_cache.clear()
            cached = row_sys[self._phys_to_sys]
            cached.flags.writeable = False
            self._scramble_cache[key] = cached
        return cached

    # -- packed (word-wise) views -----------------------------------------

    def s2p_word(self) -> np.ndarray:
        """Per system column, its packed word index (do not mutate)."""
        return self._s2p_word

    def s2p_mask(self) -> np.ndarray:
        """Per system column, its in-word bit mask (do not mutate)."""
        return self._s2p_mask

    def scramble_packed(self, row_sys: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Memoized packed scramble of one system-order row pattern.

        Returns ``(plain, inverted)`` - the pattern scrambled into
        physical order and bit-packed (see :mod:`repro._kernels`), plus
        its bitwise complement with the tail bits cleared.  Caching
        both polarities lets the broadcast write pick the right one per
        row (true vs anti cells) with a single ``np.where`` instead of
        an outer XOR that would dirty the tail.  Both arrays are
        read-only; the cache is bounded like :meth:`scramble_cached`.
        """
        key = row_sys.tobytes()
        cached = self._packed_cache.get(key)
        if cached is None:
            if len(self._packed_cache) >= 256:
                self._packed_cache.clear()
            plain = pack_rows(row_sys[self._phys_to_sys])
            inverted = ~plain
            inverted[-1] &= tail_mask(self.row_bits)
            plain.flags.writeable = False
            inverted.flags.writeable = False
            cached = (plain, inverted)
            self._packed_cache[key] = cached
        return cached

    def region_masks(self, size: int) -> np.ndarray:
        """Packed physical masks of the aligned system-address regions.

        Row ``r`` of the result is the packed mask of physical columns
        holding system addresses ``r*size .. (r+1)*size - 1`` - the
        write footprint of one recursion region.  Built once per
        ``size`` and cached on the (shared, per-vendor) mapping, so the
        recursive region test patches spans at cost O(words) instead
        of O(cells).  The array is read-only.
        """
        if size < 1 or self.row_bits % size:
            raise ValueError(
                f"size {size} must divide row_bits {self.row_bits}")
        masks = self._region_mask_cache.get(size)
        if masks is None:
            n_regions = self.row_bits // size
            n_w = packed_words(self.row_bits)
            flat = np.zeros(n_regions * n_w, dtype=np.uint64)
            region = np.arange(self.row_bits, dtype=np.int64) // size
            np.bitwise_or.at(flat, region * n_w + self._s2p_word,
                             self._s2p_mask)
            masks = flat.reshape(n_regions, n_w)
            masks.flags.writeable = False
            self._region_mask_cache[size] = masks
        return masks

    def region_masks_sparse(self, size: int
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse form of :meth:`region_masks`: only the nonzero words.

        Returns ``(word_idx, masks)``, both shaped
        ``(n_regions, k)`` where ``k`` is the largest number of packed
        words any region touches; shorter regions are padded with
        zero masks (no-ops for the span-write kernel).  Deep recursion
        levels have tiny regions, so applying ``k`` words per span
        instead of a full row's worth is the difference between
        O(region) and O(row) writes.  Both arrays are read-only.
        """
        cached = self._region_sparse_cache.get(size)
        if cached is None:
            dense = self.region_masks(size)
            n_regions, _ = dense.shape
            nz = dense != 0
            k = int(nz.sum(axis=1).max())
            word_idx = np.zeros((n_regions, k), dtype=np.int64)
            masks = np.zeros((n_regions, k), dtype=np.uint64)
            r, w = np.nonzero(nz)
            pos = np.arange(len(r)) - np.searchsorted(r, r)
            word_idx[r, pos] = w
            masks[r, pos] = dense[r, w]
            word_idx.flags.writeable = False
            masks.flags.writeable = False
            cached = (word_idx, masks)
            self._region_sparse_cache[size] = cached
        return cached

    def span_masks(self, starts: np.ndarray, size: int) -> np.ndarray:
        """Packed physical masks of arbitrary system-address spans.

        Generic (uncached) fallback of :meth:`region_masks` for spans
        that are not region-aligned; one mask row per start.
        """
        n_w = packed_words(self.row_bits)
        flat = np.zeros(len(starts) * n_w, dtype=np.uint64)
        sys_idx = (np.asarray(starts, dtype=np.int64)[:, None]
                   + np.arange(size, dtype=np.int64)).ravel()
        span = np.repeat(np.arange(len(starts), dtype=np.int64), size)
        np.bitwise_or.at(flat, span * n_w + self._s2p_word[sys_idx],
                         self._s2p_mask[sys_idx])
        return flat.reshape(len(starts), n_w)

    # -- neighbour structure ----------------------------------------------

    def physical_neighbours_of_sys(self, s: int) -> Tuple[Optional[int],
                                                          Optional[int]]:
        """System addresses of the two physical neighbours of bit ``s``.

        Returns ``(left, right)``; either is ``None`` at a tile edge.
        """
        if not 0 <= s < self.row_bits:
            raise ValueError(f"system address {s} out of range")
        p = int(self._sys_to_phys[s])
        in_tile = p % self.tile_bits
        left = None if in_tile == 0 else int(self._phys_to_sys[p - 1])
        right = (None if in_tile == self.tile_bits - 1
                 else int(self._phys_to_sys[p + 1]))
        return left, right

    def neighbour_distance_set(self, order: int = 1) -> List[int]:
        """All signed system-address distances of physical neighbours.

        This is the ground truth that PARBOR tries to discover (the
        paper's Figure 8 representation). ``order`` selects which
        physical neighbour ring: 1 for the immediate neighbours, 2 for
        the cells two positions out (relevant to future process nodes
        where farther cells interfere - paper Sections 1 and 3).
        """
        if order < 1:
            raise ValueError("order must be >= 1")
        sys = self._phys_to_sys
        dists = set()
        for t in range(self.n_tiles):
            tile = sys[t * self.tile_bits:(t + 1) * self.tile_bits]
            if len(tile) <= order:
                continue
            diffs = tile[order:] - tile[:-order]
            dists.update(int(d) for d in diffs)
            dists.update(int(-d) for d in diffs)
        return sorted(dists, key=lambda d: (abs(d), d))

    def distance_magnitudes(self, order: int = 1) -> List[int]:
        """Unsigned version of :meth:`neighbour_distance_set`."""
        return sorted({abs(d)
                       for d in self.neighbour_distance_set(order)})


def identity_mapping(row_bits: int, tile_bits: Optional[int] = None
                     ) -> AddressMapping:
    """A linear (unscrambled) mapping, useful for tests and baselines."""
    tile = tile_bits or row_bits
    return AddressMapping(row_bits=row_bits, block_bits=tile,
                          block_path=tuple(range(tile)), tile_bits=tile)

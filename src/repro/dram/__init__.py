"""DRAM device substrate: scrambled-address chips with coupling faults.

This subpackage is the stand-in for the paper's 144 real DRAM chips:
behavioural models of banks, chips, and modules whose observable -
read-back mismatches after a retention interval - matches what a
system-level test sees on hardware. See DESIGN.md Section 1 for the
substitution argument.
"""

from .bank import Bank
from .cells import NO_NEIGHBOUR, CoupledCellPopulation, CouplingSpec
from .chip import DramChip
from .controller import MemoryController, TestStats
from .faults import FaultSpec, RandomFaultModel
from .mapping import (AddressMapping, boustrophedon_path, find_step_path,
                      identity_mapping, pair_block_path,
                      path_step_magnitudes, residue_interleaved_path)
from .module import DramModule
from .remap import apply_column_remapping
from .timing import DDR3_1600, DramTiming, t_rfc_ns
from .vendors import (DEFAULT_ROW_BITS, VENDORS, VendorProfile,
                      custom_vendor, make_module, make_test_fleet, vendor)

__all__ = [
    "AddressMapping", "Bank", "CoupledCellPopulation", "CouplingSpec",
    "DDR3_1600", "DEFAULT_ROW_BITS", "DramChip", "DramModule", "DramTiming",
    "FaultSpec", "MemoryController", "NO_NEIGHBOUR", "RandomFaultModel",
    "TestStats", "VENDORS", "VendorProfile", "apply_column_remapping",
    "boustrophedon_path", "custom_vendor", "find_step_path",
    "identity_mapping",
    "make_module", "make_test_fleet", "pair_block_path",
    "path_step_magnitudes", "residue_interleaved_path", "t_rfc_ns",
    "vendor",
]

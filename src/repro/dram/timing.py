"""DDR3 timing parameters and the paper's appendix time arithmetic.

The PARBOR paper (Appendix) derives all of its test-time numbers from
DDR3-1600 timing: ``t_RCD = t_RP = 13.75 ns`` and ``t_CCD = 5 ns``
(4 cycles at 1.25 ns/cycle of data-bus time per 64-byte transfer).
This module captures those parameters once so the complexity analytics,
the memory-system simulator, and the documentation all agree.

All times are kept in nanoseconds as ``float`` unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Nanoseconds per millisecond / second, for readability of derived math.
NS_PER_MS = 1e6
NS_PER_S = 1e9


@dataclass(frozen=True)
class DramTiming:
    """Timing parameters of a DDR3-style DRAM interface.

    The defaults are DDR3-1600 values used throughout the paper's
    appendix arithmetic.

    Attributes:
        t_rcd_ns: ACT-to-READ/WRITE delay (row activation).
        t_rp_ns: PRE-to-ACT delay (precharge).
        t_ccd_ns: CAS-to-CAS delay, i.e. time per 64-byte burst on the
            data bus.
        t_cas_ns: READ-to-data delay (column access latency).
        refresh_interval_ms: nominal refresh window (tREFW), 64 ms for
            DDR3 below 85 degC.
        t_refi_ns: average periodic refresh command interval (tREFI).
        clock_ghz: I/O clock in GHz (data rate is 2x for DDR).
    """

    t_rcd_ns: float = 13.75
    t_rp_ns: float = 13.75
    t_ccd_ns: float = 5.0
    t_cas_ns: float = 13.75
    refresh_interval_ms: float = 64.0
    t_refi_ns: float = 7800.0
    clock_ghz: float = 0.8

    def row_cycle_ns(self, bursts: int) -> float:
        """Time to open a row, transfer ``bursts`` 64-byte blocks, close it.

        This is the paper's ``t_r = t_RCD + t_CCD * bursts + t_RP``.
        """
        if bursts < 1:
            raise ValueError(f"bursts must be >= 1, got {bursts}")
        return self.t_rcd_ns + self.t_ccd_ns * bursts + self.t_rp_ns

    def two_block_access_ns(self) -> float:
        """Time to read/write two cache blocks in one row activation.

        Appendix: ``13.75 + 5 * 2 + 13.75 = 42.5 ns``.
        """
        return self.row_cycle_ns(bursts=2)

    def full_row_access_ns(self, row_bytes: int = 8192,
                           block_bytes: int = 64) -> float:
        """Time to stream a whole row through the data bus.

        Appendix: an 8 KB row is 128 blocks, ``13.75 + 5*128 + 13.75 =
        667.5 ns``.
        """
        if row_bytes % block_bytes:
            raise ValueError("row size must be a whole number of blocks")
        return self.row_cycle_ns(bursts=row_bytes // block_bytes)


#: Refresh command latency (tRFC) per chip density, in nanoseconds.
#: 16/32 Gbit values follow the paper's footnote 6 estimates (590 ns /
#: 1 us, extrapolated the same way RAIDR extrapolates); smaller
#: densities are JEDEC DDR3 values.
T_RFC_NS_BY_DENSITY_GBIT = {
    1: 110.0,
    2: 160.0,
    4: 260.0,
    8: 350.0,
    16: 590.0,
    32: 1000.0,
}


def t_rfc_ns(density_gbit: int) -> float:
    """Refresh command latency for a chip of the given density."""
    try:
        return T_RFC_NS_BY_DENSITY_GBIT[density_gbit]
    except KeyError:
        known = sorted(T_RFC_NS_BY_DENSITY_GBIT)
        raise ValueError(
            f"unknown density {density_gbit} Gbit; known: {known}"
        ) from None


DDR3_1600 = DramTiming()

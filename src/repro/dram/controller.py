"""The system-level memory controller interface PARBOR drives.

In the paper, PARBOR runs on a host PC and talks to DRAM through an
FPGA memory controller: it can only write data at *system* addresses,
wait out a refresh interval, and read the data back. This class is
that interface, plus the bookkeeping a test campaign needs (test
counts and estimated wall-clock time, used to report the paper's
appendix numbers).

One *test* = write a pattern, wait one retention interval, read back
and compare (paper Section 2.3, "Manufacturing Tests"). Rows tested in
different banks/rows simultaneously still count as one test - that
parallelism is PARBOR's second key idea.

When a bank carries an on-die ECC stage (:class:`repro.ecc.OnDieEcc`),
every retention read the controller issues returns the
*post-correction* view: single-bit failures are masked, multi-bit
patterns may be miscorrected onto healthy cells, and injected
miscorrections are indistinguishable from real flips at this
interface - exactly the visibility a system-level tester has against
a modern device.  See ``docs/ECC.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from .. import obs
from .._kernels import reference_kernels_enabled
from .chip import DramChip
from .timing import DDR3_1600, DramTiming

__all__ = ["MemoryController", "TestStats"]


@dataclass
class TestStats:
    """Counters for a test campaign against one chip."""

    tests: int = 0
    rows_written: int = 0
    rows_read: int = 0
    retention_waits: int = 0
    _timing: DramTiming = field(default_factory=lambda: DDR3_1600)

    def estimated_time_ns(self, row_bytes: int = 1024) -> float:
        """Rough wall-clock estimate of the campaign.

        Each retention wait costs one refresh interval; each row write
        or read costs one full-row access (appendix arithmetic).
        """
        t_row = self._timing.full_row_access_ns(row_bytes=row_bytes)
        wait_ns = (self.retention_waits
                   * self._timing.refresh_interval_ms * 1e6)
        return wait_ns + (self.rows_written + self.rows_read) * t_row

    @classmethod
    def merge(cls, stats: Iterable["TestStats"]) -> "TestStats":
        """Sum counters over several campaigns into a fresh record.

        This is the aggregation primitive fleet campaigns use: each
        worker process accumulates its own per-chip counters, and the
        parent merges the (pickled) records instead of relying on
        in-place mutation of shared state.  Timing parameters are
        taken from the first record (fleets are homogeneous).
        """
        merged: Optional[TestStats] = None
        for s in stats:
            if merged is None:
                merged = cls(_timing=s._timing)
            merged.tests += s.tests
            merged.rows_written += s.rows_written
            merged.rows_read += s.rows_read
            merged.retention_waits += s.retention_waits
        return merged if merged is not None else cls()

    def __add__(self, other: "TestStats") -> "TestStats":
        """Merged copy of two counter records (timing from ``self``)."""
        return TestStats.merge([self, other])


class MemoryController:
    """System-address access to one DRAM chip, with test accounting."""

    def __init__(self, chip: DramChip,
                 timing: Optional[DramTiming] = None) -> None:
        self.chip = chip
        self.timing = timing or DDR3_1600
        self.stats = TestStats(_timing=self.timing)

    @property
    def row_bits(self) -> int:
        return self.chip.row_bits

    @property
    def n_rows(self) -> int:
        return self.chip.n_rows

    @property
    def n_banks(self) -> int:
        return self.chip.n_banks

    # -- raw access ------------------------------------------------------

    def write_row(self, bank: int, row: int, data_sys: np.ndarray) -> None:
        """Write one row (system-order bits)."""
        self.chip.bank(bank).write_row(row, data_sys)
        self.stats.rows_written += 1

    def write_rows(self, bank: int, rows: np.ndarray,
                   data_sys: np.ndarray) -> None:
        """Write several rows; ``data_sys`` broadcasts if 1-D."""
        self.chip.bank(bank).write_rows(rows, data_sys)
        self.stats.rows_written += len(rows)

    def fill(self, data_sys: np.ndarray) -> None:
        """Write every row of every bank with the same pattern."""
        for bank in self.chip.banks:
            bank.write_all(data_sys)
            self.stats.rows_written += bank.n_rows

    def read_row(self, bank: int, row: int) -> np.ndarray:
        """Immediate read (no retention wait, no failures)."""
        self.stats.rows_read += 1
        return self.chip.bank(bank).read_row(row)

    # -- tests -------------------------------------------------------------

    def _account_test(self, n_rows: int) -> None:
        self.stats.rows_written += n_rows
        self.stats.retention_waits += 1
        self.stats.tests += 1
        self.stats.rows_read += n_rows

    def _run_test(self, kind: str, bank: int, n_rows: int,
                  write: Callable[[], None],
                  read: Callable[[], np.ndarray]) -> np.ndarray:
        """Run one write -> wait -> read test, traced when obs is on.

        The untraced branch is the exact pre-observability sequence;
        the traced branch wraps the same calls in ``test`` /
        ``phase.*`` spans and feeds the engine wall-time histogram.
        Accounting and RNG draw order are identical on both branches.
        """
        sess = obs.active()
        if sess is None:
            write()
            self._account_test(n_rows)
            return read()
        tracer = sess.tracer
        t0 = time.perf_counter()
        with tracer.span("test", kind=kind, bank=bank, rows=n_rows):
            with tracer.span("phase.write"):
                write()
            with tracer.span(
                    "phase.wait",
                    retention_ms=self.timing.refresh_interval_ms):
                pass  # the retention wait is simulated, not slept
            with tracer.span("phase.read"):
                observed = read()
        self._account_test(n_rows)
        engine = ("reference" if reference_kernels_enabled()
                  else "vectorized")
        sess.metrics.observe(f"io.test_ms[{engine}]",
                             (time.perf_counter() - t0) * 1e3)
        return observed

    def test_rows(self, bank: int, rows: np.ndarray,
                  data_sys: np.ndarray,
                  coupled_rows_only: bool = False) -> np.ndarray:
        """One test over specific rows of one bank.

        Writes ``data_sys`` (2-D per-row, or 1-D broadcast) to ``rows``,
        waits one retention interval, and returns the observed data.
        Counts as one test regardless of how many rows run in parallel.
        ``coupled_rows_only`` restricts the coupled-cell evaluation to
        the tested rows (re-vote streams only; see
        :meth:`~repro.dram.bank.Bank._retention_flips`).
        """
        rows = np.asarray(rows)
        b = self.chip.bank(bank)
        return self._run_test(
            "rows", bank, len(rows),
            lambda: b.write_rows(rows, data_sys),
            lambda: b.retention_read_rows(
                rows, coupled_rows_only=coupled_rows_only))

    def test_rows_patched(self, bank: int, rows: np.ndarray, base: int,
                          spans: Optional[Tuple[np.ndarray, np.ndarray,
                                                int, int]],
                          points: Optional[Tuple[np.ndarray, np.ndarray,
                                                 int]],
                          check_row_idx: np.ndarray,
                          check_cols: np.ndarray,
                          coupled_rows_only: bool = False) -> np.ndarray:
        """One batched test: sparse-patched write, then cell verification.

        Writes a constant background plus span/point patches (see
        :meth:`~repro.dram.bank.Bank.write_rows_patched`), waits one
        retention interval, and returns a bool mask over the checked
        cells - True where the read-back differs from what was
        written.  Test accounting is identical to :meth:`test_rows`
        (the rows are still conceptually written and read in full).
        ``coupled_rows_only`` restricts the coupled-cell evaluation to
        the tested rows (re-vote streams only; see
        :meth:`~repro.dram.bank.Bank._retention_flips`).
        """
        rows = np.asarray(rows)
        b = self.chip.bank(bank)
        return self._run_test(
            "patched", bank, len(rows),
            lambda: b.write_rows_patched(rows, base, spans=spans,
                                         points=points),
            lambda: b.retention_check_cells(
                rows, check_row_idx, check_cols,
                coupled_rows_only=coupled_rows_only))

    def _whole_chip_test(self, data_sys: np.ndarray, kind: str
                         ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Shared write-all / read-back loop of the whole-chip tests.

        Per-bank write/read interleaving (and therefore the RNG draw
        order of ``retention_failures``) is identical whether or not
        tracing is active; the traced branch only wraps the same calls
        in spans.
        """
        sess = obs.active()
        failures: List[Tuple[np.ndarray, np.ndarray]] = []
        if sess is None:
            for bank in self.chip.banks:
                bank.write_all(data_sys)
                self.stats.rows_written += bank.n_rows
                failures.append(bank.retention_failures())
                self.stats.rows_read += bank.n_rows
            self.stats.retention_waits += 1
            self.stats.tests += 1
            return failures
        tracer = sess.tracer
        t0 = time.perf_counter()
        with tracer.span("test", kind=kind,
                         banks=len(self.chip.banks)):
            for bank_idx, bank in enumerate(self.chip.banks):
                with tracer.span("phase.write", bank=bank_idx):
                    bank.write_all(data_sys)
                self.stats.rows_written += bank.n_rows
                with tracer.span("phase.read", bank=bank_idx):
                    failures.append(bank.retention_failures())
                self.stats.rows_read += bank.n_rows
            with tracer.span(
                    "phase.wait",
                    retention_ms=self.timing.refresh_interval_ms):
                self.stats.retention_waits += 1
        self.stats.tests += 1
        engine = ("reference" if reference_kernels_enabled()
                  else "vectorized")
        sess.metrics.observe(f"io.test_ms[{engine}]",
                             (time.perf_counter() - t0) * 1e3)
        return failures

    def test_pattern(self, data_sys: np.ndarray
                     ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """One whole-chip test with a single row pattern.

        Writes the pattern to every row of every bank, waits one
        retention interval, and returns per-bank ``(rows, sys_cols)``
        mismatch coordinates. This is the primitive both PARBOR's
        neighbour-aware sweep and the random-pattern baseline use, so
        their budgets are directly comparable.
        """
        data_sys = np.asarray(data_sys, dtype=np.uint8)
        return self._whole_chip_test(data_sys, "pattern")

    def test_pattern_per_row(self, data_sys_rows: np.ndarray
                             ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """One whole-chip test with per-row patterns (2-D array)."""
        return self._whole_chip_test(data_sys_rows, "pattern_per_row")

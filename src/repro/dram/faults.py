"""Non-data-dependent failure injectors.

PARBOR must distinguish data-dependent failures from failures with
other root causes (paper Section 5.2.1/5.2.4): soft errors, variable
retention time (VRT) cells, and marginal cells that barely hold their
charge across a refresh interval. These populations are what make the
ranking/filtering stage non-trivial, and they produce the infrequent
noise distances in Figures 14-15.

All injectors act on a bank's *charge* array at retention-read time and
return flip coordinates; they are polarity-symmetric except where the
underlying physics is not (VRT/marginal cells lose charge, so only
charged cells fail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from .._kernels import gather_bits

__all__ = ["FaultSpec", "RandomFaultModel", "NoiseSpec",
           "DeviceNoiseModel", "ForcedFlipNoise"]


class ForcedFlipNoise:
    """Deterministic read-time forced corruption at fixed cells.

    The probe injector of the BEER harness (:mod:`repro.ecc.beer`) and
    of the on-die-ECC recovery passes: every retention read of the
    bank sees exactly these ``(row, phys_col)`` cells read back
    corrupted, with the same union semantics as
    :class:`DeviceNoiseModel` - written data (and hence the
    data-dependent failure pattern) is untouched.  Stateless: no RNG,
    no activation clock, so attaching it never perturbs the bank's
    seeded streams.
    """

    def __init__(self, rows: np.ndarray, phys_cols: np.ndarray) -> None:
        self.rows = np.asarray(rows, dtype=np.int64)
        self.phys_cols = np.asarray(phys_cols, dtype=np.int64)

    def reseed_coins(self, seed: int) -> None:
        """No coin stream to reseed (kept for noise-model duck type)."""

    def cells(self):
        return self.rows, self.phys_cols

    def flips(self):
        return self.rows, self.phys_cols


@dataclass(frozen=True)
class FaultSpec:
    """Rates and population sizes for non-data-dependent failures.

    Attributes:
        soft_error_rate: probability that any given cell suffers a
            random transient flip during one retention read of its
            bank. Applied with a Poisson draw over the bank.
        n_vrt_cells: number of VRT cells in the bank. Each VRT cell is
            a two-state random telegraph process; in the leaky state a
            charged cell fails the retention read.
        vrt_toggle_prob: per-read probability that a VRT cell switches
            between its retention states.
        vrt_leaky_start_fraction: fraction of VRT cells that begin in
            the leaky state.
        n_marginal_cells: number of marginal cells; each fails a
            retention read (while charged) with ``marginal_fail_prob``.
        marginal_fail_prob: per-read failure probability of a marginal
            cell.
        vrt_marginal_threshold_range: log-uniform range of the stress
            at which a VRT or marginal cell's weakness manifests.
            These cells are marginal *around the elevated test
            condition* (stress 1.0), so most are quiet at operational
            refresh intervals - but a small tail stays active there,
            which is AVATAR's motivation (paper ref [62]).
        n_weak_cells: number of content-independent *weak cells* - low
            retention cells that fail (while charged) whenever the
            retention stress reaches their threshold, regardless of
            neighbour content (paper Section 5.2.1, its ref [47]).
            These are what RAIDR's retention profiling bins rows by.
        weak_threshold_range: log-uniform range of the weak cells'
            failure stress (1.0 = the 45 degC / 4 s test condition;
            a 256 ms operational interval is stress 0.064).
    """

    soft_error_rate: float = 1e-8
    n_vrt_cells: int = 0
    vrt_toggle_prob: float = 0.05
    vrt_leaky_start_fraction: float = 0.5
    n_marginal_cells: int = 0
    marginal_fail_prob: float = 0.5
    n_weak_cells: int = 0
    weak_threshold_range: tuple = (0.01, 1.0)
    vrt_marginal_threshold_range: tuple = (0.05, 1.0)

    def __post_init__(self) -> None:
        if self.soft_error_rate < 0:
            raise ValueError("soft_error_rate must be non-negative")
        if not 0 <= self.marginal_fail_prob <= 1:
            raise ValueError("marginal_fail_prob must be a probability")
        if not 0 <= self.vrt_toggle_prob <= 1:
            raise ValueError("vrt_toggle_prob must be a probability")
        lo, hi = self.weak_threshold_range
        if not 0 < lo <= hi:
            raise ValueError("weak_threshold_range must be positive and "
                             "ordered")


class RandomFaultModel:
    """Stateful injector of soft errors, VRT, and marginal failures."""

    def __init__(self, spec: FaultSpec, n_rows: int, row_bits: int,
                 rng: np.random.Generator) -> None:
        self.spec = spec
        self.n_rows = n_rows
        self.row_bits = row_bits
        self._rng = rng
        self.vrt_row = rng.integers(0, n_rows, size=spec.n_vrt_cells)
        self.vrt_phys = rng.integers(0, row_bits, size=spec.n_vrt_cells)
        self.vrt_leaky = (rng.random(spec.n_vrt_cells)
                          < spec.vrt_leaky_start_fraction)
        self.marginal_row = rng.integers(0, n_rows,
                                         size=spec.n_marginal_cells)
        self.marginal_phys = rng.integers(0, row_bits,
                                          size=spec.n_marginal_cells)
        v_lo, v_hi = spec.vrt_marginal_threshold_range
        self.vrt_threshold = np.exp(rng.uniform(
            np.log(v_lo), np.log(v_hi), size=spec.n_vrt_cells))
        self.marginal_threshold = np.exp(rng.uniform(
            np.log(v_lo), np.log(v_hi), size=spec.n_marginal_cells))
        self.weak_row = rng.integers(0, n_rows, size=spec.n_weak_cells)
        self.weak_phys = rng.integers(0, row_bits,
                                      size=spec.n_weak_cells)
        lo, hi = spec.weak_threshold_range
        self.weak_threshold = np.exp(rng.uniform(np.log(lo), np.log(hi),
                                                 size=spec.n_weak_cells))

    def retention_flips(self, charge: np.ndarray, stress: float = 1.0
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Random flips for one retention read of the whole bank.

        Args:
            charge: ``(n_rows, row_bits)`` physical-order charge array.
            stress: retention stress of the read (temperature and
                interval, 1.0 = the test condition); gates the weak
                cell population.

        Returns:
            ``(rows, cols)`` coordinate arrays of cells whose read-out
            is corrupted.
        """
        return self._flips(lambda rows, phys: charge[rows, phys], stress)

    def retention_flips_packed(self, charge_words: np.ndarray,
                               stress: float = 1.0
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Packed-kernel image of :meth:`retention_flips`.

        Reads cell charge from the bit-packed bank state (see
        :mod:`repro._kernels`).  Every RNG draw is charge-independent
        (counts depend only on population sizes and the Poisson draw),
        so the stream advances identically to the reference.
        """
        return self._flips(
            lambda rows, phys: gather_bits(charge_words, rows, phys),
            stress)

    def _flips(self, charged: Callable[[np.ndarray, np.ndarray],
                                       np.ndarray],
               stress: float) -> Tuple[np.ndarray, np.ndarray]:
        """Shared injector logic; ``charged(rows, phys)`` reads cells."""
        rng = self._rng
        rows_list = []
        cols_list = []

        if len(self.weak_row):
            hit = ((self.weak_threshold <= stress)
                   & (charged(self.weak_row, self.weak_phys) == 1))
            rows_list.append(self.weak_row[hit])
            cols_list.append(self.weak_phys[hit])

        # Draw nothing when the population is disabled: a zero-rate
        # spec must consume zero RNG state per read so that chips with
        # noise populations switched off share the coupled-cell coin
        # stream of a noise-free chip bit for bit.
        if self.spec.soft_error_rate > 0:
            n_cells = self.n_rows * self.row_bits
            n_soft = rng.poisson(self.spec.soft_error_rate * n_cells)
            if n_soft:
                flat = rng.integers(0, n_cells, size=n_soft)
                rows_list.append(flat // self.row_bits)
                cols_list.append(flat % self.row_bits)

        if len(self.vrt_row):
            toggle = rng.random(len(self.vrt_row)) < self.spec.vrt_toggle_prob
            self.vrt_leaky = self.vrt_leaky ^ toggle
            hit = (self.vrt_leaky & (self.vrt_threshold <= stress)
                   & (charged(self.vrt_row, self.vrt_phys) == 1))
            rows_list.append(self.vrt_row[hit])
            cols_list.append(self.vrt_phys[hit])

        if len(self.marginal_row):
            coin = rng.random(len(self.marginal_row))
            hit = ((coin < self.spec.marginal_fail_prob)
                   & (self.marginal_threshold <= stress)
                   & (charged(self.marginal_row, self.marginal_phys) == 1))
            rows_list.append(self.marginal_row[hit])
            cols_list.append(self.marginal_phys[hit])

        if not rows_list:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return (np.concatenate(rows_list).astype(np.int64),
                np.concatenate(cols_list).astype(np.int64))


@dataclass(frozen=True)
class NoiseSpec:
    """Injected device-noise populations for substrate chaos runs.

    Unlike :class:`FaultSpec` (the substrate's intrinsic noise, which
    rides the bank RNG), these populations model *injected* disturbance
    for robustness experiments: they draw from their own seeded RNG so
    switching them on never perturbs the data-dependent failure
    evaluation, and they corrupt the read-back unconditionally
    (content-independent forced corruption) so noise can only **add**
    observed failures, never mask one.

    Attributes:
        n_vrt_cells: injected VRT cells; each corrupts a retention read
            with ``vrt_fail_prob`` once active.
        vrt_fail_prob: per-read corruption probability of an injected
            VRT cell.
        n_marginal_cells: injected marginal cells.
        marginal_fail_prob: per-read corruption probability of an
            injected marginal cell.
        soft_error_rate: per-cell probability of a transient injected
            flip per retention read (Poisson over the bank).
        active_after: number of retention reads of the bank before the
            injected populations switch on - lets a schedule strike
            mid-campaign rather than from the first read.
    """

    n_vrt_cells: int = 0
    vrt_fail_prob: float = 1.0
    n_marginal_cells: int = 0
    marginal_fail_prob: float = 0.8
    soft_error_rate: float = 0.0
    active_after: int = 0

    def __post_init__(self) -> None:
        for name in ("vrt_fail_prob", "marginal_fail_prob"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be a probability")
        if self.soft_error_rate < 0:
            raise ValueError("soft_error_rate must be non-negative")
        if self.active_after < 0:
            raise ValueError("active_after must be non-negative")

    @property
    def empty(self) -> bool:
        return (self.n_vrt_cells == 0 and self.n_marginal_cells == 0
                and self.soft_error_rate == 0)


class DeviceNoiseModel:
    """Seeded injector of mid-campaign device noise (substrate chaos).

    Two RNG streams keep the injection orthogonal to the device model:
    *positions* are drawn once from the base seed (so the injected cell
    set is the schedule's ground truth, exposed via :meth:`cells`), and
    *coins* come from a separate stream that the robust sweep reseeds
    per (pass, round) via :meth:`reseed_coins`, making every read's
    corruption a pure function of ``(seed, round)`` rather than of
    scheduling order.
    """

    def __init__(self, spec: NoiseSpec, n_rows: int, row_bits: int,
                 seed: int) -> None:
        self.spec = spec
        self.n_rows = n_rows
        self.row_bits = row_bits
        self.seed = seed
        pos_rng = np.random.default_rng([seed, 0x705])
        self.vrt_row = pos_rng.integers(0, n_rows,
                                        size=spec.n_vrt_cells)
        self.vrt_phys = pos_rng.integers(0, row_bits,
                                         size=spec.n_vrt_cells)
        self.marginal_row = pos_rng.integers(0, n_rows,
                                             size=spec.n_marginal_cells)
        self.marginal_phys = pos_rng.integers(0, row_bits,
                                              size=spec.n_marginal_cells)
        self._coin_rng = np.random.default_rng([seed, 0xC01])
        #: retention reads of the bank seen so far (activation clock).
        self.reads = 0

    def reseed_coins(self, seed: int) -> None:
        """Restart the coin stream (positions and clock are kept)."""
        self._coin_rng = np.random.default_rng([int(seed), 0xC01])

    def cells(self) -> Tuple[np.ndarray, np.ndarray]:
        """Ground truth: ``(rows, phys_cols)`` of all injected cells."""
        rows = np.concatenate([self.vrt_row, self.marginal_row])
        phys = np.concatenate([self.vrt_phys, self.marginal_phys])
        return rows.astype(np.int64), phys.astype(np.int64)

    def flips(self) -> Tuple[np.ndarray, np.ndarray]:
        """Injected corruptions for one retention read of the bank.

        Returns ``(rows, phys_cols)`` of cells whose read-back is
        force-corrupted (union semantics - the caller must OR these
        into the observed failures, never XOR them with other flips).
        """
        self.reads += 1
        empty = np.empty(0, dtype=np.int64)
        if self.spec.empty or self.reads <= self.spec.active_after:
            return empty, empty
        rng = self._coin_rng
        rows_list = []
        cols_list = []
        if len(self.vrt_row):
            hit = rng.random(len(self.vrt_row)) < self.spec.vrt_fail_prob
            rows_list.append(self.vrt_row[hit])
            cols_list.append(self.vrt_phys[hit])
        if len(self.marginal_row):
            hit = (rng.random(len(self.marginal_row))
                   < self.spec.marginal_fail_prob)
            rows_list.append(self.marginal_row[hit])
            cols_list.append(self.marginal_phys[hit])
        if self.spec.soft_error_rate > 0:
            n_cells = self.n_rows * self.row_bits
            n_soft = rng.poisson(self.spec.soft_error_rate * n_cells)
            if n_soft:
                flat = rng.integers(0, n_cells, size=n_soft)
                rows_list.append(flat // self.row_bits)
                cols_list.append(flat % self.row_bits)
        if not rows_list:
            return empty, empty
        return (np.concatenate(rows_list).astype(np.int64),
                np.concatenate(cols_list).astype(np.int64))

"""Non-data-dependent failure injectors.

PARBOR must distinguish data-dependent failures from failures with
other root causes (paper Section 5.2.1/5.2.4): soft errors, variable
retention time (VRT) cells, and marginal cells that barely hold their
charge across a refresh interval. These populations are what make the
ranking/filtering stage non-trivial, and they produce the infrequent
noise distances in Figures 14-15.

All injectors act on a bank's *charge* array at retention-read time and
return flip coordinates; they are polarity-symmetric except where the
underlying physics is not (VRT/marginal cells lose charge, so only
charged cells fail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["FaultSpec", "RandomFaultModel"]


@dataclass(frozen=True)
class FaultSpec:
    """Rates and population sizes for non-data-dependent failures.

    Attributes:
        soft_error_rate: probability that any given cell suffers a
            random transient flip during one retention read of its
            bank. Applied with a Poisson draw over the bank.
        n_vrt_cells: number of VRT cells in the bank. Each VRT cell is
            a two-state random telegraph process; in the leaky state a
            charged cell fails the retention read.
        vrt_toggle_prob: per-read probability that a VRT cell switches
            between its retention states.
        vrt_leaky_start_fraction: fraction of VRT cells that begin in
            the leaky state.
        n_marginal_cells: number of marginal cells; each fails a
            retention read (while charged) with ``marginal_fail_prob``.
        marginal_fail_prob: per-read failure probability of a marginal
            cell.
        vrt_marginal_threshold_range: log-uniform range of the stress
            at which a VRT or marginal cell's weakness manifests.
            These cells are marginal *around the elevated test
            condition* (stress 1.0), so most are quiet at operational
            refresh intervals - but a small tail stays active there,
            which is AVATAR's motivation (paper ref [62]).
        n_weak_cells: number of content-independent *weak cells* - low
            retention cells that fail (while charged) whenever the
            retention stress reaches their threshold, regardless of
            neighbour content (paper Section 5.2.1, its ref [47]).
            These are what RAIDR's retention profiling bins rows by.
        weak_threshold_range: log-uniform range of the weak cells'
            failure stress (1.0 = the 45 degC / 4 s test condition;
            a 256 ms operational interval is stress 0.064).
    """

    soft_error_rate: float = 1e-8
    n_vrt_cells: int = 0
    vrt_toggle_prob: float = 0.05
    vrt_leaky_start_fraction: float = 0.5
    n_marginal_cells: int = 0
    marginal_fail_prob: float = 0.5
    n_weak_cells: int = 0
    weak_threshold_range: tuple = (0.01, 1.0)
    vrt_marginal_threshold_range: tuple = (0.05, 1.0)

    def __post_init__(self) -> None:
        if self.soft_error_rate < 0:
            raise ValueError("soft_error_rate must be non-negative")
        if not 0 <= self.marginal_fail_prob <= 1:
            raise ValueError("marginal_fail_prob must be a probability")
        if not 0 <= self.vrt_toggle_prob <= 1:
            raise ValueError("vrt_toggle_prob must be a probability")
        lo, hi = self.weak_threshold_range
        if not 0 < lo <= hi:
            raise ValueError("weak_threshold_range must be positive and "
                             "ordered")


class RandomFaultModel:
    """Stateful injector of soft errors, VRT, and marginal failures."""

    def __init__(self, spec: FaultSpec, n_rows: int, row_bits: int,
                 rng: np.random.Generator) -> None:
        self.spec = spec
        self.n_rows = n_rows
        self.row_bits = row_bits
        self._rng = rng
        self.vrt_row = rng.integers(0, n_rows, size=spec.n_vrt_cells)
        self.vrt_phys = rng.integers(0, row_bits, size=spec.n_vrt_cells)
        self.vrt_leaky = (rng.random(spec.n_vrt_cells)
                          < spec.vrt_leaky_start_fraction)
        self.marginal_row = rng.integers(0, n_rows,
                                         size=spec.n_marginal_cells)
        self.marginal_phys = rng.integers(0, row_bits,
                                          size=spec.n_marginal_cells)
        v_lo, v_hi = spec.vrt_marginal_threshold_range
        self.vrt_threshold = np.exp(rng.uniform(
            np.log(v_lo), np.log(v_hi), size=spec.n_vrt_cells))
        self.marginal_threshold = np.exp(rng.uniform(
            np.log(v_lo), np.log(v_hi), size=spec.n_marginal_cells))
        self.weak_row = rng.integers(0, n_rows, size=spec.n_weak_cells)
        self.weak_phys = rng.integers(0, row_bits,
                                      size=spec.n_weak_cells)
        lo, hi = spec.weak_threshold_range
        self.weak_threshold = np.exp(rng.uniform(np.log(lo), np.log(hi),
                                                 size=spec.n_weak_cells))

    def retention_flips(self, charge: np.ndarray, stress: float = 1.0
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Random flips for one retention read of the whole bank.

        Args:
            charge: ``(n_rows, row_bits)`` physical-order charge array.
            stress: retention stress of the read (temperature and
                interval, 1.0 = the test condition); gates the weak
                cell population.

        Returns:
            ``(rows, cols)`` coordinate arrays of cells whose read-out
            is corrupted.
        """
        rng = self._rng
        rows_list = []
        cols_list = []

        if len(self.weak_row):
            hit = ((self.weak_threshold <= stress)
                   & (charge[self.weak_row, self.weak_phys] == 1))
            rows_list.append(self.weak_row[hit])
            cols_list.append(self.weak_phys[hit])

        n_cells = self.n_rows * self.row_bits
        n_soft = rng.poisson(self.spec.soft_error_rate * n_cells)
        if n_soft:
            flat = rng.integers(0, n_cells, size=n_soft)
            rows_list.append(flat // self.row_bits)
            cols_list.append(flat % self.row_bits)

        if len(self.vrt_row):
            toggle = rng.random(len(self.vrt_row)) < self.spec.vrt_toggle_prob
            self.vrt_leaky = self.vrt_leaky ^ toggle
            hit = (self.vrt_leaky & (self.vrt_threshold <= stress)
                   & (charge[self.vrt_row, self.vrt_phys] == 1))
            rows_list.append(self.vrt_row[hit])
            cols_list.append(self.vrt_phys[hit])

        if len(self.marginal_row):
            coin = rng.random(len(self.marginal_row))
            hit = ((coin < self.spec.marginal_fail_prob)
                   & (self.marginal_threshold <= stress)
                   & (charge[self.marginal_row, self.marginal_phys] == 1))
            rows_list.append(self.marginal_row[hit])
            cols_list.append(self.marginal_phys[hit])

        if not rows_list:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return (np.concatenate(rows_list).astype(np.int64),
                np.concatenate(cols_list).astype(np.int64))

"""A DRAM bank: the unit of storage and failure evaluation.

The bank stores its rows as a 2-D uint8 array in *charge domain,
physical column order*. That representation makes the data-dependent
failure model a direct vectorised evaluation (physical neighbours are
adjacent array columns; charged == 1 regardless of true/anti cell
polarity) while the system-facing interface handles both the vendor
address scrambling and the true/anti-cell data inversion.

True vs. anti cells: a *true* cell stores data '1' as charge, an *anti*
cell stores data '0' as charge (paper footnote 3). We model polarity
per row - sense-amplifier orientation alternates between rows - via an
``anti`` row mask applied at the read/write boundary.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._kernels import reference_kernels_enabled
from .cells import CoupledCellPopulation
from .faults import RandomFaultModel
from .mapping import AddressMapping

__all__ = ["Bank"]


class Bank:
    """A 2-D array of DRAM cells with coupling and fault populations.

    Args:
        mapping: system<->physical address mapping for this bank.
        n_rows: number of rows.
        coupled: data-dependent failure population.
        faults: random (non-data-dependent) failure injector.
        anti_rows: bool array per row; True rows hold anti cells. The
            default alternates polarity every row.
        rng: randomness source for per-exposure failure coin flips.
    """

    def __init__(self, mapping: AddressMapping, n_rows: int,
                 coupled: CoupledCellPopulation,
                 faults: RandomFaultModel,
                 rng: np.random.Generator,
                 anti_rows: Optional[np.ndarray] = None) -> None:
        if n_rows < 1:
            raise ValueError("a bank needs at least one row")
        self.mapping = mapping
        self.n_rows = n_rows
        self.row_bits = mapping.row_bits
        self.coupled = coupled
        self.faults = faults
        self._rng = rng
        if anti_rows is None:
            anti_rows = (np.arange(n_rows) % 2).astype(bool)
        if len(anti_rows) != n_rows:
            raise ValueError("anti_rows length must equal n_rows")
        self.anti_rows = np.asarray(anti_rows, dtype=bool)
        #: retention stress of retention reads (1.0 = 45 degC / 4 s).
        self.stress = 1.0
        #: optional injected device-noise model (substrate chaos).
        #: Noise is unioned into every retention read's failures -
        #: it can only add observed corruption, never cancel a flip.
        self.noise = None
        #: charge state, physical order: shape (n_rows, row_bits).
        self.charge = np.zeros((n_rows, self.row_bits), dtype=np.uint8)

    # -- system-facing I/O --------------------------------------------

    def _to_charge(self, rows: np.ndarray, data_sys: np.ndarray
                   ) -> np.ndarray:
        """Scramble + polarity-invert system-order data rows."""
        phys = data_sys[..., self.mapping.phys_to_sys()]
        anti = self.anti_rows[rows]
        return phys ^ np.asarray(anti, dtype=np.uint8)[..., None]

    def write_row(self, row: int, data_sys: np.ndarray) -> None:
        """Write one row given system-order data bits (0/1)."""
        self._check_row(row)
        data_sys = np.asarray(data_sys, dtype=np.uint8)
        if data_sys.shape != (self.row_bits,):
            raise ValueError(
                f"row data must have shape ({self.row_bits},)")
        self.charge[row] = self._to_charge(np.asarray([row]),
                                           data_sys[None, :])[0]

    def write_rows(self, rows: np.ndarray, data_sys: np.ndarray) -> None:
        """Write several rows at once (vectorised)."""
        rows = np.asarray(rows)
        data_sys = np.asarray(data_sys, dtype=np.uint8)
        if data_sys.ndim == 1 and not reference_kernels_enabled():
            # Broadcast write: scramble the single row once (memoized
            # on the shared vendor mapping), then apply the per-row
            # polarity with one outer XOR instead of gathering the
            # permutation for every row.
            scrambled = self.mapping.scramble_cached(data_sys)
            anti = self.anti_rows[rows].astype(np.uint8)
            self.charge[rows] = scrambled[None, :] ^ anti[:, None]
            return
        if data_sys.ndim == 1:
            data_sys = np.broadcast_to(data_sys, (len(rows), self.row_bits))
        self.charge[rows] = self._to_charge(rows, data_sys)

    def write_rows_patched(self, rows: np.ndarray, base: int,
                           spans: Optional[Tuple[np.ndarray, np.ndarray,
                                                 int, int]] = None,
                           points: Optional[Tuple[np.ndarray, np.ndarray,
                                                  int]] = None) -> None:
        """Write rows that are a constant background plus sparse patches.

        Equivalent to building the full system-order array - ``base``
        everywhere, then ``spans`` of ``size`` system bits overwritten
        with their value, then individual ``points`` overwritten last -
        and calling :meth:`write_rows`, but scatters only the patched
        positions into the charge array instead of scrambling whole
        rows.  This is the write primitive of the recursive region
        test, whose patches shrink with the region size.

        Args:
            rows: bank row indices being written.
            base: background bit value (0/1) in system order.
            spans: ``(row_idx, starts, size, value)`` - for each span,
                ``row_idx`` indexes into ``rows`` and system columns
                ``starts .. starts+size`` take ``value``.
            points: ``(row_idx, sys_cols, value)`` - individual bits,
                applied after the spans.
        """
        rows = np.asarray(rows)
        n = len(rows)
        patch_cells = (0 if spans is None else len(spans[0]) * spans[2]) \
            + (0 if points is None else len(points[0]))
        if patch_cells * 2 > n * self.row_bits:
            # Dense fallback: the patches cover most of the rows, so
            # materialising the system-order data and scrambling it
            # wholesale is cheaper than scattering.
            data = np.full((n, self.row_bits), base, dtype=np.uint8)
            if spans is not None:
                row_idx, starts, size, value = spans
                for r, s in zip(row_idx.tolist(), starts.tolist()):
                    data[r, s:s + size] = value
            if points is not None:
                row_idx, cols, value = points
                data[row_idx, cols] = value
            self.charge[rows] = self._to_charge(rows, data)
            return

        anti = self.anti_rows[rows].astype(np.uint8)
        block = np.empty((n, self.row_bits), dtype=np.uint8)
        block[:] = (np.uint8(base) ^ anti)[:, None]
        s2p = self.mapping.sys_to_phys()
        if spans is not None and len(spans[0]):
            row_idx, starts, size, value = spans
            sys_idx = starts[:, None] + np.arange(size, dtype=np.int64)
            rr = np.repeat(row_idx, size)
            block[rr, s2p[sys_idx.ravel()]] = np.uint8(value) ^ anti[rr]
        if points is not None and len(points[0]):
            row_idx, cols, value = points
            block[row_idx, s2p[cols]] = np.uint8(value) ^ anti[row_idx]
        self.charge[rows] = block

    def write_all(self, data_sys: np.ndarray) -> None:
        """Write every row with the same (or per-row) system-order data."""
        self.write_rows(np.arange(self.n_rows), data_sys)

    def read_row(self, row: int) -> np.ndarray:
        """Immediate (non-retention) read of one row, system order."""
        self._check_row(row)
        data_phys = self.charge[row] ^ np.uint8(self.anti_rows[row])
        return data_phys[self.mapping.sys_to_phys()]

    # -- retention reads ------------------------------------------------

    def _retention_flips(self, visible_rows: Optional[np.ndarray] = None
                         ) -> Tuple[np.ndarray, np.ndarray,
                                    np.ndarray, np.ndarray]:
        """One retention wait: flip events plus forced noise coords.

        Returns ``(rows, sys_cols, noise_rows, noise_sys)``.  The first
        pair are flip *events* (XOR semantics - an even number of
        events on a cell cancels); the second pair are injected-noise
        coordinates with forced-corruption (union) semantics.

        With ``visible_rows`` the coupled-cell evaluation is restricted
        to victims living in those rows.  Their outcome distribution is
        identical to a full-bank evaluation (victims are independent),
        but the RNG draw *count* differs, so this is only safe on a
        freshly reseeded stream that is discarded or restored
        afterwards (the re-vote path) - never on the sequential
        single-pass stream.  The random-fault model still runs
        bank-wide (it is stateful).
        """
        coupled = self.coupled
        if visible_rows is not None:
            coupled = coupled.subset(np.isin(coupled.row, visible_rows))
        fail = coupled.evaluate_failures(self.charge, self._rng,
                                         stress=self.stress)
        rows = coupled.row[fail]
        phys = coupled.phys[fail]
        f_rows, f_phys = self.faults.retention_flips(self.charge,
                                             stress=self.stress)
        rows = np.concatenate([rows, f_rows])
        phys = np.concatenate([phys, f_phys])
        sys_cols = self.mapping.phys_to_sys()[phys]
        empty = np.empty(0, dtype=np.int64)
        if self.noise is None:
            return rows, sys_cols, empty, empty
        n_rows, n_phys = self.noise.flips()
        n_sys = (self.mapping.phys_to_sys()[n_phys] if len(n_phys)
                 else empty)
        return rows, sys_cols, n_rows, n_sys

    def retention_failures(self) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate one retention wait; return failing coordinates.

        Returns:
            ``(rows, sys_cols)`` of all cells whose read-back after the
            retention interval mismatches what was written - the union
            of data-dependent flips, random-fault flips, and any
            injected device noise, exactly the observable a
            system-level test sees.
        """
        rows, sys_cols, n_rows, n_sys = self._retention_flips()
        if len(n_rows):
            rows = np.concatenate([rows, n_rows])
            sys_cols = np.concatenate([sys_cols, n_sys])
        return rows, sys_cols

    def retention_read_rows(self, rows: np.ndarray,
                            coupled_rows_only: bool = False
                            ) -> np.ndarray:
        """Retention read restricted to ``rows``; system-order data.

        Used by the recursive test, which only ever inspects the rows
        that host its victim cells. Random-fault injection still runs
        bank-wide (the fault model is stateful) but only flips landing
        in ``rows`` are visible, as in a real partial read.
        ``coupled_rows_only`` restricts the coupled-cell evaluation to
        ``rows`` as well (see :meth:`_retention_flips` for when that
        is safe).
        """
        rows = np.asarray(rows)
        f_rows, f_cols, n_rows_, n_cols = self._retention_flips(
            visible_rows=rows if coupled_rows_only else None)
        data_phys = self.charge[rows] ^ self.anti_rows[rows, None].astype(
            np.uint8)
        data_sys = data_phys[:, self.mapping.sys_to_phys()]
        noise_idx = noise_cols = noise_written = None
        if len(n_rows_):
            # Forced corruption: capture the written values now so the
            # injected cells read back wrong regardless of how many
            # flip events also landed on them (union, not XOR).
            pos = np.full(self.n_rows, -1, dtype=np.int64)
            pos[rows] = np.arange(len(rows), dtype=np.int64)
            ni = pos[n_rows_]
            vis = ni >= 0
            noise_idx = ni[vis]
            noise_cols = n_cols[vis]
            noise_written = data_sys[noise_idx, noise_cols].copy()
        if reference_kernels_enabled():
            row_pos = {int(r): i for i, r in enumerate(rows)}
            for r, c in zip(f_rows, f_cols):
                i = row_pos.get(int(r))
                if i is not None:
                    data_sys[i, c] ^= 1
        elif len(f_rows):
            # Vectorised scatter with the same semantics as the loop:
            # for duplicate rows the last occurrence wins, and repeated
            # flips at one coordinate toggle repeatedly (xor.at).
            pos = np.full(self.n_rows, -1, dtype=np.int64)
            pos[rows] = np.arange(len(rows), dtype=np.int64)
            i = pos[f_rows]
            visible = i >= 0
            np.bitwise_xor.at(data_sys, (i[visible], f_cols[visible]),
                              np.uint8(1))
        if noise_idx is not None and len(noise_idx):
            data_sys[noise_idx, noise_cols] = noise_written ^ np.uint8(1)
        return data_sys

    def retention_check_cells(self, rows: np.ndarray,
                              check_row_idx: np.ndarray,
                              check_cols: np.ndarray,
                              coupled_rows_only: bool = False
                              ) -> np.ndarray:
        """One retention wait; did specific cells read back corrupted?

        The batched verification primitive: instead of materialising
        the observed data of every row and comparing per cell, the
        (sparse) retention flip coordinates are matched against the
        checked cells directly.

        Args:
            rows: bank rows that were written (and are now read).
            check_row_idx: per checked cell, index into ``rows``.
            check_cols: per checked cell, system column.
            coupled_rows_only: restrict the coupled-cell evaluation to
                ``rows`` (see :meth:`_retention_flips` for when that
                is safe).

        Returns:
            Boolean array over the checked cells: True where the
            read-back value differs from what was written (an odd
            number of flip events landed on the cell).
        """
        f_rows, f_cols, n_rows_, n_cols = self._retention_flips(
            visible_rows=rows if coupled_rows_only else None)
        check_enc = (rows[check_row_idx].astype(np.int64) * self.row_bits
                     + check_cols)
        corrupted = np.zeros(len(check_enc), dtype=bool)
        if len(f_rows):
            enc = f_rows.astype(np.int64) * self.row_bits + f_cols
            uniq, counts = np.unique(enc, return_counts=True)
            odd = uniq[counts % 2 == 1]
            corrupted = np.isin(check_enc, odd)
        if len(n_rows_):
            # Injected noise forces corruption - OR it in after the
            # odd-count logic so it can never cancel a flip event.
            noise_enc = n_rows_.astype(np.int64) * self.row_bits + n_cols
            corrupted |= np.isin(check_enc, noise_enc)
        return corrupted

    def retention_read_all(self) -> np.ndarray:
        """Full-bank retention read, system order (observed data)."""
        return self.retention_read_rows(np.arange(self.n_rows))

    # -- helpers ----------------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.n_rows:
            raise ValueError(f"row {row} out of range [0, {self.n_rows})")

"""A DRAM bank: the unit of storage and failure evaluation.

The bank stores its rows bit-packed: ``charge_words`` is a 2-D
``uint64`` array in *charge domain, physical column order*, with
physical column ``p`` in bit ``p % 64`` of word ``p // 64`` (the layout
contract lives in :mod:`repro._kernels` and ``docs/KERNELS.md``). That
representation makes the write / decay / readback hot paths word-wise
boolean algebra (physical neighbours are adjacent bits; charged == 1
regardless of true/anti cell polarity) while the system-facing
interface handles both the vendor address scrambling and the true/anti
cell data inversion.

**Equivalence invariant.** Packing is representation only: the
:attr:`~Bank.charge` property unpacks to exactly the dense uint8 array
the bank historically stored, and every operation - reference kernels
(:func:`repro._kernels.reference_kernels`) or packed kernels - leaves
``unpack(charge_words)`` in the same state and consumes the bank RNG
identically.  ``tests/runtime/test_kernel_differential.py`` and
``tests/runtime/test_packed_kernels.py`` enforce this differentially.

True vs. anti cells: a *true* cell stores data '1' as charge, an *anti*
cell stores data '0' as charge (paper footnote 3). We model polarity
per row - sense-amplifier orientation alternates between rows - via an
``anti`` row mask applied at the read/write boundary.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._kernels import (clear_rows_masks, gather_bits, or_rows_masks,
                        pack_rows, packed_words, reference_kernels_enabled,
                        scatter_assign_bits, scatter_flip_bits,
                        scatter_span_masks, tail_mask, unpack_rows)
from .cells import CoupledCellPopulation
from .faults import RandomFaultModel
from .mapping import AddressMapping

__all__ = ["Bank"]

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class Bank:
    """A 2-D array of DRAM cells with coupling and fault populations.

    Args:
        mapping: system<->physical address mapping for this bank.
        n_rows: number of rows.
        coupled: data-dependent failure population.
        faults: random (non-data-dependent) failure injector.
        anti_rows: bool array per row; True rows hold anti cells. The
            default alternates polarity every row.
        rng: randomness source for per-exposure failure coin flips.
    """

    def __init__(self, mapping: AddressMapping, n_rows: int,
                 coupled: CoupledCellPopulation,
                 faults: RandomFaultModel,
                 rng: np.random.Generator,
                 anti_rows: Optional[np.ndarray] = None) -> None:
        if n_rows < 1:
            raise ValueError("a bank needs at least one row")
        self.mapping = mapping
        self.n_rows = n_rows
        self.row_bits = mapping.row_bits
        self.coupled = coupled
        self.faults = faults
        self._rng = rng
        if anti_rows is None:
            anti_rows = (np.arange(n_rows) % 2).astype(bool)
        if len(anti_rows) != n_rows:
            raise ValueError("anti_rows length must equal n_rows")
        self.anti_rows = np.asarray(anti_rows, dtype=bool)
        #: retention stress of retention reads (1.0 = 45 degC / 4 s).
        self.stress = 1.0
        #: optional injected device-noise model (substrate chaos).
        #: Noise is unioned into every retention read's failures -
        #: it can only add observed corruption, never cancel a flip.
        self.noise = None
        #: optional on-die ECC stage (:class:`repro.ecc.OnDieEcc`).
        #: When attached, every retention read is routed through
        #: :meth:`_observed_errors`, which collapses the raw flip/noise
        #: events into the per-cell error set and passes it through the
        #: per-word SEC-DED decode - readers then see the
        #: post-correction view (or, in recovery mode, the un-distorted
        #: raw set).
        self.ecc = None
        self._n_words = packed_words(self.row_bits)
        self._tail = tail_mask(self.row_bits)
        #: charge state, physical order, bit-packed: shape
        #: (n_rows, packed_words(row_bits)), uint64, LSB-first.
        self.charge_words = np.zeros((n_rows, self._n_words),
                                     dtype=np.uint64)

    @property
    def charge(self) -> np.ndarray:
        """Charge state as a dense uint8 ``(n_rows, row_bits)`` array.

        Unpacked view of :attr:`charge_words` (a fresh array, not a
        live view - mutations do not write back).  This is the array
        the bank historically stored; the reference kernels and
        external inspectors still consume it.
        """
        return unpack_rows(self.charge_words, self.row_bits)

    # -- system-facing I/O --------------------------------------------

    def _to_charge(self, rows: np.ndarray, data_sys: np.ndarray
                   ) -> np.ndarray:
        """Scramble + polarity-invert system-order data rows (dense)."""
        phys = data_sys[..., self.mapping.phys_to_sys()]
        anti = self.anti_rows[rows]
        return phys ^ np.asarray(anti, dtype=np.uint8)[..., None]

    def write_row(self, row: int, data_sys: np.ndarray) -> None:
        """Write one row given system-order data bits (0/1)."""
        self._check_row(row)
        data_sys = np.asarray(data_sys, dtype=np.uint8)
        if data_sys.shape != (self.row_bits,):
            raise ValueError(
                f"row data must have shape ({self.row_bits},)")
        self.charge_words[row] = pack_rows(
            self._to_charge(np.asarray([row]), data_sys[None, :])[0])

    def write_rows(self, rows: np.ndarray, data_sys: np.ndarray) -> None:
        """Write several rows at once (vectorised)."""
        rows = np.asarray(rows)
        data_sys = np.asarray(data_sys, dtype=np.uint8)
        if data_sys.ndim == 1 and not reference_kernels_enabled():
            # Broadcast write: scramble + pack the single row once
            # (memoized on the shared vendor mapping, both polarities),
            # then one np.where selects the per-row polarity - the
            # whole write moves words, never cells.
            plain, inverted = self.mapping.scramble_packed(data_sys)
            anti = self.anti_rows[rows]
            self.charge_words[rows] = np.where(anti[:, None], inverted,
                                               plain)
            return
        if data_sys.ndim == 1:
            data_sys = np.broadcast_to(data_sys, (len(rows), self.row_bits))
        self.charge_words[rows] = pack_rows(self._to_charge(rows, data_sys))

    def write_rows_patched(self, rows: np.ndarray, base: int,
                           spans: Optional[Tuple[np.ndarray, np.ndarray,
                                                 int, int]] = None,
                           points: Optional[Tuple[np.ndarray, np.ndarray,
                                                  int]] = None) -> None:
        """Write rows that are a constant background plus sparse patches.

        Equivalent to building the full system-order array - ``base``
        everywhere, then ``spans`` of ``size`` system bits overwritten
        with their value, then individual ``points`` overwritten last -
        and calling :meth:`write_rows`, but combines pre-packed span
        masks word-wise instead of scrambling whole rows.  This is the
        write primitive of the recursive region test, whose patches
        shrink with the region size.

        Args:
            rows: bank row indices being written.
            base: background bit value (0/1) in system order.
            spans: ``(row_idx, starts, size, value)`` - for each span,
                ``row_idx`` indexes into ``rows`` and system columns
                ``starts .. starts+size`` take ``value``.
            points: ``(row_idx, sys_cols, value)`` - individual bits,
                applied after the spans.
        """
        rows = np.asarray(rows)
        n = len(rows)
        if reference_kernels_enabled():
            # Reference: materialise the dense system-order data and
            # write it wholesale - the executable specification the
            # packed path below must match bit for bit.
            data = np.full((n, self.row_bits), base, dtype=np.uint8)
            if spans is not None:
                row_idx, starts, size, value = spans
                for r, s in zip(row_idx.tolist(), starts.tolist()):
                    data[r, s:s + size] = value
            if points is not None:
                row_idx, cols, value = points
                data[row_idx, cols] = value
            self.charge_words[rows] = pack_rows(self._to_charge(rows, data))
            return

        anti = self.anti_rows[rows]
        # Background fill in charge domain: base XOR polarity per row.
        fill = (np.uint8(base) ^ anti.astype(np.uint8)).astype(bool)
        block = np.zeros((n, self._n_words), dtype=np.uint64)
        block[fill] = _ONES
        block[:, -1] &= self._tail
        if spans is not None and len(spans[0]):
            row_idx, starts, size, value = spans
            starts = np.asarray(starts, dtype=np.int64)
            charged = (np.uint8(value) ^ anti[row_idx].astype(np.uint8)
                       ).astype(bool)
            if self.row_bits % size == 0 and not (starts % size).any():
                # Region-aligned spans (the recursion's case): apply
                # the cached sparse masks - O(region bits), not O(row).
                word_idx, masks = self.mapping.region_masks_sparse(size)
                g = starts // size
                scatter_span_masks(block, row_idx, word_idx[g], masks[g],
                                   charged)
            else:
                masks = self.mapping.span_masks(starts, size)
                or_rows_masks(block, row_idx[charged], masks[charged])
                clear_rows_masks(block, row_idx[~charged],
                                 masks[~charged])
        if points is not None and len(points[0]):
            row_idx, cols, value = points
            charge_v = np.uint8(value) ^ anti[row_idx].astype(np.uint8)
            scatter_assign_bits(block, row_idx,
                                self.mapping.sys_to_phys()[cols], charge_v)
        self.charge_words[rows] = block

    def write_all(self, data_sys: np.ndarray) -> None:
        """Write every row with the same (or per-row) system-order data."""
        self.write_rows(np.arange(self.n_rows), data_sys)

    def read_row(self, row: int) -> np.ndarray:
        """Immediate (non-retention) read of one row, system order."""
        self._check_row(row)
        data_phys = (unpack_rows(self.charge_words[row], self.row_bits)
                     ^ np.uint8(self.anti_rows[row]))
        return data_phys[self.mapping.sys_to_phys()]

    # -- retention reads ------------------------------------------------

    def _retention_flips(self, visible_rows: Optional[np.ndarray] = None
                         ) -> Tuple[np.ndarray, np.ndarray,
                                    np.ndarray, np.ndarray]:
        """One retention wait: flip events plus forced noise coords.

        Returns ``(rows, sys_cols, noise_rows, noise_sys)``.  The first
        pair are flip *events* (XOR semantics - an even number of
        events on a cell cancels); the second pair are injected-noise
        coordinates with forced-corruption (union) semantics.

        With ``visible_rows`` the coupled-cell evaluation is restricted
        to victims living in those rows.  Their outcome distribution is
        identical to a full-bank evaluation (victims are independent),
        but the RNG draw *count* differs, so this is only safe on a
        freshly reseeded stream that is discarded or restored
        afterwards (the re-vote path) - never on the sequential
        single-pass stream.  The random-fault model still runs
        bank-wide (it is stateful).
        """
        coupled = self.coupled
        if visible_rows is not None:
            coupled = coupled.subset(np.isin(coupled.row, visible_rows))
        if reference_kernels_enabled():
            charge = self.charge  # unpack once, share across evaluators
            fail = coupled.evaluate_failures(charge, self._rng,
                                             stress=self.stress)
            f_rows, f_phys = self.faults.retention_flips(
                charge, stress=self.stress)
        else:
            fail = coupled.evaluate_failures_packed(
                self.charge_words, self._rng, stress=self.stress)
            f_rows, f_phys = self.faults.retention_flips_packed(
                self.charge_words, stress=self.stress)
        rows = coupled.row[fail]
        phys = coupled.phys[fail]
        rows = np.concatenate([rows, f_rows])
        phys = np.concatenate([phys, f_phys])
        sys_cols = self.mapping.phys_to_sys()[phys]
        empty = np.empty(0, dtype=np.int64)
        if self.noise is None:
            return rows, sys_cols, empty, empty
        n_rows, n_phys = self.noise.flips()
        n_sys = (self.mapping.phys_to_sys()[n_phys] if len(n_phys)
                 else empty)
        return rows, sys_cols, n_rows, n_sys

    def _observed_errors(self, visible_rows: Optional[np.ndarray] = None
                         ) -> Tuple[np.ndarray, np.ndarray,
                                    np.ndarray, np.ndarray]:
        """One retention wait as the *observable* error coordinates.

        Without an ECC stage - or with the *null code* attached, which
        is the identity by construction - this is
        :meth:`_retention_flips` verbatim (flip events with XOR
        semantics plus separate forced-noise coords).  With a real
        code the raw event/noise streams are routed through the
        stage's :meth:`~repro.ecc.OnDieEcc.transform_read`, which
        groups them into 64-bit words, derives each word's physical
        error set, and returns the post-stage view.  In recovery mode
        that transform is event-preserving for exactly-inverted words
        (the streams pass through verbatim, duplicates and all), so a
        fully recovered read is byte-identical to the ECC-off channel
        for every downstream consumer - including multiplicity-
        sensitive ones like the discovery fail-count histogram.
        """
        rows, sys_cols, n_rows, n_sys = self._retention_flips(
            visible_rows)
        if self.ecc is None or self.ecc.code is None:
            return rows, sys_cols, n_rows, n_sys
        empty = np.empty(0, dtype=np.int64)
        s2p = self.mapping.sys_to_phys()
        e_phys = s2p[sys_cols] if len(sys_cols) else empty
        n_phys = s2p[n_sys] if len(n_sys) else empty
        o_rows, o_phys, on_rows, on_phys = self.ecc.transform_read(
            rows, e_phys, n_rows, n_phys, self.row_bits)
        p2s = self.mapping.phys_to_sys()
        o_sys = p2s[o_phys] if len(o_phys) else empty
        on_sys = p2s[on_phys] if len(on_phys) else empty
        return o_rows, o_sys, on_rows, on_sys

    def retention_failures(self) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate one retention wait; return failing coordinates.

        Returns:
            ``(rows, sys_cols)`` of all cells whose read-back after the
            retention interval mismatches what was written - the union
            of data-dependent flips, random-fault flips, and any
            injected device noise, exactly the observable a
            system-level test sees - after the on-die ECC stage, when
            one is attached.
        """
        rows, sys_cols, n_rows, n_sys = self._observed_errors()
        if len(n_rows):
            rows = np.concatenate([rows, n_rows])
            sys_cols = np.concatenate([sys_cols, n_sys])
        return rows, sys_cols

    def retention_read_rows(self, rows: np.ndarray,
                            coupled_rows_only: bool = False
                            ) -> np.ndarray:
        """Retention read restricted to ``rows``; system-order data.

        Used by the recursive test, which only ever inspects the rows
        that host its victim cells. Random-fault injection still runs
        bank-wide (the fault model is stateful) but only flips landing
        in ``rows`` are visible, as in a real partial read.
        ``coupled_rows_only`` restricts the coupled-cell evaluation to
        ``rows`` as well (see :meth:`_retention_flips` for when that
        is safe).
        """
        rows = np.asarray(rows)
        f_rows, f_cols, n_rows_, n_cols = self._observed_errors(
            visible_rows=rows if coupled_rows_only else None)
        if reference_kernels_enabled():
            data_phys = self.charge[rows] ^ self.anti_rows[
                rows, None].astype(np.uint8)
            data_sys = data_phys[:, self.mapping.sys_to_phys()]
            noise_idx = noise_cols = noise_written = None
            if len(n_rows_):
                # Forced corruption: capture the written values now so
                # the injected cells read back wrong regardless of how
                # many flip events also landed on them (union, not XOR).
                pos = np.full(self.n_rows, -1, dtype=np.int64)
                pos[rows] = np.arange(len(rows), dtype=np.int64)
                ni = pos[n_rows_]
                vis = ni >= 0
                noise_idx = ni[vis]
                noise_cols = n_cols[vis]
                noise_written = data_sys[noise_idx, noise_cols].copy()
            row_pos = {int(r): i for i, r in enumerate(rows)}
            for r, c in zip(f_rows, f_cols):
                i = row_pos.get(int(r))
                if i is not None:
                    data_sys[i, c] ^= 1
            if noise_idx is not None and len(noise_idx):
                data_sys[noise_idx, noise_cols] = (noise_written
                                                   ^ np.uint8(1))
            return data_sys

        # Packed path: stay word-wise until the final unpack.  Flips
        # and noise arrive in system columns; apply them at the
        # corresponding physical bits, then unpack and descramble.
        s2p = self.mapping.sys_to_phys()
        words = self.charge_words[rows].copy()
        anti = self.anti_rows[rows]
        inv = np.where(anti, _ONES, np.uint64(0))
        words ^= inv[:, None]
        words[:, -1] &= self._tail
        pos = np.full(self.n_rows, -1, dtype=np.int64)
        pos[rows] = np.arange(len(rows), dtype=np.int64)
        noise_idx = noise_phys = noise_written = None
        if len(n_rows_):
            ni = pos[n_rows_]
            vis = ni >= 0
            noise_idx = ni[vis]
            noise_phys = s2p[n_cols[vis]]
            noise_written = gather_bits(words, noise_idx, noise_phys)
        if len(f_rows):
            i = pos[f_rows]
            visible = i >= 0
            scatter_flip_bits(words, i[visible], s2p[f_cols[visible]])
        if noise_idx is not None and len(noise_idx):
            scatter_assign_bits(words, noise_idx, noise_phys,
                                noise_written ^ np.uint8(1))
        data_phys = unpack_rows(words, self.row_bits)
        return data_phys[:, s2p]

    def retention_check_cells(self, rows: np.ndarray,
                              check_row_idx: np.ndarray,
                              check_cols: np.ndarray,
                              coupled_rows_only: bool = False
                              ) -> np.ndarray:
        """One retention wait; did specific cells read back corrupted?

        The batched verification primitive: instead of materialising
        the observed data of every row and comparing per cell, the
        (sparse) retention flip coordinates are matched against the
        checked cells directly.

        Args:
            rows: bank rows that were written (and are now read).
            check_row_idx: per checked cell, index into ``rows``.
            check_cols: per checked cell, system column.
            coupled_rows_only: restrict the coupled-cell evaluation to
                ``rows`` (see :meth:`_retention_flips` for when that
                is safe).

        Returns:
            Boolean array over the checked cells: True where the
            read-back value differs from what was written (an odd
            number of flip events landed on the cell).
        """
        f_rows, f_cols, n_rows_, n_cols = self._observed_errors(
            visible_rows=rows if coupled_rows_only else None)
        check_enc = (rows[check_row_idx].astype(np.int64) * self.row_bits
                     + check_cols)
        corrupted = np.zeros(len(check_enc), dtype=bool)
        if len(f_rows):
            # Sort the (small) flip set, keep the coordinates hit an
            # odd number of times, and membership-test the checked
            # cells with a binary search - cheaper than unique + isin
            # but the same set arithmetic.
            enc = np.sort(f_rows.astype(np.int64) * self.row_bits
                          + f_cols)
            starts = np.flatnonzero(np.concatenate(
                ([True], enc[1:] != enc[:-1])))
            counts = np.diff(np.append(starts, len(enc)))
            odd = enc[starts[counts % 2 == 1]]
            corrupted = self._sorted_member(odd, check_enc)
        if len(n_rows_):
            # Injected noise forces corruption - OR it in after the
            # odd-count logic so it can never cancel a flip event.
            noise_enc = np.sort(n_rows_.astype(np.int64) * self.row_bits
                                + n_cols)
            corrupted |= self._sorted_member(noise_enc, check_enc)
        return corrupted

    @staticmethod
    def _sorted_member(sorted_vals: np.ndarray, queries: np.ndarray
                       ) -> np.ndarray:
        """Membership of ``queries`` in a sorted value array."""
        if not len(sorted_vals):
            return np.zeros(len(queries), dtype=bool)
        pos = np.searchsorted(sorted_vals, queries)
        pos[pos == len(sorted_vals)] = len(sorted_vals) - 1
        return sorted_vals[pos] == queries

    def retention_read_all(self) -> np.ndarray:
        """Full-bank retention read, system order (observed data)."""
        return self.retention_read_rows(np.arange(self.n_rows))

    # -- helpers ----------------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.n_rows:
            raise ValueError(f"row {row} out of range [0, {self.n_rows})")

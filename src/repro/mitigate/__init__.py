"""Failure-mitigation mechanisms enabled by PARBOR's failure maps.

The paper's Section 1 motivates system-level detection as the enabler
of "better scaling of DRAM by manufacturing smaller and unreliable
cells, but providing reliability guarantees by detecting and
mitigating failures at the system level" (its refs [6, 35, 47, 59,
62]). This subpackage implements the classic mitigation mechanisms its
ref [35] (Khan et al., SIGMETRICS 2014) compares - word-level ECC and
row retirement - on top of a PARBOR campaign's detected failure map,
plus a comparison driver that reports each mechanism's coverage and
overhead.
"""

from .compare import MitigationReport, compare_mitigations
from .ecc import CLASSES, EccReport, SecDedCode, ecc_coverage
from .retire import RetirementReport, row_retirement

__all__ = [
    "CLASSES", "EccReport", "MitigationReport", "RetirementReport",
    "SecDedCode", "compare_mitigations", "ecc_coverage",
    "row_retirement",
]

"""Side-by-side comparison of mitigation mechanisms on one chip.

Given one PARBOR campaign, report what each mechanism would cost and
cover - the system-level trade-off study that detection enables (the
paper's ref [35] runs this comparison on real chips; we run it on the
simulated ones):

* **ECC (SEC-DED)**: 12.5% storage overhead; covers words with at most
  one vulnerable cell.
* **Row retirement**: total coverage; costs the retired capacity.
* **DC-REF / RAIDR refresh binning**: no capacity cost; covers
  retention-class failures by refreshing vulnerable rows fast (rated
  here by the fraction of rows kept at the fast rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.detector import ParborResult
from ..dram.chip import DramChip
from .ecc import EccReport, SecDedCode, ecc_coverage
from .retire import RetirementReport, row_retirement

__all__ = ["MitigationReport", "compare_mitigations"]


@dataclass
class MitigationRow:
    """One mechanism's coverage/overhead summary."""

    mechanism: str
    coverage: float
    overhead_kind: str
    overhead: float


@dataclass
class MitigationReport:
    """The full comparison for one chip."""

    rows: List[MitigationRow]
    ecc: EccReport
    retirement: RetirementReport

    def as_table_rows(self) -> List[List[str]]:
        return [[r.mechanism, f"{r.coverage:.1%}", r.overhead_kind,
                 f"{r.overhead:.1%}"] for r in self.rows]


def compare_mitigations(chip: DramChip, result: ParborResult,
                        code: SecDedCode = SecDedCode()
                        ) -> MitigationReport:
    """Build the mechanism comparison from a campaign's failure map.

    Args:
        chip: the characterised chip (for geometry).
        result: the PARBOR campaign against it.
        code: ECC geometry for the SEC-DED row.

    Returns:
        A :class:`MitigationReport`.
    """
    ecc = ecc_coverage(result.detected, code)
    retirement = row_retirement(result.detected, n_chips=1,
                                n_banks=chip.n_banks,
                                n_rows=chip.n_rows)
    vulnerable_row_fraction = (retirement.retired_rows
                               / max(1, retirement.total_rows))

    rows = [
        MitigationRow("ECC (SEC-DED 72,64)", ecc.coverage,
                      "storage", ecc.storage_overhead),
        MitigationRow("Row retirement", 1.0, "capacity",
                      retirement.capacity_overhead),
        MitigationRow("Refresh binning (RAIDR-style)", 1.0,
                      "fast-refresh rows", vulnerable_row_fraction),
    ]
    return MitigationReport(rows=rows, ecc=ecc, retirement=retirement)

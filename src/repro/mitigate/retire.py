"""Row retirement over a PARBOR failure map.

The bluntest mitigation: any row holding a vulnerable cell is removed
from the usable address space (remapped to spare rows by the OS or
memory controller). Coverage is total - no vulnerable cell is ever
used - but the capacity cost is the fraction of rows retired, which
PARBOR's map lets the system compute exactly instead of
over-provisioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

__all__ = ["RetirementReport", "row_retirement"]

Coord = Tuple[int, int, int, int]


@dataclass
class RetirementReport:
    """Cost of retiring every row with a detected failure.

    Attributes:
        retired_rows: rows removed from service.
        total_rows: rows in the analysed memory.
        spare_rows: spare capacity available (0 = none modelled).
    """

    retired_rows: int
    total_rows: int
    spare_rows: int = 0
    quarantined_rows: int = 0

    @property
    def capacity_overhead(self) -> float:
        """Fraction of usable capacity lost."""
        if self.total_rows == 0:
            return 0.0
        uncovered = max(0, self.retired_rows - self.spare_rows)
        return uncovered / self.total_rows

    @property
    def within_spares(self) -> bool:
        return self.retired_rows <= self.spare_rows


def row_retirement(detected: Iterable[Coord], n_chips: int,
                   n_banks: int, n_rows: int,
                   spare_rows: int = 0,
                   quarantine=None) -> RetirementReport:
    """Compute the retirement cost of a failure map.

    Args:
        detected: failure coordinates from a PARBOR campaign.
        n_chips / n_banks / n_rows: memory geometry.
        spare_rows: spare rows available for transparent remapping.
        quarantine: optional :class:`repro.robust.QuarantineSet`;
            rows holding unstable cells are retired too (same
            guardband contract as the refresh bins - an unstable cell
            must never stay in service).

    Returns:
        A :class:`RetirementReport`.  ``quarantined_rows`` counts the
        rows retired *only* because of the quarantine.
    """
    rows: Set[Tuple[int, int, int]] = set()
    for chip, bank, row, _col in detected:
        rows.add((chip, bank, row))
    extra = 0
    if quarantine:
        q_rows = quarantine.rows()
        extra = len(q_rows - rows)
        rows |= q_rows
    return RetirementReport(retired_rows=len(rows),
                            total_rows=n_chips * n_banks * n_rows,
                            spare_rows=spare_rows,
                            quarantined_rows=extra)

"""Word-level ECC over a PARBOR failure map.

SEC-DED (single-error-correct, double-error-detect) codes protect each
64-bit word with 8 check bits (the (72, 64) Hamming code used by
server DIMMs - and modeled bit-exactly by
:class:`repro.ecc.HammingSecDed`). A word containing one vulnerable
cell is *correctable*; a word with exactly two produces a detected but
uncorrectable error; a word with three or more can *miscorrect* - the
decoder flips a healthy bit and the corruption passes silently.
PARBOR's map makes this analysis possible at the system level -
without it, the system cannot even count the vulnerable cells per
word.

The three-way classification is reconciled with the bit-exact code:
``tests/ecc/test_secded.py`` proves every single-bit error decodes
``CORRECTED``, every double-bit error ``DETECTED``, and that
miscorrections only ever arise at three or more simultaneous errors -
exactly the bands :meth:`SecDedCode.classify` assigns from the count
alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

__all__ = ["CLASSES", "SecDedCode", "EccReport", "ecc_coverage"]

Coord = Tuple[int, int, int, int]

#: :meth:`SecDedCode.classify` bands, in increasing severity.
CLASSES = ("clean", "correctable", "detect-only", "miscorrection-prone")


@dataclass(frozen=True)
class SecDedCode:
    """An ECC geometry: data bits per word and check-bit overhead."""

    data_bits: int = 64
    check_bits: int = 8

    @property
    def storage_overhead(self) -> float:
        return self.check_bits / self.data_bits

    def correctable(self, errors_in_word: int) -> bool:
        return errors_in_word <= 1

    def classify(self, errors_in_word: int) -> str:
        """Three-way severity class of a word by vulnerable-cell count.

        ``"correctable"`` (one cell: the decoder fixes it),
        ``"detect-only"`` (two: guaranteed detected, never silently
        wrong, but uncorrectable), ``"miscorrection-prone"`` (three or
        more: the syndrome can alias a single-bit column and the
        decoder then corrupts a healthy cell).  Zero cells is
        ``"clean"``.
        """
        if errors_in_word <= 0:
            return "clean"
        if errors_in_word == 1:
            return "correctable"
        if errors_in_word == 2:
            return "detect-only"
        return "miscorrection-prone"


@dataclass
class EccReport:
    """ECC coverage of one failure map.

    Attributes:
        total_vulnerable_cells: failures in the map.
        words_with_failures: distinct (row, word) groups affected.
        correctable_words: words with exactly one vulnerable cell.
        detect_only_words: words with exactly two - errors are caught
            but not fixed.
        miscorrection_prone_words: words with three or more - the
            decoder may silently corrupt a healthy cell.
        code: the ECC geometry analysed.
    """

    total_vulnerable_cells: int
    words_with_failures: int
    correctable_words: int
    detect_only_words: int
    miscorrection_prone_words: int
    code: SecDedCode

    @property
    def uncorrectable_words(self) -> int:
        """Words with two or more vulnerable cells (legacy two-way view)."""
        return self.detect_only_words + self.miscorrection_prone_words

    @property
    def coverage(self) -> float:
        """Fraction of affected words the code fully protects."""
        if self.words_with_failures == 0:
            return 1.0
        return self.correctable_words / self.words_with_failures

    @property
    def storage_overhead(self) -> float:
        return self.code.storage_overhead


def ecc_coverage(detected: Iterable[Coord],
                 code: SecDedCode = SecDedCode(),
                 quarantine=None) -> EccReport:
    """Analyse a detected-failure map under a word-level ECC.

    Args:
        detected: (chip, bank, row, sys_col) failure coordinates, as
            produced by a PARBOR campaign.
        code: ECC geometry.
        quarantine: optional :class:`repro.robust.QuarantineSet`;
            unstable cells are counted as vulnerable too - an
            intermittent cell still consumes the word's single
            correctable error, so leaving it out would overstate
            coverage.

    Returns:
        An :class:`EccReport`.
    """
    cells = set(detected)
    if quarantine:
        cells |= set(quarantine.reasons)
    words: Dict[Tuple[int, int, int, int], int] = {}
    total = 0
    for chip, bank, row, col in cells:
        total += 1
        key = (chip, bank, row, col // code.data_bits)
        words[key] = words.get(key, 0) + 1

    tally = {name: 0 for name in CLASSES}
    for n in words.values():
        tally[code.classify(n)] += 1
    return EccReport(total_vulnerable_cells=total,
                     words_with_failures=len(words),
                     correctable_words=tally["correctable"],
                     detect_only_words=tally["detect-only"],
                     miscorrection_prone_words=tally["miscorrection-prone"],
                     code=code)

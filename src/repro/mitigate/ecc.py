"""Word-level ECC over a PARBOR failure map.

SEC-DED (single-error-correct, double-error-detect) codes protect each
64-bit word with 8 check bits (the (72, 64) Hamming code used by
server DIMMs). A word containing one vulnerable cell is *correctable*;
a word with two or more vulnerable cells can produce an uncorrectable
(or worse, miscorrected) error if both fail together under the
worst-case content. PARBOR's map makes this analysis possible at the
system level - without it, the system cannot even count the vulnerable
cells per word.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

__all__ = ["SecDedCode", "EccReport", "ecc_coverage"]

Coord = Tuple[int, int, int, int]


@dataclass(frozen=True)
class SecDedCode:
    """An ECC geometry: data bits per word and check-bit overhead."""

    data_bits: int = 64
    check_bits: int = 8

    @property
    def storage_overhead(self) -> float:
        return self.check_bits / self.data_bits

    def correctable(self, errors_in_word: int) -> bool:
        return errors_in_word <= 1


@dataclass
class EccReport:
    """ECC coverage of one failure map.

    Attributes:
        total_vulnerable_cells: failures in the map.
        words_with_failures: distinct (row, word) groups affected.
        correctable_words: words with exactly one vulnerable cell.
        uncorrectable_words: words with two or more.
        code: the ECC geometry analysed.
    """

    total_vulnerable_cells: int
    words_with_failures: int
    correctable_words: int
    uncorrectable_words: int
    code: SecDedCode

    @property
    def coverage(self) -> float:
        """Fraction of affected words the code fully protects."""
        if self.words_with_failures == 0:
            return 1.0
        return self.correctable_words / self.words_with_failures

    @property
    def storage_overhead(self) -> float:
        return self.code.storage_overhead


def ecc_coverage(detected: Iterable[Coord],
                 code: SecDedCode = SecDedCode(),
                 quarantine=None) -> EccReport:
    """Analyse a detected-failure map under a word-level ECC.

    Args:
        detected: (chip, bank, row, sys_col) failure coordinates, as
            produced by a PARBOR campaign.
        code: ECC geometry.
        quarantine: optional :class:`repro.robust.QuarantineSet`;
            unstable cells are counted as vulnerable too - an
            intermittent cell still consumes the word's single
            correctable error, so leaving it out would overstate
            coverage.

    Returns:
        An :class:`EccReport`.
    """
    cells = set(detected)
    if quarantine:
        cells |= set(quarantine.reasons)
    words: Dict[Tuple[int, int, int, int], int] = {}
    total = 0
    for chip, bank, row, col in cells:
        total += 1
        key = (chip, bank, row, col // code.data_bits)
        words[key] = words.get(key, 0) + 1

    correctable = sum(1 for n in words.values() if code.correctable(n))
    return EccReport(total_vulnerable_cells=total,
                     words_with_failures=len(words),
                     correctable_words=correctable,
                     uncorrectable_words=len(words) - correctable,
                     code=code)

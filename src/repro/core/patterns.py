"""Data-pattern library for DRAM testing.

These are the classic march-test backgrounds used to provoke failures
without knowing the scrambler: solids, checkerboards, stripes, and
random backgrounds. PARBOR's discovery phase cycles through them to
find cells whose failures depend on row content (Section 5.2.1); the
random-pattern baseline of Figures 12/13 draws from
:func:`random_pattern`.

Patterns are plain numpy uint8 arrays of 0/1 in *system* order. Every
pattern is conventionally run together with its inverse so both true
and anti cells are exercised (paper footnote 3); :func:`inverse` and
:func:`with_inverses` implement that pairing.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Tuple

import numpy as np

from .._kernels import reference_kernels_enabled

__all__ = [
    "solid", "checkerboard", "column_stripes", "walking_ones", "inverse",
    "random_pattern", "discovery_patterns", "with_inverses",
]


def solid(row_bits: int, value: int) -> np.ndarray:
    """All-0s or all-1s background."""
    if value not in (0, 1):
        raise ValueError(f"value must be 0 or 1, got {value}")
    return np.full(row_bits, value, dtype=np.uint8)


def checkerboard(row_bits: int, period: int = 1, phase: int = 0
                 ) -> np.ndarray:
    """Alternating runs of ``period`` zeros and ones."""
    if period < 1:
        raise ValueError("period must be positive")
    idx = (np.arange(row_bits) + phase) // period
    return (idx % 2).astype(np.uint8)


def column_stripes(row_bits: int, stripe: int = 8) -> np.ndarray:
    """Stripes of width ``stripe`` (checkerboard alias, kept for intent)."""
    return checkerboard(row_bits, period=stripe)


def walking_ones(row_bits: int, position: int) -> np.ndarray:
    """A single 1 walking across an all-0 background."""
    if not 0 <= position < row_bits:
        raise ValueError(f"position {position} out of range")
    row = np.zeros(row_bits, dtype=np.uint8)
    row[position] = 1
    return row


def inverse(pattern: np.ndarray) -> np.ndarray:
    """The bitwise inverse of a 0/1 pattern."""
    return (1 - pattern).astype(np.uint8)


def random_pattern(row_bits: int, rng: np.random.Generator) -> np.ndarray:
    """An i.i.d. uniform random background."""
    return rng.integers(0, 2, size=row_bits, dtype=np.uint8)


def with_inverses(patterns: List[Tuple[str, np.ndarray]]
                  ) -> Iterator[Tuple[str, np.ndarray]]:
    """Yield each named pattern followed by its inverse."""
    for name, pattern in patterns:
        yield name, pattern
        yield f"~{name}", inverse(pattern)


@lru_cache(maxsize=16)
def _base_battery(row_bits: int) -> Tuple[Tuple[str, np.ndarray], ...]:
    """Memoized deterministic head of the discovery battery.

    The classic patterns and their inverses are identical for every
    chip of a fleet, so they are built once per process and shared
    (read-only) across campaigns.
    """
    base: List[Tuple[str, np.ndarray]] = [
        ("solid0", solid(row_bits, 0)),
        ("checker1", checkerboard(row_bits, period=1)),
        ("stripe8", checkerboard(row_bits, period=8)),
    ]
    battery = tuple(with_inverses(base))
    for _name, arr in battery:
        arr.flags.writeable = False
    return battery


def discovery_patterns(row_bits: int, n_tests: int,
                       rng: np.random.Generator
                       ) -> List[Tuple[str, np.ndarray]]:
    """The initial victim-discovery battery (Section 5.2.1).

    Produces exactly ``n_tests`` patterns: the deterministic classics
    (solid/checker/stripe pairs, memoized per process) topped up with
    random backgrounds.  Inverse pairing is preserved as long as the
    budget allows.
    """
    if reference_kernels_enabled():
        base: List[Tuple[str, np.ndarray]] = [
            ("solid0", solid(row_bits, 0)),
            ("checker1", checkerboard(row_bits, period=1)),
            ("stripe8", checkerboard(row_bits, period=8)),
        ]
        battery = list(with_inverses(base))
    else:
        battery = list(_base_battery(row_bits))
    i = 0
    while len(battery) < n_tests:
        battery.append((f"rand{i}", random_pattern(row_bits, rng)))
        i += 1
    return battery[:n_tests]

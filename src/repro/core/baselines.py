"""Baseline tests PARBOR is compared against.

* :func:`random_pattern_test` - the state-of-the-art system-level
  approach (paper [35]): many rounds of random backgrounds, hoping to
  hit the worst-case neighbourhood by chance. Figures 12/13 compare
  PARBOR against this at *equal test budget*.
* :func:`simple_pattern_test` - the all-0s/1s (+ checkerboard) tests
  many prior mechanisms assume suffice (Section 3, Challenge 2).
* :func:`exhaustive_neighbour_search` - the naive O(n^2) pair test
  that motivates PARBOR (49 days per row at 8 K bits); usable here on
  small rows to validate PARBOR's answers.
* :func:`linear_neighbour_search` - the O(n) single-bit walk that
  locates the aggressors of a *strongly coupled* victim.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

from ..dram.controller import MemoryController
from .patterns import checkerboard, inverse, random_pattern, solid

__all__ = ["random_pattern_test", "simple_pattern_test",
           "exhaustive_neighbour_search", "linear_neighbour_search"]

Coord = Tuple[int, int, int, int]


def _collect(detected: Set[Coord], chip_idx: int,
             per_bank: Sequence[Tuple[np.ndarray, np.ndarray]]) -> None:
    for bank_idx, (rows, cols) in enumerate(per_bank):
        detected.update((chip_idx, bank_idx, int(r), int(c))
                        for r, c in zip(rows.tolist(), cols.tolist()))


def random_pattern_test(controllers: Sequence[MemoryController],
                        n_tests: int, rng: np.random.Generator,
                        per_row: bool = True) -> Set[Coord]:
    """``n_tests`` rounds of random backgrounds over every chip.

    Args:
        controllers: one per chip.
        n_tests: whole-chip test budget (write + retention wait +
            read), directly comparable to ``ParborResult.total_tests``.
        rng: randomness source.
        per_row: draw an independent random background per row (the
            strongest random baseline); otherwise one background is
            replicated across rows.

    Returns:
        Union of failing coordinates over all rounds.
    """
    if n_tests < 1:
        raise ValueError("n_tests must be positive")
    detected: Set[Coord] = set()
    row_bits = controllers[0].row_bits
    for _ in range(n_tests):
        for chip_idx, ctrl in enumerate(controllers):
            if per_row:
                data = rng.integers(0, 2, size=(ctrl.n_rows, row_bits),
                                    dtype=np.uint8)
                per_bank = ctrl.test_pattern_per_row(data)
            else:
                per_bank = ctrl.test_pattern(random_pattern(row_bits, rng))
            _collect(detected, chip_idx, per_bank)
    return detected


def simple_pattern_test(controllers: Sequence[MemoryController]
                        ) -> Set[Coord]:
    """All-0s, all-1s, and checkerboard (+ inverse) backgrounds."""
    row_bits = controllers[0].row_bits
    patterns = [solid(row_bits, 0), solid(row_bits, 1),
                checkerboard(row_bits), inverse(checkerboard(row_bits))]
    detected: Set[Coord] = set()
    for pattern in patterns:
        for chip_idx, ctrl in enumerate(controllers):
            _collect(detected, chip_idx, ctrl.test_pattern(pattern))
    return detected


def _victim_failed(ctrl: MemoryController, bank: int, row: int, col: int,
                   data: np.ndarray) -> bool:
    """Run pattern + inverse on one row; did the victim bit flip?"""
    observed = ctrl.test_rows(bank, np.asarray([row]), data[None, :])
    if observed[0, col] != data[col]:
        return True
    inv = inverse(data)
    observed = ctrl.test_rows(bank, np.asarray([row]), inv[None, :])
    return bool(observed[0, col] != inv[col])


def exhaustive_neighbour_search(ctrl: MemoryController, bank: int,
                                row: int, col: int,
                                repeats: int = 3) -> List[Tuple[int, int]]:
    """The naive O(n^2) two-bit test for one victim cell.

    For every unordered pair of other bit addresses, write the victim
    1 and the pair 0 (everything else 1), plus the inverse, and record
    the pairs under which the victim flips in any of ``repeats``
    attempts (coupling is stochastic at the retention margin, so single
    exposures under-report). Only feasible for small rows.
    """
    n = ctrl.row_bits
    failing: List[Tuple[int, int]] = []
    for a in range(n):
        if a == col:
            continue
        for b in range(a + 1, n):
            if b == col:
                continue
            data = np.ones(n, dtype=np.uint8)
            data[[a, b]] = 0
            data[col] = 1
            if any(_victim_failed(ctrl, bank, row, col, data)
                   for _ in range(repeats)):
                failing.append((a, b))
    return failing


def linear_neighbour_search(ctrl: MemoryController, bank: int,
                            row: int, col: int,
                            repeats: int = 3) -> List[int]:
    """The O(n) single-bit walk for a strongly coupled victim.

    Writes the victim 1 and exactly one other bit 0 per test; bits
    whose opposite value alone flips the victim are its strongly
    coupled aggressors.
    """
    n = ctrl.row_bits
    aggressors: List[int] = []
    for a in range(n):
        if a == col:
            continue
        data = np.ones(n, dtype=np.uint8)
        data[a] = 0
        data[col] = 1
        if any(_victim_failed(ctrl, bank, row, col, data)
               for _ in range(repeats)):
            aggressors.append(a)
    return aggressors

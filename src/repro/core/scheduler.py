"""Neighbour-aware test pattern scheduling (paper Section 5.2.5).

Once the neighbour distances are known, every cell must be exposed to
the worst-case pattern: the cell charged, all its physical neighbours
discharged. Cells whose aggressor sets do not collide can be tested
*simultaneously*, so the whole chip is covered in a small, constant
number of rounds instead of one round per bit.

Three schedulers are provided:

* ``sparse`` (default) - victims of one round are the bits congruent
  to ``t`` modulo a stride ``S``, with ``S`` chosen as the smallest
  value >= 16 for which no neighbour distance is a multiple of ``S``
  (so no victim is another victim's aggressor). Sparse victims leave
  most of the row at the victims' own value, which protects the wider
  analog context that weakly coupled cells are sensitive to; 2S
  rounds total (34 for all three vendors, the paper's 16-32 ballpark).
* ``greedy`` - colours the conflict graph (bits ``v`` and ``w``
  conflict when ``|v - w|`` is a neighbour distance) with a greedy
  first-fit pass; minimal rounds (6-10), but the dense victim classes
  blanket the row with aggressor zeros and lose context-sensitive
  weak cells - kept as an ablation of why sparsity matters.
* ``paper`` - the paper's serial-chunk scheme: rows are cut into
  chunks of twice the maximum distance and each chunk is walked in
  groups of ``min distance`` consecutive bits (their Section 5.2.5
  example).

Every round is run together with its inverse to cover true and anti
cells, so the number of *tests* is twice the number of base rounds
(the paper's "2 x 16 = 32 rounds").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from .. import obs
from .._kernels import reference_kernels_enabled

__all__ = ["TestSchedule", "greedy_colouring", "build_schedule",
           "paper_round_count", "sparse_stride"]


@dataclass
class TestSchedule:
    """A set of base patterns covering every bit as a victim once.

    Attributes:
        patterns: list of row-length uint8 arrays; each round writes
            one pattern (and then its inverse).
        victim_masks: per round, bool array of which bits are the
            designated victims of that round.
        scheme: scheduler name that produced this schedule.
    """

    patterns: List[np.ndarray]
    victim_masks: List[np.ndarray]
    scheme: str

    @property
    def base_rounds(self) -> int:
        return len(self.patterns)

    @property
    def total_rounds(self) -> int:
        """Base rounds times two (each pattern runs with its inverse)."""
        return 2 * self.base_rounds


def greedy_colouring(row_bits: int, magnitudes: Sequence[int]
                     ) -> np.ndarray:
    """First-fit colouring of the distance conflict graph.

    Bits ``v < w`` conflict when ``w - v`` is a neighbour distance
    magnitude. Scanning left to right, each bit takes the smallest
    colour unused among its already-coloured conflicting bits.
    """
    mags = sorted({int(m) for m in magnitudes if m > 0})
    if any(m >= row_bits for m in mags):
        raise ValueError("distance magnitude exceeds the row")
    colours = np.zeros(row_bits, dtype=np.int64)
    for v in range(row_bits):
        used = {int(colours[v - m]) for m in mags if v - m >= 0}
        c = 0
        while c in used:
            c += 1
        colours[v] = c
    return colours


def _pattern_for_victims(row_bits: int, victims: np.ndarray,
                         distances: Sequence[int]) -> np.ndarray:
    """Worst-case background for a victim set.

    Victims are written 1, their aggressor positions 0, and all other
    bits 1 (the victims' value) so nothing outside the designated
    aggressors can disturb them.
    """
    data = np.ones(row_bits, dtype=np.uint8)
    idx = np.flatnonzero(victims)
    for d in distances:
        agg = idx + d
        agg = agg[(agg >= 0) & (agg < row_bits)]
        data[agg] = 0
    data[idx] = 1
    return data


def sparse_stride(magnitudes: Sequence[int], minimum: int = 12,
                  protect_order: int = 3, search_limit: int = 512) -> int:
    """Choose the victim stride for the sparse scheduler.

    The stride ``S`` must satisfy two properties, both checkable from
    the discovered first-order distance set ``D`` alone:

    1. no ``d`` in ``D`` is a multiple of ``S`` (a victim would be
       another victim's aggressor);
    2. no *composed* distance - a sum of up to ``protect_order``
       signed first-order hops, i.e. the possible system distances of
       second/third-order physical neighbours - is congruent mod ``S``
       to any ``d`` in ``D``. Such a congruence would park an
       aggressor-zero on a context cell of some victim and mask
       context-sensitive weak cells.

    Falls back to the best-effort stride (fewest composed collisions)
    if no perfect stride exists below ``search_limit``.
    """
    mags = sorted({abs(int(m)) for m in magnitudes if m})
    if not mags:
        raise ValueError("empty distance set")
    signed = {s for m in mags for s in (m, -m)}
    composed = set(signed)
    frontier = set(signed)
    for _ in range(protect_order - 1):
        frontier = {a + b for a in frontier for b in signed}
        composed |= frontier
    # Composed distances that are themselves first-order (or zero) are
    # handled by the aggressor zeros already.
    extras = sorted({abs(c) for c in composed} - set(mags) - {0})

    best = (None, None)
    for s in range(minimum, search_limit):
        if any(m % s == 0 for m in mags):
            continue
        residues = {m % s for m in signed}
        collisions = sum(1 for e in extras
                         if (e % s) in residues or (-e % s) in residues)
        if collisions == 0:
            return s
        if best[0] is None or collisions < best[0]:
            best = (collisions, s)
    if best[1] is None:
        raise ValueError(f"no usable stride for distances {mags}")
    return best[1]


def build_schedule(row_bits: int, distances: Sequence[int],
                   scheme: str = "sparse") -> TestSchedule:
    """Build the full-chip sweep schedule from signed distances.

    Identical ``(row_bits, distance set, scheme)`` requests are
    memoized per process: a fleet campaign schedules each vendor's
    sweep once instead of once per chip.  Memoized schedules carry
    read-only pattern arrays; copy before mutating.

    Args:
        row_bits: bits per row.
        distances: signed neighbour distances found by the recursion.
        scheme: "sparse", "greedy", or "paper".
    """
    signed = sorted({int(d) for d in distances if d != 0},
                    key=lambda d: (abs(d), d))
    if not signed:
        raise ValueError("cannot schedule with an empty distance set")
    if not reference_kernels_enabled():
        if not obs.enabled():
            return _build_schedule_cached(row_bits, tuple(signed), scheme)
        # Memo hits are per-process state, so the counters live in the
        # non-deterministic "proc." namespace (how often a schedule is
        # rebuilt depends on how targets were sliced into workers).
        before = _build_schedule_cached.cache_info()
        schedule = _build_schedule_cached(row_bits, tuple(signed), scheme)
        after = _build_schedule_cached.cache_info()
        obs.inc("proc.schedule.memo_hits", after.hits - before.hits)
        obs.inc("proc.schedule.memo_misses",
                after.misses - before.misses)
        obs.event("schedule", scheme=scheme,
                  base_rounds=schedule.base_rounds,
                  memoized=after.hits > before.hits)
        return schedule
    return _build_schedule(row_bits, tuple(signed), scheme)


@lru_cache(maxsize=64)
def _build_schedule_cached(row_bits: int, signed: Tuple[int, ...],
                           scheme: str) -> TestSchedule:
    """Memoized schedule construction (normalised distance key)."""
    schedule = _build_schedule(row_bits, signed, scheme)
    for arr in schedule.patterns:
        arr.flags.writeable = False
    for arr in schedule.victim_masks:
        arr.flags.writeable = False
    return schedule


def _build_schedule(row_bits: int, signed: Tuple[int, ...],
                    scheme: str) -> TestSchedule:
    """Uncached schedule construction from normalised signed distances."""
    mags = sorted({abs(d) for d in signed})
    # Both aggressor sides matter even if the recursion only saw one
    # sign (symmetry of physical adjacency).
    full = sorted({s for m in mags for s in (m, -m)})

    if scheme == "sparse":
        stride = sparse_stride(mags)
        offsets = np.arange(row_bits)
        patterns = []
        masks = []
        for t in range(stride):
            victims = offsets % stride == t
            patterns.append(_pattern_for_victims(row_bits, victims, full))
            masks.append(victims)
        return TestSchedule(patterns=patterns, victim_masks=masks,
                            scheme="sparse")

    if scheme == "greedy":
        colours = greedy_colouring(row_bits, mags)
        patterns = []
        masks = []
        for c in range(int(colours.max()) + 1):
            victims = colours == c
            patterns.append(_pattern_for_victims(row_bits, victims, full))
            masks.append(victims)
        return TestSchedule(patterns=patterns, victim_masks=masks,
                            scheme="greedy")

    if scheme == "paper":
        chunk = 2 * max(mags)
        gap = min(mags)
        n_groups = -(-chunk // gap)  # ceil
        patterns = []
        masks = []
        offsets = np.arange(row_bits)
        for g in range(n_groups):
            in_group = (offsets % chunk) // gap == g
            patterns.append(_pattern_for_victims(row_bits, in_group, full))
            masks.append(in_group)
        return TestSchedule(patterns=patterns, victim_masks=masks,
                            scheme="paper")

    raise ValueError(f"unknown scheme {scheme!r}")


def paper_round_count(distances: Sequence[int]) -> int:
    """Total rounds (incl. inverses) of the paper's chunk scheme."""
    mags = sorted({abs(int(d)) for d in distances if d != 0})
    if not mags:
        raise ValueError("empty distance set")
    chunk = 2 * max(mags)
    return 2 * (-(-chunk // min(mags)))

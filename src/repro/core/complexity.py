"""Test-time analytics from the paper's appendix.

Everything here is closed-form arithmetic over DDR3 timing: how long
the naive O(n^k) neighbour-location tests take (49 days for pairs in a
single 8 K row, 9.1 M years for 4-neighbour groups), how long one
whole-module test takes (413.96 ms for 2 GB), and the reduction factor
PARBOR achieves (745,654x against the O(n^2) test).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.timing import DDR3_1600, NS_PER_MS, NS_PER_S, DramTiming

__all__ = ["per_bit_test_time_ns", "exhaustive_test_time_s",
           "module_test_time_s", "parbor_campaign_time_s",
           "reduction_factor", "recursion_test_count", "humanise_seconds",
           "ExhaustiveCost"]

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_YEAR = 365.0 * SECONDS_PER_DAY


def per_bit_test_time_ns(timing: DramTiming = DDR3_1600) -> float:
    """Time for one single-bit-pair test: two-block access + wait.

    Appendix: ``42.5 ns + 64 ms ~= 64 ms`` per tested address bit.
    """
    return (timing.two_block_access_ns()
            + timing.refresh_interval_ms * NS_PER_MS)


def exhaustive_test_time_s(n_bits: int, k_neighbours: int,
                           timing: DramTiming = DDR3_1600) -> float:
    """Wall-clock of the naive O(n^k) neighbour search over one row.

    ``k_neighbours = 2`` is the paper's 49-day pair test; 3 and 4 give
    1115 years and 9.1 M years.
    """
    if k_neighbours < 1:
        raise ValueError("k_neighbours must be >= 1")
    return per_bit_test_time_ns(timing) * float(n_bits) ** k_neighbours \
        / NS_PER_S


def module_test_time_s(n_tests: int, n_rows: int = 262_144,
                       row_bytes: int = 8192,
                       timing: DramTiming = DDR3_1600) -> float:
    """Wall-clock of ``n_tests`` whole-module tests.

    Appendix: one test = write the module + one retention wait + read
    the module; 413.96 ms for a 2 GB module (262144 rows of 8 KB).
    """
    if n_tests < 0:
        raise ValueError("n_tests must be non-negative")
    t_row_ns = timing.full_row_access_ns(row_bytes=row_bytes)
    sweep_ns = t_row_ns * n_rows
    per_test_ns = 2 * sweep_ns + timing.refresh_interval_ms * NS_PER_MS
    return n_tests * per_test_ns / NS_PER_S


def parbor_campaign_time_s(recursion_tests: int, sweep_rounds: int,
                           discovery_tests: int = 10,
                           n_rows: int = 262_144,
                           timing: DramTiming = DDR3_1600) -> float:
    """Wall-clock of a full PARBOR campaign against a 2 GB module.

    The paper's 92-132 test budgets take 38-55 seconds with the
    appendix's per-test cost.
    """
    total = recursion_tests + sweep_rounds + discovery_tests
    return module_test_time_s(total, n_rows=n_rows, timing=timing)


def reduction_factor(n_bits: int, k_neighbours: int,
                     parbor_tests: int) -> float:
    """How many times fewer tests PARBOR runs than the O(n^k) search.

    ``reduction_factor(8192, 2, 90) ~= 745,654`` and
    ``reduction_factor(8192, 1, 90) ~= 91`` (the paper's headline
    numbers).
    """
    if parbor_tests < 1:
        raise ValueError("parbor_tests must be positive")
    return float(n_bits) ** k_neighbours / parbor_tests


def recursion_test_count(fanouts, kept_per_level) -> int:
    """Tests of a recursion with given fan-outs and surviving regions.

    ``tests_at_level_i = kept_regions_at_level_(i-1) * fanout_i`` with
    one region (the whole row) at level 0 - the arithmetic behind
    Table 1 (A: 2 + 8 + 8 + 24 + 48 = 90).
    """
    if len(kept_per_level) != len(fanouts):
        raise ValueError("need one kept-region count per level")
    total = 0
    kept_prev = 1
    for fan, kept in zip(fanouts, kept_per_level):
        total += kept_prev * fan
        kept_prev = kept
    return total


@dataclass(frozen=True)
class ExhaustiveCost:
    """One row of the appendix's cost table."""

    k_neighbours: int
    tests: float
    seconds: float
    human: str


def humanise_seconds(seconds: float) -> str:
    """Render a duration the way the paper's appendix does."""
    if seconds < 60:
        return f"{seconds:.1f} s"
    if seconds < 3600:
        return f"{seconds / 60:.2f} min"
    if seconds < SECONDS_PER_DAY:
        return f"{seconds / 3600:.1f} h"
    if seconds < SECONDS_PER_YEAR:
        return f"{seconds / SECONDS_PER_DAY:.0f} days"
    if seconds < 1e6 * SECONDS_PER_YEAR:
        return f"{seconds / SECONDS_PER_YEAR:.0f} years"
    return f"{seconds / (1e6 * SECONDS_PER_YEAR):.1f} M years"


def exhaustive_cost_table(n_bits: int = 8192, max_k: int = 4,
                          timing: DramTiming = DDR3_1600):
    """The appendix cost ladder for k = 1..max_k neighbours."""
    rows = []
    for k in range(1, max_k + 1):
        seconds = exhaustive_test_time_s(n_bits, k, timing)
        rows.append(ExhaustiveCost(k_neighbours=k,
                                   tests=float(n_bits) ** k,
                                   seconds=seconds,
                                   human=humanise_seconds(seconds)))
    return rows

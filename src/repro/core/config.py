"""Configuration of the PARBOR test campaign."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["ParborConfig", "region_sizes"]


def region_sizes(row_bits: int, fanouts: Tuple[int, ...]) -> Tuple[int, ...]:
    """Region size at each recursion level.

    The paper divides an 8 K row into two 4096-bit regions at level 1
    and by eight at each further level: sizes (4096, 512, 64, 8, 1).
    """
    sizes = []
    size = row_bits
    for fan in fanouts:
        if size % fan:
            raise ValueError(
                f"fanout {fan} does not divide region size {size}")
        size //= fan
        sizes.append(size)
    if sizes and sizes[-1] != 1:
        raise ValueError(
            f"fanouts {fanouts} do not reduce {row_bits} to single bits")
    return tuple(sizes)


@dataclass(frozen=True)
class ParborConfig:
    """Tunables of the PARBOR pipeline (paper Section 5).

    Attributes:
        fanouts: per-level region subdivision factors; the paper uses
            (2, 8, 8, 8, 8) for 8 K rows (Section 7.1).
        n_discovery_tests: number of initial data-pattern tests used to
            build the victim sample (the paper budgets 10).
        sample_size: maximum number of victim cells carried into the
            recursion (Figure 15 sweeps this).
        max_victims_per_row: cap on sampled victims sharing one row.
            Victims in the same row are tested in the same physical
            write, so a dense row lets one victim's zeroed region land
            on another's aggressor and fabricate distances; keeping
            rows sparse (the paper's chips have 32 K rows, so this is
            the natural regime) prevents that cross-contamination.
        ranking_threshold: a distance must be reported by at least this
            fraction of the active victim sample to survive ranking
            (Section 5.2.4, second filter).
        marginal_region_fraction: a victim failing in more than this
            fraction of the regions tested at one level is discarded as
            marginal (Section 5.2.4, first filter).
        scheduler: "sparse" (stride classes, context-safe), "greedy"
            (conflict-graph colouring, fewest rounds), or "paper" (the
            paper's serial-chunk scheme) for the neighbour-aware
            full-chip sweep.
    """

    fanouts: Tuple[int, ...] = (2, 8, 8, 8, 8)
    n_discovery_tests: int = 10
    sample_size: int = 10_000
    max_victims_per_row: int = 8
    ranking_threshold: float = 0.06
    marginal_region_fraction: float = 0.3
    scheduler: str = "sparse"

    def __post_init__(self) -> None:
        if self.n_discovery_tests < 2:
            raise ValueError("discovery needs at least two tests")
        if self.max_victims_per_row < 1:
            raise ValueError("max_victims_per_row must be positive")
        if not 0.0 < self.ranking_threshold <= 1.0:
            raise ValueError("ranking_threshold must be in (0, 1]")
        if not 0.0 < self.marginal_region_fraction <= 1.0:
            raise ValueError("marginal_region_fraction must be in (0, 1]")
        if self.scheduler not in ("sparse", "greedy", "paper"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")

    def sizes_for(self, row_bits: int) -> Tuple[int, ...]:
        return region_sizes(row_bits, self.fanouts)


DEFAULT_CONFIG = ParborConfig()

"""Analytic campaign planning: predict budgets before testing.

Given a hypothesised neighbour distance set, the per-level recursion
arithmetic is fully determined: a victim at in-region offset ``o``
with a neighbour at signed bit distance ``d`` implicates the region at
distance ``(o + d) // size - o // size``, and the ranking filter keeps
the distances whose victim share clears the threshold. Iterating that
over the levels predicts the paper's Table 1 test counts - and the
whole campaign budget and wall clock - without touching a chip.

The prediction assumes victims are uniformly placed and strongly
coupled with equal probability to each signed distance (the
balanced-scrambler regime); real chips with skewed step usage shift
the frequencies accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..dram.timing import DDR3_1600, DramTiming
from .complexity import module_test_time_s
from .config import ParborConfig
from .scheduler import sparse_stride

__all__ = ["CampaignPlan", "plan_campaign", "predict_level_distances"]


def predict_level_distances(distances: Sequence[int], row_bits: int,
                            fanouts: Sequence[int], threshold: float
                            ) -> List[Tuple[int, List[int]]]:
    """Predicted (tests, kept distances) per recursion level.

    Args:
        distances: signed neighbour distances of the scrambler.
        row_bits: bits per row.
        fanouts: per-level subdivision factors.
        threshold: ranking threshold (fraction of the sample).

    Returns:
        One ``(tests, kept)`` pair per level, in level order.
    """
    signed = sorted({int(d) for d in distances if d != 0})
    if not signed:
        raise ValueError("need a non-empty distance set")
    weight = 1.0 / len(signed)

    sizes: List[int] = []
    size = row_bits
    for fan in fanouts:
        size //= fan
        sizes.append(size)

    plan: List[Tuple[int, List[int]]] = []
    kept_prev: List[int] = [0]
    prev_size = row_bits
    for size, fan in zip(sizes, fanouts):
        tests = len(kept_prev) * fan
        freq: Dict[int, float] = {}
        # A victim's neighbour is only found if its previous-level
        # region survived ranking; offsets are uniform within the
        # previous region.
        for d in signed:
            for o in range(prev_size):
                r_prev = (o + d) // prev_size
                if r_prev not in kept_prev:
                    continue
                r_here = (o + d) // size - o // size
                freq[r_here] = freq.get(r_here, 0.0) \
                    + weight / prev_size
        kept = sorted((r for r, f in freq.items() if f >= threshold),
                      key=lambda r: (abs(r), r))
        plan.append((tests, kept))
        kept_prev = kept
        prev_size = size
        if not kept:
            break
    return plan


@dataclass
class CampaignPlan:
    """Predicted budget of a full PARBOR campaign.

    Attributes:
        levels: per-level (tests, kept distances) predictions.
        discovery_tests / recursion_tests / sweep_rounds: budget split.
        wall_clock_s: whole-module wall clock at DDR3-1600 timing.
    """

    levels: List[Tuple[int, List[int]]]
    discovery_tests: int
    recursion_tests: int
    sweep_rounds: int

    @property
    def total_tests(self) -> int:
        return (self.discovery_tests + self.recursion_tests
                + self.sweep_rounds)

    def wall_clock_s(self, n_rows: int = 262_144,
                     timing: DramTiming = DDR3_1600) -> float:
        return module_test_time_s(self.total_tests, n_rows=n_rows,
                                  timing=timing)


def plan_campaign(distances: Sequence[int],
                  config: ParborConfig = ParborConfig(),
                  row_bits: int = 8192) -> CampaignPlan:
    """Predict a campaign's budget for a hypothesised distance set.

    The final level's kept distances also size the sweep (via the
    sparse scheduler's stride), so the whole Section 7.2 budget
    itemisation falls out analytically.
    """
    levels = predict_level_distances(distances, row_bits,
                                     config.fanouts,
                                     config.ranking_threshold)
    recursion_tests = sum(tests for tests, _kept in levels)
    final = levels[-1][1] if levels else []
    if final:
        stride = sparse_stride([abs(d) for d in final])
        sweep = 2 * stride
    else:
        sweep = 0
    return CampaignPlan(levels=levels,
                        discovery_tests=config.n_discovery_tests,
                        recursion_tests=recursion_tests,
                        sweep_rounds=sweep)

"""Remapped-cell recovery: the paper's Section 7.3 extension.

A small number of faulty columns are steered to spare columns at
manufacturing time; victims living there have *irregular*
neighbourhoods, so their aggressor distances show up as infrequent
regions during the main recursion and are (correctly) filtered out as
noise. The paper sketches the fix: "by taking into account these
infrequent regions in intelligent ways, it would be possible to detect
the neighboring locations of remapped cells."

This module implements that extension as adaptive *two-defective group
testing* on each residual victim - a victim the campaign confirmed as
data-dependent but the neighbour-aware sweep failed to flip:

1. Write the whole row opposite to the victim. If the victim does not
   flip, it is not reproducibly data-dependent (a sweep coin-miss or a
   context-sensitive cell) - skip it.
2. Descend a binary region tree: while some single half, written
   opposite on its own, flips the victim, both aggressors (or the one
   dominant aggressor) lie in that half.
3. When neither half alone flips the victim, the two aggressors are
   split across the halves: *anchor* one half fully opposite and
   binary-search the other, then swap.

The cost is O(log n) tests per victim - affordable because only a
handful of victims are residual - versus the O(n^2) pair test the
paper's Section 3 rules out.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dram.controller import MemoryController
from .config import ParborConfig

__all__ = ["recover_irregular_victims", "RecoveryResult"]

Coord = Tuple[int, int, int, int]


class RecoveryResult:
    """Per-victim aggressor addresses found by adaptive group testing.

    Attributes:
        aggressors: victim coordinate -> sorted list of *absolute*
            system bit addresses that disturb it.
        tests: total extra whole-chip tests spent.
        attempted: how many residual victims were probed.
    """

    def __init__(self) -> None:
        self.aggressors: Dict[Coord, List[int]] = {}
        self.tests = 0
        self.attempted = 0

    def __len__(self) -> int:
        return len(self.aggressors)

    def recovered_coords(self) -> List[Coord]:
        return sorted(self.aggressors)


class _VictimProbe:
    """Issues region tests against one victim and counts them."""

    def __init__(self, ctrl: MemoryController, coord: Coord,
                 repeats: int = 2) -> None:
        _chip, self.bank, self.row, self.col = coord
        self.ctrl = ctrl
        self.row_bits = ctrl.row_bits
        self.repeats = repeats
        self.tests = 0

    def fails(self, spans: Sequence[Tuple[int, int]]) -> bool:
        """Does the victim flip when ``spans`` are written opposite?

        Pattern: victim 1, the given [start, stop) spans 0, everything
        else 1 - plus the inverse for anti rows. Retries soak up the
        per-exposure failure probability.
        """
        data = np.ones(self.row_bits, dtype=np.uint8)
        for start, stop in spans:
            data[max(0, start):min(self.row_bits, stop)] = 0
        data[self.col] = 1
        rows = np.asarray([self.row])
        for _ in range(self.repeats):
            self.tests += 1
            observed = self.ctrl.test_rows(self.bank, rows, data[None, :])
            if observed[0, self.col] != 1:
                return True
            observed = self.ctrl.test_rows(self.bank, rows,
                                           (1 - data)[None, :])
            if observed[0, self.col] != 0:
                return True
        return False


def _descend(probe: _VictimProbe, start: int, stop: int,
             anchor: Optional[Tuple[int, int]]) -> Optional[int]:
    """Binary-search one aggressor inside [start, stop).

    ``anchor`` is an extra span held opposite throughout (the other
    aggressor's region). Returns the bit address, or None if the
    search dead-ends (noise or a >2-aggressor cell).
    """
    anchor_spans = [anchor] if anchor else []
    while stop - start > 1:
        mid = (start + stop) // 2
        if probe.fails(anchor_spans + [(start, mid)]):
            stop = mid
        elif probe.fails(anchor_spans + [(mid, stop)]):
            start = mid
        else:
            return None
    return start


def _locate_aggressors(probe: _VictimProbe) -> List[int]:
    """Full adaptive search for one victim's aggressor addresses."""
    n = probe.row_bits
    if not probe.fails([(0, n)]):
        return []   # not reproducibly data-dependent in isolation

    start, stop = 0, n
    while stop - start > 1:
        mid = (start + stop) // 2
        if probe.fails([(start, mid)]):
            stop = mid
        elif probe.fails([(mid, stop)]):
            start = mid
        else:
            # Aggressors split across the halves: anchor each side.
            left = _descend(probe, start, mid, anchor=(mid, stop))
            right = _descend(probe, mid, stop, anchor=(start, mid))
            found = [a for a in (left, right) if a is not None]
            return sorted(found)
    # A single dominant aggressor (or both in one bit - impossible).
    return [start] if start != probe.col else []


def recover_irregular_victims(controllers: Sequence[MemoryController],
                              residual: Sequence[Coord],
                              config: ParborConfig,
                              max_victims: int = 200) -> RecoveryResult:
    """Locate the aggressors of victims with irregular neighbourhoods.

    Args:
        controllers: one per chip (same list the campaign used).
        residual: victim coordinates confirmed data-dependent but not
            flipped by the neighbour-aware sweep - remapped-column
            suspects.
        config: campaign configuration (kept for API symmetry; the
            group test is parameter-free).
        max_victims: safety cap on how many victims to probe.

    Returns:
        A :class:`RecoveryResult` with per-victim aggressor addresses.
    """
    del config  # adaptive group testing needs no tunables
    result = RecoveryResult()
    for coord in sorted(residual)[:max_victims]:
        result.attempted += 1
        probe = _VictimProbe(controllers[coord[0]], coord)
        addresses = _locate_aggressors(probe)
        result.tests += probe.tests
        if addresses:
            result.aggressors[coord] = addresses
    return result

"""The five-step PARBOR pipeline (paper Section 5.1).

1. Build an initial victim sample with a battery of data patterns.
2. Recursively test all victim rows in parallel, halving/subdividing
   regions until single-bit neighbour locations emerge.
3. Aggregate the distances found across victims (union).
4. Filter random failures (marginal victims, infrequent distances).
5. Sweep the whole chip with neighbour-aware patterns to uncover every
   data-dependent failure.

Steps 2-4 are interleaved per level inside
:func:`repro.core.recursion.recursive_neighbour_search`; this module
orchestrates the pipeline and runs the final sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from .. import obs
from .._kernels import reference_kernels_enabled
from ..dram.chip import DramChip
from ..dram.controller import MemoryController, TestStats
from ..dram.module import DramModule
from .config import DEFAULT_CONFIG, ParborConfig
from .patterns import inverse
from .recursion import RecursionResult, recursive_neighbour_search
from .remap_recovery import RecoveryResult, recover_irregular_victims
from .scheduler import TestSchedule, build_schedule
from .victims import VictimSample, find_initial_victims

__all__ = ["ParborResult", "run_parbor", "neighbour_aware_sweep",
           "controllers_for"]

Coord = Tuple[int, int, int, int]  # (chip, bank, row, sys_col)


@dataclass
class ParborResult:
    """Outcome of a full PARBOR campaign against one module or chip.

    Attributes:
        distances: final signed neighbour distances.
        recursion: per-level recursion record (Table 1 / Figure 11).
        sample: the initial victim sample used.
        detected: coordinates of every cell the neighbour-aware sweep
            flagged as failing.
        n_discovery_tests / n_recursion_tests / n_sweep_rounds: test
            budget split, as itemised in Section 7.2 ("(i) recursive
            test ... (ii) neighbour-aware patterns ... (iii) initial
            tests").
        schedule: the sweep schedule (None when no distances found).
        recovery: per-victim aggressor maps for remapped-column
            victims (None unless requested; Section 7.3 extension).
        stats: merged per-chip I/O counters of the campaign's
            controllers (rows written/read, retention waits) - the
            record fleet runs aggregate across worker processes.
        verdicts: per-cell vote ledger
            (:class:`repro.robust.CellVerdicts`) when the campaign ran
            with a repeat-and-vote policy (``rounds > 1``); None on
            the legacy single-pass path.
        quarantine: unstable cells
            (:class:`repro.robust.QuarantineSet`); None on the legacy
            path.
    """

    distances: List[int]
    recursion: RecursionResult
    sample: VictimSample
    detected: Set[Coord] = field(default_factory=set)
    n_discovery_tests: int = 0
    n_recursion_tests: int = 0
    n_sweep_rounds: int = 0
    schedule: Optional[TestSchedule] = None
    recovery: Optional[RecoveryResult] = None
    stats: Optional[TestStats] = None
    verdicts: Optional[object] = None
    quarantine: Optional[object] = None

    @property
    def total_tests(self) -> int:
        """Total campaign budget in whole-chip test units."""
        extra = self.recovery.tests if self.recovery else 0
        return (self.n_discovery_tests + self.n_recursion_tests
                + self.n_sweep_rounds + extra)

    def magnitudes(self) -> List[int]:
        return sorted({abs(d) for d in self.distances})


def controllers_for(target: Union[DramModule, DramChip,
                                  Sequence[DramChip]]
                    ) -> List[MemoryController]:
    """Wrap a module / chip / chip list in per-chip controllers."""
    if isinstance(target, DramModule):
        chips: Iterable[DramChip] = target.chips
    elif isinstance(target, DramChip):
        chips = [target]
    else:
        chips = list(target)
    return [MemoryController(chip) for chip in chips]


def neighbour_aware_sweep(controllers: Sequence[MemoryController],
                          schedule: TestSchedule) -> Set[Coord]:
    """Run every scheduled round (and inverse) against every chip.

    Returns the union of failing coordinates - PARBOR's detected
    data-dependent failures.
    """
    if reference_kernels_enabled():
        detected: Set[Coord] = set()
        for pattern in schedule.patterns:
            for polarity in (pattern, inverse(pattern)):
                for chip_idx, ctrl in enumerate(controllers):
                    per_bank = ctrl.test_pattern(polarity)
                    for bank_idx, (rows, cols) in enumerate(per_bank):
                        detected.update(
                            (chip_idx, bank_idx, int(r), int(c))
                            for r, c in zip(rows.tolist(), cols.tolist()))
        return detected

    # Batched verification: collect every round's failure coordinates
    # as integer-encoded arrays and deduplicate once at the end,
    # instead of growing a Python set tuple by tuple.
    n_rows = max(c.n_rows for c in controllers)
    n_banks = max(c.n_banks for c in controllers)
    row_bits = controllers[0].row_bits
    chunks: List[np.ndarray] = []
    for pattern in schedule.patterns:
        for polarity in (pattern, inverse(pattern)):
            for chip_idx, ctrl in enumerate(controllers):
                per_bank = ctrl.test_pattern(polarity)
                for bank_idx, (rows, cols) in enumerate(per_bank):
                    enc = (((np.int64(chip_idx) * n_banks + bank_idx)
                            * n_rows + rows.astype(np.int64))
                           * row_bits + cols.astype(np.int64))
                    chunks.append(enc)
    if not chunks:
        return set()
    uniq = np.unique(np.concatenate(chunks))
    cols_d = uniq % row_bits
    rest = uniq // row_bits
    rows_d = rest % n_rows
    rest //= n_rows
    return set(zip((rest // n_banks).tolist(), (rest % n_banks).tolist(),
                   rows_d.tolist(), cols_d.tolist()))


def run_parbor(target: Union[DramModule, DramChip, Sequence[DramChip]],
               config: ParborConfig = DEFAULT_CONFIG,
               seed: int = 0,
               run_sweep: bool = True,
               recover_remapped: bool = False,
               rounds: Union[int, object] = 1) -> ParborResult:
    """Run the full PARBOR campaign.

    Args:
        target: a module, chip, or list of chips (same geometry).
        config: campaign configuration.
        seed: RNG seed for discovery patterns and sampling.
        run_sweep: skip step 5 when only the neighbour distances are
            needed (e.g. the Table 1 / Figure 11 experiments).
        recover_remapped: after the sweep, probe victims the sweep
            failed to flip with per-victim recursions to locate their
            irregular (remapped-column) aggressors - the Section 7.3
            extension. Their aggressor maps land in
            ``result.recovery`` and the victims join
            ``result.detected``.
        rounds: repeat-and-vote policy - an ``int`` repetition count
            or a full :class:`repro.robust.RoundsPolicy`.  The default
            (``1``) is the legacy single-pass path, byte-identical to
            previous behaviour; ``rounds > 1`` re-runs each sweep
            round (and failing recursion region tests) with
            seed-ladder reseeding, classifies every failure as
            definite / probabilistic / unstable, and fills
            ``result.verdicts`` / ``result.quarantine``.

    Returns:
        A :class:`ParborResult`.
    """
    from ..robust.verdicts import RoundsPolicy

    policy = (RoundsPolicy(rounds=rounds) if isinstance(rounds, int)
              else rounds)
    robust = not policy.is_legacy
    controllers = controllers_for(target)
    rng = np.random.default_rng(seed)

    with obs.span("discovery") as discovery_span:
        sample = find_initial_victims(controllers, config, rng)
        discovery_span.set(victims=len(sample),
                           tests=sample.n_discovery_tests,
                           observed_failures=len(sample.observed_failures))
    with obs.span("recursion") as recursion_span:
        recursion = recursive_neighbour_search(
            controllers, sample, config,
            policy=policy if robust else None, seed=seed)
        recursion_span.set(tests=recursion.total_tests,
                           distances=list(recursion.distances))

    result = ParborResult(
        distances=recursion.distances, recursion=recursion, sample=sample,
        n_discovery_tests=sample.n_discovery_tests,
        n_recursion_tests=recursion.total_tests)
    if robust:
        from ..robust.quarantine import QuarantineSet
        from ..robust.verdicts import CellVerdicts

        result.verdicts = CellVerdicts(rounds=policy.rounds,
                                       policy=policy)
        result.quarantine = QuarantineSet()

    if run_sweep and recursion.distances:
        with obs.span("sweep") as sweep_span:
            schedule = build_schedule(controllers[0].row_bits,
                                      recursion.distances,
                                      scheme=config.scheduler)
            result.schedule = schedule
            if robust:
                from ..robust.vote import robust_sweep

                sweep = robust_sweep(controllers, schedule, policy,
                                     seed=seed)
                result.n_sweep_rounds = (sweep.rounds_executed
                                         + sweep.control_rounds)
                result.detected = sweep.detected
                result.verdicts = sweep.verdicts
                result.quarantine = sweep.quarantine
            else:
                result.n_sweep_rounds = schedule.total_rounds
                result.detected = neighbour_aware_sweep(controllers,
                                                        schedule)
            sweep_span.set(scheme=schedule.scheme,
                           rounds=result.n_sweep_rounds,
                           detected=len(result.detected))
        if recover_remapped:
            with obs.span("recovery") as recovery_span:
                residual = [c for c in sample.coords()
                            if c not in result.detected]
                result.recovery = recover_irregular_victims(
                    controllers, residual, config)
                result.detected.update(result.recovery.recovered_coords())
                recovery_span.set(attempted=result.recovery.attempted,
                                  recovered=len(result.recovery),
                                  tests=result.recovery.tests)
        # Discovery-phase failures are part of the campaign's budget
        # and therefore of its detections.
        if robust:
            # Cells only the discovery battery (or the remap recovery)
            # observed carry a single observation; control-clean ones
            # count as probabilistic detections - matching the legacy
            # inclusion - while control failures stay quarantined.
            verdicts = result.verdicts
            extra = set(sample.observed_failures) | set(result.detected)
            verdicts.discovery_only |= {
                c for c in extra
                if c not in verdicts.votes
                and c not in verdicts.control_failures}
            result.detected = verdicts.detected()
        else:
            result.detected |= sample.observed_failures
    # Drain ECC-recovery ambiguity: cells whose pre-correction state
    # the on-die ECC stage could not uniquely invert are surrendered
    # to quarantine - a definite verdict through an ambiguous lens
    # would be a guess.
    ambiguous_cells = 0
    for chip_idx, ctrl in enumerate(controllers):
        for bank_idx, bank in enumerate(ctrl.chip.banks):
            ecc = getattr(bank, "ecc", None)
            if ecc is None or not ecc.ambiguous:
                continue
            if result.quarantine is None:
                from ..robust.quarantine import QuarantineSet
                result.quarantine = QuarantineSet()
            p2s = bank.mapping.phys_to_sys()
            for row, phys in sorted(ecc.ambiguous):
                result.quarantine.add(
                    (chip_idx, bank_idx, int(row), int(p2s[phys])),
                    "ecc-ambiguous")
                ambiguous_cells += 1
    result.stats = TestStats.merge(c.stats for c in controllers)
    if obs.enabled():
        if ambiguous_cells:
            obs.inc("profile.ecc.quarantined", ambiguous_cells)
        obs.inc("tests.discovery", result.n_discovery_tests)
        obs.inc("tests.recursion", result.n_recursion_tests)
        obs.inc("tests.sweep", result.n_sweep_rounds)
        obs.inc("tests.total", result.total_tests)
        obs.inc("detected.failures", len(result.detected))
        if robust and result.quarantine is not None:
            obs.inc("profile.quarantined", len(result.quarantine))
    return result

"""Classic March memory tests (the manufacturing-test baseline).

March tests are the standard RAM test family (the paper's refs
[19, 77] build NPSF detection on them): a sequence of *elements*, each
walking the address space in a direction and applying read/verify and
write operations per location. We implement them at row granularity
over the system-level controller, with an optional retention pause
between elements (the "delay" variants used for retention screening -
writing a background, waiting out the refresh interval, then marching
reads).

Notation (van de Goor): ``{b(w0); u(r0,w1); d(r1,w0)}`` - ``b`` either
direction, ``u`` ascending, ``d`` descending; ``w0/w1`` write the
background/inverse-background, ``r0/r1`` read and verify it. With the
default all-zeros background these are the paper's "simple tests with
all 0s/1s data patterns" (Section 3, Challenge 2): they catch
stuck-at/weak cells but place *uniform* data in every row, so
data-dependent failures stay invisible. A checkerboard background
catches couplings between system-adjacent cells only - the scrambler
hides the rest, which is exactly the gap PARBOR closes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..dram.controller import MemoryController
from .patterns import inverse, solid

__all__ = ["MarchOp", "MarchElement", "MarchTest", "parse_march",
           "run_march", "MATS_PLUS", "MARCH_C_MINUS", "MARCH_B",
           "MARCH_SS", "MARCH_LR", "MarchOutcome"]

Coord = Tuple[int, int, int, int]


@dataclass(frozen=True)
class MarchOp:
    """One read-verify or write operation.

    Attributes:
        kind: "r" (read and verify) or "w" (write).
        value: 0 for the background, 1 for its inverse.
    """

    kind: str
    value: int

    def __post_init__(self) -> None:
        if self.kind not in ("r", "w"):
            raise ValueError(f"op kind must be r or w, got {self.kind!r}")
        if self.value not in (0, 1):
            raise ValueError(f"op value must be 0 or 1, got {self.value}")

    def __str__(self) -> str:
        return f"{self.kind}{self.value}"


@dataclass(frozen=True)
class MarchElement:
    """A directed pass over the address space.

    Attributes:
        direction: +1 ascending, -1 descending, 0 either.
        ops: operations applied at each address before moving on.
    """

    direction: int
    ops: Tuple[MarchOp, ...]

    def __post_init__(self) -> None:
        if self.direction not in (-1, 0, 1):
            raise ValueError("direction must be -1, 0, or +1")
        if not self.ops:
            raise ValueError("an element needs at least one operation")

    def __str__(self) -> str:
        sym = {1: "u", -1: "d", 0: "b"}[self.direction]
        return f"{sym}({','.join(str(op) for op in self.ops)})"


@dataclass(frozen=True)
class MarchTest:
    """A named sequence of march elements.

    Attributes:
        name: conventional test name.
        elements: the element sequence.
        pause_between: insert a retention wait between elements (the
            delay variant; required for retention-class faults).
    """

    name: str
    elements: Tuple[MarchElement, ...]
    pause_between: bool = True

    @property
    def ops_per_cell(self) -> int:
        """Complexity in operations per cell (e.g. 10n for March C-)."""
        return sum(len(e.ops) for e in self.elements)

    def notation(self) -> str:
        """Van de Goor notation, re-parseable by :func:`parse_march`."""
        body = "; ".join(str(e) for e in self.elements)
        return f"{{{body}}}"

    def __str__(self) -> str:
        return f"{self.name}: {self.notation()}"


_ELEMENT_RE = re.compile(r"([udb])\(([rw][01](?:,[rw][01])*)\)")


def parse_march(name: str, notation: str,
                pause_between: bool = True) -> MarchTest:
    """Parse van de Goor notation into a :class:`MarchTest`.

    Example: ``parse_march("MATS+", "{b(w0); u(r0,w1); d(r1,w0)}")``.
    """
    stripped = notation.replace(" ", "")
    if not (stripped.startswith("{") and stripped.endswith("}")):
        raise ValueError(f"march notation must be braced: {notation!r}")
    body = stripped[1:-1]
    elements: List[MarchElement] = []
    consumed = 0
    for match in _ELEMENT_RE.finditer(body):
        direction = {"u": 1, "d": -1, "b": 0}[match.group(1)]
        ops = tuple(MarchOp(kind=tok[0], value=int(tok[1]))
                    for tok in match.group(2).split(","))
        elements.append(MarchElement(direction=direction, ops=ops))
        consumed += len(match.group(0))
    leftovers = body.replace(";", "")
    if consumed != len(leftovers):
        raise ValueError(f"unparseable march notation: {notation!r}")
    if not elements:
        raise ValueError(f"empty march test: {notation!r}")
    return MarchTest(name=name, elements=tuple(elements),
                     pause_between=pause_between)


#: MATS+ (5n): the minimal address-fault test.
MATS_PLUS = parse_march("MATS+", "{b(w0); u(r0,w1); d(r1,w0)}")

#: March C- (10n): the de-facto standard coupling-fault test.
MARCH_C_MINUS = parse_march(
    "March C-",
    "{b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0)}")

#: March B (17n): linked-fault coverage.
MARCH_B = parse_march(
    "March B",
    "{b(w0); u(r0,w1,r1,w0,r0,w1); u(r1,w0,w1); d(r1,w0,w1,w0); "
    "d(r0,w1,w0)}")

#: March SS (22n): simple static-fault complete.
MARCH_SS = parse_march(
    "March SS",
    "{b(w0); u(r0,r0,w0,r0,w1); u(r1,r1,w1,r1,w0); "
    "d(r0,r0,w0,r0,w1); d(r1,r1,w1,r1,w0); b(r0)}")

#: March LR (14n): linked realistic faults.
MARCH_LR = parse_march(
    "March LR",
    "{b(w0); d(r0,w1); u(r1,w0,r0,w1); u(r1,w0); u(r0,w1,r1,w0); "
    "b(r0)}")


@dataclass
class MarchOutcome:
    """Result of one march run against a chip set.

    Attributes:
        test_name: which march ran.
        detected: coordinates whose read-verify mismatched.
        row_operations: total row-level operations issued.
        retention_waits: pauses taken.
    """

    test_name: str
    detected: Set[Coord] = field(default_factory=set)
    row_operations: int = 0
    retention_waits: int = 0


def _row_order(n_rows: int, direction: int) -> np.ndarray:
    if direction >= 0:
        return np.arange(n_rows)
    return np.arange(n_rows - 1, -1, -1)


def run_march(controllers: Sequence[MemoryController],
              test: MarchTest,
              background: Optional[np.ndarray] = None) -> MarchOutcome:
    """Execute a march test at row granularity over every chip.

    Args:
        controllers: one per chip.
        test: the march to run.
        background: row-length 0/1 array substituted for "0"; its
            inverse substitutes "1" (the standard pattern-sensitive
            generalisation). Default: all zeros, i.e. the classic
            solid march.

    Returns:
        A :class:`MarchOutcome` with every mismatching coordinate.
    """
    if not controllers:
        raise ValueError("need at least one controller")
    row_bits = controllers[0].row_bits
    if background is None:
        background = solid(row_bits, 0)
    background = np.asarray(background, dtype=np.uint8)
    patterns = {0: background, 1: inverse(background)}

    outcome = MarchOutcome(test_name=test.name)
    for index, element in enumerate(test.elements):
        if test.pause_between and index > 0:
            # Retention wait: latent retention/coupling failures
            # corrupt the stored values and surface at the next reads.
            for chip_idx, ctrl in enumerate(controllers):
                ctrl.stats.retention_waits += 1
                for bank_idx, bank in enumerate(ctrl.chip.banks):
                    rows, cols = bank.retention_failures()
                    for r, c in zip(rows.tolist(), cols.tolist()):
                        outcome.detected.add((chip_idx, bank_idx,
                                              int(r), int(c)))
            outcome.retention_waits += 1

        for chip_idx, ctrl in enumerate(controllers):
            for bank_idx in range(ctrl.n_banks):
                order = _row_order(ctrl.n_rows, element.direction)
                for row in order:
                    for op in element.ops:
                        outcome.row_operations += 1
                        if op.kind == "w":
                            ctrl.write_row(bank_idx, int(row),
                                           patterns[op.value])
                        else:
                            observed = ctrl.read_row(bank_idx, int(row))
                            mism = np.flatnonzero(
                                observed != patterns[op.value])
                            outcome.detected.update(
                                (chip_idx, bank_idx, int(row), int(c))
                                for c in mism.tolist())
    return outcome

"""Parallel recursive neighbour-location testing (paper Section 5.2.3).

The row is divided into progressively smaller regions (8192 -> 4096 ->
512 -> 64 -> 8 -> 1 with the paper's fan-outs). At each level, for
every *candidate distance* surviving the previous level's ranking and
for every subregion, one logical test runs: every active victim's
corresponding subregion is written with the value opposite to the
victim, everything else with the victim's value, so only that subregion
can disturb the victim. All victims - across rows, banks, and chips -
are tested *simultaneously*, which is why the test count per level is
``|candidate distances| * fanout`` regardless of sample size (Table 1).

Each logical test is executed as a pattern/inverse pair so victims in
both true-cell and anti-cell rows are exercised (paper footnote 3);
Table-1 accounting counts the pair as one test.

Region positions are tracked as *distances* from the victim's own
region (Section 5.2.2): regularity of the scrambler makes these
distances common across victims, so the union over the sample locates
the neighbours of every cell in the chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from .. import obs
from .._kernels import reference_kernels_enabled
from ..dram.controller import MemoryController
from .config import ParborConfig
from .ranking import RankingOutcome, rank_distances
from .victims import VictimSample

__all__ = ["LevelResult", "RecursionResult", "recursive_neighbour_search"]


@dataclass
class LevelResult:
    """Everything observed at one recursion level.

    Attributes:
        level: 1-based level index.
        region_size: bits per region at this level.
        candidate_distances: parent-granularity distances tested.
        tests: logical tests executed at this level.
        reporters: distance -> number of victims reporting it, *before*
            ranking (this is Figure 14's histogram at level 4).
        kept_distances: distances surviving the ranking filter.
        discarded_marginal: victims dropped by the marginal filter.
        active_victims: victims still in the sample after this level.
    """

    level: int
    region_size: int
    candidate_distances: List[int]
    tests: int
    reporters: Dict[int, int]
    kept_distances: List[int]
    discarded_marginal: int
    active_victims: int


@dataclass
class RecursionResult:
    """Output of the recursive search.

    Attributes:
        levels: per-level records.
        distances: final signed neighbour distances in the system
            address space (region size 1).
        total_tests: sum of logical tests over all levels.
    """

    levels: List[LevelResult] = field(default_factory=list)
    distances: List[int] = field(default_factory=list)
    total_tests: int = 0

    @property
    def tests_per_level(self) -> List[int]:
        return [lv.tests for lv in self.levels]

    def magnitudes(self) -> List[int]:
        return sorted({abs(d) for d in self.distances})


class _RowGroup:
    """Victims of one (chip, bank) pair, grouped by row for batch I/O."""

    def __init__(self, victim_idx: np.ndarray, rows: np.ndarray,
                 cols: np.ndarray) -> None:
        self.unique_rows, row_pos = np.unique(rows, return_inverse=True)
        self.victim_idx = victim_idx    # indices into the global sample
        self.row_pos = row_pos          # victim -> index into unique_rows
        self.cols = cols

    def __len__(self) -> int:
        return len(self.victim_idx)


def _group_victims(sample: VictimSample, active: np.ndarray
                   ) -> Dict[Tuple[int, int], _RowGroup]:
    groups: Dict[Tuple[int, int], _RowGroup] = {}
    idx = np.flatnonzero(active)
    keys = list(zip(sample.chip[idx].tolist(), sample.bank[idx].tolist()))
    order: Dict[Tuple[int, int], List[int]] = {}
    for i, key in zip(idx.tolist(), keys):
        order.setdefault(key, []).append(i)
    for key, members in order.items():
        members_arr = np.asarray(members, dtype=np.int64)
        groups[key] = _RowGroup(victim_idx=members_arr,
                                rows=sample.row[members_arr],
                                cols=sample.col[members_arr])
    return groups


def _run_region_test(controllers: Sequence[MemoryController],
                     groups: Dict[Tuple[int, int], _RowGroup],
                     sub_abs: np.ndarray, covered: np.ndarray,
                     sample: VictimSample, region_size: int,
                     revote: bool = False) -> np.ndarray:
    """Execute one logical test; return per-victim failure mask.

    Args:
        controllers: one per chip.
        groups: victims grouped by (chip, bank).
        sub_abs: per-victim absolute subregion index (global sample
            indexing; only entries where ``covered`` is True matter).
        covered: per-victim mask - False where the candidate region
            falls outside the row for that victim.
        sample: the victim sample (for columns).
        region_size: bits per subregion at this level.
        revote: the test runs on a fresh reseeded re-vote stream, so
            the coupled-cell evaluation may be restricted to the
            tested rows (a large saving when re-voting a handful of
            victims).
    """
    row_bits = controllers[0].row_bits
    failed = np.zeros(len(sample), dtype=bool)
    reference = reference_kernels_enabled()
    for (chip_idx, bank_idx), group in groups.items():
        vi = group.victim_idx
        use = covered[vi]
        if not use.any():
            continue
        ctrl = controllers[chip_idx]
        starts = sub_abs[vi[use]] * region_size
        rows_of = group.row_pos[use]

        if reference:
            data = np.ones((len(group.unique_rows), row_bits),
                           dtype=np.uint8)
            # Zero every covered victim's subregion in its own row.
            for r, s in zip(rows_of.tolist(), starts.tolist()):
                data[r, s:s + region_size] = 0
            # Victim bits carry the opposite value of their region.
            data[group.row_pos, group.cols] = 1

            observed = ctrl.test_rows(bank_idx, group.unique_rows, data,
                                      coupled_rows_only=revote)
            flip_pos = observed[group.row_pos, group.cols] != 1
            observed_inv = ctrl.test_rows(bank_idx, group.unique_rows,
                                          1 - data,
                                          coupled_rows_only=revote)
            flip_inv = observed_inv[group.row_pos, group.cols] != 0
            failed[vi] |= (flip_pos | flip_inv) & use[...]
            continue

        # Vectorized path: express the test as background + patches
        # (zeroed subregions, victim bits) and verify only the victim
        # cells against the sparse retention flips - no whole-row
        # scrambling or read-back materialisation.  A flip mask is
        # "read != written" for both polarities, which is exactly what
        # the dense comparisons above compute.
        flip_pos = ctrl.test_rows_patched(
            bank_idx, group.unique_rows, base=1,
            spans=(rows_of, starts, region_size, 0),
            points=(group.row_pos, group.cols, 1),
            check_row_idx=group.row_pos, check_cols=group.cols,
            coupled_rows_only=revote)
        flip_inv = ctrl.test_rows_patched(
            bank_idx, group.unique_rows, base=0,
            spans=(rows_of, starts, region_size, 1),
            points=(group.row_pos, group.cols, 0),
            check_row_idx=group.row_pos, check_cols=group.cols,
            coupled_rows_only=revote)
        failed[vi] |= (flip_pos | flip_inv) & use[...]
    return failed


def _filter_groups(groups: Dict[Tuple[int, int], _RowGroup],
                   keep: np.ndarray
                   ) -> Dict[Tuple[int, int], _RowGroup]:
    """Restrict row groups to the victims selected by ``keep``.

    Row retention tests are independent and the coupling mechanism is
    intra-row, so re-testing only the kept victims' rows reproduces
    their test conditions exactly.
    """
    out: Dict[Tuple[int, int], _RowGroup] = {}
    for key, group in groups.items():
        sel = keep[group.victim_idx]
        if not sel.any():
            continue
        out[key] = _RowGroup(
            victim_idx=group.victim_idx[sel],
            rows=group.unique_rows[group.row_pos[sel]],
            cols=group.cols[sel])
    return out


def _revote_region(controllers: Sequence[MemoryController],
                   groups: Dict[Tuple[int, int], _RowGroup],
                   sub_abs: np.ndarray, covered: np.ndarray,
                   sample: VictimSample, region_size: int,
                   candidates: np.ndarray, policy, seed: int,
                   path: Tuple[int, ...]) -> np.ndarray:
    """Re-vote selected failure observations of one region test.

    The initial pass consumed the bank's sequential RNG stream exactly
    as the single-pass recursion would; the re-votes run on fresh
    seed-ladder streams and the sequential stream (plus the fault
    model's VRT state and any injected-noise coins) is restored
    afterwards, so the surrounding recursion is byte-identical to a
    ``rounds=1`` run except where the vote changes a verdict.

    The vote is a *sequential* best-of-three majority, capped at three
    executions regardless of ``policy.rounds``: the recursion only
    needs soft-error rejection (a one-off flip will not repeat on a
    fresh seeded stream), so a failure is kept once it is observed
    twice, dropped once two fresh runs miss it, and the loop stops as
    soon as every candidate is decided.  Only victims that failed the
    initial pass can be candidates - exactly the sweep's
    vote-attribution rule, so injected noise in a re-vote can never
    forge a reporter that the initial pass did not see.  Each re-vote
    re-tests only the undecided candidates' rows
    (:func:`_filter_groups`) and evaluates only those rows' coupled
    cells, so its cost scales with the observations under vote, not
    the sample size.  Deeper ``rounds`` policies buy statistical depth
    in the sweep, where per-cell verdicts live, not here.

    Returns the per-victim mask of candidates whose failure was
    *upheld* by the vote.
    """
    from ..robust.vote import reseed_banks

    touched = {key for key, group in groups.items()
               if candidates[group.victim_idx].any()}
    saved = []
    for chip_idx, bank_idx in touched:
        bank = controllers[chip_idx].chip.banks[bank_idx]
        noise_rng = (bank.noise._coin_rng
                     if bank.noise is not None else None)
        saved.append((bank, bank._rng, bank.faults.vrt_leaky.copy(),
                      noise_rng))
    counts = candidates.astype(np.int64)
    reps = min(policy.rounds, 3)
    need = reps // 2 + 1
    for rep in range(1, reps):
        remaining = reps - rep
        undecided = (candidates & (counts < need)
                     & (counts + remaining >= need))
        if not undecided.any():
            break
        sub_groups = _filter_groups(groups, undecided)
        reseed_banks(controllers, seed, "robust.recursion", *path, rep,
                     only=sub_groups.keys())
        again = _run_region_test(controllers, sub_groups, sub_abs,
                                 covered, sample, region_size,
                                 revote=True)
        counts += (again & undecided)
    for bank, rng, leaky, noise_rng in saved:
        bank._rng = rng
        bank.faults._rng = rng
        bank.faults.vrt_leaky = leaky
        if noise_rng is not None:
            bank.noise._coin_rng = noise_rng
    return counts >= need


#: Reporters a child distance needs within a level before its
#: observations are accepted without a re-vote.  Soft errors strike
#: independent random cells, so three victims reporting the *same*
#: distance cannot plausibly be coincident one-off flips - the crowd
#: corroborates them, exactly the statistic the ranking filter trusts.
#: Distances below the floor are re-voted victim by victim.
CORROBORATION_FLOOR = 3


def _revote_uncorroborated(controllers: Sequence[MemoryController],
                           groups: Dict[Tuple[int, int], _RowGroup],
                           sample: VictimSample, region_size: int,
                           pending, v_region: np.ndarray, policy,
                           seed: int) -> None:
    """Re-vote the uncorroborated failures of one recursion level.

    ``pending`` holds every executed region test of the level as
    ``(sub_abs, covered, failed, path)``; the ``failed`` masks are
    updated in place.  A failure observation is *suspicious* - and
    gets the :func:`_revote_region` treatment - only when the child
    distance it reports has fewer than :data:`CORROBORATION_FLOOR`
    reporters across the level.  Crowd-corroborated observations are
    accepted as-is, which is what keeps the repeat-and-vote recursion
    within a constant factor of the single-pass one: the overwhelming
    majority of failures report the true distances, and those have
    hundreds of reporters.
    """
    counts: Dict[int, int] = {}
    dist_of: List[np.ndarray] = []
    for sub_abs, covered, failed, _path in pending:
        dd = sub_abs - v_region
        dist_of.append(dd)
        for v in np.flatnonzero(failed & covered).tolist():
            dist = int(dd[v])
            counts[dist] = counts.get(dist, 0) + 1
    for (sub_abs, covered, failed, path), dd in zip(pending, dist_of):
        observed = failed & covered
        if not observed.any():
            continue
        suspicious = observed.copy()
        for v in np.flatnonzero(observed).tolist():
            if counts[int(dd[v])] >= CORROBORATION_FLOOR:
                suspicious[v] = False
        if not suspicious.any():
            continue
        upheld = _revote_region(controllers, groups, sub_abs, covered,
                                sample, region_size, suspicious,
                                policy, seed, path)
        failed &= ~suspicious
        failed |= upheld


def recursive_neighbour_search(controllers: Sequence[MemoryController],
                               sample: VictimSample,
                               config: ParborConfig,
                               policy=None, seed: int = 0
                               ) -> RecursionResult:
    """Run the full multi-level recursion over a victim sample.

    Args:
        controllers: one memory controller per chip; all victims'
            ``chip`` indices must address this list.
        sample: initial victim sample from discovery.
        config: campaign configuration.
        policy: optional :class:`repro.robust.RoundsPolicy`; with
            ``rounds > 1`` every *uncorroborated* failure observation
            is re-voted on fresh seed-ladder streams (sequential
            best-of-three, early-exiting - see
            :func:`_revote_uncorroborated` and
            :func:`_revote_region`).
        seed: root seed of the re-vote ladder (the campaign run seed).

    Returns:
        A :class:`RecursionResult`; ``result.distances`` is the union
        of neighbour distances PARBOR would use for the whole chip.
    """
    if not controllers:
        raise ValueError("need at least one controller")
    row_bits = controllers[0].row_bits
    sizes = config.sizes_for(row_bits)
    result = RecursionResult()
    if len(sample) == 0:
        return result

    active = np.ones(len(sample), dtype=bool)
    candidate_dists: List[int] = [0]
    prev_size = row_bits

    for li, size in enumerate(sizes):
        with obs.span("recursion.level", level=li + 1,
                      region_size=size) as level_span:
            fan = prev_size // size
            n_regions = row_bits // size
            groups = _group_victims(sample, active)

            found: List[Set[int]] = [set() for _ in range(len(sample))]
            tested = np.zeros(len(sample), dtype=np.int64)
            v_prev_region = sample.col // prev_size
            v_region = sample.col // size
            tests = 0

            pending: List[Tuple[np.ndarray, np.ndarray, np.ndarray,
                                Tuple[int, ...]]] = []
            for d in candidate_dists:
                parent = v_prev_region + d
                in_range = (parent >= 0) & (parent < row_bits // prev_size)
                for j in range(fan):
                    sub_abs = parent * fan + j
                    covered = active & in_range & (sub_abs >= 0) \
                        & (sub_abs < n_regions)
                    # The size-1 "region" that is the victim itself cannot
                    # be tested against it.
                    if size == 1:
                        covered &= sub_abs != sample.col
                    tests += 1
                    if not covered.any():
                        continue
                    failed = _run_region_test(controllers, groups, sub_abs,
                                              covered, sample, size)
                    tested[covered] += 1
                    pending.append((sub_abs, covered, failed, (li, d, j)))

            if policy is not None and policy.rounds > 1:
                _revote_uncorroborated(controllers, groups, sample,
                                       size, pending, v_region, policy,
                                       seed)
            for sub_abs, covered, failed, _path in pending:
                for v in np.flatnonzero(failed & covered).tolist():
                    found[v].add(int(sub_abs[v] - v_region[v]))

            # Marginal filter (Section 5.2.4, first filter): a victim
            # failing in most tested regions is noise, not data dependence.
            # Failing in *every* tested region - even the two level-1
            # halves - marks a content-independent cell (weak cell, leaky
            # VRT) regardless of how few regions were tested, because a
            # real victim's neighbours cannot be everywhere at once.
            marginal = np.zeros(len(sample), dtype=bool)
            for v in np.flatnonzero(active).tolist():
                if tested[v] >= 2 and len(found[v]) == tested[v]:
                    marginal[v] = True
                elif tested[v] >= 4 and (len(found[v])
                                         > config.marginal_region_fraction
                                         * tested[v]):
                    marginal[v] = True
            active &= ~marginal

            reporters: Dict[int, int] = {}
            for v in np.flatnonzero(active).tolist():
                for dist in found[v]:
                    reporters[dist] = reporters.get(dist, 0) + 1
            outcome: RankingOutcome = rank_distances(
                reporters, n_active=int(active.sum()),
                threshold=config.ranking_threshold)

            result.levels.append(LevelResult(
                level=li + 1, region_size=size,
                candidate_distances=list(candidate_dists), tests=tests,
                reporters=reporters, kept_distances=outcome.kept,
                discarded_marginal=int(marginal.sum()),
                active_victims=int(active.sum())))
            result.total_tests += tests
            level_span.set(tests=tests, kept=list(outcome.kept),
                           candidates=len(candidate_dists),
                           discarded_marginal=int(marginal.sum()),
                           active_victims=int(active.sum()))
            obs.inc(f"tests.level[{li + 1}]", tests)

            candidate_dists = outcome.kept
            prev_size = size
            if not candidate_dists:
                break

    if result.levels and result.levels[-1].region_size == 1:
        result.distances = sorted(result.levels[-1].kept_distances,
                                  key=lambda d: (abs(d), d))
    if obs.enabled() and result.distances:
        # "Failures per distance": how many victims reported each
        # surviving distance at the single-bit level (Figure 14's
        # right-hand side, as a mergeable counter family).
        final_reporters = result.levels[-1].reporters
        for d in result.distances:
            obs.inc(f"failures.distance[{d}]",
                    final_reporters.get(d, 0))
    return result

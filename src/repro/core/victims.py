"""Initial victim-set discovery (paper Section 5.2.1).

PARBOR needs a sample of cells that *likely* exhibit data-dependent
failures before it can chase their neighbours. The discovery battery
writes a handful of different data patterns; a cell that fails under
some patterns but operates correctly under others is likely
data-dependent. Cells failing under *every* pattern are weak cells
(content-independent) and are excluded here; random failures (soft
errors, VRT, marginal cells) inevitably sneak into the sample and are
filtered later by the ranking stage (Section 5.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from .._kernels import reference_kernels_enabled
from ..dram.controller import MemoryController
from .config import ParborConfig
from .patterns import discovery_patterns

__all__ = ["VictimSample", "find_initial_victims"]

Coord = Tuple[int, int, int, int]  # (chip, bank, row, sys_col)


@dataclass
class VictimSample:
    """A sample of candidate data-dependent victim cells.

    Attributes:
        chip / bank / row / col: parallel coordinate arrays.
        n_discovery_tests: how many pattern tests built the sample.
        observed_failures: every coordinate that failed at least one
            discovery test. The discovery battery is part of PARBOR's
            test budget, so its detections count towards PARBOR's
            uncovered failures (Section 7.2 itemises it as budget
            item (iii)).
    """

    chip: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    col: np.ndarray
    n_discovery_tests: int = 0
    observed_failures: Set[Coord] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.row)

    def coords(self) -> List[Coord]:
        return list(zip(self.chip.tolist(), self.bank.tolist(),
                        self.row.tolist(), self.col.tolist()))

    def subset(self, mask: np.ndarray) -> "VictimSample":
        return VictimSample(chip=self.chip[mask], bank=self.bank[mask],
                            row=self.row[mask], col=self.col[mask],
                            n_discovery_tests=self.n_discovery_tests,
                            observed_failures=self.observed_failures)

    @classmethod
    def from_coords(cls, coords: Sequence[Coord],
                    n_discovery_tests: int = 0,
                    observed_failures: Set[Coord] = None) -> "VictimSample":
        observed = observed_failures or set()
        if not coords:
            empty = np.empty(0, dtype=np.int64)
            return cls(empty, empty.copy(), empty.copy(), empty.copy(),
                       n_discovery_tests, observed)
        arr = np.asarray(coords, dtype=np.int64)
        return cls(chip=arr[:, 0], bank=arr[:, 1], row=arr[:, 2],
                   col=arr[:, 3], n_discovery_tests=n_discovery_tests,
                   observed_failures=observed)


def find_initial_victims(controllers: Sequence[MemoryController],
                         config: ParborConfig,
                         rng: np.random.Generator) -> VictimSample:
    """Run the discovery battery and sample candidate victims.

    Args:
        controllers: one memory controller per chip under test (all
            chips must share row geometry; they are tested with the
            same patterns simultaneously, which costs one test budget).
        config: campaign configuration (battery size, sample size).
        rng: randomness for the random backgrounds and sampling.

    Returns:
        A :class:`VictimSample` of at most ``config.sample_size`` cells
        that failed under at least one pattern and passed under at
        least one other.
    """
    if not controllers:
        raise ValueError("need at least one controller")
    row_bits = controllers[0].row_bits
    if any(c.row_bits != row_bits for c in controllers):
        raise ValueError("all chips must share row width")

    battery = discovery_patterns(row_bits, config.n_discovery_tests, rng)
    n_tests = len(battery)
    if reference_kernels_enabled():
        fail_counts: Dict[Coord, int] = {}
        for _name, pattern in battery:
            for chip_idx, ctrl in enumerate(controllers):
                per_bank = ctrl.test_pattern(pattern)
                for bank_idx, (rows, cols) in enumerate(per_bank):
                    for r, c in zip(rows.tolist(), cols.tolist()):
                        key = (chip_idx, bank_idx, r, c)
                        fail_counts[key] = fail_counts.get(key, 0) + 1
        candidates = [coord for coord, fails in fail_counts.items()
                      if 1 <= fails < n_tests]
        candidates.sort()
        observed = set(fail_counts)
    else:
        # Batched counting: encode every failure coordinate of every
        # test into one integer per cell and histogram them in a
        # single unique pass instead of a per-cell dict update.
        n_rows = max(c.n_rows for c in controllers)
        n_banks = max(c.n_banks for c in controllers)
        chunks: List[np.ndarray] = []
        for _name, pattern in battery:
            for chip_idx, ctrl in enumerate(controllers):
                per_bank = ctrl.test_pattern(pattern)
                for bank_idx, (rows, cols) in enumerate(per_bank):
                    enc = (((np.int64(chip_idx) * n_banks + bank_idx)
                            * n_rows + rows.astype(np.int64))
                           * row_bits + cols.astype(np.int64))
                    chunks.append(enc)
        if chunks:
            enc_all = np.concatenate(chunks)
            uniq, fails = np.unique(enc_all, return_counts=True)
        else:
            uniq = np.empty(0, dtype=np.int64)
            fails = uniq
        def _decode(enc: np.ndarray) -> List[Coord]:
            cols_d = enc % row_bits
            rest = enc // row_bits
            rows_d = rest % n_rows
            rest //= n_rows
            banks_d = rest % n_banks
            chips_d = rest // n_banks
            return list(zip(chips_d.tolist(), banks_d.tolist(),
                            rows_d.tolist(), cols_d.tolist()))
        # Encoded order is lexicographic (chip, bank, row, col) order,
        # matching the reference path's candidates.sort().
        candidates = _decode(uniq[(fails >= 1) & (fails < n_tests)])
        observed = set(_decode(uniq))

    # Keep rows sparse: same-row victims share physical writes, and a
    # crowded row lets one victim's zeroed test region land on
    # another's aggressor, fabricating distances.
    per_row: Dict[Tuple[int, int, int], int] = {}
    sparse: List[Coord] = []
    for coord in candidates:
        key = coord[:3]
        if per_row.get(key, 0) < config.max_victims_per_row:
            per_row[key] = per_row.get(key, 0) + 1
            sparse.append(coord)
    candidates = sparse

    if len(candidates) > config.sample_size:
        idx = rng.choice(len(candidates), size=config.sample_size,
                         replace=False)
        candidates = [candidates[i] for i in sorted(idx.tolist())]
    return VictimSample.from_coords(candidates, n_discovery_tests=n_tests,
                                    observed_failures=observed)

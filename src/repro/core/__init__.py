"""PARBOR: parallel recursive neighbour testing (the paper's core)."""

from .baselines import (exhaustive_neighbour_search, linear_neighbour_search,
                        random_pattern_test, simple_pattern_test)
from .complexity import (exhaustive_cost_table, exhaustive_test_time_s,
                         humanise_seconds, module_test_time_s,
                         parbor_campaign_time_s, per_bit_test_time_ns,
                         recursion_test_count, reduction_factor)
from .config import DEFAULT_CONFIG, ParborConfig, region_sizes
from .detector import (ParborResult, controllers_for, neighbour_aware_sweep,
                       run_parbor)
from .march import (MARCH_B, MARCH_C_MINUS, MARCH_LR, MARCH_SS,
                    MATS_PLUS, MarchElement,
                    MarchOp, MarchOutcome, MarchTest, parse_march,
                    run_march)
from .planner import CampaignPlan, plan_campaign, predict_level_distances
from .patterns import (checkerboard, column_stripes, discovery_patterns,
                       inverse, random_pattern, solid, walking_ones,
                       with_inverses)
from .ranking import RankingOutcome, normalised_ranking, rank_distances
from .recursion import (LevelResult, RecursionResult,
                        recursive_neighbour_search)
from .remap_recovery import RecoveryResult, recover_irregular_victims
from .scheduler import (TestSchedule, build_schedule, greedy_colouring,
                        paper_round_count)
from .victims import VictimSample, find_initial_victims

__all__ = [
    "DEFAULT_CONFIG", "LevelResult", "ParborConfig", "ParborResult",
    "RankingOutcome", "RecursionResult", "TestSchedule", "VictimSample",
    "build_schedule", "checkerboard", "column_stripes", "controllers_for",
    "discovery_patterns", "exhaustive_cost_table",
    "exhaustive_neighbour_search", "exhaustive_test_time_s",
    "find_initial_victims", "greedy_colouring", "humanise_seconds",
    "inverse", "linear_neighbour_search", "module_test_time_s",
    "MARCH_B", "MARCH_C_MINUS", "MARCH_LR", "MARCH_SS", "MATS_PLUS",
    "MarchElement", "MarchOp",
    "MarchOutcome", "MarchTest", "parse_march", "run_march",
    "neighbour_aware_sweep", "normalised_ranking", "paper_round_count",
    "CampaignPlan", "plan_campaign", "predict_level_distances",
    "parbor_campaign_time_s", "per_bit_test_time_ns", "random_pattern",
    "random_pattern_test", "rank_distances", "recover_irregular_victims",
    "RecoveryResult", "recursion_test_count",
    "recursive_neighbour_search", "reduction_factor", "region_sizes",
    "run_parbor", "simple_pattern_test", "solid", "walking_ones",
    "with_inverses",
]

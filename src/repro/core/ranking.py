"""Frequency ranking of neighbour-region distances (Section 5.2.4).

Random (non-data-dependent) failures occasionally flip a victim while
some unrelated region is under test, wrongly implicating that region.
Because the scrambler is regular, *real* neighbour distances are
reported by many victims while noise distances are reported by few;
keeping only distances whose reporter count is a healthy fraction of
the most frequent one filters the noise (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["RankingOutcome", "rank_distances", "normalised_ranking"]


@dataclass
class RankingOutcome:
    """Result of ranking one level's distance reports.

    Attributes:
        kept: distances surviving the filter, sorted by magnitude.
        dropped: distances filtered out as infrequent.
        max_reporters: reporter count of the most frequent distance.
    """

    kept: List[int]
    dropped: List[int]
    max_reporters: int


def rank_distances(reporters: Dict[int, int], n_active: int,
                   threshold: float) -> RankingOutcome:
    """Keep distances reported by >= ``threshold`` of the sample.

    A real neighbour distance is reported by a sizeable share of the
    active victims (the scrambler is regular), while a random failure
    implicates a distance for only a victim or two. Normalising to the
    sample size rather than the busiest distance keeps the cut stable
    when the busiest distance itself varies between levels.

    Args:
        reporters: distance -> number of victims reporting it.
        n_active: number of victims still active in the sample.
        threshold: fraction of the sample required, in (0, 1].
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if not reporters or n_active <= 0:
        return RankingOutcome(kept=[], dropped=[], max_reporters=0)
    top = max(reporters.values())
    cut = max(threshold * n_active, 1.0)
    kept = sorted((d for d, n in reporters.items() if n >= cut),
                  key=lambda d: (abs(d), d))
    dropped = sorted((d for d, n in reporters.items() if n < cut),
                     key=lambda d: (abs(d), d))
    return RankingOutcome(kept=kept, dropped=dropped, max_reporters=top)


def normalised_ranking(reporters: Dict[int, int]) -> Dict[int, float]:
    """Reporter counts normalised to the most frequent distance.

    This is exactly the y-axis of the paper's Figures 14 and 15.
    """
    if not reporters:
        return {}
    top = max(reporters.values())
    return {d: n / top for d, n in sorted(reporters.items())}

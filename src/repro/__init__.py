"""PARBOR reproduction: data-dependent DRAM failure detection.

A from-scratch Python implementation of *PARBOR: An Efficient
System-Level Technique to Detect Data-Dependent Failures in DRAM*
(Khan, Lee, Mutlu - DSN 2016), including:

* :mod:`repro.dram` - a behavioural DRAM substrate: vendor address
  scrambling, coupled-cell failure models, random-fault injection,
  chips/modules, and the memory-controller test interface.
* :mod:`repro.core` - PARBOR itself: victim discovery, parallel
  recursive neighbour search, distance ranking, neighbour-aware sweep
  scheduling, baselines, and the appendix complexity analytics.
* :mod:`repro.sim` + :mod:`repro.dcref` - the DC-REF use case: a
  trace-driven multicore/DDR3 simulator with uniform, RAIDR, and
  data-content-based refresh policies.
* :mod:`repro.analysis` - drivers regenerating every table and figure
  of the paper's evaluation.
* :mod:`repro.runtime` - the parallel fleet-campaign engine:
  deterministic seed ladders, picklable campaign specs, and
  :func:`repro.runtime.run_fleet`, whose results are identical for
  every worker count.

Quickstart::

    from repro.dram import vendor
    from repro.core import run_parbor

    chip = vendor("A").make_chip(seed=1, n_rows=128)
    result = run_parbor(chip)
    print(result.distances)        # -> [-8, 8, -16, 16, -48, 48]
    print(result.recursion.tests_per_level)   # -> [2, 8, 8, 24, 48]
"""

from . import analysis, core, dcref, dram, mitigate, robust, runtime, sim
from .core import ParborConfig, ParborResult, run_parbor
from .dram import DramChip, DramModule, MemoryController, vendor
from .robust import QuarantineSet, RoundsPolicy
from .runtime import CampaignSpec, run_fleet

__version__ = "1.0.0"

__all__ = [
    "CampaignSpec", "DramChip", "DramModule", "MemoryController",
    "ParborConfig", "ParborResult", "QuarantineSet", "RoundsPolicy",
    "analysis", "core", "dcref", "dram", "mitigate", "robust",
    "run_fleet", "run_parbor", "runtime", "sim", "vendor",
    "__version__",
]

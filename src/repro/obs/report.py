"""Render a dumped trace back into human-readable tables.

``repro report trace.jsonl`` loads the JSON Lines records written by
``--trace`` and rebuilds the campaign story: one per-recursion-level
table per campaign (the Table 1 view - for vendor A the test counts
sum to the paper's 90), a per-vendor rollup, the fleet/worker
lifecycle, merged metrics counters, and - unless ``--no-timing`` -
wall-clock breakdowns of the write/wait/read phases and per-campaign
durations.

Deterministic content (tables driven by span attributes and
counters) is emitted first and is stable across runs and ``--jobs``
settings; timing sections are wall-clock and vary run to run, which
is why the golden test and diff-friendly workflows use
``--no-timing``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.ascii import hbar_chart
from ..analysis.tables import format_distance_set, format_table
from .metrics import MetricsRegistry

__all__ = ["render_journal", "render_report", "summarise"]

SpanKey = Tuple[str, int]

PHASES = ("phase.write", "phase.wait", "phase.read")


def _attrs(record: Dict[str, Any]) -> Dict[str, Any]:
    return record.get("attrs", {})


def _index_spans(records: Sequence[Dict[str, Any]]
                 ) -> Dict[SpanKey, Dict[str, Any]]:
    return {(r["trace"], r["span"]): r for r in records
            if r.get("kind") == "span"}


def _ancestor(span: Dict[str, Any], name: str,
              index: Dict[SpanKey, Dict[str, Any]]
              ) -> Optional[Dict[str, Any]]:
    """Nearest enclosing span (inclusive) with the given name."""
    seen = 0
    current: Optional[Dict[str, Any]] = span
    while current is not None and seen < 64:
        if current["name"] == name:
            return current
        current = index.get((current["trace"], current["parent"]))
        seen += 1
    return None


def _campaign_sections(records: Sequence[Dict[str, Any]],
                       index: Dict[SpanKey, Dict[str, Any]]
                       ) -> List[str]:
    campaigns = [r for r in records if r.get("kind") == "span"
                 and r["name"] == "campaign"]
    # Stable, scheduling-independent order: by label then trace ID.
    campaigns.sort(key=lambda r: (_attrs(r).get("label", ""),
                                  r["trace"]))
    levels_of: Dict[SpanKey, List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("kind") == "span" \
                and record["name"] == "recursion.level":
            owner = _ancestor(record, "campaign", index)
            if owner is not None:
                key = (owner["trace"], owner["span"])
                levels_of.setdefault(key, []).append(record)

    sections: List[str] = []
    for campaign in campaigns:
        attrs = _attrs(campaign)
        label = attrs.get("label", "campaign")
        distances = attrs.get("distances", [])
        head = (f"campaign {label}  "
                f"[trace {campaign['trace']}]\n"
                f"  distances {format_distance_set(distances)}, "
                f"{attrs.get('total_tests', '?')} total tests, "
                f"{attrs.get('detected', 0)} failures detected")
        levels = sorted(levels_of.get(
            (campaign["trace"], campaign["span"]), []),
            key=lambda r: _attrs(r).get("level", 0))
        if not levels:
            sections.append(head)
            continue
        rows: List[List[object]] = []
        for level in levels:
            la = _attrs(level)
            rows.append([f"L{la.get('level')}", la.get("region_size"),
                         la.get("tests"),
                         format_distance_set(la.get("kept", [])),
                         la.get("active_victims")])
        total = sum(int(_attrs(lv).get("tests", 0)) for lv in levels)
        rows.append(["total", "", total, "", ""])
        table = format_table(
            ["Level", "Region size", "Tests", "Kept distances",
             "Active victims"], rows)
        sections.append(head + "\n" + table)
    return sections


def _vendor_rollup(records: Sequence[Dict[str, Any]]) -> Optional[str]:
    campaigns = [r for r in records if r.get("kind") == "span"
                 and r["name"] == "campaign"]
    if not campaigns:
        return None
    by_vendor: Dict[str, Dict[str, int]] = {}
    for campaign in campaigns:
        attrs = _attrs(campaign)
        agg = by_vendor.setdefault(str(attrs.get("vendor", "?")),
                                   {"campaigns": 0, "tests": 0,
                                    "detected": 0})
        agg["campaigns"] += 1
        agg["tests"] += int(attrs.get("total_tests", 0))
        agg["detected"] += int(attrs.get("detected", 0))
    rows = [[vendor, agg["campaigns"], agg["tests"], agg["detected"]]
            for vendor, agg in sorted(by_vendor.items())]
    return "per-vendor rollup\n" + format_table(
        ["Vendor", "Campaigns", "Total tests", "Detected"], rows)


def _fleet_section(records: Sequence[Dict[str, Any]]) -> Optional[str]:
    fleets = [r for r in records if r.get("kind") == "span"
              and r["name"] == "fleet"]
    events: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "event" \
                and record["name"].startswith("fleet."):
            events[record["name"]] = events.get(record["name"], 0) + 1
    if not fleets and not events:
        return None
    rows: List[List[object]] = []
    for fleet in fleets:
        attrs = _attrs(fleet)
        rows.append(["targets", attrs.get("targets", "?")])
        rows.append(["jobs", attrs.get("jobs", "?")])
        if "attempts" in attrs:
            rows.append(["attempts", attrs["attempts"]])
    for name in sorted(events):
        rows.append([name, events[name]])
    return "fleet\n" + format_table(["Quantity", "Value"], rows)


def _robustness_section(records: Sequence[Dict[str, Any]],
                        metrics: MetricsRegistry) -> Optional[str]:
    """Profile-robustness rollup: ``profile.*`` counters plus any
    drift-gate trips recorded as ``profile.drift`` events.  The
    ``profile.ecc.*`` counters live in their own section."""
    rows: List[List[object]] = []
    for name, value in sorted(metrics.counters.items()):
        if name.startswith("profile.") \
                and not name.startswith("profile.ecc."):
            rows.append([name, f"{value:g}"])
    drift = metrics.histograms.get("profile.drift")
    if drift and drift.get("count"):
        rows.append(["profile.drift (max observed)",
                     f"{drift['max']:.4f}"])
    trips = [r for r in records if r.get("kind") == "event"
             and r["name"] == "profile.drift"]
    for trip in trips:
        attrs = _attrs(trip)
        rows.append([f"drift gate trip ({attrs.get('context', '?')})",
                     f"drift={attrs.get('drift', '?')} "
                     f"threshold={attrs.get('threshold', '?')} "
                     f"strict={attrs.get('strict', '?')}"])
    if not rows:
        return None
    return "profile robustness\n" + format_table(["Quantity", "Value"],
                                                 rows)


def _ecc_section(records: Sequence[Dict[str, Any]],
                 metrics: MetricsRegistry) -> Optional[str]:
    """On-die ECC rollup: the ``profile.ecc.*`` stage counters (words
    decoded, masked/miscorrected cells, recovered words, quarantined
    ambiguity) plus inference-gate trips and degraded-mode events."""
    rows: List[List[object]] = []
    for name, value in sorted(metrics.counters.items()):
        if name.startswith("profile.ecc."):
            rows.append([name, f"{value:g}"])
    for record in records:
        if record.get("kind") != "event":
            continue
        if record["name"] == "ecc.inference":
            attrs = _attrs(record)
            rows.append([f"inference gate trip "
                         f"({attrs.get('context', '?')})",
                         f"reason={attrs.get('reason', '?')} "
                         f"strict={attrs.get('strict', '?')}"])
        elif record["name"] == "ecc.degraded":
            attrs = _attrs(record)
            rows.append([f"degraded campaign "
                         f"({attrs.get('label', '?')})",
                         f"detections quarantined="
                         f"{attrs.get('detections', '?')}"])
    if not rows:
        return None
    return "ecc\n" + format_table(["Quantity", "Value"], rows)


def _service_section(records: Sequence[Dict[str, Any]],
                     metrics: MetricsRegistry) -> Optional[str]:
    """Campaign-service rollup: ``service.*`` lifecycle event counts
    plus the ``proc.service.*`` counters (submissions, rejections,
    shard outcomes, corrupt queue records, degraded tenants)."""
    rows: List[List[object]] = []
    events: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "event" \
                and record["name"].startswith("service."):
            events[record["name"]] = events.get(record["name"], 0) + 1
    for name in sorted(events):
        rows.append([name, events[name]])
    for name, value in sorted(metrics.counters.items()):
        if name.startswith("proc.service."):
            rows.append([name, f"{value:g}"])
    if not rows:
        return None
    return "service\n" + format_table(["Quantity", "Value"], rows)


def render_journal(path: str) -> str:
    """Render a checkpoint journal - live or post-mortem - as a table.

    Works on the journal of a *running* (or killed) fleet: the
    read-only loader tolerates the truncated tail an in-flight append
    leaves behind, so this is the progress view for a campaign that
    is still going - or the post-mortem for one that died.
    """
    from ..runtime.resilience import CheckpointJournal

    records = CheckpointJournal.read(path)
    head = (f"checkpoint journal {path}: {len(records)} completed "
            f"target(s)")
    if not records:
        return head
    rows: List[List[object]] = []
    for record in records:
        signature = record.get("signature")
        detail = ""
        if (isinstance(signature, list) and len(signature) > 1
                and isinstance(signature[1], list)
                and all(isinstance(d, int) for d in signature[1])):
            detail = format_distance_set(signature[1])
        rows.append([record.get("label", "?"),
                     record.get("key", "?"), detail])
    return head + "\n" + format_table(
        ["Target", "Checkpoint key", "Distances"], rows)


def _merged_metrics(records: Sequence[Dict[str, Any]]
                    ) -> MetricsRegistry:
    return MetricsRegistry.merge(
        MetricsRegistry.from_dict(r) for r in records
        if r.get("kind") == "metrics")


def _metrics_section(metrics: MetricsRegistry) -> Optional[str]:
    if not metrics.counters:
        return None
    rows = [[name, f"{value:g}"]
            for name, value in sorted(metrics.counters.items())]
    return "metrics counters\n" + format_table(["Counter", "Value"],
                                               rows)


def _timing_sections(records: Sequence[Dict[str, Any]],
                     metrics: MetricsRegistry) -> List[str]:
    sections: List[str] = []
    phase_ms: Dict[str, float] = {}
    phase_n: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "span" and record["name"] in PHASES:
            phase_ms[record["name"]] = (phase_ms.get(record["name"], 0.0)
                                        + record["dur_ns"] / 1e6)
            phase_n[record["name"]] = phase_n.get(record["name"], 0) + 1
    if phase_ms:
        ordered = {name: phase_ms[name] for name in PHASES
                   if name in phase_ms}
        rows = [[name, phase_n[name], f"{ms:.1f}"]
                for name, ms in ordered.items()]
        sections.append(
            "phase wall clock\n"
            + format_table(["Phase", "Count", "Total ms"], rows)
            + "\n" + hbar_chart(ordered, width=30, fmt="{:.1f} ms"))

    campaigns = [r for r in records if r.get("kind") == "span"
                 and r["name"] == "campaign"]
    if campaigns:
        campaigns.sort(key=lambda r: (_attrs(r).get("label", ""),
                                      r["trace"]))
        rows = [[_attrs(c).get("label", "campaign"),
                 f"{c['dur_ns'] / 1e6:.1f}"] for c in campaigns]
        sections.append("campaign wall clock\n"
                        + format_table(["Campaign", "ms"], rows))

    if metrics.histograms:
        rows = [[name, int(h["count"]), f"{h['sum']:.1f}",
                 f"{h['min']:.2f}", f"{h['max']:.2f}"]
                for name, h in sorted(metrics.histograms.items())]
        sections.append("metrics histograms (ms)\n" + format_table(
            ["Histogram", "Count", "Sum", "Min", "Max"], rows))
    return sections


def render_report(records: Sequence[Dict[str, Any]],
                  include_timing: bool = True) -> str:
    """Build the full ``repro report`` text from trace records."""
    if not records:
        return "empty trace"
    index = _index_spans(records)
    metrics = _merged_metrics(records)
    sections = _campaign_sections(records, index)
    for section in (_vendor_rollup(records), _fleet_section(records),
                    _service_section(records, metrics),
                    _robustness_section(records, metrics),
                    _ecc_section(records, metrics),
                    _metrics_section(metrics)):
        if section:
            sections.append(section)
    if include_timing:
        sections.extend(_timing_sections(records, metrics))
    if not sections:
        return "no campaign spans found in trace"
    return "\n\n".join(sections)


def summarise(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Machine-readable digest of a trace (the ``--json`` payload)."""
    index = _index_spans(records)
    campaigns = []
    for record in records:
        if record.get("kind") != "span" or record["name"] != "campaign":
            continue
        attrs = _attrs(record)
        levels = []
        for level in records:
            if level.get("kind") == "span" \
                    and level["name"] == "recursion.level":
                owner = _ancestor(level, "campaign", index)
                if owner is record:
                    levels.append(_attrs(level))
        levels.sort(key=lambda a: a.get("level", 0))
        campaigns.append({
            "trace": record["trace"],
            "label": attrs.get("label"),
            "vendor": attrs.get("vendor"),
            "total_tests": attrs.get("total_tests"),
            "distances": attrs.get("distances"),
            "detected": attrs.get("detected"),
            "tests_per_level": [a.get("tests") for a in levels],
        })
    campaigns.sort(key=lambda c: (c["label"] or "", c["trace"]))
    metrics = _merged_metrics(records)
    return {"campaigns": campaigns, "metrics": metrics.to_dict()}

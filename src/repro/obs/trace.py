"""Structured tracing for campaign runs (spans, events, JSON Lines).

A :class:`Tracer` collects *records* - plain dicts - describing what a
campaign did and when: nested **spans** (campaign -> recursion level ->
write/wait/read phases) with monotonic start offsets and durations, and
point-in-time **events** (fleet retries, schedule construction).  The
records serialise to JSON Lines, one record per line, so traces can be
appended, concatenated across worker processes, and streamed.

Record schema (``schema`` version in the ``meta`` record):

``meta``
    ``{"kind": "meta", "trace": <id>, "schema": 1, "label": ...}`` -
    one per tracer, first record.
``span``
    ``{"kind": "span", "trace": <id>, "name": ..., "span": <int id>,
    "parent": <id or 0>, "t_ns": <start, monotonic, relative to the
    tracer's birth>, "dur_ns": ..., "attrs": {...}}`` - emitted when
    the span closes.
``event``
    ``{"kind": "event", "trace": <id>, "name": ..., "span":
    <enclosing span id or 0>, "t_ns": ..., "attrs": {...}}``.
``metrics``
    one merged :class:`~repro.obs.metrics.MetricsRegistry` snapshot
    (written by the CLI so trace files are self-contained).

The trace ID is derived from the campaign's **seed-ladder identity
path** (see :meth:`repro.runtime.specs.CampaignSpec.trace_id`), so the
same target traced on any machine, any worker process, any ``--jobs``
setting gets the same ID.

Timestamps are *monotonic* (``time.monotonic_ns``) and relative to the
tracer's creation; each worker process carries its own clock base, so
durations are comparable across processes but absolute offsets are
only ordered within one trace ID.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["SCHEMA_VERSION", "NULL_SPAN", "Span", "Tracer",
           "read_jsonl", "write_jsonl"]

SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays (and other strays) for json.dump."""
    if hasattr(value, "tolist"):         # numpy scalar or array
        return value.tolist()
    if isinstance(value, set):
        return sorted(value)
    return str(value)


class Span:
    """One open span; close it by leaving its ``with`` block.

    Attributes set at open time (keyword arguments to
    :meth:`Tracer.span`) and later via :meth:`set` are emitted in the
    span's ``attrs`` when it closes.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs",
                 "t0_ns")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int, attrs: Dict[str, Any],
                 t0_ns: int) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.t0_ns = t0_ns

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered while the span was open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._close_span(self)
        return False


class _NullSpan:
    """The do-nothing span every hook returns while tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span/event records for one trace ID, in memory.

    Records are plain dicts (picklable - workers ship them back with
    their :class:`~repro.runtime.specs.CampaignOutcome`); call
    :func:`write_jsonl` to persist them.
    """

    def __init__(self, trace_id: str, label: str = "",
                 clock: Callable[[], int] = time.monotonic_ns) -> None:
        self.trace_id = trace_id
        self.records: List[Dict[str, Any]] = []
        self._clock = clock
        self._t_base = clock()
        self._stack: List[int] = []
        self._next_id = 1
        meta: Dict[str, Any] = {"kind": "meta", "trace": trace_id,
                                "schema": SCHEMA_VERSION}
        if label:
            meta["label"] = label
        self.records.append(meta)

    def _now_ns(self) -> int:
        return self._clock() - self._t_base

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the currently open one."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else 0
        sp = Span(self, name, span_id, parent, attrs, self._now_ns())
        self._stack.append(span_id)
        return sp

    def _close_span(self, sp: Span) -> None:
        # An exception can unwind past inner spans whose __exit__ never
        # ran (e.g. a generator abandoned mid-iteration); pop down to
        # the closing span so nesting stays consistent.
        while self._stack and self._stack[-1] != sp.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        record: Dict[str, Any] = {
            "kind": "span", "trace": self.trace_id, "name": sp.name,
            "span": sp.span_id, "parent": sp.parent_id,
            "t_ns": sp.t0_ns, "dur_ns": self._now_ns() - sp.t0_ns,
        }
        if sp.attrs:
            record["attrs"] = sp.attrs
        self.records.append(record)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event under the current span."""
        record: Dict[str, Any] = {
            "kind": "event", "trace": self.trace_id, "name": name,
            "span": self._stack[-1] if self._stack else 0,
            "t_ns": self._now_ns(),
        }
        if attrs:
            record["attrs"] = attrs
        self.records.append(record)


def write_jsonl(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """Write records as JSON Lines; returns the number written."""
    n = 0
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True,
                                default=_jsonable))
            fh.write("\n")
            n += 1
    return n


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSON Lines trace file back into a record list."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records

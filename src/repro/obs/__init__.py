"""Opt-in campaign observability: tracing, metrics, and reporting.

The layer is **off by default** and activated per run with
:func:`session`; while no session is active every hook below is a
no-op closure - a module-global load plus a ``None`` check - so the
instrumented engine stays bit-identical to the uninstrumented one
(the PR-1 golden benchmarks and parallel-equivalence tests run with
tracing off and are unaffected; ``tests/obs`` asserts the traced run
is outcome-identical too).

Usage::

    from repro import obs
    from repro.obs.trace import write_jsonl

    with obs.session("trace-id", label="demo") as sess:
        fleet = run_fleet(specs, jobs=4)     # instrumented end to end
    write_jsonl("trace.jsonl", sess.export_records())

Worker processes never see the parent's session object: a
:class:`~repro.runtime.specs.CampaignSpec` with ``trace=True`` opens
its *own* session inside the worker and ships the collected records
and metrics back on its outcome; the parent merges them (metrics via
:meth:`MetricsRegistry.merge`, the same shape as ``TestStats.merge``)
and writes one self-contained JSON Lines file.  ``repro report``
renders that file back into per-level / per-vendor / per-phase tables.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .metrics import MetricsRegistry
from .trace import NULL_SPAN, Span, Tracer, read_jsonl, write_jsonl

__all__ = [
    "MetricsRegistry", "ObsSession", "Tracer",
    "active", "detach", "enabled", "event", "inc", "observe",
    "session", "span", "read_jsonl", "write_jsonl",
]

_ACTIVE: Optional["ObsSession"] = None


class ObsSession:
    """One activated observability scope: a tracer plus a registry."""

    def __init__(self, trace_id: str, label: str = "") -> None:
        self.tracer = Tracer(trace_id, label=label)
        self.metrics = MetricsRegistry()

    def export_records(self) -> List[Dict[str, Any]]:
        """Trace records plus a metrics snapshot record.

        The metrics record makes a dumped trace file self-contained;
        :func:`repro.obs.report.render_report` folds every metrics
        record it finds back together with ``MetricsRegistry.merge``.
        """
        records = list(self.tracer.records)
        if len(self.metrics):
            records.append({"kind": "metrics",
                            "trace": self.tracer.trace_id,
                            **self.metrics.to_dict()})
        return records


def active() -> Optional[ObsSession]:
    """The active session, or None while observability is off."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def detach() -> None:
    """Forget any active session without closing it.

    Worker-pool initializer: on fork-start platforms a freshly forked
    worker inherits the parent's ``_ACTIVE`` session, and anything it
    records into that copy is silently discarded when the worker
    exits.  Detaching first means a worker only ever records into a
    session it opened itself (``CampaignSpec.trace``), whose records
    ship back on the outcome.
    """
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def session(trace_id: str, label: str = "") -> Iterator[ObsSession]:
    """Activate observability for the duration of the block.

    Nested activation joins the outer session (records keep their
    original trace ID) instead of stacking - a spec traced inside an
    already-traced fleet contributes to the fleet's trace.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        yield _ACTIVE
        return
    _ACTIVE = ObsSession(trace_id, label=label)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = None


# -- instrumentation hooks (no-op closures while no session is active) --


def span(name: str, **attrs: Any):
    """Open a span under the active tracer, or return the null span."""
    sess = _ACTIVE
    if sess is None:
        return NULL_SPAN
    return sess.tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record an event, or do nothing."""
    sess = _ACTIVE
    if sess is not None:
        sess.tracer.event(name, **attrs)


def inc(name: str, value: float = 1) -> None:
    """Bump a counter, or do nothing."""
    sess = _ACTIVE
    if sess is not None:
        sess.metrics.inc(name, value)


def observe(name: str, value: float) -> None:
    """Fold a histogram observation, or do nothing."""
    sess = _ACTIVE
    if sess is not None:
        sess.metrics.observe(name, value)

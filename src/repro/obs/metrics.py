"""Counters and histograms for campaign runs, mergeable across workers.

A :class:`MetricsRegistry` is deliberately dumb storage - two dicts of
plain values - so it pickles across the ``ProcessPoolExecutor``
boundary and merges exactly the way
:meth:`repro.dram.controller.TestStats.merge` merges I/O counters:
each worker accumulates its own registry, the parent sums the shipped
records, and the merged result equals what a serial run would have
counted.

Two kinds of instruments:

* **counters** - monotonically increasing sums keyed by name.  Names
  may carry a label in brackets (``"failures.distance[8]"``) to form
  families.  Counters outside the ``proc.`` namespace are
  **deterministic**: for a fixed spec list their merged values are
  identical for every ``jobs`` setting (asserted by
  ``tests/obs/test_metrics.py``).  ``proc.*`` counters (memoization
  cache hits, pool rebuilds) depend on how work was sliced into
  processes and are excluded from that guarantee.
* **histograms** - ``{count, sum, min, max}`` summaries for measured
  values (wall-clock times).  Their ``count`` fields are deterministic
  when the underlying instrument fires per logical unit of work; the
  ``sum/min/max`` are wall-clock and never reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named counters and histogram summaries."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    # -- recording -------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = {"count": 1, "sum": value,
                                     "min": value, "max": value}
            return
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)

    # -- reading ---------------------------------------------------------

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def family(self, prefix: str) -> Dict[str, float]:
        """Labelled members of a counter family, label -> value.

        ``family("failures.distance")`` returns ``{"8": 12, ...}`` from
        counters named ``failures.distance[8]`` etc.
        """
        out: Dict[str, float] = {}
        head = prefix + "["
        for name, value in self.counters.items():
            if name.startswith(head) and name.endswith("]"):
                out[name[len(head):-1]] = value
        return out

    def deterministic_counters(self) -> Dict[str, float]:
        """Counters covered by the jobs-independence guarantee."""
        return {name: value for name, value in self.counters.items()
                if not name.startswith("proc.")}

    # -- merging / serialisation ----------------------------------------

    @classmethod
    def merge(cls, registries: Iterable[Optional["MetricsRegistry"]]
              ) -> "MetricsRegistry":
        """Sum counters and fold histograms over several registries.

        ``None`` entries are skipped so callers can pass outcome
        streams where only workers attached metrics.
        """
        merged = cls()
        for reg in registries:
            if reg is None:
                continue
            for name, value in reg.counters.items():
                merged.inc(name, value)
            for name, hist in reg.histograms.items():
                into = merged.histograms.get(name)
                if into is None:
                    merged.histograms[name] = dict(hist)
                else:
                    into["count"] += hist["count"]
                    into["sum"] += hist["sum"]
                    into["min"] = min(into["min"], hist["min"])
                    into["max"] = max(into["max"], hist["max"])
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {"counters": dict(self.counters),
                "histograms": {k: dict(v)
                               for k, v in self.histograms.items()}}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricsRegistry":
        reg = cls()
        reg.counters.update(payload.get("counters", {}))
        for name, hist in payload.get("histograms", {}).items():
            reg.histograms[name] = dict(hist)
        return reg

    def __len__(self) -> int:
        return len(self.counters) + len(self.histograms)

"""Event-driven multicore + DDR3 memory-system simulation.

The engine interleaves the cores' request streams in global time order
(a heap keyed by each core's next issue time) and resolves every
request against shared bank, channel-bus, and refresh state. Refresh
blocks a rank for ``work_fraction * tRFC`` at the start of every tREFI
slot - exactly the all-bank REF cadence for the baseline, the
work-proportional equivalent for RAIDR and DC-REF.

The absolute horizon is scaled down (a few hundred thousand
instructions per core) because the refresh *overhead ratio*
(tRFC/tREFI) that drives the Figure 16 comparison is horizon-invariant
- see DESIGN.md Section 4.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .apps import AppProfile
from .cpu import Core, CoreResult
from .params import SystemConfig
from .refresh import RefreshPolicy
from .traces import generate_trace

__all__ = ["SimResult", "simulate", "alone_ipc"]


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes:
        cores: per-core accounting (instructions, cycles, IPC).
        policy_name: refresh policy simulated.
        avg_work_fraction: time-averaged refresh work vs. baseline.
        avg_high_rate_fraction: time-averaged fraction of rows
            refreshed at the fast 64 ms rate.
        row_refreshes_per_window: average row refreshes per 64 ms
            window (the Figure 16 refresh-reduction statistic).
        total_requests: memory requests served.
        n_activations / n_reads / n_writes: memory event counts for
            the energy model (zero when the engine does not track
            them; the detailed controller does).
    """

    cores: List[CoreResult]
    policy_name: str
    avg_work_fraction: float
    avg_high_rate_fraction: float
    row_refreshes_per_window: float
    total_requests: int
    n_activations: int = 0
    n_reads: int = 0
    n_writes: int = 0

    @property
    def ipcs(self) -> List[float]:
        return [c.ipc for c in self.cores]


@dataclass
class _MemoryState:
    """Shared timing state of the memory system."""

    config: SystemConfig
    bank_free: np.ndarray = field(init=False)
    bus_free: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.bank_free = np.zeros(self.config.n_banks_total,
                                  dtype=np.int64)
        self.bus_free = np.zeros(self.config.n_channels, dtype=np.int64)


def _refresh_adjust(t: int, block_cycles: int, t_refi: int) -> int:
    """Delay ``t`` out of the refresh-blocked head of its tREFI slot."""
    offset = t % t_refi
    if offset < block_cycles:
        return t - offset + block_cycles
    return t


def simulate(profiles: Sequence[AppProfile], policy: RefreshPolicy,
             config: SystemConfig, seed: int = 0,
             n_instructions: int = 150_000) -> SimResult:
    """Run one multi-programmed workload under one refresh policy.

    Args:
        profiles: one application per core.
        policy: refresh policy instance (stateful; use a fresh one per
            run).
        config: system configuration.
        seed: trace-generation seed (same seed => identical request
            streams across policies, isolating the refresh effect).
        n_instructions: instructions simulated per core.

    Returns:
        A :class:`SimResult`.
    """
    rng = np.random.default_rng(seed)
    cores = []
    for cid, profile in enumerate(profiles):
        trace = generate_trace(profile, n_instructions, config,
                               seed=int(rng.integers(0, 2**63)))
        cores.append(Core(cid, profile, trace, config))

    mem = _MemoryState(config)
    t_refi = config.t_refi_cycles
    t_rfc = config.t_rfc_cycles
    t_bus = config.t_bus_cycles
    n_channels = config.n_channels

    heap = [(core.next_issue_time(), cid)
            for cid, core in enumerate(cores) if not core.done]
    heapq.heapify(heap)

    work_samples: List[float] = [policy.work_fraction()]
    hot_samples: List[float] = [policy.high_rate_fraction()]
    refresh_samples: List[float] = [policy.row_refreshes_per_window()]
    last_slot = -1
    total_requests = 0

    while heap:
        t_issue, cid = heapq.heappop(heap)
        core = cores[cid]
        trace = core.trace
        i = core._next

        slot = t_issue // t_refi
        if slot != last_slot:
            work_samples.append(policy.work_fraction())
            hot_samples.append(policy.high_rate_fraction())
            refresh_samples.append(policy.row_refreshes_per_window())
            last_slot = slot

        bank = int(trace.banks[i])
        channel = bank % n_channels
        block = int(round(policy.work_fraction() * t_rfc))

        start = _refresh_adjust(t_issue, block, t_refi)
        start = max(start, int(mem.bank_free[bank]))
        start = _refresh_adjust(start, block, t_refi)

        access = (config.t_hit_cycles if trace.row_hits[i]
                  else config.t_miss_cycles)
        bus_start = max(start + access - t_bus,
                        int(mem.bus_free[channel]))
        completion = bus_start + t_bus
        mem.bank_free[bank] = completion
        mem.bus_free[channel] = completion

        if trace.is_write[i]:
            policy.on_write(bank, int(trace.rows[i]),
                            float(trace.match_draws[i]))

        core.record_issue(t_issue, completion)
        total_requests += 1
        if not core.done:
            heapq.heappush(heap, (core.next_issue_time(), cid))

    return SimResult(
        cores=[core.result() for core in cores],
        policy_name=policy.name,
        avg_work_fraction=float(np.mean(work_samples)),
        avg_high_rate_fraction=float(np.mean(hot_samples)),
        row_refreshes_per_window=float(np.mean(refresh_samples)),
        total_requests=total_requests)


def alone_ipc(profile: AppProfile, policy: RefreshPolicy,
              config: SystemConfig, seed: int = 0,
              n_instructions: int = 150_000) -> float:
    """IPC of one application running alone (weighted-speedup base)."""
    result = simulate([profile], policy, config, seed=seed,
                      n_instructions=n_instructions)
    return result.cores[0].ipc

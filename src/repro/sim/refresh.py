"""Refresh policies: uniform baseline, RAIDR, and DC-REF.

Refresh work is modelled per tREFI slot: each rank is blocked at the
start of every slot for ``work_fraction() * tRFC``, where the work
fraction is the ratio of rows due for refresh relative to the uniform
64 ms baseline. This is exact for the baseline's all-bank REF commands
and a faithful average for RAIDR/DC-REF's row-granular refreshes (the
overhead of refresh depends on the tRFC/tREFI *ratio*, which the model
preserves at any simulated horizon - DESIGN.md Section 4).

* :class:`UniformRefresh` - every row every 64 ms (work 1.0).
* :class:`RaidrRefresh` - RAIDR [46]: rows with weak cells (16.4%,
  profiled from real chips) every 64 ms, the rest every 256 ms.
* :class:`DcRefPolicy` - the paper's Section 8 mechanism: a weak row
  is refreshed at 64 ms *only while its current content matches the
  worst-case pattern*; every other row runs at 256 ms. Writes update
  the per-row match state.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .params import SystemConfig

__all__ = ["RefreshPolicy", "UniformRefresh", "RaidrRefresh",
           "DcRefPolicy", "make_policy"]


class RefreshPolicy:
    """Interface: per-slot refresh work + write notifications."""

    name = "abstract"

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.total_rows = (config.n_banks_total * config.rows_per_bank)

    def work_fraction(self) -> float:
        """Rows due per slot, relative to the uniform baseline."""
        raise NotImplementedError

    def on_write(self, bank: int, row: int, match_draw: float) -> None:
        """A write of new content landed in (bank, row)."""

    def row_refreshes_per_window(self) -> float:
        """Row refreshes per 64 ms window (for the reduction stats)."""
        return self.work_fraction() * self.total_rows

    def high_rate_fraction(self) -> float:
        """Fraction of rows currently refreshed at the fast rate."""
        raise NotImplementedError


class UniformRefresh(RefreshPolicy):
    """The DDR3 default: every row every 64 ms."""

    name = "baseline-64ms"

    def work_fraction(self) -> float:
        return 1.0

    def high_rate_fraction(self) -> float:
        return 1.0


class RaidrRefresh(RefreshPolicy):
    """RAIDR: retention-binned refresh, content-oblivious."""

    name = "raidr"

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self.weak_fraction = config.weak_row_fraction

    def work_fraction(self) -> float:
        relax = self.config.relax_factor
        return self.weak_fraction + (1.0 - self.weak_fraction) / relax

    def high_rate_fraction(self) -> float:
        return self.weak_fraction


class DcRefPolicy(RefreshPolicy):
    """Data content-based refresh on top of a PARBOR failure profile.

    Maintains one flag per (bank, row): does the row currently hold
    the worst-case pattern at one of its vulnerable cells? Only weak
    rows (those containing PARBOR-detected data-dependent cells) can
    ever be flagged; a write to a weak row re-evaluates the flag via
    the pre-drawn match variate (the full content matcher is
    :mod:`repro.dcref.content`; the sim uses its statistical image).
    """

    name = "dc-ref"

    def __init__(self, config: SystemConfig, match_prob: float,
                 seed: int = 0,
                 initial_match: Optional[float] = None,
                 weak_mask: Optional[np.ndarray] = None) -> None:
        super().__init__(config)
        rng = np.random.default_rng(seed)
        n_banks = config.n_banks_total
        shape = (n_banks, config.rows_per_bank)
        if weak_mask is None:
            # Statistical bins at the profiled fleet fraction.
            self.weak = rng.random(shape) < config.weak_row_fraction
        else:
            # Bins from an actual retention-profiling campaign
            # (repro.dcref.profiling), tiled over the memory system.
            weak_mask = np.asarray(weak_mask, dtype=bool).ravel()
            if weak_mask.size == 0:
                raise ValueError("weak_mask must be non-empty")
            reps = -(-self.total_rows // weak_mask.size)
            self.weak = np.tile(weak_mask, reps)[:self.total_rows] \
                .reshape(shape)
        self.match_prob = float(match_prob)
        init = self.match_prob if initial_match is None else initial_match
        self.hot = self.weak & (rng.random(shape) < init)
        self._hot_count = int(self.hot.sum())

    def work_fraction(self) -> float:
        relax = self.config.relax_factor
        hot_fraction = self._hot_count / self.total_rows
        return hot_fraction + (1.0 - hot_fraction) / relax

    def high_rate_fraction(self) -> float:
        return self._hot_count / self.total_rows

    def on_write(self, bank: int, row: int, match_draw: float) -> None:
        if not self.weak[bank, row]:
            return
        now_hot = match_draw < self.match_prob
        was_hot = self.hot[bank, row]
        if now_hot != was_hot:
            self.hot[bank, row] = now_hot
            self._hot_count += 1 if now_hot else -1


def make_policy(name: str, config: SystemConfig, match_prob: float = 0.165,
                seed: int = 0) -> RefreshPolicy:
    """Factory by policy name ("baseline", "raidr", "dcref")."""
    key = name.lower()
    if key in ("baseline", "uniform", "baseline-64ms"):
        return UniformRefresh(config)
    if key == "raidr":
        return RaidrRefresh(config)
    if key in ("dcref", "dc-ref"):
        return DcRefPolicy(config, match_prob=match_prob, seed=seed)
    raise ValueError(f"unknown refresh policy {name!r}")

"""Synthetic memory-request trace generation.

A trace is the statistical image of one application's LLC-miss stream:
instruction gaps between requests, target bank/row, read/write type,
plus a pre-drawn uniform variate per write used by DC-REF to decide
whether the written content matches the worst-case pattern. Generation
is fully deterministic given (profile, seed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .apps import AppProfile
from .params import SystemConfig

__all__ = ["Trace", "generate_trace"]


@dataclass
class Trace:
    """One core's request stream.

    Attributes:
        inst_gaps: instructions executed between the previous request
            and this one (first entry counts from instruction 0).
        banks: global bank index per request.
        rows: row within the bank per request.
        row_hits: whether the request hits the bank's open row.
        is_write: writeback flag per request.
        match_draws: uniform(0,1) variate per request, compared
            against the app's ``worst_match_prob`` on writes.
        total_instructions: instructions the trace represents.
    """

    inst_gaps: np.ndarray
    banks: np.ndarray
    rows: np.ndarray
    row_hits: np.ndarray
    is_write: np.ndarray
    match_draws: np.ndarray
    total_instructions: int

    def __len__(self) -> int:
        return len(self.banks)


def generate_trace(profile: AppProfile, n_instructions: int,
                   config: SystemConfig, seed: int) -> Trace:
    """Synthesise a request stream for one application.

    Requests arrive with geometric instruction gaps (mean
    ``1000 / mpki``); each targets a uniform bank and either re-uses
    that bank's open row (probability ``row_locality``) or opens a
    uniform new one.
    """
    if n_instructions < 1:
        raise ValueError("n_instructions must be positive")
    rng = np.random.default_rng(seed)
    mean_gap = 1000.0 / max(profile.mpki, 1e-6)
    n_requests = max(1, int(round(n_instructions / mean_gap)))

    p = min(1.0, 1.0 / mean_gap)
    inst_gaps = rng.geometric(p, size=n_requests)
    banks = rng.integers(0, config.n_banks_total, size=n_requests)
    row_hits = rng.random(n_requests) < profile.row_locality
    is_write = rng.random(n_requests) < profile.write_frac
    match_draws = rng.random(n_requests)

    # Open-row tracking per bank: a "hit" re-uses the last row opened
    # in that bank; a miss opens a fresh uniform row.
    rows = np.empty(n_requests, dtype=np.int64)
    open_rows = np.full(config.n_banks_total, -1, dtype=np.int64)
    fresh = rng.integers(0, config.rows_per_bank, size=n_requests)
    for i in range(n_requests):
        b = banks[i]
        if row_hits[i] and open_rows[b] >= 0:
            rows[i] = open_rows[b]
        else:
            rows[i] = fresh[i]
            row_hits[i] = False
            open_rows[b] = fresh[i]

    return Trace(inst_gaps=inst_gaps.astype(np.int64), banks=banks,
                 rows=rows, row_hits=row_hits, is_write=is_write,
                 match_draws=match_draws,
                 total_instructions=int(inst_gaps.sum()))

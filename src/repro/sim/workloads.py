"""Multi-programmed workload mixes (paper Section 8).

The paper evaluates 32 8-core workloads built by randomly assigning
one of 17 SPEC CPU2006 applications to each core.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .apps import SPEC_2006, AppProfile, app

__all__ = ["make_workloads", "workload_profiles"]


def make_workloads(n_workloads: int = 32, n_cores: int = 8,
                   seed: int = 2016) -> List[List[str]]:
    """Draw the random application-to-core assignments."""
    if n_workloads < 1 or n_cores < 1:
        raise ValueError("need positive workload and core counts")
    rng = np.random.default_rng(seed)
    names = sorted(SPEC_2006)
    return [[names[int(i)] for i in rng.integers(0, len(names),
                                                 size=n_cores)]
            for _ in range(n_workloads)]


def workload_profiles(workload: List[str]) -> List[AppProfile]:
    """Resolve a name mix into application profiles."""
    return [app(name) for name in workload]

"""Cycle-approximate system simulator for the DC-REF evaluation."""

from .analytic import (blocking_fraction, expected_refresh_wait_cycles,
                       refresh_reduction, throughput_speedup_bound)
from .apps import SPEC_2006, AppProfile, app, app_names
from .cpu import Core, CoreResult
from .energy import EnergyBreakdown, EnergyParams, energy_of
from .engine import SimResult, alone_ipc, simulate
from .engine_detailed import alone_ipc_detailed, simulate_detailed
from .memctrl import ChannelModel, DetailedTiming, Request
from .metrics import harmonic_speedup, weighted_speedup
from .params import DEFAULT_CONFIG_16G, DEFAULT_CONFIG_32G, SystemConfig
from .refresh import (DcRefPolicy, RaidrRefresh, RefreshPolicy,
                      UniformRefresh, make_policy)
from .traces import Trace, generate_trace
from .workloads import make_workloads, workload_profiles

__all__ = [
    "AppProfile", "blocking_fraction", "expected_refresh_wait_cycles",
    "refresh_reduction", "throughput_speedup_bound", "Core", "CoreResult", "DEFAULT_CONFIG_16G",
    "DEFAULT_CONFIG_32G", "DcRefPolicy", "RaidrRefresh", "RefreshPolicy",
    "SPEC_2006", "SimResult", "SystemConfig", "Trace", "UniformRefresh",
    "alone_ipc", "alone_ipc_detailed", "app", "app_names",
    "EnergyBreakdown", "EnergyParams", "energy_of",
    "ChannelModel", "DetailedTiming", "Request", "simulate_detailed",
    "generate_trace", "harmonic_speedup",
    "make_policy", "make_workloads", "simulate", "weighted_speedup",
    "workload_profiles",
]

"""Simulated system configuration (paper Table 2).

Times are expressed in *CPU cycles* at the core clock (3.2 GHz), so
1 ns = 3.2 cycles. DDR3-1600 bank timings are taken from the JEDEC
values the paper uses; tRFC per density follows its footnote 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.timing import t_rfc_ns

__all__ = ["SystemConfig", "DEFAULT_CONFIG_32G", "DEFAULT_CONFIG_16G"]

CPU_GHZ = 3.2


def ns_to_cycles(ns: float) -> int:
    return int(round(ns * CPU_GHZ))


@dataclass(frozen=True)
class SystemConfig:
    """Table 2 parameters plus derived cycle counts.

    Attributes:
        n_cores: cores in the simulated CMP.
        issue_width: instructions per cycle when not stalled.
        inst_window: reorder-buffer entries (bounds outstanding misses).
        n_channels / ranks_per_channel / banks_per_rank: memory
            topology (DDR3-1600, 2 channels, 2 ranks each).
        rows_per_bank: rows the refresh machinery must cover per bank.
        density_gbit: chip density; sets tRFC (590 ns at 16 Gbit, 1 us
            at 32 Gbit).
        t_refi_cycles: average interval between refresh slots.
        t_rfc_cycles: all-bank refresh latency per slot.
        t_hit_cycles / t_miss_cycles: row-buffer hit/miss service time.
        t_bus_cycles: data-bus occupancy per 64-byte transfer.
        weak_row_fraction: rows holding at least one retention-weak
            cell (RAIDR profiles 16.4% from real chips).
        refresh_interval_ms / relaxed_interval_ms: the two refresh
            rates (64 ms / 256 ms bins).
    """

    n_cores: int = 8
    issue_width: int = 3
    inst_window: int = 128
    n_channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    rows_per_bank: int = 4096
    density_gbit: int = 32
    weak_row_fraction: float = 0.164
    refresh_interval_ms: float = 64.0
    relaxed_interval_ms: float = 256.0

    @property
    def t_refi_cycles(self) -> int:
        return ns_to_cycles(7800.0)

    @property
    def t_rfc_cycles(self) -> int:
        return ns_to_cycles(t_rfc_ns(self.density_gbit))

    @property
    def t_hit_cycles(self) -> int:
        # CAS latency + burst: ~13.75 ns + 5 ns.
        return ns_to_cycles(18.75)

    @property
    def t_miss_cycles(self) -> int:
        # Precharge + activate + CAS + burst: ~13.75 * 3 + 5 ns.
        return ns_to_cycles(46.25)

    @property
    def t_bus_cycles(self) -> int:
        return ns_to_cycles(5.0)

    @property
    def n_banks_total(self) -> int:
        return (self.n_channels * self.ranks_per_channel
                * self.banks_per_rank)

    @property
    def relax_factor(self) -> int:
        """How many 64 ms windows fit in the relaxed interval (4)."""
        return int(round(self.relaxed_interval_ms
                         / self.refresh_interval_ms))


DEFAULT_CONFIG_32G = SystemConfig(density_gbit=32)
DEFAULT_CONFIG_16G = SystemConfig(density_gbit=16)

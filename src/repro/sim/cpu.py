"""Trace-driven core model.

Each core replays its application's request trace. Between requests it
executes instructions at the application's base IPC; outstanding misses
overlap up to the application's memory-level parallelism (bounded by
the instruction window), which is the standard first-order model of an
out-of-order core's memory behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .apps import AppProfile
from .params import SystemConfig
from .traces import Trace

__all__ = ["Core", "CoreResult"]


@dataclass
class CoreResult:
    """Final accounting for one core."""

    app: str
    instructions: int
    cycles: int

    @property
    def ipc(self) -> float:
        return self.instructions / max(1, self.cycles)


class Core:
    """Replay state for one core's trace."""

    def __init__(self, core_id: int, profile: AppProfile, trace: Trace,
                 config: SystemConfig) -> None:
        self.core_id = core_id
        self.profile = profile
        self.trace = trace
        self.mlp_window = max(1, min(int(round(profile.mlp)),
                                     config.inst_window // 4))
        self._next = 0
        self._completions: List[int] = []
        self._issue_clock = 0
        self.finish_time: Optional[int] = None

    @property
    def done(self) -> bool:
        return self._next >= len(self.trace)

    def next_issue_time(self) -> int:
        """Earliest cycle the core can issue its next request.

        The core must have executed the instruction gap since its last
        issue, and have a free miss slot in its MLP window.
        """
        if self.done:
            raise RuntimeError("trace exhausted")
        i = self._next
        gap_cycles = int(self.trace.inst_gaps[i]
                         / self.profile.ipc_base)
        t = self._issue_clock + gap_cycles
        if len(self._completions) >= self.mlp_window:
            t = max(t, self._completions[-self.mlp_window])
        return t

    def record_issue(self, issue_time: int, completion_time: int) -> None:
        """Account one request issued at ``issue_time``."""
        self._issue_clock = issue_time
        self._completions.append(completion_time)
        self._next += 1
        if self.done:
            self.finish_time = max(completion_time, issue_time)

    def result(self) -> CoreResult:
        if self.finish_time is None:
            raise RuntimeError("core has not finished")
        return CoreResult(app=self.profile.name,
                          instructions=self.trace.total_instructions,
                          cycles=self.finish_time)

"""Detailed simulation driver: cores against the command-level
controller of :mod:`repro.sim.memctrl`.

Compared to the first-order engine (:mod:`repro.sim.engine`), requests
here queue at the controller and are scheduled FR-FCFS against bank
state, the data bus, and per-rank staggered refresh windows - which
exposes the queueing amplification of refresh blocking that the
first-order model understates (see EXPERIMENTS.md, Figure 16).

Event handling: the driver alternates between (a) issuing the earliest
eligible core request and (b) draining every channel up to that issue
horizon. A core may hold at most its MLP window of unfinished requests;
a blocked core resumes at the completion that freed its slot. Channel
drains are atomic up to the horizon, so an arrival discovered late
queues behind already-served requests - a one-service-slot ordering
approximation of a real pipelined controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .apps import AppProfile
from .cpu import CoreResult
from .engine import SimResult
from .memctrl import ChannelModel, Request
from .params import SystemConfig
from .refresh import RefreshPolicy
from .traces import Trace, generate_trace

__all__ = ["simulate_detailed", "alone_ipc_detailed"]


class _DetailedCore:
    """Issue-side state of one core."""

    def __init__(self, core_id: int, profile: AppProfile, trace: Trace,
                 config: SystemConfig) -> None:
        self.core_id = core_id
        self.profile = profile
        self.trace = trace
        self.window = max(1, min(int(round(profile.mlp)),
                                 config.inst_window // 4))
        self.idx = 0
        self.outstanding = 0
        self.issue_clock = 0
        self.blocked_until = 0
        self.finish_time = 0

    @property
    def done_issuing(self) -> bool:
        return self.idx >= len(self.trace)

    @property
    def done(self) -> bool:
        return self.done_issuing and self.outstanding == 0

    def next_issue_time(self) -> Optional[int]:
        """When the core can issue next, or None while window-blocked."""
        if self.done_issuing:
            return None
        if self.outstanding >= self.window:
            return None
        gap = int(self.trace.inst_gaps[self.idx] / self.profile.ipc_base)
        return max(self.issue_clock + gap, self.blocked_until)

    def issue(self, t: int) -> Request:
        i = self.idx
        request = Request(core=self.core_id,
                          bank=int(self.trace.banks[i]),
                          row=int(self.trace.rows[i]),
                          is_write=bool(self.trace.is_write[i]),
                          arrival=t,
                          match_draw=float(self.trace.match_draws[i]))
        self.idx += 1
        self.outstanding += 1
        self.issue_clock = t
        return request

    def complete(self, request: Request) -> None:
        was_blocked = self.outstanding >= self.window
        self.outstanding -= 1
        if was_blocked:
            self.blocked_until = max(self.blocked_until,
                                     request.completion)
        self.finish_time = max(self.finish_time, request.completion)

    def result(self) -> CoreResult:
        return CoreResult(app=self.profile.name,
                          instructions=self.trace.total_instructions,
                          cycles=max(1, self.finish_time))


def simulate_detailed(profiles: Sequence[AppProfile],
                      policy: RefreshPolicy, config: SystemConfig,
                      seed: int = 0,
                      n_instructions: int = 150_000) -> SimResult:
    """Run one workload on the command-level memory model.

    Same contract as :func:`repro.sim.engine.simulate`; identical
    seeds produce identical request streams across both engines, so
    the two can be compared request-for-request.
    """
    rng = np.random.default_rng(seed)
    cores = []
    for cid, profile in enumerate(profiles):
        trace = generate_trace(profile, n_instructions, config,
                               seed=int(rng.integers(0, 2**63)))
        cores.append(_DetailedCore(cid, profile, trace, config))

    channels = [ChannelModel(ch, config, policy)
                for ch in range(config.n_channels)]
    work_samples: List[float] = [policy.work_fraction()]
    hot_samples: List[float] = [policy.high_rate_fraction()]
    refresh_samples: List[float] = [policy.row_refreshes_per_window()]
    last_slot = -1
    total_requests = 0

    def drain_all(until: int) -> int:
        served = 0
        for channel in channels:
            for request in channel.drain(until):
                cores[request.core].complete(request)
                served += 1
        return served

    def serve_earliest() -> bool:
        """Serve one request from the channel able to start first."""
        best = None
        best_start = None
        for channel in channels:
            start = channel.next_start()
            if start is not None and (best_start is None
                                      or start < best_start):
                best_start = start
                best = channel
        if best is None:
            return False
        request = best.serve_one()
        cores[request.core].complete(request)
        return True

    while not all(core.done for core in cores):
        candidates = [(core.next_issue_time(), core) for core in cores]
        candidates = [(t, core) for t, core in candidates
                      if t is not None]
        if not candidates:
            # Every active core waits on a completion: serve the
            # earliest startable request to unblock an issue slot.
            if not serve_earliest():
                raise RuntimeError("deadlock: blocked cores, idle "
                                   "channels")
            continue
        t, core = min(candidates, key=lambda tc: (tc[0], tc[1].core_id))
        # Serve everything that can start before this issue; the
        # completions may unblock an earlier issuer, so re-evaluate.
        if drain_all(t):
            continue

        slot = t // config.t_refi_cycles
        if slot != last_slot:
            work_samples.append(policy.work_fraction())
            hot_samples.append(policy.high_rate_fraction())
            refresh_samples.append(policy.row_refreshes_per_window())
            last_slot = slot

        request = core.issue(t)
        channels[request.bank % config.n_channels].enqueue(request)
        total_requests += 1

    return SimResult(
        cores=[core.result() for core in cores],
        policy_name=policy.name,
        avg_work_fraction=float(np.mean(work_samples)),
        avg_high_rate_fraction=float(np.mean(hot_samples)),
        row_refreshes_per_window=float(np.mean(refresh_samples)),
        total_requests=total_requests,
        n_activations=sum(ch.activations for ch in channels),
        n_reads=sum(ch.reads for ch in channels),
        n_writes=sum(ch.writes for ch in channels))


def alone_ipc_detailed(profile: AppProfile, policy: RefreshPolicy,
                       config: SystemConfig, seed: int = 0,
                       n_instructions: int = 150_000) -> float:
    """Alone-run IPC on the detailed model."""
    result = simulate_detailed([profile], policy, config, seed=seed,
                               n_instructions=n_instructions)
    return result.cores[0].ipc

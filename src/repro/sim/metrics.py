"""Multiprogrammed performance metrics (paper refs [25, 72])."""

from __future__ import annotations

from typing import Sequence

__all__ = ["weighted_speedup", "harmonic_speedup"]


def weighted_speedup(shared_ipcs: Sequence[float],
                     alone_ipcs: Sequence[float]) -> float:
    """Sum of per-core slowdown-normalised IPCs (Snavely & Tullsen)."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("need one alone IPC per core")
    if any(a <= 0 for a in alone_ipcs):
        raise ValueError("alone IPCs must be positive")
    return sum(s / a for s, a in zip(shared_ipcs, alone_ipcs))


def harmonic_speedup(shared_ipcs: Sequence[float],
                     alone_ipcs: Sequence[float]) -> float:
    """Harmonic mean of per-core speedups (fairness-oriented)."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("need one alone IPC per core")
    if any(s <= 0 for s in shared_ipcs):
        raise ValueError("shared IPCs must be positive")
    n = len(shared_ipcs)
    return n / sum(a / s for s, a in zip(shared_ipcs, alone_ipcs))

"""Synthetic SPEC CPU2006 application profiles.

The paper drives Ramulator with Pin traces of 17 SPEC CPU2006
applications; those traces are proprietary, so we characterise each
application by the published behavioural statistics that matter to the
memory system and synthesise statistically equivalent request streams
(DESIGN.md Section 1 documents the substitution):

* ``mpki`` - last-level-cache misses per kilo-instruction (drives
  memory intensity); values follow the commonly reported ranges for
  the SPEC CPU2006 reference inputs.
* ``row_locality`` - probability a request hits the currently open
  row in its bank (streaming apps high, pointer-chasing apps low).
* ``write_frac`` - fraction of memory requests that are writebacks.
* ``mlp`` - average overlapped misses (memory-level parallelism).
* ``ipc_base`` - core IPC when never missing the LLC.
* ``worst_match_prob`` - probability that a row written by this
  application matches the PARBOR-detected worst-case pattern at a
  vulnerable cell. Applications writing dense, uniform data (zeros,
  saturated values) rarely match; applications writing high-entropy
  data match more often. These values make the fleet average DC-REF
  "hot" fraction ~2.7% of rows (0.164 weak x ~0.165 match), the
  paper's Section 8 number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["AppProfile", "SPEC_2006", "app", "app_names"]


@dataclass(frozen=True)
class AppProfile:
    """Behavioural summary of one application."""

    name: str
    mpki: float
    row_locality: float
    write_frac: float
    mlp: float
    ipc_base: float
    worst_match_prob: float

    def __post_init__(self) -> None:
        if self.mpki < 0:
            raise ValueError("mpki must be non-negative")
        for field_name in ("row_locality", "write_frac",
                           "worst_match_prob"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be a probability")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1")


def _p(name: str, mpki: float, loc: float, wr: float, mlp: float,
       ipc: float, match: float) -> AppProfile:
    return AppProfile(name=name, mpki=mpki, row_locality=loc,
                      write_frac=wr, mlp=mlp, ipc_base=ipc,
                      worst_match_prob=match)


#: 17 SPEC CPU2006 applications, as in the paper's Section 8.
SPEC_2006: Dict[str, AppProfile] = {p.name: p for p in [
    _p("perlbench", 0.8, 0.75, 0.25, 1.5, 2.2, 0.10),
    _p("bzip2", 3.5, 0.60, 0.30, 1.8, 1.8, 0.30),
    _p("gcc", 6.0, 0.55, 0.30, 2.0, 1.6, 0.15),
    _p("mcf", 68.0, 0.20, 0.20, 2.2, 0.9, 0.20),
    _p("milc", 25.0, 0.70, 0.35, 2.8, 1.2, 0.25),
    _p("namd", 0.3, 0.80, 0.15, 1.3, 2.4, 0.08),
    _p("gobmk", 0.6, 0.65, 0.25, 1.4, 2.0, 0.10),
    _p("dealII", 1.2, 0.70, 0.25, 1.6, 2.1, 0.12),
    _p("soplex", 27.0, 0.55, 0.25, 2.6, 1.0, 0.18),
    _p("povray", 0.1, 0.80, 0.15, 1.2, 2.5, 0.05),
    _p("hmmer", 1.0, 0.75, 0.30, 1.5, 2.3, 0.12),
    _p("sjeng", 0.4, 0.60, 0.20, 1.3, 2.1, 0.10),
    _p("libquantum", 25.0, 0.90, 0.30, 5.0, 1.1, 0.35),
    _p("h264ref", 1.5, 0.80, 0.25, 1.7, 2.2, 0.15),
    _p("lbm", 31.0, 0.75, 0.45, 4.5, 1.0, 0.25),
    _p("omnetpp", 21.0, 0.30, 0.30, 1.8, 1.1, 0.15),
    _p("astar", 10.0, 0.40, 0.25, 1.6, 1.4, 0.12),
]}


def app(name: str) -> AppProfile:
    """Look up one application profile."""
    try:
        return SPEC_2006[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; known: {sorted(SPEC_2006)}"
        ) from None


def app_names() -> List[str]:
    """Names of all known application profiles, sorted."""
    return sorted(SPEC_2006)

"""Command-level DDR3 memory controller model.

A more faithful alternative to the first-order service model embedded
in :mod:`repro.sim.engine`: per-bank state machines (open row,
precharge/activate/CAS timing), FR-FCFS scheduling (row hits first,
then oldest), an open-page policy, a shared data bus per channel, and
per-rank refresh windows staggered across ranks, with the refresh
duration scaled by the active policy's row workload.

The controller is driven as a discrete-event component: requests are
enqueued with an arrival time, and :meth:`ChannelModel.drain` advances
the channel until a target time, returning completions. Cycle counts
use CPU cycles (3.2 GHz), like the rest of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .params import SystemConfig, ns_to_cycles
from .refresh import RefreshPolicy

__all__ = ["Request", "ChannelModel", "DetailedTiming"]


@dataclass(frozen=True)
class DetailedTiming:
    """Bank/rank command timing in CPU cycles (DDR3-1600 defaults)."""

    t_rcd: int = ns_to_cycles(13.75)   # ACT -> RD/WR
    t_rp: int = ns_to_cycles(13.75)    # PRE -> ACT
    t_cas: int = ns_to_cycles(13.75)   # RD -> first data
    t_ras: int = ns_to_cycles(35.0)    # ACT -> PRE
    t_wr: int = ns_to_cycles(15.0)     # end of write -> PRE
    t_burst: int = ns_to_cycles(5.0)   # data bus per 64 B
    t_rrd: int = ns_to_cycles(7.5)     # ACT -> ACT, same rank
    t_faw: int = ns_to_cycles(30.0)    # four-activate window, per rank


@dataclass
class Request:
    """One memory request in flight."""

    core: int
    bank: int           # global bank index
    row: int
    is_write: bool
    arrival: int
    match_draw: float = 1.0
    completion: Optional[int] = None


@dataclass
class _BankState:
    open_row: int = -1
    ready_at: int = 0          # earliest next command
    last_activate: int = 0


class ChannelModel:
    """One channel: queued requests, banks, bus, and rank refresh.

    Args:
        channel_id: which channel of the system this is.
        config: system configuration.
        policy: refresh policy (shared across channels).
        timing: command timing; DDR3-1600 defaults.
        page_policy: "open" keeps rows open for row-hit reuse (the
            evaluation default); "closed" auto-precharges after every
            access (no hits, but conflict-free misses).
    """

    def __init__(self, channel_id: int, config: SystemConfig,
                 policy: RefreshPolicy,
                 timing: Optional[DetailedTiming] = None,
                 page_policy: str = "open") -> None:
        if page_policy not in ("open", "closed"):
            raise ValueError(f"unknown page policy {page_policy!r}")
        self.channel_id = channel_id
        self.config = config
        self.policy = policy
        self.timing = timing or DetailedTiming()
        self.page_policy = page_policy
        n_banks = config.ranks_per_channel * config.banks_per_rank
        self.banks = [_BankState() for _ in range(n_banks)]
        # Per-rank rolling window of the last four ACT times (tFAW)
        # and the most recent ACT (tRRD).
        self._rank_acts: List[List[int]] = [
            [] for _ in range(config.ranks_per_channel)]
        self.queue: List[Request] = []
        self.bus_free = 0
        self.served = 0
        self.row_hits = 0
        self.activations = 0
        self.reads = 0
        self.writes = 0

    # -- refresh geometry ------------------------------------------------

    def _refresh_window(self, rank: int, t: int) -> Tuple[int, int]:
        """The refresh blocking window of ``rank`` covering slot of t.

        Ranks are staggered by ``tREFI / ranks`` so the channel never
        loses every rank at once (as real controllers schedule REF).
        """
        t_refi = self.config.t_refi_cycles
        offset = (rank * t_refi) // self.config.ranks_per_channel
        slot = (t - offset) // t_refi
        start = slot * t_refi + offset
        width = int(round(self.policy.work_fraction()
                          * self.config.t_rfc_cycles))
        return start, start + width

    def _rank_ready(self, rank: int, t: int) -> int:
        """Earliest time >= t when the rank is not refreshing."""
        start, end = self._refresh_window(rank, t)
        if start <= t < end:
            return end
        return t

    def _rank_of(self, local_bank: int) -> int:
        return local_bank // self.config.banks_per_rank

    # -- scheduling --------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        if request.bank % self.config.n_channels != self.channel_id:
            raise ValueError("request routed to the wrong channel")
        self.queue.append(request)

    def _local_bank(self, global_bank: int) -> int:
        return global_bank // self.config.n_channels

    def _earliest_start(self, request: Request) -> int:
        lb = self._local_bank(request.bank)
        bank = self.banks[lb]
        start = max(request.arrival, bank.ready_at)
        return self._rank_ready(self._rank_of(lb), start)

    def _pick(self) -> Optional[int]:
        """FR-FCFS: earliest start, then row hits, then the oldest."""
        best: Optional[int] = None
        best_key: Optional[Tuple[int, int, int]] = None
        for i, req in enumerate(self.queue):
            lb = self._local_bank(req.bank)
            bank = self.banks[lb]
            start = self._earliest_start(req)
            hit = bank.open_row == req.row
            key = (start, 0 if hit else 1, req.arrival)
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best

    def next_start(self) -> Optional[int]:
        """Earliest time the channel could start serving, if anything."""
        i = self._pick()
        if i is None:
            return None
        return self._earliest_start(self.queue[i])

    def _act_constrained(self, rank: int, t: int) -> int:
        """Apply tRRD and tFAW to a proposed activation time."""
        tm = self.timing
        acts = self._rank_acts[rank]
        if acts:
            t = max(t, acts[-1] + tm.t_rrd)
        if len(acts) >= 4:
            t = max(t, acts[-4] + tm.t_faw)
        return t

    def _record_act(self, rank: int, t: int) -> None:
        acts = self._rank_acts[rank]
        acts.append(t)
        if len(acts) > 4:
            del acts[0]
        self.activations += 1

    def _access_timings(self, request: Request) -> Tuple[int, int]:
        """(tRCD, tCAS) for this access, honouring latency policies.

        A policy exposing ``fast_ok(bank, row)`` and ``access_scale``
        (e.g. DC-LAT) gets the scaled timings on content-safe rows.
        """
        tm = self.timing
        fast_ok = getattr(self.policy, "fast_ok", None)
        if fast_ok is not None and fast_ok(request.bank, request.row):
            scale = self.policy.access_scale
            return (int(round(tm.t_rcd * scale)),
                    int(round(tm.t_cas * scale)))
        return tm.t_rcd, tm.t_cas

    def _service(self, request: Request) -> int:
        """Issue the commands for one request; return completion time."""
        tm = self.timing
        lb = self._local_bank(request.bank)
        bank = self.banks[lb]
        rank = self._rank_of(lb)
        start = self._earliest_start(request)
        t_rcd, t_cas = self._access_timings(request)

        if bank.open_row == request.row:
            self.row_hits += 1
            data_at = start + t_cas
        elif bank.open_row < 0:
            act_at = self._act_constrained(
                rank, self._rank_ready(rank, start))
            data_at = act_at + t_rcd + t_cas
            bank.last_activate = act_at
            self._record_act(rank, act_at)
        else:
            # Precharge the open row first (open-page policy miss).
            pre_at = max(start, bank.last_activate + tm.t_ras)
            act_at = self._act_constrained(
                rank, self._rank_ready(rank, pre_at + tm.t_rp))
            data_at = act_at + t_rcd + t_cas
            bank.last_activate = act_at
            self._record_act(rank, act_at)
        bank.open_row = request.row

        bus_start = max(data_at, self.bus_free)
        completion = bus_start + tm.t_burst
        self.bus_free = completion
        recovery = tm.t_wr if request.is_write else 0
        if self.page_policy == "closed":
            # Auto-precharge: the row closes and the precharge must
            # respect tRAS before the bank accepts the next ACT.
            bank.open_row = -1
            pre_done = max(completion,
                           bank.last_activate + tm.t_ras) + tm.t_rp
            bank.ready_at = max(pre_done, completion + recovery)
        else:
            bank.ready_at = completion + recovery
        return completion

    def serve_one(self) -> Optional[Request]:
        """Serve the single best queued request; None if queue empty."""
        i = self._pick()
        if i is None:
            return None
        request = self.queue.pop(i)
        request.completion = self._service(request)
        if request.is_write:
            self.writes += 1
            self.policy.on_write(request.bank, request.row,
                                 request.match_draw)
        else:
            self.reads += 1
        self.served += 1
        return request

    def drain(self, until: int) -> List[Request]:
        """Serve queued requests whose start is <= ``until``."""
        done: List[Request] = []
        while True:
            start = self.next_start()
            if start is None or start > until:
                break
            done.append(self.serve_one())
        return done

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.served if self.served else 0.0

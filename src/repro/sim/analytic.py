"""Closed-form refresh-overhead model (engine cross-validation).

The event-driven engine and these formulas must agree on the
first-order effects; the engine adds queueing and contention on top.
Used by tests as an independent oracle and by users for quick what-if
estimates without simulating.
"""

from __future__ import annotations

from .params import SystemConfig
from .refresh import RefreshPolicy

__all__ = ["blocking_fraction", "throughput_speedup_bound",
           "expected_refresh_wait_cycles", "refresh_reduction"]


def blocking_fraction(policy: RefreshPolicy) -> float:
    """Fraction of time a rank is unavailable due to refresh.

    ``work_fraction * tRFC / tREFI`` - 12.8% for the 32 Gbit uniform
    baseline (1 us per 7.8 us slot), scaled by the policy's row
    workload.
    """
    cfg = policy.config
    return (policy.work_fraction() * cfg.t_rfc_cycles
            / cfg.t_refi_cycles)


def throughput_speedup_bound(policy: RefreshPolicy,
                             baseline: RefreshPolicy) -> float:
    """Upper bound on fully-memory-bound speedup of ``policy``.

    A perfectly bandwidth-limited workload speeds up by the ratio of
    available bank time: ``(1 - blocked_policy)/(1 - blocked_base)``.
    Latency effects can push real gains above this for latency-bound
    cores, but our first-order core model stays at or below it.
    """
    return ((1.0 - blocking_fraction(policy))
            / (1.0 - blocking_fraction(baseline)))


def expected_refresh_wait_cycles(policy: RefreshPolicy) -> float:
    """Mean added latency per uniformly-arriving request.

    A request landing inside the blocked head of a tREFI slot waits
    for the remainder of the block: expectation ``block^2 / (2 tREFI)``.
    """
    cfg = policy.config
    block = policy.work_fraction() * cfg.t_rfc_cycles
    return block * block / (2.0 * cfg.t_refi_cycles)


def refresh_reduction(policy: RefreshPolicy,
                      baseline: RefreshPolicy) -> float:
    """Fractional row-refresh reduction of ``policy`` vs ``baseline``."""
    base = baseline.row_refreshes_per_window()
    if base <= 0:
        raise ValueError("baseline performs no refreshes")
    return 1.0 - policy.row_refreshes_per_window() / base

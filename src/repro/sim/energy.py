"""DDR3 energy model (IDD-style, simplified).

The paper motivates DC-REF with performance *and* energy efficiency;
this model turns the simulators' event counts into energy so the
refresh-policy comparison can report both. Coefficients follow the
usual DDR3 datasheet-derived estimates used in architecture studies;
absolute joules are indicative, the *relative* policy comparison is
the meaningful output.

Components:

* activation/precharge energy per row activation (ACT+PRE pair);
* read/write energy per 64-byte burst;
* refresh energy = refresh-active power x the time ranks spend
  refreshing (``work_fraction x tRFC / tREFI`` per rank - the same
  blocking fraction the performance model uses, so energy and
  performance stay mutually consistent);
* background power integrated over the simulated time.

At the 32 Gbit baseline this lands refresh at roughly a third of DRAM
energy - the "refresh wall" share projected by the refresh-scaling
literature the paper builds on (its refs [46, 62]).
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import SimResult
from .params import CPU_GHZ, SystemConfig

__all__ = ["EnergyParams", "EnergyBreakdown", "energy_of"]


@dataclass(frozen=True)
class EnergyParams:
    """Energy coefficients.

    Attributes:
        act_pre_nj: energy per row activation + precharge pair.
        read_nj / write_nj: energy per 64-byte burst.
        refresh_active_w: extra power drawn by a rank while a refresh
            command executes (IDD5 minus standby).
        background_w: standby power per rank.
    """

    act_pre_nj: float = 2.5
    read_nj: float = 1.3
    write_nj: float = 1.6
    refresh_active_w: float = 1.2
    background_w: float = 0.35


@dataclass
class EnergyBreakdown:
    """Energy per component over one simulated run (microjoules)."""

    activation_uj: float
    rw_uj: float
    refresh_uj: float
    background_uj: float

    @property
    def total_uj(self) -> float:
        return (self.activation_uj + self.rw_uj + self.refresh_uj
                + self.background_uj)

    @property
    def refresh_share(self) -> float:
        return self.refresh_uj / self.total_uj if self.total_uj else 0.0


def energy_of(result: SimResult, config: SystemConfig,
              params: EnergyParams = EnergyParams()) -> EnergyBreakdown:
    """Energy of one simulation run.

    Args:
        result: the run; event counts (`n_activations`, `n_reads`,
            `n_writes`) must be populated - the detailed engine tracks
            them.
        config: system configuration.
        params: energy coefficients.

    Returns:
        An :class:`EnergyBreakdown` in microjoules.
    """
    cycles = max(c.cycles for c in result.cores)
    seconds = cycles / (CPU_GHZ * 1e9)
    n_ranks = config.n_channels * config.ranks_per_channel
    blocking = (result.avg_work_fraction * config.t_rfc_cycles
                / config.t_refi_cycles)

    return EnergyBreakdown(
        activation_uj=result.n_activations * params.act_pre_nj * 1e-3,
        rw_uj=(result.n_reads * params.read_nj
               + result.n_writes * params.write_nj) * 1e-3,
        refresh_uj=(params.refresh_active_w * blocking * seconds
                    * n_ranks) * 1e6,
        background_uj=params.background_w * n_ranks * seconds * 1e6)

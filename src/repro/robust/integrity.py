"""Profile-integrity gate: per-round signatures and drift detection.

A retention profile is only usable downstream if re-measuring it gives
(nearly) the same answer.  The gate hashes each measurement round's
failing-cell set into a signature, computes the *drift* between rounds
(symmetric difference over union - 0.0 for identical rounds, 1.0 for
disjoint ones), and fails closed when the drift exceeds a threshold:
a drifting profile means the device is too noisy (or the test too
weak) for its bins to be trusted.

``strict=False`` reuses the campaign runtime's graceful-degradation
contract: instead of raising, the tripped gate is recorded on the
returned record (``ok=False``) and emitted as a ``profile.drift``
observability event, leaving the caller to decide.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs

__all__ = ["ProfileDriftError", "ProfileIntegrity", "profile_signature",
           "check_drift", "EccInferenceError", "check_ecc_inference"]


class ProfileDriftError(RuntimeError):
    """Per-round profiles disagree beyond the tolerated drift."""

    def __init__(self, drift: float, threshold: float) -> None:
        super().__init__(
            f"profile drift {drift:.4f} exceeds threshold "
            f"{threshold:.4f}; the profile cannot be trusted")
        self.drift = drift
        self.threshold = threshold


def profile_signature(coords: Iterable[Tuple]) -> str:
    """SHA-256 signature of one round's failing-coordinate set."""
    h = hashlib.sha256()
    for coord in sorted(coords):
        h.update(repr(tuple(int(x) for x in coord)).encode())
    return h.hexdigest()


def _pair_drift(a: Set[Tuple], b: Set[Tuple]) -> float:
    union = a | b
    if not union:
        return 0.0
    return len(a ^ b) / len(union)


@dataclass
class ProfileIntegrity:
    """Outcome of the per-round profile comparison.

    Attributes:
        signatures: one SHA-256 signature per measurement round.
        drift: the worst pairwise drift observed between any two
            rounds (0.0 = byte-identical rounds).
        threshold: the gate's limit (None when the gate was disabled).
        ok: False iff the gate tripped (drift > threshold).
    """

    signatures: List[str] = field(default_factory=list)
    drift: float = 0.0
    threshold: Optional[float] = None
    ok: bool = True

    @property
    def rounds(self) -> int:
        return len(self.signatures)

    @property
    def stable(self) -> bool:
        """Whether every round produced the identical profile."""
        return len(set(self.signatures)) <= 1


def check_drift(round_sets: Sequence[Set[Tuple]],
                threshold: Optional[float],
                strict: bool = True,
                context: str = "profile") -> ProfileIntegrity:
    """Compare per-round failing-cell sets and gate on their drift.

    Args:
        round_sets: the failing coordinates each round observed.
        threshold: maximum tolerated drift; None disables the gate
            (signatures and drift are still computed and reported).
        strict: raise :class:`ProfileDriftError` when the gate trips;
            with False the record comes back with ``ok=False`` and a
            ``profile.drift`` event is emitted instead.
        context: label for the observability event.

    Returns:
        A :class:`ProfileIntegrity` record.
    """
    integrity = ProfileIntegrity(
        signatures=[profile_signature(s) for s in round_sets],
        threshold=threshold)
    for i in range(len(round_sets)):
        for j in range(i + 1, len(round_sets)):
            integrity.drift = max(
                integrity.drift,
                _pair_drift(set(round_sets[i]), set(round_sets[j])))
    if obs.enabled():
        obs.observe("profile.drift", integrity.drift)
    if threshold is not None and integrity.drift > threshold:
        integrity.ok = False
        obs.event("profile.drift", context=context,
                  drift=integrity.drift, threshold=threshold,
                  strict=strict)
        obs.inc("profile.drift_gate_trips")
        if strict:
            raise ProfileDriftError(integrity.drift, threshold)
    return integrity


class EccInferenceError(RuntimeError):
    """A BEER-recovered ECC function failed validation."""

    def __init__(self, reason: str) -> None:
        super().__init__(
            f"recovered on-die ECC function cannot be trusted: {reason}")
        self.reason = reason


def check_ecc_inference(report, strict: bool = True,
                        context: str = "ecc") -> bool:
    """Gate a BEER inference the way :func:`check_drift` gates drift.

    A profile read back through a *recovered* (rather than known)
    on-die ECC function is only usable if the inference survived
    held-out validation.  This gate fails closed: an untrusted
    inference either raises (``strict=True``) or is recorded as an
    ``ecc.inference`` event plus trip counter and reported back as
    ``False``, letting the campaign degrade its verdicts instead of
    publishing definite failures through a lens that may lie.

    Args:
        report: an :class:`repro.ecc.beer.EccInferenceReport`.
        strict: raise :class:`EccInferenceError` on an untrusted
            inference instead of returning False.
        context: label for the observability event.

    Returns:
        True iff the inference may be used to un-distort profiles.
    """
    if obs.enabled():
        obs.observe("ecc.validation_mismatches", report.mismatches)
    if report.ok:
        return True
    obs.event("ecc.inference", context=context, ok=False,
              reason=report.reason, checked=report.checked,
              mismatches=report.mismatches, strict=strict)
    obs.inc("profile.ecc.inference_gate_trips")
    if strict:
        raise EccInferenceError(report.reason or "validation failed")
    return False

"""Repeat-and-vote execution of the neighbour-aware sweep.

The robust sweep re-runs every schedule round (pattern + inverse) up
to ``policy.rounds`` times.  Before each executed round the substrate
is *reseeded* from the SHA-256 seed ladder - the bank RNG, the
intrinsic fault model's coin stream **and its VRT state**, and any
injected device-noise coins - so a round's outcome is a pure function
of ``(seed, repetition, round)``:

* re-running round 3 cannot change round 5;
* a noisy device and a noise-free one draw identical data-dependent
  coins, so injected noise can only *add* observed failures;
* the adaptive early-exit (skipping rounds whose cells are all
  decided) cannot perturb the rounds that do run.

Votes are *attributed*: a cell's vote in repetition ``p`` counts only
on the rounds it failed in repetition 0 (or the round it was first
seen in).  Failures that injected noise adds to other rounds therefore
cannot inflate a cell's vote count past what the noise-free run
produces - the keystone of the definite-set invariant.

Each repetition also runs two *control rounds* (solid 0s / solid 1s):
no data-dependent mechanism can disturb a solid pattern, so any cell
failing a control is content-independent (weak, VRT, marginal, soft
error, injected noise) and is classified ``unstable`` regardless of
its votes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import obs
from ..core.patterns import inverse, solid
from ..runtime.seeds import ladder_seed
from .quarantine import QuarantineSet
from .verdicts import CellVerdicts, RoundsPolicy, UNSTABLE

__all__ = ["RobustSweepResult", "robust_sweep", "reseed_banks"]

Coord = Tuple[int, int, int, int]  # (chip, bank, row, sys_col)


@dataclass
class RobustSweepResult:
    """What the repeat-and-vote sweep produced.

    Attributes:
        detected: trusted detections (definite + probabilistic).
        verdicts: the full per-cell vote ledger.
        quarantine: the unstable cells, with reasons.
        rounds_executed: (repetition, round) pairs actually run -
            the adaptive early-exit makes this less than
            ``rounds * len(schedule)``.
        control_rounds: control rounds run.
    """

    detected: Set[Coord] = field(default_factory=set)
    verdicts: CellVerdicts = None
    quarantine: QuarantineSet = field(default_factory=QuarantineSet)
    rounds_executed: int = 0
    control_rounds: int = 0


def reseed_banks(controllers: Sequence, seed: int,
                 *path, only=None) -> None:
    """Reseed every bank's randomness from one seed-ladder path.

    Replaces the bank RNG and the intrinsic fault model's coin stream
    with a single fresh generator (preserving their shared-stream
    structure), reinitialises the fault model's VRT state from that
    stream, and reseeds any injected noise model's coins - making the
    next retention read a pure function of ``(seed, *path)``.

    Args:
        controllers: one memory controller per chip.
        seed: ladder root.
        *path: ladder path components.
        only: optional collection of ``(chip_idx, bank_idx)`` pairs to
            restrict the reseed to.  Each bank's ladder seed depends
            only on its own coordinates, so reseeding a subset is
            byte-equivalent for those banks to reseeding them all -
            use it when a re-run only reads a few banks.
    """
    for chip_idx, ctrl in enumerate(controllers):
        for bank_idx, bank in enumerate(ctrl.chip.banks):
            if only is not None and (chip_idx, bank_idx) not in only:
                continue
            g = np.random.default_rng(
                ladder_seed(seed, *path, chip_idx, bank_idx))
            bank._rng = g
            faults = bank.faults
            faults._rng = g
            if len(faults.vrt_leaky):
                faults.vrt_leaky = (
                    g.random(len(faults.vrt_leaky))
                    < faults.spec.vrt_leaky_start_fraction)
            if bank.noise is not None:
                bank.noise.reseed_coins(
                    ladder_seed(seed, "noise", *path, chip_idx,
                                bank_idx))


def _run_round(controllers: Sequence, polarity: np.ndarray
               ) -> Set[Coord]:
    failures: Set[Coord] = set()
    for chip_idx, ctrl in enumerate(controllers):
        per_bank = ctrl.test_pattern(polarity)
        for bank_idx, (rows, cols) in enumerate(per_bank):
            failures.update(
                (chip_idx, bank_idx, int(r), int(c))
                for r, c in zip(rows.tolist(), cols.tolist()))
    return failures


def robust_sweep(controllers: Sequence, schedule,
                 policy: RoundsPolicy, seed: int = 0
                 ) -> RobustSweepResult:
    """Run the neighbour-aware sweep with repeat-and-vote verdicts.

    Args:
        controllers: one memory controller per chip.
        schedule: the :class:`~repro.core.scheduler.TestSchedule`.
        policy: repetition/vote policy (``rounds >= 1``).
        seed: the campaign's run seed (root of the reseeding ladder).

    Returns:
        A :class:`RobustSweepResult`.
    """
    rounds: List[Tuple[int, int]] = [
        (pi, vi) for pi in range(len(schedule.patterns))
        for vi in range(2)]
    row_bits = controllers[0].row_bits

    verdicts = CellVerdicts(rounds=policy.rounds, policy=policy)
    result = RobustSweepResult(verdicts=verdicts)

    # attribution: cell -> the schedule rounds its votes count on.
    attribution: Dict[Coord, Set[int]] = {}
    # Cells whose final verdict can no longer change (the sequential
    # early-exit): definite after ``early_definite`` clean sweeps,
    # unstable on any control failure, or vote-bounded - the
    # probabilistic threshold is unreachable even winning every
    # remaining repetition, or already met even losing them all.
    decided: Set[Coord] = set()

    for rep in range(policy.rounds):
        if rep == 0:
            executed = list(range(len(rounds)))
        else:
            undecided = [c for c in verdicts.votes if c not in decided]
            executed = sorted({r for c in undecided
                               for r in attribution.get(c, ())})
            if not executed:
                break  # every observed cell is decided
        fail_sets: Dict[int, Set[Coord]] = {}
        for r in executed:
            pi, vi = rounds[r]
            pattern = schedule.patterns[pi]
            polarity = pattern if vi == 0 else inverse(pattern)
            reseed_banks(controllers, seed, "robust.sweep", rep, r)
            fail_sets[r] = _run_round(controllers, polarity)
            result.rounds_executed += 1

        if policy.run_controls:
            for value in (0, 1):
                reseed_banks(controllers, seed, "robust.control",
                             rep, value)
                verdicts.control_failures |= _run_round(
                    controllers, solid(row_bits, value))
                result.control_rounds += 1

        # Score this repetition: a cell votes iff it failed in at
        # least one of its attributed rounds.  Cells first seen this
        # repetition get attributed to the rounds they failed in; they
        # can never reach a definite verdict (they missed rep 0).
        voted: Set[Coord] = set()
        for r, failures in fail_sets.items():
            for coord in failures:
                if coord not in attribution:
                    attribution[coord] = {r}
                    verdicts.votes[coord] = 0
                    verdicts.scored[coord] = rep
                if r in attribution[coord]:
                    voted.add(coord)
                elif rep == 0:
                    attribution[coord].add(r)
                    voted.add(coord)
        remaining = policy.rounds - 1 - rep
        for coord in list(verdicts.votes):
            if coord in decided:
                continue
            if coord in verdicts.control_failures:
                decided.add(coord)  # unstable whatever it votes
                continue
            if not attribution.get(coord) & set(fail_sets):
                continue  # none of its rounds ran this repetition
            verdicts.scored[coord] += 1
            if coord in voted:
                verdicts.votes[coord] += 1
            votes = verdicts.votes[coord]
            scored = verdicts.scored[coord]
            if votes == scored:
                if scored >= policy.definite_votes():
                    decided.add(coord)
            elif (votes + remaining
                    < policy.required_votes(scored + remaining)
                    or votes
                    >= policy.required_votes(scored + remaining)):
                # An undecided cell is scored every remaining
                # repetition, so (scored + remaining) is its exact
                # final denominator; threshold monotonicity makes the
                # two bounds sound for every intermediate stop too.
                decided.add(coord)

    # Final classification: control failures override everything.
    result.detected = verdicts.detected()
    for coord in verdicts.unstable():
        reason = ("control-failure"
                  if coord in verdicts.control_failures
                  else "inconsistent-votes")
        result.quarantine.add(coord, reason)
    if obs.enabled():
        obs.inc("profile.rounds", result.rounds_executed)
        obs.inc("profile.control_rounds", result.control_rounds)
    return result

"""Noise-robust verdicts: repeat-and-vote testing, quarantine, gates.

PARBOR's detection loop assumes every read-back mismatch is a stable,
reproducible data-dependent failure.  On the simulated substrate that
assumption is deliberately false - soft errors, VRT cells, and
marginal cells (:mod:`repro.dram.faults`) fail intermittently, and a
single unlucky flip would otherwise land straight in the failure
profile that DC-REF and the mitigation layers treat as ground truth.

This package closes that gap end to end:

* :mod:`~repro.robust.verdicts` - the :class:`RoundsPolicy` (how many
  times to repeat each pass, when to stop early, how to vote) and the
  three-way ``definite`` / ``probabilistic`` / ``unstable`` verdict;
* :mod:`~repro.robust.vote` - :func:`robust_sweep`, the seed-ladder
  reseeded repeat-and-vote sweep with control rounds and the adaptive
  early-exit;
* :mod:`~repro.robust.quarantine` - the serializable
  :class:`QuarantineSet` of unstable cells consumed by
  ``dcref.profiling`` / ``dcref.evaluate`` (guardbanding) and
  ``mitigate.retire`` / ``mitigate.ecc``;
* :mod:`~repro.robust.integrity` - per-round profile signatures and
  the fail-closed drift gate.
"""

from .integrity import (ProfileDriftError, ProfileIntegrity,
                        check_drift, profile_signature)
from .quarantine import QuarantineSet
from .verdicts import (DEFINITE, PROBABILISTIC, UNSTABLE, CellVerdicts,
                       RoundsPolicy)
from .vote import RobustSweepResult, reseed_banks, robust_sweep

__all__ = [
    "DEFINITE", "PROBABILISTIC", "UNSTABLE", "CellVerdicts",
    "ProfileDriftError", "ProfileIntegrity", "QuarantineSet",
    "RobustSweepResult", "RoundsPolicy", "check_drift",
    "profile_signature", "reseed_banks", "robust_sweep",
]

"""Serializable quarantine of unstable cells.

Cells the robust verdict layer classifies ``unstable`` (VRT, marginal,
soft-error suspects, control-round failures) cannot be trusted in
either direction: they are not reproducible failures, but they are not
known-good either.  The :class:`QuarantineSet` carries them - with the
reason each one was quarantined - across the pipeline:

* ``dcref.profiling`` / ``dcref.evaluate`` guardband quarantined rows
  (they are never assigned a relaxed refresh bin);
* ``mitigate.retire`` retires quarantined rows alongside detected
  ones; ``mitigate.ecc`` counts quarantined cells as vulnerable;
* the CLI serialises the set to JSON (``--quarantine-out``) so a later
  invocation - or another tool - consumes the same contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

import numpy as np

__all__ = ["QuarantineSet"]

Coord = Tuple[int, int, int, int]  # (chip, bank, row, sys_col)

SCHEMA = 1


@dataclass
class QuarantineSet:
    """Unstable cells with the reason each was quarantined."""

    reasons: Dict[Coord, str] = field(default_factory=dict)

    @property
    def cells(self) -> Set[Coord]:
        return set(self.reasons)

    def add(self, coord: Coord, reason: str) -> None:
        """Quarantine one cell (the first reason recorded wins)."""
        self.reasons.setdefault(tuple(int(x) for x in coord), reason)

    def update(self, coords: Iterable[Coord], reason: str) -> None:
        for coord in coords:
            self.add(coord, reason)

    def merge(self, other: "QuarantineSet") -> "QuarantineSet":
        merged = QuarantineSet(reasons=dict(self.reasons))
        for coord, reason in other.reasons.items():
            merged.add(coord, reason)
        return merged

    def __len__(self) -> int:
        return len(self.reasons)

    def __contains__(self, coord: Coord) -> bool:
        return tuple(int(x) for x in coord) in self.reasons

    def __bool__(self) -> bool:
        return bool(self.reasons)

    def rows(self) -> Set[Tuple[int, int, int]]:
        """The (chip, bank, row) triples hosting a quarantined cell."""
        return {(c, b, r) for (c, b, r, _col) in self.reasons}

    def row_mask(self, n_chips: int, n_banks: int, n_rows: int
                 ) -> np.ndarray:
        """Boolean ``(n_chips, n_banks, n_rows)`` quarantined-row mask."""
        mask = np.zeros((n_chips, n_banks, n_rows), dtype=bool)
        for chip, bank, row in self.rows():
            if chip < n_chips and bank < n_banks and row < n_rows:
                mask[chip, bank, row] = True
        return mask

    def reason_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for reason in self.reasons.values():
            counts[reason] = counts.get(reason, 0) + 1
        return dict(sorted(counts.items()))

    def signature(self) -> Tuple:
        """Comparable digest (sorted cells with reasons)."""
        return tuple(sorted((coord, reason)
                            for coord, reason in self.reasons.items()))

    # -- serialization ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "cells": [[*coord, reason] for coord, reason
                      in sorted(self.reasons.items())],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "QuarantineSet":
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported quarantine schema {payload.get('schema')!r}")
        qset = cls()
        for entry in payload.get("cells", []):
            chip, bank, row, col, reason = entry
            qset.add((int(chip), int(bank), int(row), int(col)),
                     str(reason))
        return qset

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "QuarantineSet":
        with open(path) as fh:
            return cls.from_json(json.load(fh))

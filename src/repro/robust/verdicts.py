"""Verdict model of the noise-robust testing layer.

A single retention test answers "did this cell fail this read?".  On a
noisy device that boolean is not a profile: VRT and marginal cells fail
intermittently, soft errors fail exactly once, and probabilistic
coupled cells fail most - but not all - reads.  The robust layer
re-runs each write/wait/read pass up to ``rounds`` times and replaces
the boolean with one of three verdicts:

* ``definite`` - failed every repetition it was scored in (and at
  least :attr:`RoundsPolicy.early_definite` of them) and stayed clean
  in every control round: a stable data-dependent failure.
* ``probabilistic`` - failed at least ``ceil(threshold * scored)``
  repetitions: real but intermittent (e.g. weakly coupled cells).
* ``unstable`` - anything else that ever failed, plus every cell that
  failed a *control* round (solid patterns that no data-dependent
  mechanism can disturb): VRT, marginal, and soft-error suspects.
  Unstable cells are quarantined, never trusted.

All repetition randomness rides the SHA-256 seed ladder: each
(pass, round) pair reseeds the substrate, so a verdict is a pure
function of (spec, round) - independent of scheduling, worker count,
and of which other rounds the adaptive early-exit chose to re-run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

__all__ = ["DEFINITE", "PROBABILISTIC", "UNSTABLE", "RoundsPolicy",
           "CellVerdicts"]

Coord = Tuple[int, int, int, int]  # (chip, bank, row, sys_col)

DEFINITE = "definite"
PROBABILISTIC = "probabilistic"
UNSTABLE = "unstable"


@dataclass(frozen=True)
class RoundsPolicy:
    """How many times to repeat each pass and how to vote.

    Attributes:
        rounds: repetitions of every write/wait/read pass.  ``1``
            reproduces today's single-pass behaviour byte for byte
            (no reseeding, no controls, no verdicts beyond
            ``probabilistic``-by-observation).
        early_definite: a cell that failed *every* repetition so far is
            declared definite after this many repetitions and its
            rounds stop being re-run (the sequential-test early exit).
        probabilistic_threshold: fraction of scored repetitions a cell
            must fail to be ``probabilistic`` rather than ``unstable``.
        controls: run solid-0/solid-1 control rounds each repetition to
            catch content-independent cells.  ``None`` (default) means
            "whenever ``rounds > 1``".
        drift_threshold: maximum tolerated per-round profile drift
            (symmetric difference over union) before the integrity
            gate trips; ``None`` disables the gate.
        strict: with True a tripped integrity gate raises
            :class:`~repro.robust.integrity.ProfileDriftError`; with
            False it degrades - the drift is recorded on the result
            and emitted as an ``profile.drift`` event instead.
    """

    rounds: int = 1
    early_definite: int = 2
    probabilistic_threshold: float = 0.5
    controls: Optional[bool] = None
    drift_threshold: Optional[float] = None
    strict: bool = True

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be at least 1")
        if self.early_definite < 1:
            raise ValueError("early_definite must be at least 1")
        if not 0 < self.probabilistic_threshold <= 1:
            raise ValueError(
                "probabilistic_threshold must be in (0, 1]")
        if (self.drift_threshold is not None
                and not 0 <= self.drift_threshold <= 1):
            raise ValueError("drift_threshold must be in [0, 1]")

    @property
    def run_controls(self) -> bool:
        if self.controls is None:
            return self.rounds > 1
        return self.controls

    @property
    def is_legacy(self) -> bool:
        """Whether this policy is the byte-identical single-pass path."""
        return self.rounds == 1 and not self.run_controls

    def required_votes(self, scored: int) -> int:
        """Votes needed for a ``probabilistic`` verdict."""
        return max(1, math.ceil(self.probabilistic_threshold * scored))

    def definite_votes(self) -> int:
        """Repetitions a cell must sweep to be declared ``definite``."""
        return min(self.rounds, self.early_definite)


@dataclass
class CellVerdicts:
    """Per-cell vote ledger and final classification.

    Attributes:
        rounds: the policy's repetition count.
        votes: repetitions each observed cell failed in.
        scored: repetitions each observed cell was scored in (scored
            stops early for cells decided ``definite``).
        control_failures: cells that failed any control round -
            content-independent, always ``unstable``.
        discovery_only: cells observed only by the discovery battery
            (no sweep votes); control-clean ones count as
            ``probabilistic`` (observed once), matching the legacy
            pipeline's inclusion of discovery failures.
        policy: the policy the votes were collected under.
        degraded: the measurement channel itself was untrusted (e.g.
            an unrecovered on-die ECC inference distorted every read).
            Degraded verdicts are capped at ``probabilistic``: a cell
            can never be ``definite`` through a lens that may lie.
    """

    rounds: int
    votes: Dict[Coord, int] = field(default_factory=dict)
    scored: Dict[Coord, int] = field(default_factory=dict)
    control_failures: Set[Coord] = field(default_factory=set)
    discovery_only: Set[Coord] = field(default_factory=set)
    policy: RoundsPolicy = field(default_factory=RoundsPolicy)
    degraded: bool = False

    def observed(self) -> Set[Coord]:
        """Every cell that failed anything at least once."""
        return (set(self.votes) | self.control_failures
                | self.discovery_only)

    def verdict(self, coord: Coord) -> Optional[str]:
        """The verdict for one cell (None if it was never observed)."""
        if coord in self.control_failures:
            return UNSTABLE
        if coord in self.votes:
            votes = self.votes[coord]
            scored = self.scored.get(coord, self.rounds)
            if (votes == scored
                    and scored >= self.policy.definite_votes()):
                return PROBABILISTIC if self.degraded else DEFINITE
            if votes >= self.policy.required_votes(scored):
                return PROBABILISTIC
            return UNSTABLE
        if coord in self.discovery_only:
            return PROBABILISTIC
        return None

    def _by_verdict(self, wanted: str) -> Set[Coord]:
        return {c for c in self.observed() if self.verdict(c) == wanted}

    def definite(self) -> Set[Coord]:
        return self._by_verdict(DEFINITE)

    def probabilistic(self) -> Set[Coord]:
        return self._by_verdict(PROBABILISTIC)

    def unstable(self) -> Set[Coord]:
        return self._by_verdict(UNSTABLE)

    def detected(self) -> Set[Coord]:
        """Trusted detections: definite plus probabilistic cells."""
        return {c for c in self.observed()
                if self.verdict(c) in (DEFINITE, PROBABILISTIC)}

    def counts(self) -> Dict[str, int]:
        tally = {DEFINITE: 0, PROBABILISTIC: 0, UNSTABLE: 0}
        for coord in self.observed():
            tally[self.verdict(coord)] += 1
        return tally

"""On-die ECC: the lens between the substrate and every observation.

Modern DRAM devices scrub each read through an internal SEC-DED code,
so a system-level profiler like PARBOR never sees the raw cell array -
it sees the post-correction view, with single-bit data-dependent
failures masked and multi-bit patterns occasionally *miscorrected*
onto healthy cells.  This package models that lens bit-exactly and
then recovers the view back:

* :mod:`repro.ecc.secded` - the (72,64) extended-Hamming SEC-DED code
  itself (overall-parity row carries the double-error detection):
  parity-check matrix, packed-word and reference encode/decode paths,
  and the sparse error-set decode the substrate uses.
* :mod:`repro.ecc.ondie` - the per-bank read-path stage
  (:class:`OnDieEcc`) in lens, recovery, and null-code modes.
* :mod:`repro.ecc.beer` - BEER-style inference of the secret
  parity-check matrix from carefully chosen data backgrounds plus
  miscorrection observations, and its held-out validation.
* :mod:`repro.ecc.spec` - :class:`EccCampaignSpec`, the campaign
  integration (``repro characterize --ecc`` / ``--ecc-recover``) and
  the distortion analysis comparing ECC-on and ECC-off outcomes.
"""

from .beer import (EccInferenceReport, InferredEcc, beer_backgrounds,
                   infer_ecc, validate_inference)
from .ondie import COMPANION_PASSES, OnDieEcc, attach_on_die_ecc
from .secded import (CLEAN, CORRECTED, CORRECTED_CHECK, DETECTED,
                     MISCORRECTED, UNDETECTED, HammingSecDed,
                     decode_with_tables)
from .spec import (ECC_MODES, EccCampaignSpec, EccDistortion,
                   ecc_distortion, format_distortion)

__all__ = [
    "CLEAN", "CORRECTED", "CORRECTED_CHECK", "DETECTED",
    "MISCORRECTED", "UNDETECTED", "COMPANION_PASSES", "ECC_MODES",
    "EccCampaignSpec", "EccDistortion", "EccInferenceReport",
    "HammingSecDed", "InferredEcc", "OnDieEcc", "attach_on_die_ecc",
    "beer_backgrounds", "decode_with_tables", "ecc_distortion",
    "format_distortion", "infer_ecc", "validate_inference",
]

"""The on-die ECC stage of the bank read path.

Modern DRAM corrects internally before data ever reaches the pins:
every retention read passes through a per-word SEC-DED decode, so a
system-level test observes the *post-correction* view.  Single-bit
data-dependent failures vanish (masking), multi-bit failures can flip
a previously-healthy bit (miscorrection), and the profile PARBOR
builds is a distorted image of the substrate.

:class:`OnDieEcc` implements that stage as a pure transform over the
sparse raw error set of a retention read.  Three modeling notes keep
it exact and cheap (full rationale in ``docs/ECC.md``):

* **Check bits never decay.**  The stored check byte is modeled as
  error-free, so the received syndrome is a pure function of the
  data-bit error pattern and the stage never needs to materialise
  check-bit storage.  Words without raw errors decode clean and are
  skipped entirely.
* **Word = 64 data bits.**  The stage requires ``row_bits`` to be a
  multiple of 64 so every packed substrate word is exactly one ECC
  dataword (all vendor geometries satisfy this).
* **Recovery is a read-time probe pair.**  The BEER-recovered mode
  models each retention observation as three system-level read passes
  - plain, and with a forced read-time corruption at in-word bits 0
  and 1 (the union semantics of :class:`repro.dram.faults` noise:
  written data, and hence the data-dependent failure pattern, is
  untouched).  The pre-correction error set is then re-derived by
  candidate inversion against *all three* observations, using only
  the inferred parity-check matrix.  Any word whose pre-image is not
  unique is surrendered to quarantine, never guessed.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from .. import obs
from .secded import (CORRECTED, CORRECTED_CHECK, DETECTED, HammingSecDed,
                     MISCORRECTED, UNDETECTED, decode_with_tables)

__all__ = ["OnDieEcc", "attach_on_die_ecc"]

#: Forced read-time corruption positions of the recovery probe passes:
#: one plain pass plus one companion pass per low in-word bit.
COMPANION_PASSES = (frozenset(), frozenset({0}), frozenset({1}))


class OnDieEcc:
    """Per-bank on-die SEC-DED stage over the packed word substrate.

    Args:
        code: the chip's true :class:`HammingSecDed` instance, or None
            for the *null code* (0 check bits): the stage is attached
            and the read path runs its collapse plumbing, but the
            transform is the identity - the differential gate proving
            the threading itself changes nothing rides on this.
        recovery: optional BEER inference result (an object exposing
            ``tables() -> (columns, lookup)``, see
            :class:`repro.ecc.beer.InferredEcc`).  When present the
            stage runs in *recovery* mode and un-distorts each read
            back to the raw error set; when absent it runs in *lens*
            mode and returns the distorted post-correction view.
    """

    def __init__(self, code: Optional[HammingSecDed],
                 recovery: Optional[object] = None) -> None:
        self.code = code
        self.recovery = recovery
        self._rec_tables = recovery.tables() if recovery is not None else None
        #: (row, phys) cells recovery could not uniquely invert; the
        #: detector drains these into the campaign quarantine.
        self.ambiguous: Set[Tuple[int, int]] = set()
        self.counts = {"words": 0, "masked": 0, "miscorrections": 0,
                       "corrected_words": 0, "detected_words": 0,
                       "undetected": 0, "recovered_words": 0,
                       "ambiguous_cells": 0}
        self._flushed = dict(self.counts)

    def transform(self, rows: np.ndarray, phys: np.ndarray,
                  row_bits: int) -> Tuple[np.ndarray, np.ndarray]:
        """Map a physical error *set* to the post-stage cell set.

        Thin wrapper over :meth:`transform_read` for callers that hold
        each erroneous cell exactly once and carry no forced-noise
        coordinates (tests, analysis).  The bank's read path calls
        :meth:`transform_read` directly with the raw event stream.
        """
        empty = np.empty(0, dtype=np.int64)
        out_rows, out_phys, _, _ = self.transform_read(
            rows, phys, empty, empty, row_bits)
        return out_rows, out_phys

    def transform_read(self, rows: np.ndarray, phys: np.ndarray,
                       noise_rows: np.ndarray, noise_phys: np.ndarray,
                       row_bits: int
                       ) -> Tuple[np.ndarray, np.ndarray,
                                  np.ndarray, np.ndarray]:
        """Map one read's raw flip events + noise to the observed view.

        ``rows``/``phys`` are flip *events* (XOR semantics - the same
        cell may appear several times and an even count cancels);
        ``noise_rows``/``noise_phys`` are forced-corruption cells
        (union semantics).  The physical error set of each 64-bit word
        is the odd-count event cells unioned with its noise cells.

        Lens mode replaces each word's inputs with the decoded
        post-correction cell set (each cell once, no noise).  Recovery
        mode is **event-preserving**: a word whose pre-image is
        recovered exactly passes its raw events and noise through
        *verbatim* - order, multiplicity and the event/noise split
        included - so a fully recovered read is byte-identical to the
        ECC-off channel for every downstream consumer.  Only words the
        inversion cannot pin down are edited: their inputs are
        dropped, the provably-real cells are emitted once each, and
        the uncertain cells land in :attr:`ambiguous` for quarantine.
        """
        if self.code is None or (not len(rows) and not len(noise_rows)):
            return rows, phys, noise_rows, noise_phys
        if row_bits % 64:
            raise ValueError("on-die ECC needs row_bits % 64 == 0")
        n_words = np.int64(row_bits >> 6)
        rows = rows.astype(np.int64, copy=False)
        phys = phys.astype(np.int64, copy=False)
        noise_rows = noise_rows.astype(np.int64, copy=False)
        noise_phys = noise_phys.astype(np.int64, copy=False)
        ekey = rows * n_words + (phys >> np.int64(6))
        nkey = noise_rows * n_words + (noise_phys >> np.int64(6))
        words, wcounts = np.unique(np.concatenate([ekey, nkey]),
                                   return_counts=True)
        recover = self._rec_tables is not None
        c = self.counts
        keep_events = np.full(len(rows), recover)
        keep_noise = np.full(len(noise_rows), recover)
        add_rows: List[np.ndarray] = []
        add_phys: List[np.ndarray] = []

        # Fast path: words with a single input are a single-cell error
        # set.  Lens: always corrected away (masking).  Recovery:
        # always uniquely inverted (the companion passes turn it into
        # a 2-error, hence detected-not-corrected, word).
        single = wcounts == 1
        n_single = int(single.sum())
        c["words"] += n_single
        if n_single:
            if recover:
                c["recovered_words"] += n_single
            else:
                c["masked"] += n_single
                c["corrected_words"] += n_single
        multi = words[~single]
        if len(multi):
            eorder = np.argsort(ekey, kind="stable")
            norder = np.argsort(nkey, kind="stable")
            ekey_s = ekey[eorder]
            nkey_s = nkey[norder]
            for w in multi.tolist():
                ei = eorder[np.searchsorted(ekey_s, w, "left"):
                            np.searchsorted(ekey_s, w, "right")]
                ni = norder[np.searchsorted(nkey_s, w, "left"):
                            np.searchsorted(nkey_s, w, "right")]
                row = int(w // n_words)
                word_base = int(w % n_words) << 6
                odd = np.bincount(phys[ei] & 63, minlength=64) & 1
                errs = set(np.flatnonzero(odd).tolist())
                errs.update((noise_phys[ni] & 63).tolist())
                if recover:
                    if not errs:
                        # Every event cancelled: the device saw a clean
                        # word, the inversion is trivially exact, and
                        # the raw events pass through verbatim.
                        continue
                    c["words"] += 1
                    reals, unsure = self._recover_word(frozenset(errs))
                    if not unsure:
                        c["recovered_words"] += 1
                        continue
                    c["ambiguous_cells"] += len(unsure)
                    for p in unsure:
                        self.ambiguous.add((row, word_base + p))
                    keep_events[ei] = False
                    keep_noise[ni] = False
                    kept = reals
                else:
                    if not errs:
                        continue
                    c["words"] += 1
                    observed, status = self.code.decode_error_set(
                        frozenset(errs))
                    c["masked"] += len(errs - observed)
                    c["miscorrections"] += len(observed - errs)
                    if status in (CORRECTED, MISCORRECTED):
                        c["corrected_words"] += 1
                    elif status in (DETECTED, CORRECTED_CHECK):
                        c["detected_words"] += 1
                    elif status == UNDETECTED:
                        c["undetected"] += 1
                    kept = observed
                if kept:
                    pos = np.fromiter(
                        (word_base + p for p in sorted(kept)),
                        dtype=np.int64, count=len(kept))
                    add_rows.append(np.full(len(kept), row,
                                            dtype=np.int64))
                    add_phys.append(pos)
        if obs.enabled():
            for name, value in self.counts.items():
                delta = value - self._flushed[name]
                if delta:
                    obs.inc(f"profile.ecc.{name}", delta)
                self._flushed[name] = value
        out_rows = rows[keep_events]
        out_phys = phys[keep_events]
        if add_rows:
            out_rows = np.concatenate([out_rows, *add_rows])
            out_phys = np.concatenate([out_phys, *add_phys])
        return (out_rows, out_phys,
                noise_rows[keep_noise], noise_phys[keep_noise])

    # -- recovery -----------------------------------------------------

    def _recover_word(self, errs: frozenset
                      ) -> Tuple[Set[int], Set[int]]:
        """Invert one word's post-correction observations exactly.

        Simulates the three probe passes against the *true* code (the
        device decodes with its real matrix), then inverts using only
        the *recovered* tables.  A pass whose observation has nonzero
        recovered syndrome is proof the decoder did not act - the raw
        set is the observation itself.  Every candidate extracted that
        way is then verified against all three observations; the raw
        set is claimed only when exactly one candidate survives.

        Returns ``(real_cells, uncertain_cells)`` as in-word bit sets.
        The true raw set always survives verification (the recovered
        tables are row-equivalent to the true matrix, so predicted
        decode actions match the device exactly), so claimed cells are
        never wrong and missed cells always land in the uncertain set
        - except the physically-unrecoverable corner documented in
        ``docs/ECC.md``, which surrenders the whole word.
        """
        cols, lookup = self._rec_tables
        observations = []
        for companions in COMPANION_PASSES:
            observed, _ = self.code.decode_error_set(errs | companions)
            observations.append((observed, companions))
        candidates = set()
        for observed, companions in observations:
            syndrome = 0
            for p in observed:
                syndrome ^= cols[p]
            if syndrome != 0:
                candidates.add(observed - companions)
                if companions & observed:
                    candidates.add(observed)
        verified = [
            cand for cand in candidates
            if all(decode_with_tables(cand | comp, cols, lookup)[0] == obs_
                   for obs_, comp in observations)]
        if len(verified) == 1:
            return set(verified[0]), set()
        if verified:
            common = set.intersection(*(set(v) for v in verified))
            spread = set.union(*(set(v) for v in verified)) - common
            return common, spread
        # No pass was informative: the decoder acted (or an error
        # pattern escaped undetected) in all three.  Surrender the
        # whole word - quarantine beats a guessed verdict.
        return set(), set(range(64))


def attach_on_die_ecc(chip, code: Optional[HammingSecDed],
                      recovery: Optional[object] = None) -> None:
    """Attach one on-die ECC stage instance per bank of ``chip``."""
    for bank in chip.banks:
        bank.ecc = OnDieEcc(code, recovery=recovery)

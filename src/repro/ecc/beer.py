"""BEER-style inference of an unknown on-die ECC parity function.

The chip's SEC-DED matrix is proprietary, but its *miscorrections*
leak it (Patel et al., BEER, MICRO 2020).  The harness plants a probe
triple ``{p, q, r}`` of forced read-time corruptions inside one word;
when the decoder miscorrects onto a fourth position ``m``, the column
algebra says ``h_p ^ h_q ^ h_r ^ h_m = 0`` - the set ``{p, q, r, m}``
is a weight-4 vector orthogonal to *every* row of the data part of
``H`` (the overall-parity row too, since the weight is even).  Each
confirmed miscorrection is therefore one linear relation on the
64-dim GF(2) space; once the collected relations reach rank 56
(= 64 - 8) their nullspace is exactly the 8-dim rowspace of
``H_data``, recovered in reduced-row-echelon canonical form.

Row equivalence is all a profile recovery needs: for any invertible
``L``, ``sigma' = L . sigma`` preserves both ``sigma == 0`` and which
column (if any) the syndrome matches, so the recovered basis predicts
the device's decode actions on data bits exactly.

De-noising: probe words also carry real retention failures.  Every
triple is planted at two slots (row ``r`` and row ``r + n_rows/2``,
same word index) in the same round and a relation is accepted only
when both slots report the *identical* outcome - real-failure
contamination is word-local and cannot replicate across the pair.
Backgrounds cycle solid-0 / checkered / solid-1 / row-stripe per the
BEER pattern recipe (solids keep data-dependent failures quiet, the
striped rounds prove inference survives contamination).

Inference is validated fail-closed: structural checks (rank 8, 64
distinct nonzero recovered columns) plus held-out probe rounds whose
observed outcomes must match the recovered tables' predictions
exactly.  Campaigns consume the result only through
:func:`repro.robust.integrity.check_ecc_inference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..core.patterns import checkerboard, solid
from ..dram.faults import ForcedFlipNoise
from ..runtime.seeds import ladder_seed
from .secded import (DATA_BITS, CHECK_BITS, HammingSecDed, NO_MATCH,
                     decode_with_tables)

__all__ = ["InferredEcc", "EccInferenceReport", "infer_ecc",
           "validate_inference", "beer_backgrounds", "TARGET_RANK"]

#: Relations rank at which the nullspace pins the code exactly.
TARGET_RANK = DATA_BITS - CHECK_BITS  # 56

#: Replicas per probe slot.  Confirmation requires every copy to
#: classify identically, so a natural failure can only forge an
#: outcome by hitting the same in-word bit in this many decoupled
#: words of one read - at three, beyond even a noisy chip's reach.
COPIES = 3


def beer_backgrounds(row_bits: int, n_rows: int
                     ) -> List[Tuple[str, np.ndarray]]:
    """The BEER pattern recipe: per-round background writes.

    Solids produce no data-dependent failures (the control-round
    property), checkered/row-stripe rounds deliberately wake them so
    the dual-slot filter is exercised under contamination.
    """
    stripe = np.zeros((n_rows, row_bits), dtype=np.uint8)
    stripe[1::2] = 1
    return [("solid0", solid(row_bits, 0)),
            ("checkered", checkerboard(row_bits)),
            ("solid1", solid(row_bits, 1)),
            ("row-stripe", stripe)]


# -- GF(2) linear algebra over 64-bit masks -------------------------------

def _rref(masks) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Reduced row echelon form; returns (rows, pivot_bits).

    Rows are 64-bit masks; the pivot of each row is its highest set
    bit, rows are sorted by descending pivot and fully reduced - a
    canonical basis of the rowspace.
    """
    rows: List[int] = []
    for v in masks:
        v = int(v)
        for r in rows:
            if (v >> (r.bit_length() - 1)) & 1:
                v ^= r
        if v:
            rows.append(v)
            rows.sort(key=int.bit_length, reverse=True)
    # back-substitute to make each pivot unique to its row
    for i, r in enumerate(rows):
        for j, other in enumerate(rows):
            if i != j and (other >> (r.bit_length() - 1)) & 1:
                rows[j] = other ^ r
    rows.sort(key=int.bit_length, reverse=True)
    return tuple(rows), tuple(r.bit_length() - 1 for r in rows)


def _nullspace(masks) -> List[int]:
    """Basis of ``{x : parity(r & x) = 0 for every r in masks}``."""
    rref, pivots = _rref(masks)
    pivot_set = set(pivots)
    out = []
    for free in range(DATA_BITS):
        if free in pivot_set:
            continue
        v = 1 << free
        for row, p in zip(rref, pivots):
            if (row >> free) & 1:
                v |= 1 << p
        out.append(v)
    return out


# -- inference result -----------------------------------------------------

@dataclass(frozen=True)
class InferredEcc:
    """A recovered parity-check basis in canonical (RREF) form.

    ``basis`` spans the same GF(2) rowspace as the true ``H_data``
    when inference succeeded; :meth:`matches` checks that exactly.
    """

    basis: Tuple[int, ...]
    relations: int = 0
    rounds: int = 0
    ok: bool = True
    note: str = ""

    @cached_property
    def _tables(self) -> Tuple[Tuple[int, ...], np.ndarray]:
        cols = tuple(
            sum(((self.basis[i] >> p) & 1) << i
                for i in range(len(self.basis)))
            for p in range(DATA_BITS))
        lookup = np.full(256, NO_MATCH, dtype=np.int16)
        for p, col in enumerate(cols):
            if col and lookup[col] == NO_MATCH:
                lookup[col] = p
        return cols, lookup

    def tables(self) -> Tuple[Tuple[int, ...], np.ndarray]:
        """Recovered ``(columns, syndrome lookup)`` decode tables."""
        return self._tables

    def structurally_valid(self) -> bool:
        """Rank-8 basis with 64 distinct nonzero recovered columns."""
        if len(self.basis) != CHECK_BITS:
            return False
        rref, _ = _rref(self.basis)
        if len(rref) != CHECK_BITS:
            return False
        cols, _ = self._tables
        return 0 not in cols and len(set(cols)) == DATA_BITS

    def matches(self, code: HammingSecDed) -> bool:
        """Does the basis span exactly the true code's rowspace?"""
        true_rref, _ = _rref(int(m) for m in code.row_masks)
        return tuple(self.basis) == true_rref

    def predict(self, errors: FrozenSet[int]) -> FrozenSet[int]:
        """Predicted post-correction view of a data-bit error set."""
        cols, lookup = self._tables
        return decode_with_tables(frozenset(errors), cols, lookup)[0]


@dataclass
class EccInferenceReport:
    """Validation verdict over an :class:`InferredEcc`.

    ``ok`` is the single gate bit campaigns consume (through
    :func:`repro.robust.integrity.check_ecc_inference`): structural
    validity AND zero held-out prediction mismatches AND enough
    confirmed slots to mean anything.
    """

    ok: bool
    checked: int = 0
    mismatches: int = 0
    reason: str = ""
    inferred: Optional[InferredEcc] = field(default=None, repr=False)


# -- probing --------------------------------------------------------------

def _probe_round(chip, seed: int, *path) -> Tuple[
        List[Tuple[int, int]], np.ndarray,
        Dict[Tuple[int, int], FrozenSet[int]]]:
    """One probe round: plant replicated triples, read through the ECC.

    Returns ``(slots, triples, observed)``: per slot ``s`` the word
    coordinate ``(row, word)`` of its primary copy (copy ``k`` lives
    at row ``row + k*n_rows/COPIES``, word
    ``(word + k*n_words/COPIES) % n_words``), the planted triple, and
    the post-ECC in-word error sets of every observed word.

    The copies deliberately sit in *different words and rows* so they
    share no physical cells or columns: decode behavior depends only
    on the in-word bit positions of the triple (identical in every
    copy), while natural data-dependent failures - which would
    otherwise dirty the copies the same way and forge a confirmed
    outcome - must hit the same in-word bit in all :data:`COPIES`
    decoupled words at once to slip through.  With two copies that
    collision is a real 1-in-64 event per doubly-dirty slot on a noisy
    chip; with three it is negligible.
    """
    from ..core.detector import controllers_for
    from ..robust.vote import reseed_banks

    bank = chip.banks[0]
    n_rows, row_bits = bank.n_rows, bank.row_bits
    n_words = row_bits >> 6
    stride = n_rows // COPIES
    n_slots = stride * n_words
    round_idx = path[-1]

    rng = np.random.default_rng(ladder_seed(seed, "triples", *path))
    triples = np.argsort(rng.random((n_slots, 64)), axis=1)[:, :3]
    triples.sort(axis=1)

    slot_rows = np.repeat(np.arange(stride, dtype=np.int64), n_words)
    slot_words = np.tile(np.arange(n_words, dtype=np.int64), stride)
    probe_rows = np.concatenate(
        [np.repeat(slot_rows + k * stride, 3) for k in range(COPIES)])
    probe_phys = np.concatenate(
        [(((slot_words + k * (n_words // COPIES)) % n_words)[:, None]
          * 64 + triples).ravel() for k in range(COPIES)])

    name, background = beer_backgrounds(row_bits, n_rows)[
        int(round_idx) % 4]
    reseed_banks(controllers_for(chip), seed, "beer", *path)
    bank.write_rows(np.arange(n_rows), background)
    bank.noise = ForcedFlipNoise(probe_rows, probe_phys)
    try:
        obs_rows, obs_sys = bank.retention_failures()
    finally:
        bank.noise = None

    obs_phys = bank.mapping.sys_to_phys()[obs_sys]
    observed: Dict[Tuple[int, int], FrozenSet[int]] = {}
    grouped: Dict[Tuple[int, int], List[int]] = {}
    for r, p in zip(obs_rows.tolist(), obs_phys.tolist()):
        grouped.setdefault((int(r), int(p) >> 6), []).append(int(p) & 63)
    for key, bits in grouped.items():
        observed[key] = frozenset(bits)

    slots = list(zip(slot_rows.tolist(), slot_words.tolist()))
    return slots, triples, observed


def _classify(observed: FrozenSet[int], triple: FrozenSet[int]) -> Tuple:
    """Outcome of one probed word: detect / miscorrection-flip / dirty."""
    if observed == triple:
        return ("detect",)
    if len(observed) == len(triple) + 1 and triple < observed:
        return ("flip", min(observed - triple))
    return ("dirty",)


def _paired_outcomes(chip, seed: int, *path):
    """Replica-confirmed probe outcomes of one round.

    A slot's outcome counts only when all :data:`COPIES` decoupled
    copies classify identically and none is dirty.
    """
    slots, triples, observed = _probe_round(chip, seed, *path)
    bank = chip.banks[0]
    stride = bank.n_rows // COPIES
    n_words = bank.row_bits >> 6
    outcomes = []
    for s, (row, word) in enumerate(slots):
        triple = frozenset(int(t) for t in triples[s])
        classes = {
            _classify(observed.get(
                (row + k * stride,
                 (word + k * (n_words // COPIES)) % n_words),
                frozenset()), triple)
            for k in range(COPIES)}
        if len(classes) == 1:
            outcome = classes.pop()
            if outcome[0] != "dirty":
                outcomes.append((triple, outcome))
    return outcomes


def infer_ecc(chip, seed: int, max_rounds: int = 24) -> InferredEcc:
    """Infer the on-die code of ``chip`` from its miscorrections.

    The chip must carry a lens-mode :class:`repro.ecc.OnDieEcc` stage
    (inference observes *through* the ECC; there is no bypass).  Runs
    probe rounds until the relation rank reaches :data:`TARGET_RANK`,
    then extracts and canonicalises the nullspace.  Returns
    ``ok=False`` (never raises) when the budget runs out or the
    recovered basis is structurally invalid.
    """
    bank = chip.banks[0]
    if bank.ecc is None or bank.ecc.code is None:
        raise ValueError("BEER inference probes through the on-die ECC; "
                         "attach a lens-mode OnDieEcc stage first")
    if bank.n_rows < COPIES or bank.row_bits % 64:
        raise ValueError(f"BEER probing needs >= {COPIES} rows and "
                         "row_bits % 64 == 0")
    elim: Dict[int, int] = {}  # pivot bit -> eliminated relation mask
    relations = 0
    rounds = 0
    for round_idx in range(max_rounds):
        rounds += 1
        for triple, outcome in _paired_outcomes(chip, seed, round_idx):
            if outcome[0] != "flip":
                continue
            mask = 0
            for p in triple | {outcome[1]}:
                mask |= 1 << p
            relations += 1
            while mask:
                pivot = mask.bit_length() - 1
                if pivot in elim:
                    mask ^= elim[pivot]
                else:
                    elim[pivot] = mask
                    break
        if len(elim) >= TARGET_RANK:
            break
    if len(elim) != TARGET_RANK:
        return InferredEcc(basis=(), relations=relations, rounds=rounds,
                           ok=False,
                           note=f"relation rank {len(elim)} != "
                                f"{TARGET_RANK} after {rounds} rounds")
    basis, _ = _rref(_nullspace(elim.values()))
    inferred = InferredEcc(basis=basis, relations=relations,
                           rounds=rounds)
    if not inferred.structurally_valid():
        return InferredEcc(basis=basis, relations=relations,
                           rounds=rounds, ok=False,
                           note="structurally invalid basis")
    return inferred


def validate_inference(chip, inferred: InferredEcc, seed: int,
                       rounds: int = 2, min_checked: int = 16
                       ) -> EccInferenceReport:
    """Held-out behavioral validation of an inference.

    Runs fresh probe rounds and requires the recovered tables to
    predict every dual-slot-confirmed outcome exactly.  Fails closed:
    a structurally-invalid basis, too few confirmable slots, or a
    single mismatch all yield ``ok=False``.
    """
    if not inferred.ok or not inferred.structurally_valid():
        return EccInferenceReport(
            ok=False, reason=inferred.note or "structurally invalid",
            inferred=inferred)
    checked = mismatches = 0
    for round_idx in range(rounds):
        for triple, outcome in _paired_outcomes(
                chip, seed, "validate", round_idx):
            predicted = _classify(inferred.predict(triple), triple)
            checked += 1
            if predicted != outcome:
                mismatches += 1
    ok = mismatches == 0 and checked >= min_checked
    reason = ("" if ok else
              f"{mismatches}/{checked} held-out mismatches"
              if checked >= min_checked else
              f"only {checked} confirmable slots")
    return EccInferenceReport(ok=ok, checked=checked,
                              mismatches=mismatches, reason=reason,
                              inferred=inferred)

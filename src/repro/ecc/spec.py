"""Campaign specs that thread an on-die ECC stage into the substrate.

:class:`EccCampaignSpec` extends :class:`repro.runtime.specs.CampaignSpec`
with three modes:

* ``"null"`` - attach the ECC plumbing with the null code (0 check
  bits).  The transform is the identity, ``label``/``checkpoint_key``/
  ``trace_id`` stay byte-identical to the plain spec, and the CI
  differential gate asserts the whole campaign outcome is too.
* ``"lens"`` - the chips carry their vendor's secret
  :class:`repro.ecc.HammingSecDed` code and every retention read
  returns the post-correction view: the fig12/fig13-style analyses
  then quantify how many data-dependent failures on-die ECC hides.
* ``"recover"`` - BEER inference first recovers the code from a probe
  device of the same build (same ``(build_seed, vendor)`` ladder
  identity, so the same ECC circuit), validates it on held-out probe
  rounds, and - only if the
  :func:`repro.robust.integrity.check_ecc_inference` gate passes -
  un-distorts every read back to the raw error set.  A failed or
  chaos-corrupted inference degrades fail-closed: the campaign runs
  through the lens, every detection is quarantined
  (``"ecc-unrecovered"``) and the verdicts are flagged degraded
  (definite becomes probabilistic), never silently wrong.

The probe device is rebuilt from its own ladder seed so probing never
perturbs the campaign chips' sequential RNG streams - the recovered
campaign stays byte-comparable to the ECC-off ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .. import obs
from ..robust.integrity import check_ecc_inference
from ..runtime.chaos import ECC_FAULT_KINDS, corrupt_inferred_ecc
from ..runtime.seeds import ladder_seed
from ..runtime.specs import CampaignOutcome, CampaignSpec
from .beer import infer_ecc, validate_inference
from .ondie import attach_on_die_ecc
from .secded import HammingSecDed

__all__ = ["EccCampaignSpec", "EccDistortion", "ecc_distortion",
           "format_distortion", "ECC_MODES"]

ECC_MODES = ("null", "lens", "recover")


@dataclass(frozen=True)
class EccCampaignSpec(CampaignSpec):
    """A campaign spec whose chips carry an on-die ECC stage.

    Attributes:
        ecc: ``"null"`` | ``"lens"`` | ``"recover"`` (see module doc).
        ecc_fault: optional chaos fault corrupting the BEER inference
            (one of :data:`repro.runtime.chaos.ECC_FAULT_KINDS`;
            ``"recover"`` mode only).
    """

    ecc: str = "lens"
    ecc_fault: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ecc not in ECC_MODES:
            raise ValueError(f"unknown ecc mode {self.ecc!r}; "
                             f"expected one of {ECC_MODES}")
        if self.ecc_fault:
            if self.ecc_fault not in ECC_FAULT_KINDS:
                raise ValueError(
                    f"unknown ecc fault {self.ecc_fault!r}; expected "
                    f"one of {ECC_FAULT_KINDS}")
            if self.ecc != "recover":
                raise ValueError("ecc faults corrupt the inference and "
                                 "only apply to ecc='recover'")

    # -- identity -----------------------------------------------------

    def label(self) -> str:
        suffix = {"lens": "+ecc", "recover": "+ecc-recover"}
        return super().label() + suffix.get(self.ecc, "")

    def _identity_extras(self) -> Tuple:
        # The null code measures exactly what the plain spec measures:
        # no extras, so checkpoint keys (and outcome signatures) stay
        # byte-identical - the differential gate depends on this.
        if self.ecc == "null":
            return ()
        extras: Tuple = ("ecc", self.ecc)
        if self.ecc_fault:
            extras += ("ecc-fault", self.ecc_fault)
        return extras

    def trace_id(self) -> str:
        digest = ladder_seed(self.build_seed, "trace", self.experiment,
                             self.vendor, self.index, self.run_seed,
                             *self._identity_extras())
        return f"{self.label()}#{digest:016x}"

    # -- chip preparation ---------------------------------------------

    def code(self) -> Optional[HammingSecDed]:
        """The secret code this build's chips carry (None for null)."""
        if self.ecc == "null":
            return None
        return HammingSecDed.for_vendor(self.vendor, self.build_seed)

    def _prepare_chips(self, chips: List) -> None:
        code = self.code()
        recovery = None
        if self.ecc == "recover":
            recovery = self._recover_code(code)
        for chip in chips:
            attach_on_die_ecc(chip, code, recovery=recovery)

    def _recover_code(self, code: HammingSecDed):
        """BEER-infer the code on a probe device; gate fail-closed."""
        from ..dram.vendors import vendor as vendor_profile

        probe = vendor_profile(self.vendor).make_chip(
            seed=ladder_seed(self.build_seed, "ecc", "probe-chip"),
            n_rows=self.n_rows)
        attach_on_die_ecc(probe, code)
        inferred = infer_ecc(
            probe, seed=ladder_seed(self.run_seed, "beer", self.vendor))
        if self.ecc_fault:
            inferred = corrupt_inferred_ecc(
                inferred, self.ecc_fault,
                ladder_seed(self.run_seed, "ecc-fault"))
        report = validate_inference(
            probe, inferred,
            seed=ladder_seed(self.run_seed, "beer", "validate",
                             self.vendor))
        ok = check_ecc_inference(report, strict=False,
                                 context=self.label())
        object.__setattr__(self, "_ecc_degraded", not ok)
        return inferred if ok else None

    # -- degraded mode ------------------------------------------------

    def _dispatch(self) -> CampaignOutcome:
        outcome = super()._dispatch()
        if getattr(self, "_ecc_degraded", False):
            self._degrade(outcome)
        return outcome

    def _degrade(self, outcome: CampaignOutcome) -> None:
        """Fail closed after an unrecovered/corrupted inference.

        The campaign ran through the (distorted) lens; its detections
        cannot be trusted as raw-cell verdicts, so every one of them
        is quarantined and any robust verdicts are flagged degraded -
        :meth:`repro.robust.CellVerdicts.verdict` then caps cells at
        probabilistic instead of definite.
        """
        from ..robust.quarantine import QuarantineSet

        quarantine = outcome.quarantine or QuarantineSet()
        quarantine.update(sorted(outcome.detected), "ecc-unrecovered")
        outcome.quarantine = quarantine
        result = outcome.result
        if result is not None:
            result.quarantine = quarantine
            verdicts = getattr(result, "verdicts", None)
            if verdicts is not None:
                verdicts.degraded = True
        if obs.enabled():
            obs.event("ecc.degraded", label=self.label(),
                      detections=len(outcome.detected))
            obs.inc("profile.ecc.degraded")


# -- distortion analysis --------------------------------------------------

@dataclass
class EccDistortion:
    """How an ECC-lens campaign's view differs from the raw truth."""

    base_detected: int
    observed_detected: int
    hidden: int
    spurious: int
    base_distances: List[int]
    observed_distances: List[int]

    @property
    def hidden_fraction(self) -> float:
        if self.base_detected == 0:
            return 0.0
        return self.hidden / self.base_detected


def ecc_distortion(base: CampaignOutcome, ecc: CampaignOutcome
                   ) -> EccDistortion:
    """Compare an ECC-off ground-truth outcome with an ECC-on one.

    ``hidden`` counts raw failures the lens masked away, ``spurious``
    post-ECC detections with no raw counterpart (miscorrections the
    sweep caught).  For a successful ``"recover"`` outcome both are
    zero by construction.
    """
    raw = set(base.detected)
    observed = set(ecc.detected)
    return EccDistortion(
        base_detected=len(raw), observed_detected=len(observed),
        hidden=len(raw - observed), spurious=len(observed - raw),
        base_distances=list(base.distances),
        observed_distances=list(ecc.distances))


def format_distortion(dist: EccDistortion, base_label: str,
                      ecc_label: str) -> str:
    """Render the distortion comparison as a report table."""
    from ..analysis import format_table

    rows = [
        ["detected failures", str(dist.base_detected),
         str(dist.observed_detected)],
        ["hidden by ECC", "-",
         f"{dist.hidden} ({dist.hidden_fraction:.1%} of raw)"],
        ["spurious (miscorrections)", "-", str(dist.spurious)],
        ["distances", str(dist.base_distances),
         str(dist.observed_distances)],
    ]
    return format_table(["", base_label, ecc_label], rows)

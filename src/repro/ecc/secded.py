"""Bit-exact (72, 64) SECDED Hamming code over packed ``uint64`` words.

The code is represented by its parity-check matrix ``H``: one 8-bit
*column* per codeword position.  Construction (the classic
odd-weight-column / overall-parity SEC-DED):

* data position ``p`` gets column ``h_p | 0x80`` where ``h_p`` is a
  7-bit value of weight >= 2 (120 candidates exist: 127 nonzero values
  minus the 7 unit vectors);
* check position ``j < 7`` gets column ``(1 << j) | 0x80``;
* check position 7 gets column ``0x80`` - row 7 is the overall parity
  over all 72 bits.

All 72 columns are distinct and nonzero, so every single-bit error has
a unique syndrome (single-error correction).  Every column has bit 7
set, so any even-weight error has a syndrome with bit 7 clear and can
never match a column: double errors are always detected, never
(mis)corrected.  Odd-weight errors of three or more bits *can* land on
a data column - the miscorrection mechanism the on-die ECC lens
injects and the BEER probes exploit.

Two implementations are kept deliberately independent and tested
byte-identical: the packed path computes check bytes and syndromes
with word-wise masks over the ``repro._kernels`` ``uint64`` substrate,
while the reference path XORs ``H`` columns of set bits one by one.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import FrozenSet, Iterable, Tuple

import numpy as np

from .._kernels import popcount
from ..runtime.seeds import ladder_seed

__all__ = ["HammingSecDed", "decode_with_tables", "CANDIDATE_COLUMNS",
           "DATA_BITS", "CHECK_BITS", "CLEAN", "CORRECTED",
           "CORRECTED_CHECK", "DETECTED", "UNDETECTED", "MISCORRECTED",
           "NO_MATCH", "CHECK_COLUMN"]

DATA_BITS = 64
CHECK_BITS = 8
PARITY_BIT = 0x80  # syndrome bit 7: overall parity over all 72 bits

#: The 120 legal data columns: 7-bit values of weight >= 2, ascending.
CANDIDATE_COLUMNS: Tuple[int, ...] = tuple(
    v for v in range(1, 128) if bin(v).count("1") >= 2)

# Decode statuses (per word).
CLEAN = 0            # syndrome zero, nothing stored was wrong
CORRECTED = 1        # syndrome matched a data column that was in error
CORRECTED_CHECK = 2  # syndrome matched a check column (data untouched)
DETECTED = 3         # nonzero syndrome matched nothing: flagged, no fix
UNDETECTED = 4       # errors present but syndrome zero: silent escape
MISCORRECTED = 5     # syndrome matched a *healthy* data bit and flipped it

# Syndrome-lookup sentinels.
NO_MATCH = -1
CHECK_COLUMN = -2

_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def decode_with_tables(errors: FrozenSet[int], columns: Tuple[int, ...],
                       lookup: np.ndarray) -> Tuple[FrozenSet[int], int]:
    """Decode one word given only its *data-bit error positions*.

    In this failure model the stored check bits never decay (see
    ``docs/ECC.md``), so the received syndrome is a pure function of
    the data-bit error pattern: the XOR of the ``H`` columns of the
    failed positions.  Returns the post-correction error set - the
    positions where the word the controller sees still differs from
    what was written - plus the decode status.

    Works for the true code's tables and for the recovered tables of a
    BEER inference alike (the two are row-equivalent, which preserves
    both ``syndrome == 0`` and column matches, so the predicted decoder
    action is identical - see :mod:`repro.ecc.beer`).
    """
    syndrome = 0
    for p in errors:
        syndrome ^= columns[p]
    if syndrome == 0:
        return errors, (CLEAN if not errors else UNDETECTED)
    match = int(lookup[syndrome])
    if match >= 0:
        if match in errors:
            return errors - {match}, CORRECTED
        return errors | {match}, MISCORRECTED
    if match == CHECK_COLUMN:
        return errors, CORRECTED_CHECK
    return errors, DETECTED


@dataclass(frozen=True)
class HammingSecDed:
    """A concrete (72, 64) SEC-DED code instance.

    Attributes:
        data_columns: the 64 full 8-bit ``H`` columns of the data
            positions, in position order.  Each is ``h | 0x80`` with
            ``h`` a distinct member of :data:`CANDIDATE_COLUMNS`.
    """

    data_columns: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.data_columns) != DATA_BITS:
            raise ValueError(f"need {DATA_BITS} data columns")
        if len(set(self.data_columns)) != DATA_BITS:
            raise ValueError("data columns must be distinct")
        for col in self.data_columns:
            if not col & PARITY_BIT:
                raise ValueError("data columns must set the parity bit")
            if bin(col & 0x7F).count("1") < 2:
                raise ValueError("data columns need low-7 weight >= 2")

    # -- constructors -------------------------------------------------

    @classmethod
    def standard(cls) -> "HammingSecDed":
        """The canonical instance: the 64 smallest candidates."""
        return cls(tuple(c | PARITY_BIT
                         for c in CANDIDATE_COLUMNS[:DATA_BITS]))

    @classmethod
    def for_vendor(cls, vendor: str, build_seed: int) -> "HammingSecDed":
        """The (secret) code a vendor's chips of one build carry.

        Real on-die ECC implementations differ per vendor and die
        revision; BEER exists because the matrix is proprietary.  The
        column choice is a seeded permutation pick of 64 of the 120
        candidates, a pure function of ``(build_seed, vendor)`` - the
        same ladder identity chip manufacturing uses, so every chip of
        a build shares one code and the BEER tests can compare the
        inferred matrix against this ground truth.
        """
        rng = np.random.default_rng(
            ladder_seed(build_seed, "ecc", "code", vendor))
        picks = rng.permutation(len(CANDIDATE_COLUMNS))[:DATA_BITS]
        return cls(tuple(CANDIDATE_COLUMNS[i] | PARITY_BIT
                         for i in sorted(picks.tolist())))

    # -- derived tables -----------------------------------------------

    @cached_property
    def check_columns(self) -> Tuple[int, ...]:
        """``H`` columns of the 8 check positions."""
        return tuple((1 << j) | PARITY_BIT for j in range(7)) + (
            PARITY_BIT,)

    @cached_property
    def row_masks(self) -> np.ndarray:
        """Per syndrome row, the ``uint64`` mask of covered data bits."""
        masks = np.zeros(CHECK_BITS, dtype=np.uint64)
        for p, col in enumerate(self.data_columns):
            for k in range(CHECK_BITS):
                if (col >> k) & 1:
                    masks[k] |= np.uint64(1 << p)
        return masks

    @cached_property
    def lookup(self) -> np.ndarray:
        """Syndrome byte -> data position, ``CHECK_COLUMN``, or
        ``NO_MATCH`` (256 entries; entry 0 is never consulted)."""
        table = np.full(256, NO_MATCH, dtype=np.int16)
        for p, col in enumerate(self.data_columns):
            table[col] = p
        for col in self.check_columns:
            table[col] = CHECK_COLUMN
        return table

    def matrix(self) -> np.ndarray:
        """``H`` as a dense 0/1 array of shape (8, 72)."""
        cols = np.array(self.data_columns + self.check_columns,
                        dtype=np.uint8)
        return ((cols[None, :] >> np.arange(CHECK_BITS)[:, None]) & 1
                ).astype(np.uint8)

    # -- packed paths (word-wise, vectorised) -------------------------

    def encode_words(self, words: np.ndarray) -> np.ndarray:
        """Check bytes for an array of 64-bit data words.

        ``c_k = parity(word & row_masks[k])`` for ``k < 7``; the
        overall-parity check bit closes row 7 over all 72 positions:
        ``c_7 = parity(word) ^ parity(c_0..c_6)``.
        """
        words = np.asarray(words, dtype=np.uint64)
        checks = np.zeros(words.shape, dtype=np.uint8)
        for k in range(7):
            bit = (popcount(words & self.row_masks[k])
                   & np.uint64(1)).astype(np.uint8)
            checks |= bit << np.uint8(k)
        total = (popcount(words) & np.uint64(1)).astype(np.uint8)
        c7 = (total + _POP8[checks]) & np.uint8(1)
        return checks | (c7 << np.uint8(7))

    def syndrome_words(self, words: np.ndarray, checks: np.ndarray
                       ) -> np.ndarray:
        """Received syndromes of stored (data word, check byte) pairs."""
        words = np.asarray(words, dtype=np.uint64)
        checks = np.asarray(checks, dtype=np.uint8)
        synd = np.zeros(words.shape, dtype=np.uint8)
        for k in range(7):
            data_par = (popcount(words & self.row_masks[k])
                        & np.uint64(1)).astype(np.uint8)
            stored = (checks >> np.uint8(k)) & np.uint8(1)
            synd |= (data_par ^ stored) << np.uint8(k)
        total = (popcount(words) & np.uint64(1)).astype(np.uint8)
        s7 = (total + _POP8[checks]) & np.uint8(1)
        return synd | (s7 << np.uint8(7))

    def decode_words(self, words: np.ndarray, checks: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """SEC-DED decode: corrected data words plus per-word status.

        Statuses are :data:`CLEAN` / :data:`CORRECTED` /
        :data:`CORRECTED_CHECK` / :data:`DETECTED`; the decoder cannot
        tell a miscorrection from a correction (that is the point), so
        :data:`MISCORRECTED` only appears in ground-truth-aware
        classification such as :meth:`decode_error_set`.
        """
        words = np.asarray(words, dtype=np.uint64)
        synd = self.syndrome_words(words, checks)
        status = np.where(synd == 0, CLEAN, DETECTED).astype(np.uint8)
        match = self.lookup[synd]
        data_fix = match >= 0
        status[data_fix] = CORRECTED
        status[match == CHECK_COLUMN] = CORRECTED_CHECK
        out = words.copy()
        if data_fix.any():
            out[data_fix] ^= np.uint64(1) << match[data_fix].astype(
                np.uint64)
        return out, status

    # -- reference path (column-by-column, independent) ---------------

    def encode_ref(self, bits: np.ndarray) -> np.ndarray:
        """Reference encode from dense 0/1 bit rows of shape (n, 64).

        Derives the check byte from the column representation alone:
        the data syndrome ``sd`` is the XOR of the columns of set data
        bits, and the check byte must cancel it - ``c_j = sd_j`` for
        ``j < 7`` and ``c_7 = sd_7 ^ parity(c_0..c_6)``.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        out = np.zeros(len(bits), dtype=np.uint8)
        for i, row in enumerate(bits):
            sd = 0
            for p in np.flatnonzero(row):
                sd ^= self.data_columns[int(p)]
            low = sd & 0x7F
            c7 = ((sd >> 7) ^ bin(low).count("1")) & 1
            out[i] = low | (c7 << 7)
        return out

    def decode_ref(self, bits: np.ndarray, checks: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Reference decode over dense 0/1 bit rows of shape (n, 64)."""
        bits = np.asarray(bits, dtype=np.uint8)
        out = bits.copy()
        status = np.zeros(len(bits), dtype=np.uint8)
        for i, row in enumerate(bits):
            syndrome = 0
            for p in np.flatnonzero(row):
                syndrome ^= self.data_columns[int(p)]
            c = int(checks[i])
            for j in range(CHECK_BITS):
                if (c >> j) & 1:
                    syndrome ^= self.check_columns[j]
            if syndrome == 0:
                status[i] = CLEAN
                continue
            match = int(self.lookup[syndrome])
            if match >= 0:
                out[i, match] ^= 1
                status[i] = CORRECTED
            elif match == CHECK_COLUMN:
                status[i] = CORRECTED_CHECK
            else:
                status[i] = DETECTED
        return out, status

    # -- error-set decode (the on-die lens primitive) -----------------

    def decode_error_set(self, errors: Iterable[int]
                         ) -> Tuple[FrozenSet[int], int]:
        """Post-correction view of one word's data-bit error set."""
        return decode_with_tables(frozenset(int(p) for p in errors),
                                  self.data_columns, self.lookup)

"""The campaign service daemon: ``repro serve``.

An asyncio daemon that accepts JSON campaign submissions over a unix
socket, shards them into the durable queue, and executes shards
through the existing :func:`~repro.runtime.fleet.run_fleet` machinery.
Robustness is the design center:

* **Admission control.**  The queue is bounded
  (``max_queued_targets``); a submission that would overflow it is
  rejected with a ``retry_after`` hint instead of growing memory
  without bound.  Rejections are counted (``proc.service.rejected``).
* **Fair-share scheduling.**  Shards are picked by the
  :class:`~repro.service.scheduler.FairShareScheduler`: least-served
  tenant first, then priority, then age - deterministic and
  starvation-free.
* **Crash safety.**  Every submission is journalled durably
  (fsync'd) *before* it is acknowledged, and every shard runs under a
  per-campaign :class:`~repro.runtime.resilience.CheckpointJournal`
  with ``fsync=True``.  A daemon killed mid-shard (SIGKILL, power
  loss) restarts, replays the queue journal, and re-runs exactly the
  unfinished shards - in ``resume="verify"`` mode the recovered
  outcomes are checked byte-identical against the journal
  (``tests/chaos/test_service_chaos.py``).
* **Shard retry.**  A shard whose fleet raises is retried with the
  deterministic seed-ladder backoff
  (:func:`~repro.runtime.resilience.backoff_delay`), then marked
  failed; a tenant that accumulates too many failed shards is
  degraded (parked shards, rejected submissions) instead of burning
  fleet capacity.
* **Graceful drain.**  SIGTERM (or the ``drain`` op) stops admission,
  finishes the in-flight shard, flushes the journals, and exits 0;
  queued shards stay durable for the next start.
* **Watchdogs.**  ``timeout_s`` passes through to ``run_fleet``'s
  per-target watchdog, so a hung target inside a shard is killed and
  retried, not waited on forever (requires ``jobs >= 2``; the serial
  in-thread path cannot arm ``SIGALRM``).

Lifecycle events flow through :mod:`repro.obs` as ``service.*`` events
and ``proc.service.*`` counters; on clean shutdown the session trace
is written to ``<state_dir>/service.trace.jsonl`` for ``repro
report``.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from .. import obs
from ..runtime.fleet import FleetResult, run_fleet
from ..runtime.resilience import (DEFAULT_BACKOFF_BASE,
                                  DEFAULT_BACKOFF_CAP,
                                  CheckpointJournal, backoff_delay)
from ..runtime.seeds import ladder_seed
from .protocol import (ProtocolError, campaign_id, error_response,
                       read_message, spec_from_json, write_message)
from .queue import (DEFAULT_SHARD_SIZE, CampaignState, DurableQueue,
                    Shard)
from .scheduler import FairShareScheduler

__all__ = ["ReproService", "ServiceConfig", "serve"]

QUEUE_FILE = "queue.jsonl"
TRACE_FILE = "service.trace.jsonl"

#: Initial per-target wall-clock estimate feeding ``retry_after``
#: hints, refined by an EWMA over completed shards.
INITIAL_TARGET_COST_S = 1.0


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to run.

    Attributes:
        socket_path: unix socket the daemon listens on.
        state_dir: durable state directory (queue journal, one fleet
            checkpoint per campaign, shutdown trace).
        jobs: worker processes per shard (``run_fleet`` fan-out).
        shard_size: targets per shard.
        max_queued_targets: admission bound; submissions that would
            exceed it are rejected with ``retry_after``.
        retries: per-target retry budget inside a shard.
        shard_retries: extra attempts for a shard whose fleet raised.
        timeout_s: per-target watchdog deadline (parallel shards).
        max_tenant_failures: failed shards a tenant may accumulate
            before being degraded (``None`` = never).
        fsync: fsync the queue and checkpoint journals per record.
        resume_mode: how a shard whose campaign checkpoint already
            exists (i.e. after a crash or for a later shard) treats
            the journal: ``True`` skips journaled targets,
            ``"verify"`` re-runs them and requires byte-identical
            signatures.
        backoff_base / backoff_cap: deterministic retry backoff.
    """

    socket_path: str
    state_dir: str
    jobs: int = 1
    shard_size: int = DEFAULT_SHARD_SIZE
    max_queued_targets: int = 64
    retries: int = 2
    shard_retries: int = 1
    timeout_s: Optional[float] = None
    max_tenant_failures: Optional[int] = None
    fsync: bool = True
    resume_mode: Union[bool, str] = "verify"
    backoff_base: float = DEFAULT_BACKOFF_BASE
    backoff_cap: float = DEFAULT_BACKOFF_CAP

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.max_queued_targets < 1:
            raise ValueError("max_queued_targets must be >= 1")
        if self.resume_mode not in (True, "verify"):
            raise ValueError('resume_mode must be True or "verify"')

    def trace_id(self) -> str:
        digest = ladder_seed(0, "service", self.state_dir)
        return f"service#{digest:016x}"


class ReproService:
    """One daemon instance (see the module docstring for semantics)."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.queue: Optional[DurableQueue] = None
        self.scheduler = FairShareScheduler(
            max_tenant_failures=config.max_tenant_failures)
        self._draining = False
        self._drain_reason = ""
        self._wake: Optional[asyncio.Event] = None
        self._settled: Optional[asyncio.Condition] = None
        self._target_cost = INITIAL_TARGET_COST_S

    # -- state helpers -----------------------------------------------------

    @property
    def state(self) -> str:
        return "draining" if self._draining else "running"

    def _ckpt_path(self, campaign: str) -> str:
        return os.path.join(self.config.state_dir, f"{campaign}.ckpt")

    def _retry_after(self, extra_targets: int) -> float:
        """How long until the queue likely has room for the rejected
        work: the pending backlog's estimated wall clock."""
        backlog = self.queue.pending_targets() if self.queue else 0
        estimate = (backlog * self._target_cost
                    / max(1, self.config.jobs))
        return max(0.5, min(estimate, 300.0))

    # -- shard execution ---------------------------------------------------

    def _run_shard(self, shard: Shard) -> FleetResult:
        """Execute one shard (called in a worker thread).

        The shard's targets run under the campaign's checkpoint
        journal with ``fsync``, so every completed target is durable
        before the next one starts; if the journal already exists
        (later shard, or restart after a kill) the configured
        ``resume_mode`` applies - ``"verify"`` re-runs journaled
        targets and requires byte-identical signatures.
        """
        ckpt = self._ckpt_path(shard.campaign)
        resume: Union[bool, str] = (self.config.resume_mode
                                    if os.path.exists(ckpt) else False)
        if resume:
            obs.inc("proc.service.resumed_shards")
        return run_fleet(
            shard.specs, jobs=self.config.jobs,
            retries=self.config.retries,
            timeout_s=self.config.timeout_s, checkpoint=ckpt,
            resume=resume, checkpoint_fsync=self.config.fsync,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap)

    async def _execute_shard(self, shard: Shard) -> None:
        campaign = self.queue.campaigns[shard.campaign]
        obs.event("service.shard_start", campaign=campaign.id,
                  shard=shard.index, tenant=campaign.tenant,
                  targets=len(shard.specs))
        attempt = 0
        started = time.monotonic()
        while True:
            attempt += 1
            try:
                await asyncio.to_thread(self._run_shard, shard)
            except Exception as exc:  # noqa: BLE001 - retried below
                if attempt <= self.config.shard_retries:
                    obs.event("service.shard_retry",
                              campaign=campaign.id, shard=shard.index,
                              attempt=attempt, error=repr(exc))
                    obs.inc("proc.service.shard_retries")
                    await asyncio.sleep(backoff_delay(
                        shard.specs[0], attempt,
                        self.config.backoff_base,
                        self.config.backoff_cap))
                    continue
                self.queue.mark_shard_failed(shard, repr(exc))
                obs.event("service.shard_failed",
                          campaign=campaign.id, shard=shard.index,
                          attempts=attempt, error=repr(exc))
                obs.inc("proc.service.shards_failed")
                self.scheduler.note_failure(campaign.tenant)
                break
            self.queue.mark_shard_done(shard)
            elapsed = time.monotonic() - started
            per_target = elapsed / max(1, len(shard.specs))
            self._target_cost = (0.7 * self._target_cost
                                 + 0.3 * per_target)
            obs.event("service.shard_done", campaign=campaign.id,
                      shard=shard.index, targets=len(shard.specs))
            obs.inc("proc.service.shards_done")
            obs.inc("proc.service.targets_done", len(shard.specs))
            obs.observe("service.shard_ms", elapsed * 1e3)
            break
        await self._settle(campaign)

    async def _settle(self, campaign: CampaignState) -> None:
        if campaign.settled and not campaign.done:
            self.queue.mark_campaign_done(campaign)
            obs.event("service.campaign_done", campaign=campaign.id,
                      failed_shards=campaign.failed_shards())
            obs.inc("proc.service.campaigns_done")
        async with self._settled:
            self._settled.notify_all()

    def _park_degraded(self) -> List[CampaignState]:
        """Fail pending shards of degraded tenants without running
        them; returns the campaigns whose state changed."""
        pending = self.queue.pending_shards()
        touched: Dict[str, CampaignState] = {}
        for shard in self.scheduler.degraded_shards(
                pending, self.queue.campaigns):
            self.queue.mark_shard_failed(shard, "tenant degraded")
            obs.inc("proc.service.parked_shards")
            touched[shard.campaign] = \
                self.queue.campaigns[shard.campaign]
        return list(touched.values())

    async def _work_loop(self) -> None:
        while not self._draining:
            for campaign in self._park_degraded():
                await self._settle(campaign)
            shard = self.scheduler.next_shard(
                self.queue.pending_shards(), self.queue.campaigns)
            if shard is None:
                self._wake.clear()
                if self._draining:
                    break
                await self._wake.wait()
                continue
            await self._execute_shard(shard)

    # -- request handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                message = read_message(line)
            except ProtocolError as exc:
                write_message(writer, error_response(str(exc)))
                return
            op = message.get("op")
            if op == "ping":
                write_message(writer, {"ok": True,
                                       "state": self.state})
            elif op == "submit":
                write_message(writer, self._op_submit(message))
            elif op == "status":
                write_message(writer, self._op_status(message))
            elif op == "results":
                await self._op_results(message, writer)
            elif op in ("drain", "shutdown"):
                self._begin_drain(op)
                write_message(writer, {"ok": True,
                                       "state": self.state})
            else:
                write_message(writer,
                              error_response(f"unknown op {op!r}"))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def _op_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        tenant = str(message.get("tenant", "default"))
        try:
            priority = int(message.get("priority", 0))
        except (TypeError, ValueError):
            return error_response("priority must be an integer")
        raw_specs = message.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            return error_response("specs must be a non-empty list")
        try:
            specs = [spec_from_json(s) for s in raw_specs]
        except ProtocolError as exc:
            return error_response(str(exc))

        cid = campaign_id(tenant, specs)
        existing = self.queue.campaigns.get(cid)
        if existing is not None:
            # Idempotent resubmission: attach, costs no admission.
            return {"ok": True, "campaign": existing.id,
                    "shards": len(existing.shards),
                    "targets": existing.targets,
                    "done": existing.done, "attached": True}

        if self._draining:
            rejection = error_response("service is draining",
                                       retry_after=self._retry_after(
                                           len(specs)))
        elif self.scheduler.tenant(tenant).degraded:
            rejection = error_response(f"tenant {tenant!r} is "
                                       f"degraded")
        elif (self.queue.pending_targets() + len(specs)
                > self.config.max_queued_targets):
            rejection = error_response(
                "queue full",
                retry_after=self._retry_after(len(specs)))
        else:
            rejection = None
        if rejection is not None:
            obs.event("service.rejected", tenant=tenant,
                      targets=len(specs),
                      error=rejection["error"])
            obs.inc("proc.service.rejected")
            return rejection

        campaign = self.queue.submit(tenant, priority, specs)
        obs.event("service.submit", campaign=campaign.id,
                  tenant=tenant, targets=campaign.targets,
                  shards=len(campaign.shards), priority=priority)
        obs.inc("proc.service.submitted")
        obs.inc("proc.service.submitted_targets", campaign.targets)
        self._wake.set()
        return {"ok": True, "campaign": campaign.id,
                "shards": len(campaign.shards),
                "targets": campaign.targets, "done": False}

    def _op_status(self, message: Dict[str, Any]) -> Dict[str, Any]:
        wanted = message.get("campaign")
        campaigns = [c.status() for c in
                     sorted(self.queue.campaigns.values(),
                            key=lambda c: c.seq)
                     if wanted is None or c.id == wanted]
        if wanted is not None and not campaigns:
            return error_response(f"unknown campaign {wanted!r}")
        session = obs.active()
        counters = (dict(session.metrics.counters)
                    if session is not None else {})
        return {"ok": True, "state": self.state,
                "campaigns": campaigns,
                "tenants": self.scheduler.status(),
                "pending_targets": self.queue.pending_targets(),
                "max_queued_targets": self.config.max_queued_targets,
                "corrupt_records": self.queue.corrupt_records,
                "counters": counters}

    async def _op_results(self, message: Dict[str, Any],
                          writer: asyncio.StreamWriter) -> None:
        cid = message.get("campaign")
        campaign = self.queue.campaigns.get(cid)
        if campaign is None:
            write_message(writer,
                          error_response(f"unknown campaign {cid!r}"))
            return
        if message.get("wait", True):
            async with self._settled:
                await self._settled.wait_for(
                    lambda: campaign.done or self._draining)
        if not campaign.done:
            write_message(writer, error_response(
                f"campaign {cid!r} incomplete "
                f"(service {self.state})"))
            return
        write_message(writer, {"ok": True, "campaign": campaign.id,
                               "targets": campaign.targets})
        journaled: Dict[str, Dict[str, Any]] = {}
        ckpt = self._ckpt_path(campaign.id)
        if os.path.exists(ckpt):
            journaled = {r["key"]: r
                         for r in CheckpointJournal.read(ckpt)}
        for spec in campaign.specs:  # submission order
            key = spec.checkpoint_key()
            entry = journaled.get(key)
            if entry is None:
                record = {"kind": "result", "label": spec.label(),
                          "key": key, "missing": True}
            else:
                record = {"kind": "result", "label": entry["label"],
                          "key": key,
                          "signature": entry["signature"]}
            write_message(writer, record)
            await writer.drain()
        write_message(writer, {
            "kind": "end", "campaign": campaign.id,
            "ok": not campaign.failed_shards(),
            "failed_shards": campaign.failed_shards()})

    # -- lifecycle ---------------------------------------------------------

    def _begin_drain(self, reason: str) -> None:
        if not self._draining:
            self._draining = True
            self._drain_reason = reason
            obs.event("service.drain", reason=reason)
            obs.inc("proc.service.drains")
        self._wake.set()
        # Unblock any `results --wait` clients so they see the drain.
        asyncio.get_event_loop().create_task(self._notify_settled())

    async def _notify_settled(self) -> None:
        async with self._settled:
            self._settled.notify_all()

    async def run(self) -> int:
        """Serve until drained; returns the process exit code."""
        config = self.config
        os.makedirs(config.state_dir, exist_ok=True)
        self._wake = asyncio.Event()
        self._settled = asyncio.Condition()
        self.queue = DurableQueue(
            os.path.join(config.state_dir, QUEUE_FILE),
            shard_size=config.shard_size, fsync=config.fsync)
        resumed = [c for c in self.queue.campaigns.values()
                   if not c.done]
        obs.event("service.start", socket=config.socket_path,
                  state_dir=config.state_dir, jobs=config.jobs,
                  resumed_campaigns=len(resumed))
        obs.inc("proc.service.starts")
        if resumed:
            obs.inc("proc.service.resumed_campaigns", len(resumed))
            self._wake.set()

        if os.path.exists(config.socket_path):
            os.unlink(config.socket_path)  # stale socket from a kill
        server = await asyncio.start_unix_server(
            self._handle, path=config.socket_path)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self._begin_drain,
                    signal.Signals(signum).name.lower())
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without support
        try:
            await self._work_loop()
        finally:
            server.close()
            await server.wait_closed()
            self.queue.close()
            try:
                os.unlink(config.socket_path)
            except OSError:
                pass
            obs.event("service.stop", reason=self._drain_reason
                      or "drained")
        return 0


def serve(config: ServiceConfig) -> int:
    """Run the daemon under an observability session (sync entry).

    The session collects the ``service.*`` events and
    ``proc.service.*`` counters for the daemon's whole lifetime; on a
    clean exit the trace lands in ``<state_dir>/service.trace.jsonl``
    for ``repro report``.  A killed daemon writes no trace - its
    story is the queue journal, which ``repro report --journal``
    renders.
    """
    from ..obs.trace import write_jsonl

    with obs.session(config.trace_id(), label="service") as sess:
        code = asyncio.run(ReproService(config).run())
        records = sess.export_records()
    os.makedirs(config.state_dir, exist_ok=True)
    write_jsonl(os.path.join(config.state_dir, TRACE_FILE), records)
    return code

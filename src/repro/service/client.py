"""Synchronous client for the campaign service.

Thin by design: one connection per request, line-framed JSON both
ways (see :mod:`repro.service.protocol`).  The CLI (``repro submit``,
``repro status``) and the test/benchmark harnesses all go through
these helpers, so the daemon is only ever exercised over its real
wire protocol.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..runtime.specs import CampaignSpec
from .protocol import (ProtocolError, read_message, spec_to_json,
                       write_message)

__all__ = [
    "ServiceError", "ServiceRejected", "drain", "ping", "request",
    "status", "stream", "submit", "wait_for_service", "wait_results",
]

DEFAULT_TIMEOUT_S = 120.0


class ServiceError(RuntimeError):
    """The service answered ``ok: false`` (or not at all)."""

    def __init__(self, message: str, response: Optional[Dict[str, Any]]
                 = None) -> None:
        super().__init__(message)
        self.response = response or {}


class ServiceRejected(ServiceError):
    """An admission-control rejection; carries the retry hint."""

    @property
    def retry_after(self) -> float:
        return float(self.response.get("retry_after", 0.0))


def _connect(socket_path: str, timeout: float) -> socket.socket:
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(timeout)
    conn.connect(socket_path)
    return conn


def stream(socket_path: str, message: Dict[str, Any],
           timeout: float = DEFAULT_TIMEOUT_S
           ) -> Iterator[Dict[str, Any]]:
    """Send one request and yield every response line."""
    with _connect(socket_path, timeout) as conn:
        with conn.makefile("rw", encoding="utf-8") as stream_fh:
            write_message(stream_fh, message)
            for line in stream_fh:
                try:
                    yield read_message(line)
                except ProtocolError:
                    return  # daemon died mid-stream; partial is partial


def request(socket_path: str, message: Dict[str, Any],
            timeout: float = DEFAULT_TIMEOUT_S) -> Dict[str, Any]:
    """Send one request, return its single response.

    Raises :class:`ServiceRejected` when the response carries a
    ``retry_after`` hint, :class:`ServiceError` for any other
    ``ok: false`` answer or a connection that closed without one.
    """
    for response in stream(socket_path, message, timeout=timeout):
        if response.get("ok", False):
            return response
        error = str(response.get("error", "request failed"))
        if response.get("retry_after"):
            raise ServiceRejected(error, response)
        raise ServiceError(error, response)
    raise ServiceError("service closed the connection without a "
                       "response")


def ping(socket_path: str,
         timeout: float = DEFAULT_TIMEOUT_S) -> Dict[str, Any]:
    return request(socket_path, {"op": "ping"}, timeout=timeout)


def submit(socket_path: str, specs: Sequence[CampaignSpec],
           tenant: str = "default", priority: int = 0,
           timeout: float = DEFAULT_TIMEOUT_S) -> Dict[str, Any]:
    message = {"op": "submit", "tenant": tenant,
               "priority": int(priority),
               "specs": [spec_to_json(s) for s in specs]}
    return request(socket_path, message, timeout=timeout)


def status(socket_path: str, campaign: Optional[str] = None,
           timeout: float = DEFAULT_TIMEOUT_S) -> Dict[str, Any]:
    message: Dict[str, Any] = {"op": "status"}
    if campaign is not None:
        message["campaign"] = campaign
    return request(socket_path, message, timeout=timeout)


def drain(socket_path: str,
          timeout: float = DEFAULT_TIMEOUT_S) -> Dict[str, Any]:
    return request(socket_path, {"op": "drain"}, timeout=timeout)


def wait_results(socket_path: str, campaign: str, wait: bool = True,
                 timeout: float = DEFAULT_TIMEOUT_S
                 ) -> Dict[str, Any]:
    """Collect a campaign's streamed results.

    Returns ``{"campaign", "results": [...], "end": {...}}`` where
    ``results`` holds one record per target in submission order.
    """
    message = {"op": "results", "campaign": campaign, "wait": wait}
    header: Optional[Dict[str, Any]] = None
    results: List[Dict[str, Any]] = []
    end: Optional[Dict[str, Any]] = None
    for response in stream(socket_path, message, timeout=timeout):
        if header is None:
            if not response.get("ok", False):
                error = str(response.get("error", "results failed"))
                if response.get("retry_after"):
                    raise ServiceRejected(error, response)
                raise ServiceError(error, response)
            header = response
        elif response.get("kind") == "result":
            results.append(response)
        elif response.get("kind") == "end":
            end = response
            break
    if header is None:
        raise ServiceError("service closed the connection without a "
                           "response")
    if end is None:
        raise ServiceError("result stream ended without an end "
                           "record", header)
    return {"campaign": header["campaign"], "results": results,
            "end": end}


def wait_for_service(socket_path: str, timeout: float = 30.0,
                     poll_s: float = 0.05) -> None:
    """Block until the daemon answers a ping (startup barrier)."""
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            ping(socket_path, timeout=max(poll_s, 1.0))
            return
        except (OSError, ServiceError) as exc:
            last = exc
            time.sleep(poll_s)
    raise TimeoutError(
        f"service at {socket_path} not up after {timeout:.0f}s: "
        f"{last!r}")

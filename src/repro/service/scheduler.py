"""Per-tenant fair-share + priority scheduling for the service.

The daemon serves many tenants from one machine; the scheduler decides
which pending shard runs next under three rules, applied in order:

1. **Fair share.**  Among tenants with pending work, the one that has
   been served the fewest *targets* goes first (weighted: a tenant
   with ``weight=2`` is charged half as fast, so it receives twice the
   share).  A tenant that floods the queue cannot starve the others -
   its backlog just waits behind every lighter tenant's next shard.
2. **Priority.**  Within a tenant, higher-priority campaigns run
   first.
3. **Age.**  Ties break by submission order, then shard index - FIFO,
   and fully deterministic: the schedule is a pure function of the
   submission history, never of wall clock or process layout.

The scheduler also owns the **tenant failure ledger**: every shard
that exhausts its retries charges its tenant, and a tenant that
exceeds ``max_tenant_failures`` is *degraded* - its queued shards are
parked (marked failed without running) and new submissions are
rejected at admission, so one tenant's broken specs cannot burn the
fleet's capacity.  Mirrors ``run_fleet``'s per-target ``max_failures``
one level up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from .. import obs
from .queue import CampaignState, Shard

__all__ = ["FairShareScheduler", "TenantState"]


@dataclass
class TenantState:
    """One tenant's scheduling ledger."""

    name: str
    weight: float = 1.0
    served: float = 0.0  # weighted targets scheduled so far
    failures: int = 0
    degraded: bool = False

    def charge(self, targets: int) -> None:
        self.served += targets / max(self.weight, 1e-9)


@dataclass
class FairShareScheduler:
    """Deterministic fair-share/priority shard picker.

    Attributes:
        max_tenant_failures: failed shards a tenant may accumulate
            before being degraded (``None`` = never degrade).
        tenants: per-tenant ledgers, created on first sight.
    """

    max_tenant_failures: Optional[int] = None
    tenants: Dict[str, TenantState] = field(default_factory=dict)

    def tenant(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = self.tenants[name] = TenantState(name=name)
        return state

    def next_shard(self, pending: Sequence[Shard],
                   campaigns: Dict[str, CampaignState]
                   ) -> Optional[Shard]:
        """Pick the next shard to execute, or None when idle.

        ``pending`` is the queue's pending-shard list (already in
        submission order); ``campaigns`` resolves each shard's tenant,
        priority and submission sequence.
        """
        best: Optional[Shard] = None
        best_key = None
        for shard in pending:
            campaign = campaigns[shard.campaign]
            tenant = self.tenant(campaign.tenant)
            if tenant.degraded:
                continue
            key = (tenant.served, tenant.name, -campaign.priority,
                   campaign.seq, shard.index)
            if best_key is None or key < best_key:
                best, best_key = shard, key
        if best is not None:
            campaign = campaigns[best.campaign]
            self.tenant(campaign.tenant).charge(len(best.specs))
        return best

    def note_failure(self, tenant_name: str) -> bool:
        """Charge a shard failure; True if the tenant just degraded."""
        tenant = self.tenant(tenant_name)
        tenant.failures += 1
        if (not tenant.degraded
                and self.max_tenant_failures is not None
                and tenant.failures > self.max_tenant_failures):
            tenant.degraded = True
            obs.event("service.tenant_degraded", tenant=tenant_name,
                      failures=tenant.failures)
            obs.inc("proc.service.degraded_tenants")
            return True
        return False

    def degraded_shards(self, pending: Sequence[Shard],
                        campaigns: Dict[str, CampaignState]
                        ) -> Sequence[Shard]:
        """Pending shards owned by degraded tenants (to be parked)."""
        return [shard for shard in pending
                if self.tenant(campaigns[shard.campaign].tenant)
                .degraded]

    def status(self) -> Dict[str, Dict[str, object]]:
        return {name: {"served": round(state.served, 3),
                       "failures": state.failures,
                       "degraded": state.degraded}
                for name, state in sorted(self.tenants.items())}

"""Campaign-as-a-service: the crash-safe sharded fleet daemon.

``repro serve`` turns the deterministic fleet engine
(:mod:`repro.runtime`) into a long-running multi-tenant service:
submissions arrive as JSON over a unix socket, are sharded into a
durable CRC-checked queue, scheduled fair-share across tenants, and
executed through :func:`~repro.runtime.fleet.run_fleet` under fsync'd
checkpoint journals - so a daemon killed mid-shard restarts and
finishes with byte-identical results (verified, not assumed:
``resume="verify"``).  See ``docs/SERVICE.md`` for the protocol, the
shard lifecycle, and the failure matrix.

Layering: ``protocol`` (wire format, campaign identity, record CRCs)
-> ``queue`` (durable sharded journal) -> ``scheduler`` (fair-share +
degradation) -> ``daemon`` (asyncio service) -> ``client`` (sync
helpers used by the CLI and tests).
"""

from .client import (ServiceError, ServiceRejected, ping, status,
                     submit, wait_for_service, wait_results)
from .daemon import ReproService, ServiceConfig, serve
from .protocol import ProtocolError, campaign_id, spec_from_json, spec_to_json
from .queue import DurableQueue, Shard, partition_shards
from .scheduler import FairShareScheduler

__all__ = [
    "DurableQueue", "FairShareScheduler", "ProtocolError",
    "ReproService", "ServiceConfig", "ServiceError",
    "ServiceRejected", "Shard", "campaign_id", "partition_shards",
    "ping", "serve", "spec_from_json", "spec_to_json", "status",
    "submit", "wait_for_service", "wait_results",
]

"""Wire protocol of the campaign service: JSON Lines over a socket.

One connection carries one request and its response(s).  Every message
is a single JSON object on its own line (the same framing as the trace
and checkpoint files, so the whole system speaks one format):

* request: ``{"op": "submit" | "status" | "results" | "ping" |
  "drain" | "shutdown", ...}``;
* response: ``{"ok": true, ...}`` or ``{"ok": false, "error": "...",
  "retry_after": <seconds, when the request should be retried>}``;
* the ``results`` op streams: one ``{"kind": "result", ...}`` line per
  target in submission order, then ``{"kind": "end", ...}``.

Campaign specs cross the wire as plain JSON objects mirroring
:class:`~repro.runtime.specs.CampaignSpec`'s result-affecting fields.
``config`` overrides are deliberately not wire-expressible (a service
tenant names seeds and geometry, not internal thresholds); an optional
``chaos`` object reconstructs a
:class:`~repro.runtime.chaos.ChaosSpec` wrapper so the chaos suite can
drive fault injection through the full submission path.

Campaign identity is content-addressed: :func:`campaign_id` hashes the
tenant and the sorted checkpoint keys through the seed ladder, so
resubmitting the same work is idempotent - a client that crashed after
submitting can safely submit again and will be attached to the
existing campaign.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, List, Sequence

from ..runtime.seeds import ladder_seed
from ..runtime.specs import CampaignSpec

__all__ = [
    "PROTOCOL_SCHEMA", "ProtocolError", "campaign_id",
    "error_response", "read_message", "record_crc", "spec_from_json",
    "spec_to_json", "write_message",
]

PROTOCOL_SCHEMA = 1

#: Wire-expressible ``CampaignSpec`` fields and their types.  ``index``
#: et al. mirror the dataclass defaults so sparse submissions work.
SPEC_FIELDS: Dict[str, type] = {
    "experiment": str, "vendor": str, "index": int, "build_seed": int,
    "run_seed": int, "n_rows": int, "sample_size": int,
    "run_sweep": bool, "rounds": int,
}

MAX_MESSAGE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed or unserialisable protocol message."""


def spec_to_json(spec: CampaignSpec) -> Dict[str, Any]:
    """The wire form of a spec (chaos wrappers keep their plan)."""
    from ..runtime.chaos import ChaosSpec

    if spec.config is not None:
        raise ProtocolError(
            "config overrides are not wire-expressible; submit seeds "
            "and geometry only")
    payload: Dict[str, Any] = {
        name: getattr(spec, name) for name in SPEC_FIELDS
    }
    if isinstance(spec, ChaosSpec) and spec.chaos_dir:
        payload["chaos"] = {"plan": list(spec.plan),
                            "dir": spec.chaos_dir,
                            "hang_s": spec.hang_s}
    return payload


def spec_from_json(payload: Dict[str, Any]) -> CampaignSpec:
    """Rebuild a spec from its wire form (strict: no unknown keys)."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"spec must be an object, got "
                            f"{type(payload).__name__}")
    chaos = payload.get("chaos")
    unknown = set(payload) - set(SPEC_FIELDS) - {"chaos"}
    if unknown:
        raise ProtocolError(f"unknown spec fields: {sorted(unknown)}")
    if "experiment" not in payload or "vendor" not in payload:
        raise ProtocolError("spec needs at least experiment and vendor")
    kwargs: Dict[str, Any] = {}
    for name, kind in SPEC_FIELDS.items():
        if name not in payload:
            continue
        value = payload[name]
        if kind is bool:
            if not isinstance(value, bool):
                raise ProtocolError(f"spec field {name} must be a bool")
        elif kind is int:
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(f"spec field {name} must be an int")
        elif not isinstance(value, kind):
            raise ProtocolError(
                f"spec field {name} must be {kind.__name__}")
        kwargs[name] = value
    try:
        spec = CampaignSpec(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid spec: {exc}") from None
    if chaos is not None:
        from ..runtime.chaos import wrap_spec
        if not isinstance(chaos, dict) or "plan" not in chaos \
                or "dir" not in chaos:
            raise ProtocolError("chaos wrapper needs plan and dir")
        try:
            spec = wrap_spec(spec, tuple(chaos["plan"]),
                             str(chaos["dir"]),
                             hang_s=float(chaos.get("hang_s", 60.0)))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid chaos wrapper: {exc}") \
                from None
    return spec


def campaign_id(tenant: str, specs: Sequence[CampaignSpec]) -> str:
    """Content-addressed campaign identity.

    A pure function of (tenant, the set of checkpoint keys): the same
    submission always maps to the same campaign, which is what makes
    resubmission idempotent and crash-safe.  Submission *order* is
    deliberately excluded - the work is a set; the queue remembers the
    order separately for result delivery.
    """
    keys = sorted(spec.checkpoint_key() for spec in specs)
    digest = ladder_seed(0, "service-campaign", tenant, *keys)
    return f"c{digest:016x}"


# -- record checksums (durable queue) --------------------------------------


def record_crc(record: Dict[str, Any]) -> int:
    """CRC-32 of a record's canonical JSON form, sans the crc field.

    The durable queue stamps every record so a corrupted line (torn
    write, bit rot, hostile edit) is *detected* on replay instead of
    silently reconstructing wrong state - the queue-level analogue of
    the checkpoint journal's signature verification.
    """
    body = {k: v for k, v in record.items() if k != "crc"}
    canon = json.dumps(body, sort_keys=True).encode("utf-8")
    return zlib.crc32(canon) & 0xFFFFFFFF


# -- line framing ----------------------------------------------------------


def write_message(stream: Any, message: Dict[str, Any]) -> None:
    """Frame one message onto a writable text or asyncio stream."""
    line = json.dumps(message, sort_keys=True) + "\n"
    if hasattr(stream, "write") and hasattr(stream, "flush"):
        stream.write(line)
        stream.flush()
    else:  # asyncio.StreamWriter
        stream.write(line.encode("utf-8"))


def read_message(line: Any) -> Dict[str, Any]:
    """Decode one framed line (bytes or str) into a message dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_MESSAGE_BYTES:
            raise ProtocolError("message exceeds size limit")
        line = line.decode("utf-8")
    line = line.strip()
    if not line:
        raise ProtocolError("empty message")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON message: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def error_response(error: str, retry_after: float = 0.0
                   ) -> Dict[str, Any]:
    """The uniform rejection shape (retry_after == 0 means 'do not')."""
    response: Dict[str, Any] = {"ok": False, "error": error}
    if retry_after > 0:
        response["retry_after"] = round(retry_after, 3)
    return response

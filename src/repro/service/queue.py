"""Durable sharded work queue for the campaign service.

A submission (one tenant's list of campaign specs) is partitioned into
**shards** - fixed-size groups of targets keyed and ordered by
``CampaignSpec.checkpoint_key()`` - and the queue's whole lifecycle is
journalled to ``<state_dir>/queue.jsonl`` as append-only JSON Lines:

* header: ``{"kind": "service", "schema": 1}``;
* ``{"kind": "submit", "id", "tenant", "priority", "specs": [...]}`` -
  the full submission, so replay can rebuild every spec;
* ``{"kind": "shard_done" | "shard_failed", "id", "shard", ...}``;
* ``{"kind": "campaign_done", "id"}``.

Every record carries a CRC-32 (:func:`~.protocol.record_crc`) and is
flushed - and, by default, fsynced - as soon as it is written.  Replay
after a crash tolerates a truncated final line and *detects* corrupted
records: a record whose CRC disagrees is skipped and counted
(``proc.service.corrupt_records``) instead of silently reconstructing
wrong state.  Because shard membership is a pure function of the
submit record, losing a ``shard_done`` line merely re-runs that shard;
re-running is safe because shard execution is checkpointed and
verified (see :mod:`repro.service.daemon`).

Shard partitioning sorts by checkpoint key, so membership depends on
*what* was submitted, never on the order the client listed it in; the
submission order is kept separately for result delivery.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..runtime.specs import CampaignSpec
from .protocol import (PROTOCOL_SCHEMA, campaign_id, record_crc,
                       spec_from_json, spec_to_json)

__all__ = ["CampaignState", "DurableQueue", "Shard", "partition_shards"]

DEFAULT_SHARD_SIZE = 4


@dataclass
class Shard:
    """One schedulable unit: a key-ordered slice of a campaign."""

    campaign: str
    index: int
    specs: List[CampaignSpec]
    done: bool = False
    failed: bool = False
    error: str = ""

    @property
    def pending(self) -> bool:
        return not self.done and not self.failed


@dataclass
class CampaignState:
    """A submitted campaign and the state of its shards."""

    id: str
    tenant: str
    priority: int
    seq: int
    specs: List[CampaignSpec]
    shards: List[Shard] = field(default_factory=list)
    done: bool = False

    @property
    def targets(self) -> int:
        return len(self.specs)

    def pending_shards(self) -> List[Shard]:
        return [shard for shard in self.shards if shard.pending]

    def pending_targets(self) -> int:
        return sum(len(s.specs) for s in self.pending_shards())

    def failed_shards(self) -> List[int]:
        return [s.index for s in self.shards if s.failed]

    @property
    def settled(self) -> bool:
        """Every shard has a terminal state (done or failed)."""
        return not self.pending_shards()

    def status(self) -> Dict[str, Any]:
        return {
            "id": self.id, "tenant": self.tenant,
            "priority": self.priority, "targets": self.targets,
            "shards": len(self.shards),
            "shards_done": sum(1 for s in self.shards if s.done),
            "shards_failed": len(self.failed_shards()),
            "done": self.done,
        }


def partition_shards(campaign: str, specs: Sequence[CampaignSpec],
                     shard_size: int = DEFAULT_SHARD_SIZE
                     ) -> List[Shard]:
    """Split a campaign into checkpoint-key-ordered shards.

    Sorting by key before chunking makes shard membership a pure
    function of the submitted *work*, so a replayed journal, a
    resubmission, or a differently-ordered client all shard
    identically - which is what lets a restarted daemon re-run exactly
    the shards the dead one never finished.
    """
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    ordered = sorted(specs, key=lambda s: s.checkpoint_key())
    return [Shard(campaign=campaign, index=i // shard_size,
                  specs=list(ordered[i:i + shard_size]))
            for i in range(0, len(ordered), shard_size)]


class DurableQueue:
    """Crash-safe submission queue journalled as JSON Lines.

    All mutation goes through an append + flush(+fsync), so the
    on-disk journal is never behind the in-memory state by more than
    the record being written; a killed daemon replays the journal and
    resumes with at most one shard's execution (not its completed
    targets - those live in the fleet checkpoint) to redo.
    """

    def __init__(self, path: str, shard_size: int = DEFAULT_SHARD_SIZE,
                 fsync: bool = True) -> None:
        self.path = path
        self.shard_size = shard_size
        self.fsync = fsync
        self.campaigns: Dict[str, CampaignState] = {}
        self.corrupt_records = 0
        self._seq = 0
        existing = os.path.exists(path)
        if existing:
            self._replay()
        self._fh: Optional[Any] = open(path, "a")
        if not existing:
            self._append({"kind": "service",
                          "schema": PROTOCOL_SCHEMA})

    # -- journal plumbing --------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError("queue journal is closed")
        record = dict(record)
        record["crc"] = record_crc(record)
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def _replay(self) -> None:
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # truncated tail from an interrupted write
                if not isinstance(record, dict) \
                        or record_crc(record) != record.get("crc"):
                    self.corrupt_records += 1
                    obs.event("service.corrupt_record",
                              path=self.path)
                    obs.inc("proc.service.corrupt_records")
                    continue
                self._apply(record)

    def _apply(self, record: Dict[str, Any]) -> None:
        kind = record.get("kind")
        if kind == "service":
            if record.get("schema") != PROTOCOL_SCHEMA:
                raise ValueError(
                    f"{self.path}: unsupported service journal "
                    f"schema {record.get('schema')!r}")
        elif kind == "submit":
            specs = [spec_from_json(s) for s in record["specs"]]
            self._admit(record["id"], record["tenant"],
                        int(record["priority"]), specs)
        elif kind == "shard_done":
            campaign = self.campaigns.get(record["id"])
            if campaign is not None:
                campaign.shards[int(record["shard"])].done = True
        elif kind == "shard_failed":
            campaign = self.campaigns.get(record["id"])
            if campaign is not None:
                shard = campaign.shards[int(record["shard"])]
                shard.failed = True
                shard.error = str(record.get("error", ""))
        elif kind == "campaign_done":
            campaign = self.campaigns.get(record["id"])
            if campaign is not None:
                campaign.done = True

    def _admit(self, cid: str, tenant: str, priority: int,
               specs: List[CampaignSpec]) -> CampaignState:
        campaign = CampaignState(
            id=cid, tenant=tenant, priority=priority, seq=self._seq,
            specs=specs,
            shards=partition_shards(cid, specs, self.shard_size))
        self._seq += 1
        self.campaigns[cid] = campaign
        return campaign

    # -- queue interface ---------------------------------------------------

    def submit(self, tenant: str, priority: int,
               specs: Sequence[CampaignSpec]) -> CampaignState:
        """Admit a submission (idempotent) and journal it durably."""
        cid = campaign_id(tenant, specs)
        existing = self.campaigns.get(cid)
        if existing is not None:
            return existing  # content-addressed: same work, same id
        record = {"kind": "submit", "id": cid, "tenant": tenant,
                  "priority": int(priority),
                  "specs": [spec_to_json(s) for s in specs]}
        self._append(record)  # durable before visible
        return self._admit(cid, tenant, int(priority), list(specs))

    def mark_shard_done(self, shard: Shard) -> None:
        shard.done = True
        self._append({"kind": "shard_done", "id": shard.campaign,
                      "shard": shard.index})

    def mark_shard_failed(self, shard: Shard, error: str) -> None:
        shard.failed = True
        shard.error = error
        self._append({"kind": "shard_failed", "id": shard.campaign,
                      "shard": shard.index, "error": error})

    def mark_campaign_done(self, campaign: CampaignState) -> None:
        campaign.done = True
        self._append({"kind": "campaign_done", "id": campaign.id})

    def pending_targets(self) -> int:
        """Targets admitted but not yet in a terminal shard state."""
        return sum(c.pending_targets()
                   for c in self.campaigns.values())

    def pending_shards(self) -> List[Shard]:
        ordered: List[Shard] = []
        for campaign in sorted(self.campaigns.values(),
                               key=lambda c: c.seq):
            ordered.extend(campaign.pending_shards())
        return ordered

    def close(self) -> None:
        """Idempotent, signal-safe close (same pattern as the
        checkpoint journal's)."""
        fh, self._fh = self._fh, None
        if fh is None or fh.closed:
            return
        try:
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
            fh.close()
        except (OSError, ValueError):  # pragma: no cover - best effort
            pass

    def __enter__(self) -> "DurableQueue":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

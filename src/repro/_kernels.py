"""Process-wide switch between reference and vectorized kernels.

The hot paths of the DRAM substrate and the PARBOR pipeline exist in
two implementations:

* the **reference kernels** - the original straight-line loops the
  reproduction was seeded with.  They are kept verbatim as the
  executable specification of the serial path.
* the **vectorized kernels** (default) - batched numpy equivalents
  used by :mod:`repro.runtime` to make fleet campaigns fast.

Both produce bit-identical results (same failure coordinates, same
test counts, same RNG consumption); ``tests/runtime`` proves it
differentially.  The switch lives in this dependency-free module so
:mod:`repro.dram` and :mod:`repro.core` can consult it without
importing :mod:`repro.runtime` (which sits above them).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["reference_kernels_enabled", "use_reference_kernels",
           "reference_kernels"]

_REFERENCE = False


def reference_kernels_enabled() -> bool:
    """True when the original loop-based kernels are selected."""
    return _REFERENCE


def use_reference_kernels(enabled: bool) -> None:
    """Select reference (True) or vectorized (False) kernels."""
    global _REFERENCE
    _REFERENCE = bool(enabled)


@contextmanager
def reference_kernels(enabled: bool = True) -> Iterator[None]:
    """Temporarily select the reference kernels (context manager)."""
    global _REFERENCE
    previous = _REFERENCE
    _REFERENCE = bool(enabled)
    try:
        yield
    finally:
        _REFERENCE = previous

"""Kernel switch + the bit-packed word-wise substrate kernel library.

The hot paths of the DRAM substrate and the PARBOR pipeline exist in
two implementations:

* the **reference kernels** - the original straight-line loops the
  reproduction was seeded with.  They are kept verbatim as the
  executable specification of the serial path.
* the **packed kernels** (default) - the row state is bit-packed into
  little-endian ``uint64`` words and the write / decay / compare /
  extraction hot loops run as word-wise boolean algebra (XOR, AND,
  popcount) over those words.

**Equivalence invariant.** Both implementations produce bit-identical
results: the same failure coordinates, the same test counts, and the
same RNG consumption, for every campaign configuration.  Packing is a
pure change of representation - ``unpack_rows(pack_rows(x), n) == x``
for any 0/1 array - and every packed kernel in this module is the
word-wise image of a per-cell loop.  ``tests/runtime`` proves the
equivalence differentially (fixed seeds and hypothesis-generated bank
states, including row widths not divisible by 64); the contract - the
packed memory layout, the bit-order convention, and what future
backends must preserve - is documented in ``docs/KERNELS.md``.

The switch lives in this module, which depends only on numpy, so
:mod:`repro.dram` and :mod:`repro.core` can consult it without
importing :mod:`repro.runtime` (which sits above them).

Packed layout (see ``docs/KERNELS.md`` for the full contract):

* a row of ``n`` cells occupies ``packed_words(n)`` ``uint64`` words;
* physical cell ``p`` lives in bit ``p % 64`` of word ``p // 64``,
  least-significant bit first (``bitorder="little"``);
* the tail bits of the last word (positions ``>= n``) are always 0.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator, Tuple

import numpy as np

__all__ = [
    "reference_kernels_enabled", "use_reference_kernels",
    "reference_kernels",
    "WORD_BITS", "packed_words", "tail_mask", "pack_rows", "unpack_rows",
    "popcount", "gather_bits", "scatter_assign_bits", "scatter_flip_bits",
    "scatter_span_masks", "or_rows_masks", "clear_rows_masks",
    "diff_coords",
]

_REFERENCE = False


def reference_kernels_enabled() -> bool:
    """True when the original loop-based kernels are selected."""
    return _REFERENCE


def use_reference_kernels(enabled: bool) -> None:
    """Select reference (True) or packed (False) kernels."""
    global _REFERENCE
    _REFERENCE = bool(enabled)


@contextmanager
def reference_kernels(enabled: bool = True) -> Iterator[None]:
    """Temporarily select the reference kernels (context manager)."""
    global _REFERENCE
    previous = _REFERENCE
    _REFERENCE = bool(enabled)
    try:
        yield
    finally:
        _REFERENCE = previous


# -- packed representation ------------------------------------------------

#: Bits per storage word.  The whole packed layer is written against
#: 64-bit words; changing this would change the on-disk/bit layout.
WORD_BITS = 64

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)

#: ``np.packbits(bitorder="little")`` emits bytes whose reinterpretation
#: as ``uint64`` matches the layout only on little-endian hosts; the
#: shift-based fallback below keeps big-endian hosts correct (slower).
_LITTLE_ENDIAN = sys.byteorder == "little"

_BYTE_SHIFTS = (np.arange(8, dtype=np.uint64) * np.uint64(8))


def packed_words(n_bits: int) -> int:
    """Number of ``uint64`` words needed for ``n_bits`` cells."""
    return (int(n_bits) + WORD_BITS - 1) // WORD_BITS


def tail_mask(n_bits: int) -> np.uint64:
    """Mask of the valid bits in the *last* word of an ``n_bits`` row."""
    rem = int(n_bits) % WORD_BITS
    if rem == 0:
        return _ONES
    return np.uint64((1 << rem) - 1)


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Bit-pack 0/1 cell arrays into ``uint64`` words (LSB-first).

    The last axis is the cell axis; it is padded with zeros up to the
    next multiple of 64, so the tail-bits-are-zero invariant holds by
    construction.  Shape ``(..., n)`` -> ``(..., packed_words(n))``.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    n_bits = bits.shape[-1]
    n_w = packed_words(n_bits)
    pad = n_w * WORD_BITS - n_bits
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1)
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    if _LITTLE_ENDIAN:
        return packed_bytes.view(np.uint64)
    by = packed_bytes.astype(np.uint64).reshape(
        packed_bytes.shape[:-1] + (n_w, 8))
    return np.bitwise_or.reduce(by << _BYTE_SHIFTS, axis=-1)


def unpack_rows(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack ``uint64`` words back into 0/1 ``uint8`` cell arrays.

    Inverse of :func:`pack_rows`; shape ``(..., n_words)`` ->
    ``(..., n_bits)``.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if _LITTLE_ENDIAN:
        by = words.view(np.uint8)
    else:
        by = ((words[..., None] >> _BYTE_SHIFTS) & np.uint64(0xFF)).astype(
            np.uint8).reshape(words.shape[:-1] + (words.shape[-1] * 8,))
    return np.unpackbits(by, axis=-1, count=int(n_bits), bitorder="little")


if hasattr(np, "bitwise_count"):
    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word population count (number of charged cells)."""
        return np.bitwise_count(words)
else:  # numpy < 2.0
    _POP8 = np.array([bin(i).count("1") for i in range(256)],
                     dtype=np.uint8)

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word population count (number of charged cells)."""
        words = np.ascontiguousarray(words, dtype=np.uint64)
        by = words.view(np.uint8) if _LITTLE_ENDIAN else words
        if not _LITTLE_ENDIAN:
            return sum(_POP8[(words >> s) & np.uint64(0xFF)]
                       for s in _BYTE_SHIFTS).astype(np.uint64)
        counts = _POP8[by].reshape(words.shape + (8,))
        return counts.sum(axis=-1, dtype=np.uint64)


# -- single-bit gather / scatter ------------------------------------------


def gather_bits(words: np.ndarray, row_idx: np.ndarray,
                cols: np.ndarray) -> np.ndarray:
    """Read individual cells from packed rows.

    Word-wise image of ``dense[row_idx, cols]`` on the unpacked array.

    Args:
        words: packed rows, shape ``(n_rows, n_words)``, C-contiguous.
        row_idx / cols: equal-length coordinate arrays (bit positions).

    Returns:
        ``uint8`` 0/1 array of the addressed cells.
    """
    n_words = words.shape[1]
    flat = words.reshape(-1)
    idx = row_idx * n_words + (cols >> 6)
    shifts = (cols & 63).astype(np.uint8)
    return ((flat[idx] >> shifts) & _ONE).astype(np.uint8)


def _grouped_reduce(flat: np.ndarray, idx: np.ndarray,
                    masks: np.ndarray, op: str) -> None:
    """Combine duplicate-index masks with ``op`` and apply to ``flat``.

    Sort-and-``reduceat`` replacement for ``np.<op>.at`` (which is an
    order of magnitude slower per element).  ``op`` is one of
    ``"or"`` (set bits), ``"andnot"`` (clear bits), ``"xor"`` (toggle
    bits; duplicate masks cancel pairwise, exactly like repeated
    ``^=``).
    """
    if not len(idx):
        return
    order = np.argsort(idx, kind="stable")
    idx = idx[order]
    masks = masks[order]
    starts = np.flatnonzero(np.concatenate(([True], idx[1:] != idx[:-1])))
    targets = idx[starts]
    if op == "or":
        flat[targets] |= np.bitwise_or.reduceat(masks, starts)
    elif op == "andnot":
        flat[targets] &= ~np.bitwise_or.reduceat(masks, starts)
    elif op == "xor":
        flat[targets] ^= np.bitwise_xor.reduceat(masks, starts)
    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown op {op!r}")


def _bit_masks(cols: np.ndarray) -> np.ndarray:
    return _ONE << (cols & 63).astype(np.uint64)


def scatter_assign_bits(words: np.ndarray, row_idx: np.ndarray,
                        cols: np.ndarray, values) -> None:
    """Write individual cells of packed rows (in place).

    Word-wise image of ``dense[row_idx, cols] = values``: on duplicate
    coordinates the *last* occurrence wins, exactly like numpy fancy
    assignment.  ``values`` may be a scalar or a per-cell 0/1 array.
    """
    if not len(row_idx):
        return
    n_words = words.shape[1]
    values = np.broadcast_to(np.asarray(values, dtype=np.uint8),
                             row_idx.shape)
    flat_bit = row_idx * (n_words * WORD_BITS) + cols
    order = np.argsort(flat_bit, kind="stable")
    fb = flat_bit[order]
    last = np.empty(len(fb), dtype=bool)
    last[-1] = True
    last[:-1] = fb[1:] != fb[:-1]
    sel = order[last]
    r, c, v = row_idx[sel], cols[sel], values[sel]
    idx = r * n_words + (c >> 6)
    masks = _bit_masks(c)
    flat = words.reshape(-1)
    setting = v == 1
    _grouped_reduce(flat, idx[setting], masks[setting], "or")
    _grouped_reduce(flat, idx[~setting], masks[~setting], "andnot")


def scatter_flip_bits(words: np.ndarray, row_idx: np.ndarray,
                      cols: np.ndarray) -> None:
    """Toggle individual cells of packed rows (in place).

    Word-wise image of ``np.bitwise_xor.at(dense, (row_idx, cols), 1)``:
    the retention-decay application - each flip *event* toggles its
    cell, so an even number of events on one cell cancels.
    """
    if not len(row_idx):
        return
    n_words = words.shape[1]
    idx = row_idx * n_words + (cols >> 6)
    _grouped_reduce(words.reshape(-1), idx, _bit_masks(cols), "xor")


def scatter_span_masks(block: np.ndarray, row_idx: np.ndarray,
                       word_idx: np.ndarray, masks: np.ndarray,
                       set_bits: np.ndarray) -> None:
    """Apply sparse per-span word masks to packed rows (in place).

    The span-write kernel: span ``i`` covers the bits of
    ``masks[i, :]`` at words ``word_idx[i, :]`` of row ``row_idx[i]``,
    which are set where ``set_bits[i]`` and cleared otherwise.
    Zero-mask entries are no-ops, so span plans may be padded to a
    rectangular ``(n_spans, k)`` shape (see
    ``AddressMapping.region_masks_sparse``).  Spans on the same row
    must agree on ``set_bits`` wherever their masks overlap - the
    set/clear passes are not ordered against each other.
    """
    if not len(row_idx):
        return
    n_words = block.shape[1]
    idx = row_idx[:, None] * n_words + word_idx
    sel = np.broadcast_to(set_bits[:, None], idx.shape)
    flat = block.reshape(-1)
    _grouped_reduce(flat, idx[sel], masks[sel], "or")
    inv = ~sel
    _grouped_reduce(flat, idx[inv], masks[inv], "andnot")


# -- whole-word row updates -----------------------------------------------


def or_rows_masks(block: np.ndarray, row_idx: np.ndarray,
                  masks: np.ndarray) -> None:
    """``block[r] |= mask`` for each (row, full-row mask) pair.

    Duplicate rows are combined first (OR is idempotent), so the cost
    is one pass regardless of how many masks target the same row.
    ``masks`` has shape ``(k, n_words)``.
    """
    if not len(row_idx):
        return
    order = np.argsort(row_idx, kind="stable")
    r = row_idx[order]
    m = masks[order]
    starts = np.flatnonzero(np.concatenate(([True], r[1:] != r[:-1])))
    block[r[starts]] |= np.bitwise_or.reduceat(m, starts, axis=0)


def clear_rows_masks(block: np.ndarray, row_idx: np.ndarray,
                     masks: np.ndarray) -> None:
    """``block[r] &= ~mask`` for each (row, full-row mask) pair."""
    if not len(row_idx):
        return
    order = np.argsort(row_idx, kind="stable")
    r = row_idx[order]
    m = masks[order]
    starts = np.flatnonzero(np.concatenate(([True], r[1:] != r[:-1])))
    block[r[starts]] &= ~np.bitwise_or.reduceat(m, starts, axis=0)


# -- readback compare -----------------------------------------------------


def diff_coords(a: np.ndarray, b: np.ndarray, n_bits: int
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Readback compare: coordinates where two packed states differ.

    Word-wise image of ``np.nonzero(unpack(a) != unpack(b))``: XOR the
    words, mask the tail, and expand only the nonzero words back into
    bit coordinates.  Both inputs have shape ``(n_rows, n_words)``;
    returns ``(row_idx, cols)`` sorted by (row, col).
    """
    x = a ^ b
    if x.shape[-1]:
        x[..., -1] &= tail_mask(n_bits)
    nz_r, nz_w = np.nonzero(x)
    empty = np.empty(0, dtype=np.int64)
    if not len(nz_r):
        return empty, empty
    vals = x[nz_r, nz_w]
    bits = unpack_rows(vals[:, None], WORD_BITS)
    hit_i, hit_b = np.nonzero(bits)
    return (nz_r[hit_i].astype(np.int64),
            (nz_w[hit_i] * WORD_BITS + hit_b).astype(np.int64))

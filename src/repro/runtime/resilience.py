"""Fault tolerance for fleet campaigns: checkpoints, deadlines, backoff.

Long fleet campaigns (the paper tests 144 chips) must survive partial
failure: a killed process, a hung worker, or an exhausted retry budget
should cost one target's progress, never the whole run.  This module
provides the pieces :func:`repro.runtime.fleet.run_fleet` composes:

* :class:`CheckpointJournal` - an append-only JSON Lines journal of
  completed outcomes, keyed by each spec's deterministic
  :meth:`~repro.runtime.specs.CampaignSpec.checkpoint_key`.  Every
  record is flushed as soon as its target completes, so a fleet killed
  mid-run resumes with the finished targets loaded from disk; in
  ``resume="verify"`` mode re-run results are checked byte-identical
  against the journal, which is how corrupted outcomes are caught.
* :func:`backoff_delay` - exponential backoff whose jitter comes from
  the SHA-256 seed ladder, so retry timing is itself a deterministic
  function of (spec identity, attempt number).
* :func:`deadline` - a ``SIGALRM``-based per-target deadline for the
  serial path (the parallel path's watchdog kills worker processes
  instead); exceeding it raises :class:`TargetTimeout`.
* :class:`TargetError` / :func:`render_degraded` - the per-target
  failure records a non-strict fleet carries instead of aborting, and
  the table that reports them.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import signal
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, TYPE_CHECKING

from .seeds import ladder_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .specs import CampaignOutcome, CampaignSpec

__all__ = [
    "CheckpointJournal", "CheckpointMismatch", "TargetError",
    "TargetTimeout", "backoff_delay", "deadline", "render_degraded",
]

CHECKPOINT_SCHEMA = 1

DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 30.0


class TargetTimeout(RuntimeError):
    """A target exceeded its per-target deadline."""

    def __init__(self, timeout_s: float) -> None:
        super().__init__(f"target exceeded its {timeout_s:g} s deadline")
        self.timeout_s = timeout_s


class CheckpointMismatch(RuntimeError):
    """A re-run outcome differs from the journaled one (corruption)."""

    def __init__(self, label: str) -> None:
        super().__init__(
            f"outcome for {label} does not match the checkpoint journal "
            f"(corrupted result or changed spec)")
        self.label = label


@dataclass
class TargetError:
    """One target's terminal failure in a non-strict fleet.

    Attributes:
        index: the target's position in the input spec list.
        label: ``spec.label()``.
        attempts: executions charged before giving up.
        kind: ``"exception"`` | ``"timeout"`` | ``"crash"`` |
            ``"corrupt"`` - the last failure's category.
        error: ``repr`` of the last failure.
    """

    index: int
    label: str
    attempts: int
    kind: str
    error: str


# -- deterministic backoff ------------------------------------------------


def backoff_delay(spec: "CampaignSpec", attempt: int,
                  base: float = DEFAULT_BACKOFF_BASE,
                  cap: float = DEFAULT_BACKOFF_CAP) -> float:
    """Delay before retry ``attempt`` (1-based) of ``spec``, seconds.

    Exponential (``base * 2**(attempt-1)``) with multiplicative jitter
    in ``[0.5, 1.5)`` drawn from the seed ladder, so the schedule is a
    pure function of (spec identity, attempt) - reproducible across
    processes and runs, yet decorrelated across targets.
    """
    if base <= 0 or attempt <= 0:
        return 0.0
    jitter = ladder_seed(spec.build_seed, "backoff", spec.experiment,
                         spec.vendor, spec.index, spec.run_seed,
                         attempt) / float(2 ** 63)
    return min(cap, base * (2 ** (attempt - 1)) * (0.5 + jitter))


# -- serial-path deadline -------------------------------------------------


@contextmanager
def deadline(timeout_s: Optional[float]) -> Iterator[None]:
    """Raise :class:`TargetTimeout` if the block runs past the deadline.

    Uses ``SIGALRM``/``setitimer``, so it only arms on platforms that
    have it and only from the main thread; elsewhere it is a no-op
    (the parallel path enforces deadlines by killing workers and never
    needs this).  ``None`` or non-positive timeouts disable it.
    """
    if (not timeout_s or timeout_s <= 0
            or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expired(signum: int, frame: Any) -> None:
        raise TargetTimeout(timeout_s)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- checkpoint journal ---------------------------------------------------


def signature_json(signature: Any) -> Any:
    """Canonical JSON form of ``CampaignOutcome.signature()``.

    Tuples become lists recursively, so a signature that round-tripped
    through the journal compares equal to a freshly computed one.
    """
    if isinstance(signature, (list, tuple)):
        return [signature_json(part) for part in signature]
    return signature


class CheckpointJournal:
    """Append-only JSON Lines journal of completed campaign outcomes.

    Format (one JSON object per line):

    * header: ``{"kind": "checkpoint", "schema": 1}``;
    * outcome: ``{"kind": "outcome", "key": <spec.checkpoint_key()>,
      "label": ..., "signature": <jsonable signature>, "payload":
      <base64(zlib(pickle(outcome)))>}``.

    Each record is written and flushed the moment its target
    completes, so a killed process loses at most the target it was
    executing.  Loading tolerates a truncated final line (the write
    the crash interrupted).  Recording a key that already exists
    verifies the new signature against the journaled one and raises
    :class:`CheckpointMismatch` on disagreement - the corruption
    detector behind ``resume="verify"``.

    ``fsync=True`` additionally fsyncs the journal after every append,
    so records survive power-loss-style kills (SIGKILL only loses
    unwritten *OS* buffers; a power cut loses the page cache too).
    The service daemon (:mod:`repro.service`) runs its journals in
    this mode; one fsync per completed *target* is bounded work that
    shrinks relative to campaign size, exactly like the flush.
    """

    def __init__(self, path: str, resume: bool = False,
                 fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._entries: Dict[str, Dict[str, Any]] = {}
        if resume and os.path.exists(path):
            self._read_existing()
            self._fh: Optional[Any] = open(path, "a")
        else:
            self._fh = open(path, "w")
            self._append({"kind": "checkpoint",
                          "schema": CHECKPOINT_SCHEMA})

    def _read_existing(self) -> None:
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # truncated tail from an interrupted write
                if record.get("kind") == "checkpoint":
                    if record.get("schema") != CHECKPOINT_SCHEMA:
                        raise ValueError(
                            f"{self.path}: unsupported checkpoint "
                            f"schema {record.get('schema')!r}")
                elif record.get("kind") == "outcome":
                    self._entries[record["key"]] = record

    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError("checkpoint journal is closed")
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def __len__(self) -> int:
        return len(self._entries)

    def has(self, spec: "CampaignSpec") -> bool:
        return spec.checkpoint_key() in self._entries

    def signature_matches(self, spec: "CampaignSpec",
                          outcome: "CampaignOutcome") -> bool:
        """Whether ``outcome`` is byte-identical to the journaled one."""
        entry = self._entries[spec.checkpoint_key()]
        return entry["signature"] == signature_json(outcome.signature())

    def outcome(self, spec: "CampaignSpec"
                ) -> Optional["CampaignOutcome"]:
        """The journaled outcome for ``spec``, or None."""
        entry = self._entries.get(spec.checkpoint_key())
        if entry is None:
            return None
        raw = zlib.decompress(base64.b64decode(entry["payload"]))
        return pickle.loads(raw)

    def record(self, spec: "CampaignSpec",
               outcome: "CampaignOutcome") -> None:
        """Journal a completed outcome (flushed immediately).

        An existing entry for the same key is verified instead of
        rewritten; a signature mismatch raises
        :class:`CheckpointMismatch`.
        """
        key = spec.checkpoint_key()
        if key in self._entries:
            if not self.signature_matches(spec, outcome):
                raise CheckpointMismatch(spec.label())
            return
        payload = base64.b64encode(
            zlib.compress(pickle.dumps(outcome,
                                       protocol=pickle.HIGHEST_PROTOCOL))
        ).decode("ascii")
        entry = {"kind": "outcome", "key": key, "label": spec.label(),
                 "signature": signature_json(outcome.signature()),
                 "payload": payload}
        self._entries[key] = entry
        self._append(entry)

    @staticmethod
    def read(path: str) -> List[Dict[str, Any]]:
        """Read a journal's outcome records without opening it to write.

        The read-only companion of ``resume=True``: ``repro report
        --journal`` uses it to inspect the journal of a *running*
        fleet, so it must neither create, truncate, nor append to the
        file.  Returns the ``{"kind": "outcome", ...}`` records in
        file order (payloads included), tolerating a truncated final
        line exactly like resume does; an unsupported schema still
        raises, because misreading a journal is worse than rejecting
        it.
        """
        records: List[Dict[str, Any]] = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # truncated tail from an in-flight write
                if record.get("kind") == "checkpoint":
                    if record.get("schema") != CHECKPOINT_SCHEMA:
                        raise ValueError(
                            f"{path}: unsupported checkpoint schema "
                            f"{record.get('schema')!r}")
                elif record.get("kind") == "outcome":
                    records.append(record)
        return records

    def close(self) -> None:
        """Flush and close the journal; idempotent and signal-safe.

        The handle is detached *before* it is touched, so a second
        call - including a re-entrant one from a signal handler that
        interrupted the first - sees None and returns immediately
        instead of double-closing.  Errors from the final flush are
        swallowed: close() runs on every exit path of ``run_fleet``
        (interrupts included) and must never mask the original
        exception; every record was already flushed when it was
        appended.
        """
        fh, self._fh = self._fh, None
        if fh is None or fh.closed:
            return
        try:
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
            fh.close()
        except (OSError, ValueError):  # pragma: no cover - best effort
            pass

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


# -- degraded-mode reporting ----------------------------------------------


def render_degraded(result: "Any") -> str:
    """Per-target status table for a (possibly) degraded fleet.

    Works off the result alone: successful outcomes are in submission
    order and each :class:`TargetError` carries its original index, so
    the input order is reconstructible without the spec list.
    """
    from ..analysis.tables import format_table

    errors = {error.index: error for error in result.errors}
    total = len(result.outcomes) + len(errors)
    successes = iter(result.outcomes)
    rows: List[List[object]] = []
    for index in range(total):
        error = errors.get(index)
        if error is not None:
            rows.append([error.label, f"failed ({error.kind})",
                         error.attempts, error.error])
        else:
            outcome = next(successes)
            rows.append([outcome.spec.label(), "ok", "", ""])
    table = format_table(["Target", "Status", "Attempts", "Error"], rows)
    tally = (f"{total - len(errors)}/{total} targets ok, "
             f"{len(errors)} failed")
    return f"degraded fleet: {tally}\n{table}"

"""Deterministic chaos harness for the fleet runtime.

Real memory-testing campaigns die in four characteristic ways: a
worker process crashes outright, a worker hangs past any useful
deadline, a transient infrastructure error surfaces as an exception,
and - nastiest - a run completes but returns a silently corrupted
result.  This module injects all four from a **seeded schedule**, so a
chaos run is exactly as reproducible as a clean one and the recovery
tests in ``tests/chaos`` can assert byte-identical outcomes.

A :class:`ChaosSpec` wraps a normal
:class:`~repro.runtime.specs.CampaignSpec` with an injection *plan*: a
tuple naming the fault to fire on each execution attempt (``""`` for a
clean attempt).  Attempt counting crosses process boundaries through a
counter file under ``chaos_dir``, because a crashed worker cannot
remember anything in memory.  Once the plan is exhausted the spec runs
clean, so a fleet whose ``retries`` budget covers the plan always
recovers - and because the wrapped spec's seeds are untouched, the
recovered outcome is identical to an unperturbed run.

:func:`chaos_schedule` derives a plan for every target from a root
seed via the SHA-256 seed ladder: same seed, same faults, regardless
of scheduling, ``--jobs``, or platform.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Sequence, Tuple

from .seeds import ladder_seed
from .specs import CampaignOutcome, CampaignSpec

__all__ = ["FAULT_KINDS", "ChaosError", "ChaosSpec", "chaos_schedule",
           "wrap_spec"]

FAULT_KINDS = ("crash", "hang", "transient", "corrupt")

CRASH_EXIT_CODE = 23


class ChaosError(RuntimeError):
    """An injected (deliberate) failure."""


@dataclass(frozen=True)
class ChaosSpec(CampaignSpec):
    """A campaign spec that injects scheduled faults when executed.

    Attributes:
        plan: fault to inject on each execution attempt (1-based);
            ``""`` means the attempt runs clean, and attempts beyond
            the plan always run clean.
        chaos_dir: directory holding the cross-process attempt
            counters (one file per spec); must exist.  An empty value
            disables injection entirely.
        hang_s: how long the ``"hang"`` fault sleeps.  Kept finite so
            an unwatched chaos run eventually fails loudly instead of
            stalling forever; a watchdog is expected to kill it first.

    The identity fields (seeds, geometry) are inherited unchanged, so
    ``label()``, ``checkpoint_key()`` and the outcome signature all
    match the wrapped spec's - a recovered chaos target is
    indistinguishable from a clean run of the original.
    """

    plan: Tuple[str, ...] = ()
    chaos_dir: str = ""
    hang_s: float = 60.0

    def __post_init__(self) -> None:
        super().__post_init__()
        for fault in self.plan:
            if fault and fault not in FAULT_KINDS:
                raise ValueError(f"unknown chaos fault {fault!r}; "
                                 f"expected one of {FAULT_KINDS}")

    def _counter_path(self) -> str:
        return os.path.join(self.chaos_dir,
                            self.checkpoint_key().replace(":", "_")
                            + ".attempts")

    def _next_attempt(self) -> int:
        """Increment and return this spec's execution count (1-based).

        The count lives on disk so it survives worker crashes; a spec
        never runs concurrently with itself, so plain read-then-write
        is race-free.
        """
        path = self._counter_path()
        try:
            with open(path) as fh:
                count = int(fh.read().strip() or 0)
        except FileNotFoundError:
            count = 0
        count += 1
        with open(path, "w") as fh:
            fh.write(str(count))
        return count

    def run(self) -> CampaignOutcome:
        if not self.chaos_dir:
            return super().run()
        attempt = self._next_attempt()
        fault = self.plan[attempt - 1] if attempt <= len(self.plan) else ""
        if fault == "crash":
            os._exit(CRASH_EXIT_CODE)  # simulates a segfaulting worker
        if fault == "hang":
            time.sleep(self.hang_s)
            raise ChaosError(f"injected hang survived {self.hang_s:g} s "
                             f"without a watchdog")
        if fault == "transient":
            raise ChaosError("injected transient fault")
        outcome = super().run()
        if fault == "corrupt":
            # A silently wrong result: plausible shape, different
            # signature.  Only checkpoint verification can catch it.
            outcome.distances = list(outcome.distances) + [9999]
        return outcome


def wrap_spec(spec: CampaignSpec, plan: Sequence[str], chaos_dir: str,
              hang_s: float = 60.0) -> ChaosSpec:
    """A :class:`ChaosSpec` carrying ``spec``'s identity plus ``plan``."""
    return ChaosSpec(
        experiment=spec.experiment, vendor=spec.vendor, index=spec.index,
        build_seed=spec.build_seed, run_seed=spec.run_seed,
        n_rows=spec.n_rows, sample_size=spec.sample_size,
        run_sweep=spec.run_sweep, config=spec.config, trace=spec.trace,
        plan=tuple(plan), chaos_dir=chaos_dir, hang_s=hang_s)


def chaos_schedule(seed: int, specs: Sequence[CampaignSpec],
                   chaos_dir: str,
                   faults: Sequence[str] = FAULT_KINDS,
                   max_faults_per_target: int = 2,
                   fault_rate: float = 0.75,
                   hang_s: float = 60.0) -> list:
    """Wrap ``specs`` with a seeded, scheduling-independent fault plan.

    Every draw comes from ``ladder_seed(seed, "chaos", <target
    identity>, ...)``, so the schedule depends only on the root seed
    and each target's identity - never on list order or process
    layout.

    Args:
        seed: chaos root seed.
        specs: targets to perturb.
        chaos_dir: scratch directory for the attempt counters.
        faults: fault kinds to draw from (e.g. exclude ``"crash"`` for
            in-process serial fleets, ``"corrupt"`` when no verifying
            checkpoint will catch it).
        max_faults_per_target: plan-length cap; keep it at or below
            the fleet's ``retries`` so recovery is guaranteed.
        fault_rate: probability (per plan slot) that a fault fires.
        hang_s: sleep length of injected hangs.

    Returns:
        One :class:`ChaosSpec` per input spec, in input order.
    """
    if not 0 <= fault_rate <= 1:
        raise ValueError("fault_rate must be in [0, 1]")
    if max_faults_per_target < 0:
        raise ValueError("max_faults_per_target must be non-negative")
    faults = tuple(faults)
    for fault in faults:
        if fault not in FAULT_KINDS:
            raise ValueError(f"unknown chaos fault {fault!r}")
    scale = float(2 ** 63)
    wrapped = []
    for spec in specs:
        identity = (spec.experiment, spec.vendor, spec.index,
                    spec.run_seed)
        plan = []
        for slot in range(max_faults_per_target):
            roll = ladder_seed(seed, "chaos", *identity, "fire",
                               slot) / scale
            if roll < fault_rate and faults:
                pick = ladder_seed(seed, "chaos", *identity, "kind",
                                   slot) % len(faults)
                plan.append(faults[pick])
            else:
                plan.append("")
        wrapped.append(wrap_spec(spec, plan, chaos_dir, hang_s=hang_s))
    return wrapped

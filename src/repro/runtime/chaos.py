"""Deterministic chaos harness for the fleet runtime.

Real memory-testing campaigns die in four characteristic ways: a
worker process crashes outright, a worker hangs past any useful
deadline, a transient infrastructure error surfaces as an exception,
and - nastiest - a run completes but returns a silently corrupted
result.  This module injects all four from a **seeded schedule**, so a
chaos run is exactly as reproducible as a clean one and the recovery
tests in ``tests/chaos`` can assert byte-identical outcomes.

A :class:`ChaosSpec` wraps a normal
:class:`~repro.runtime.specs.CampaignSpec` with an injection *plan*: a
tuple naming the fault to fire on each execution attempt (``""`` for a
clean attempt).  Attempt counting crosses process boundaries through a
counter file under ``chaos_dir``, because a crashed worker cannot
remember anything in memory.  Once the plan is exhausted the spec runs
clean, so a fleet whose ``retries`` budget covers the plan always
recovers - and because the wrapped spec's seeds are untouched, the
recovered outcome is identical to an unperturbed run.

:func:`chaos_schedule` derives a plan for every target from a root
seed via the SHA-256 seed ladder: same seed, same faults, regardless
of scheduling, ``--jobs``, or platform.

**Substrate chaos** perturbs the device instead of the process:
:class:`NoisySpec` attaches a seeded
:class:`~repro.dram.faults.DeviceNoiseModel` (VRT flips, marginal
cells, soft errors - optionally activating mid-campaign) to every bank
of the rebuilt chip, and :func:`device_noise_schedule` derives one
such spec per target from a root seed.  Combined with ``rounds > 1``
this drives the robustness invariant tests: the ``definite`` cells of
a noisy campaign match the noise-free profile, and every injected cell
ends in quarantine.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..dram.faults import DeviceNoiseModel, NoiseSpec
from .seeds import ladder_seed
from .specs import CampaignOutcome, CampaignSpec

__all__ = ["ECC_FAULT_KINDS", "FAULT_KINDS", "SERVICE_FAULT_KINDS",
           "ChaosError", "ChaosSpec", "NoisySpec", "ServiceFaultPlan",
           "apply_service_fault", "chaos_schedule",
           "corrupt_inferred_ecc", "corrupt_queue_record",
           "device_noise_schedule", "service_chaos_plan", "wrap_spec"]

FAULT_KINDS = ("crash", "hang", "transient", "corrupt")

#: On-die-ECC inference faults (see :func:`corrupt_inferred_ecc`):
#: ``stuck-syndrome`` zeroes one recovered parity-check row (a stuck
#: syndrome bit - structurally detectable: the basis loses rank),
#: ``wrong-matrix`` flips a single bit of one row (a plausible but
#: wrong inference - only behavioral validation can catch it).
ECC_FAULT_KINDS = ("stuck-syndrome", "wrong-matrix")

#: Service-level failure modes (see :func:`service_chaos_plan`):
#: ``kill-daemon`` takes the whole daemon down mid-shard,
#: ``hang-shard`` stalls one target past the shard watchdog,
#: ``corrupt-queue`` tampers with a durable queue record on disk.
SERVICE_FAULT_KINDS = ("kill-daemon", "hang-shard", "corrupt-queue")

CRASH_EXIT_CODE = 23


class ChaosError(RuntimeError):
    """An injected (deliberate) failure."""


@dataclass(frozen=True)
class ChaosSpec(CampaignSpec):
    """A campaign spec that injects scheduled faults when executed.

    Attributes:
        plan: fault to inject on each execution attempt (1-based);
            ``""`` means the attempt runs clean, and attempts beyond
            the plan always run clean.
        chaos_dir: directory holding the cross-process attempt
            counters (one file per spec); must exist.  An empty value
            disables injection entirely.
        hang_s: how long the ``"hang"`` fault sleeps.  Kept finite so
            an unwatched chaos run eventually fails loudly instead of
            stalling forever; a watchdog is expected to kill it first.

    The identity fields (seeds, geometry) are inherited unchanged, so
    ``label()``, ``checkpoint_key()`` and the outcome signature all
    match the wrapped spec's - a recovered chaos target is
    indistinguishable from a clean run of the original.
    """

    plan: Tuple[str, ...] = ()
    chaos_dir: str = ""
    hang_s: float = 60.0

    def __post_init__(self) -> None:
        super().__post_init__()
        for fault in self.plan:
            if fault and fault not in FAULT_KINDS:
                raise ValueError(f"unknown chaos fault {fault!r}; "
                                 f"expected one of {FAULT_KINDS}")

    def _counter_path(self) -> str:
        return os.path.join(self.chaos_dir,
                            self.checkpoint_key().replace(":", "_")
                            + ".attempts")

    def _next_attempt(self) -> int:
        """Increment and return this spec's execution count (1-based).

        The count lives on disk so it survives worker crashes.  The
        update must be write-to-temp + ``os.replace``: a worker can be
        SIGKILLed at any point (watchdog kill, pool-break collateral),
        and an in-place truncating rewrite killed between open and
        flush would leave an *empty* counter, rewinding the count and
        replaying already-fired faults until the retry budget drains.
        With the atomic replace a killed update merely loses its own
        increment - the count is monotonic, so a plan slot can never
        fire twice.
        """
        path = self._counter_path()
        try:
            with open(path) as fh:
                count = int(fh.read().strip() or 0)
        except (FileNotFoundError, ValueError):
            count = 0
        count += 1
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w") as fh:
            fh.write(str(count))
        os.replace(tmp, path)
        return count

    def run(self) -> CampaignOutcome:
        if not self.chaos_dir:
            return super().run()
        attempt = self._next_attempt()
        fault = self.plan[attempt - 1] if attempt <= len(self.plan) else ""
        if fault == "crash":
            os._exit(CRASH_EXIT_CODE)  # simulates a segfaulting worker
        if fault == "hang":
            time.sleep(self.hang_s)
            raise ChaosError(f"injected hang survived {self.hang_s:g} s "
                             f"without a watchdog")
        if fault == "transient":
            raise ChaosError("injected transient fault")
        outcome = super().run()
        if fault == "corrupt":
            # A silently wrong result: plausible shape, different
            # signature.  Only checkpoint verification can catch it.
            outcome.distances = list(outcome.distances) + [9999]
        return outcome


def wrap_spec(spec: CampaignSpec, plan: Sequence[str], chaos_dir: str,
              hang_s: float = 60.0) -> ChaosSpec:
    """A :class:`ChaosSpec` carrying ``spec``'s identity plus ``plan``."""
    return ChaosSpec(
        experiment=spec.experiment, vendor=spec.vendor, index=spec.index,
        build_seed=spec.build_seed, run_seed=spec.run_seed,
        n_rows=spec.n_rows, sample_size=spec.sample_size,
        run_sweep=spec.run_sweep, rounds=spec.rounds, config=spec.config,
        trace=spec.trace, plan=tuple(plan), chaos_dir=chaos_dir,
        hang_s=hang_s)


def chaos_schedule(seed: int, specs: Sequence[CampaignSpec],
                   chaos_dir: str,
                   faults: Sequence[str] = FAULT_KINDS,
                   max_faults_per_target: int = 2,
                   fault_rate: float = 0.75,
                   hang_s: float = 60.0) -> list:
    """Wrap ``specs`` with a seeded, scheduling-independent fault plan.

    Every draw comes from ``ladder_seed(seed, "chaos", <target
    identity>, ...)``, so the schedule depends only on the root seed
    and each target's identity - never on list order or process
    layout.

    Args:
        seed: chaos root seed.
        specs: targets to perturb.
        chaos_dir: scratch directory for the attempt counters.
        faults: fault kinds to draw from (e.g. exclude ``"crash"`` for
            in-process serial fleets, ``"corrupt"`` when no verifying
            checkpoint will catch it).
        max_faults_per_target: plan-length cap; keep it at or below
            the fleet's ``retries`` so recovery is guaranteed.
        fault_rate: probability (per plan slot) that a fault fires.
        hang_s: sleep length of injected hangs.

    Returns:
        One :class:`ChaosSpec` per input spec, in input order.
    """
    if not 0 <= fault_rate <= 1:
        raise ValueError("fault_rate must be in [0, 1]")
    if max_faults_per_target < 0:
        raise ValueError("max_faults_per_target must be non-negative")
    faults = tuple(faults)
    for fault in faults:
        if fault not in FAULT_KINDS:
            raise ValueError(f"unknown chaos fault {fault!r}")
    scale = float(2 ** 63)
    wrapped = []
    for spec in specs:
        identity = (spec.experiment, spec.vendor, spec.index,
                    spec.run_seed)
        plan = []
        for slot in range(max_faults_per_target):
            roll = ladder_seed(seed, "chaos", *identity, "fire",
                               slot) / scale
            if roll < fault_rate and faults:
                pick = ladder_seed(seed, "chaos", *identity, "kind",
                                   slot) % len(faults)
                plan.append(faults[pick])
            else:
                plan.append("")
        wrapped.append(wrap_spec(spec, plan, chaos_dir, hang_s=hang_s))
    return wrapped


def corrupt_inferred_ecc(inferred, kind: str, seed: int):
    """Corrupt a BEER inference result with a seeded ECC fault.

    Models the two failure modes of code recovery on real silicon: a
    stuck syndrome bit in the probe path (one parity-check row reads
    all-zero) and a subtly wrong recovered matrix (one bit off).  The
    campaign must never turn either into wrong definite verdicts - the
    validation gate has to catch both and degrade to quarantine, which
    is exactly what ``tests/chaos/test_ecc_chaos.py`` asserts.

    Returns a new :class:`repro.ecc.beer.InferredEcc`; the input is
    untouched (it is frozen).
    """
    import dataclasses

    if kind not in ECC_FAULT_KINDS:
        raise ValueError(f"unknown ecc fault {kind!r}; expected one "
                         f"of {ECC_FAULT_KINDS}")
    basis = list(inferred.basis)
    if not basis:
        return inferred
    row = ladder_seed(seed, "ecc-fault", "row") % len(basis)
    if kind == "stuck-syndrome":
        basis[row] = 0
    else:
        bit = ladder_seed(seed, "ecc-fault", "bit") % 64
        basis[row] ^= 1 << bit
    return dataclasses.replace(
        inferred, basis=tuple(basis),
        note=f"chaos:{kind}@row{row}")


# -- service-level chaos ---------------------------------------------------


@dataclass(frozen=True)
class ServiceFaultPlan:
    """One seeded service-level fault: what fires, and where.

    ``shard`` / ``target`` locate the victim in *checkpoint-key
    order* - the same pure-function shard layout the service's queue
    uses (:func:`repro.service.queue.partition_shards`) - so a plan
    names the identical victim on every replay, resubmission, or
    restart.
    """

    kind: str
    shard: int
    target: int

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ValueError(f"unknown service fault {self.kind!r}; "
                             f"expected one of {SERVICE_FAULT_KINDS}")


def service_chaos_plan(seed: int, n_targets: int, shard_size: int,
                       kinds: Sequence[str] = SERVICE_FAULT_KINDS
                       ) -> ServiceFaultPlan:
    """Draw one seeded service fault for a campaign of ``n_targets``.

    Every draw comes from ``ladder_seed(seed, "service-chaos", ...)``:
    same seed, same fault, same victim shard/target - regardless of
    platform or scheduling.  Distinct seeds move the fault around, so
    a test sweeping a handful of seeds exercises kills in different
    shards and positions.
    """
    if n_targets < 1:
        raise ValueError("n_targets must be >= 1")
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    kinds = tuple(kinds)
    for kind in kinds:
        if kind not in SERVICE_FAULT_KINDS:
            raise ValueError(f"unknown service fault {kind!r}")
    n_shards = (n_targets + shard_size - 1) // shard_size
    kind = kinds[ladder_seed(seed, "service-chaos", "kind")
                 % len(kinds)]
    shard = ladder_seed(seed, "service-chaos", "shard") % n_shards
    width = min(shard_size, n_targets - shard * shard_size)
    target = ladder_seed(seed, "service-chaos", "target") % width
    return ServiceFaultPlan(kind=kind, shard=shard, target=target)


def apply_service_fault(plan: ServiceFaultPlan,
                        specs: Sequence[CampaignSpec],
                        chaos_dir: str, shard_size: int,
                        hang_s: float = 60.0) -> list:
    """Arm a service fault by wrapping the plan's victim target.

    The victim (located in checkpoint-key order, mirroring the
    service's shard layout) is wrapped so its *first* execution
    realises the service-level failure:

    * ``kill-daemon`` -> a ``"crash"`` fault.  Under the daemon's
      in-process shard execution (``jobs=1``) the ``os._exit`` takes
      the whole daemon down mid-shard - the moral equivalent of a
      SIGKILL between two checkpoint appends, and exactly as
      deterministic as the seed.
    * ``hang-shard`` -> a ``"hang"`` fault: the target sleeps past
      the shard watchdog (requires the daemon to run shards with
      ``jobs >= 2``, where ``run_fleet``'s watchdog can kill it).
    * ``corrupt-queue`` targets the journal file, not a spec - use
      :func:`corrupt_queue_record`; the specs pass through unwrapped.

    The attempt counter in ``chaos_dir`` survives the daemon (put it
    inside the service's state dir), so after a restart the retry
    runs clean and recovery can be asserted byte-identical.

    Returns the specs in their input order, victim wrapped.
    """
    if plan.kind == "corrupt-queue":
        return list(specs)
    ordered = sorted(specs, key=lambda s: s.checkpoint_key())
    victim = ordered[plan.shard * shard_size + plan.target]
    fault = "crash" if plan.kind == "kill-daemon" else "hang"
    wrapped = wrap_spec(victim, (fault,), chaos_dir, hang_s=hang_s)
    return [wrapped if spec is victim else spec for spec in specs]


def corrupt_queue_record(path: str, seed: int,
                         kinds: Sequence[str] = ("shard_done",)
                         ) -> int:
    """Tamper with one seeded record of a service queue journal.

    Rewrites the victim line as still-valid JSON whose content no
    longer matches its CRC stamp (the signature of bit rot or a torn
    overwrite, as opposed to a truncated tail).  Replay must *detect*
    the mismatch and drop only that record; dropping a ``shard_done``
    merely re-runs the shard, which the checkpoint journal then
    verifies.

    Returns the zero-based line index that was corrupted.

    Raises ValueError when the journal holds no record of ``kinds``.
    """
    import json

    with open(path) as fh:
        lines = fh.read().splitlines()
    victims = []
    for idx, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("kind") in kinds:
            victims.append((idx, record))
    if not victims:
        raise ValueError(f"{path}: no record of kind {tuple(kinds)} "
                         f"to corrupt")
    pick = ladder_seed(seed, "service-chaos", "corrupt") % len(victims)
    idx, record = victims[pick]
    record["tampered"] = True  # content changes, stale CRC stays
    lines[idx] = json.dumps(record, sort_keys=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    os.replace(tmp, path)
    return idx


@dataclass(frozen=True)
class NoisySpec(CampaignSpec):
    """A campaign spec whose rebuilt chips carry injected device noise.

    Attributes:
        noise: the :class:`~repro.dram.faults.NoiseSpec` describing the
            injected populations; ``None`` (or an empty spec) runs
            clean, leaving the spec byte-equivalent to its base.
        noise_seed: root of the per-bank noise seed ladder.  Each bank
            gets its own :class:`~repro.dram.faults.DeviceNoiseModel`
            seeded by ``ladder_seed(noise_seed, "device-noise",
            chip, bank)``, so the injected cell set is a pure function
            of ``(noise_seed, geometry)`` - never of scheduling.

    The injected noise *does* change what the campaign measures, so it
    joins the checkpoint key (unlike :class:`ChaosSpec`'s process
    faults, which must not).
    """

    noise: Optional[NoiseSpec] = None
    noise_seed: int = 0

    def _identity_extras(self) -> Tuple:
        if self.noise is None or self.noise.empty:
            return ()
        return ("device-noise", repr(self.noise), self.noise_seed)

    def _prepare_chips(self, chips) -> None:
        if self.noise is None or self.noise.empty:
            return
        for chip_idx, chip in enumerate(chips):
            for bank_idx, bank in enumerate(chip.banks):
                bank.noise = DeviceNoiseModel(
                    self.noise, n_rows=bank.n_rows,
                    row_bits=bank.row_bits,
                    seed=ladder_seed(self.noise_seed, "device-noise",
                                     chip_idx, bank_idx))

    def injected_cells(self):
        """Ground truth: every injected cell as sweep coordinates.

        Rebuilds the per-bank noise models (cheap - position draws
        only) and maps their physical columns through each bank's
        address scrambling, yielding ``(chip, bank, row, sys_col)``
        tuples comparable with campaign detections.
        """
        from ..dram.vendors import make_module, vendor

        if self.noise is None or self.noise.empty:
            return set()
        if self.experiment == "characterize":
            chips = [vendor(self.vendor).make_chip(seed=self.build_seed,
                                                   n_rows=self.n_rows)]
        else:
            chips = list(make_module(self.vendor, self.index,
                                     seed=self.build_seed,
                                     n_rows=self.n_rows).chips)
        self._prepare_chips(chips)
        coords = set()
        for chip_idx, chip in enumerate(chips):
            for bank_idx, bank in enumerate(chip.banks):
                rows, phys = bank.noise.cells()
                sys_cols = bank.mapping.phys_to_sys()[phys]
                coords.update(
                    (chip_idx, bank_idx, int(r), int(c))
                    for r, c in zip(rows.tolist(), sys_cols.tolist()))
        return coords


def device_noise_schedule(seed: int, specs: Sequence[CampaignSpec],
                          noise: NoiseSpec,
                          rounds: Optional[int] = None) -> list:
    """Wrap ``specs`` with seeded device noise (substrate chaos).

    Every target keeps its own identity seeds; only the *noise* seed
    is drawn from the ladder (``ladder_seed(seed, "device-noise",
    <target identity>)``), so the injected populations depend on the
    root seed and the target - never on list order, ``--jobs``, or
    platform.

    Args:
        seed: noise root seed.
        specs: targets to perturb.
        noise: the population spec shared by every target (use
            ``active_after`` to arm the noise mid-campaign).
        rounds: optionally override every spec's repeat-and-vote
            rounds at the same time (``None`` keeps each spec's own).

    Returns:
        One :class:`NoisySpec` per input spec, in input order.
    """
    wrapped = []
    for spec in specs:
        identity = (spec.experiment, spec.vendor, spec.index,
                    spec.run_seed)
        wrapped.append(NoisySpec(
            experiment=spec.experiment, vendor=spec.vendor,
            index=spec.index, build_seed=spec.build_seed,
            run_seed=spec.run_seed, n_rows=spec.n_rows,
            sample_size=spec.sample_size, run_sweep=spec.run_sweep,
            rounds=spec.rounds if rounds is None else rounds,
            config=spec.config, trace=spec.trace, noise=noise,
            noise_seed=ladder_seed(seed, "device-noise", *identity)))
    return wrapped

"""Fleet-campaign execution engine.

:func:`run_fleet` runs a list of :class:`~repro.runtime.specs.CampaignSpec`
targets either serially (``jobs <= 1``) or across a
``ProcessPoolExecutor`` (``jobs > 1``), and guarantees that the two
paths produce **identical** outcomes:

* every target's randomness comes from seeds embedded in its spec, so
  scheduling order cannot leak into results;
* outcomes are keyed by submission index and returned in submission
  order, regardless of completion order;
* per-target statistics travel back with the outcome and are merged
  with :meth:`repro.dram.controller.TestStats.merge`, so the fleet's
  aggregate counters match a serial run exactly.

On top of that sits the resilience layer
(:mod:`repro.runtime.resilience`):

* **retries with deterministic backoff** - a target that raises is
  given ``retries`` more attempts, delayed by seed-ladder-jittered
  exponential backoff, so retry timing is as reproducible as the
  results;
* **checkpoints** - with ``checkpoint=...`` every completed outcome is
  journaled immediately; ``resume=True`` loads finished targets from
  the journal instead of re-running them, and ``resume="verify"``
  re-runs them and requires byte-identical signatures (catching
  silently corrupted results);
* **deadlines** - with ``timeout_s=...`` a hung worker is killed (or,
  serially, interrupted via ``SIGALRM``) and the target retried;
* **graceful degradation** - with ``strict=False`` a target that
  exhausts its budget becomes a :class:`TargetError` on the result
  instead of aborting the fleet (bounded by ``max_failures``);
* **crash isolation** - a dead worker poisons every outstanding future
  with ``BrokenProcessPool``; the innocent casualties are requeued
  *without* being charged an attempt, and the suspects are re-run one
  at a time so only a target that crashes alone is charged.

Since specs are pure functions of their seeds, a retry cannot change
the result - only recover it.
"""

from __future__ import annotations

import gc
import os
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Future, \
    ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

from .. import obs
from ..dram.controller import TestStats
from .resilience import (DEFAULT_BACKOFF_BASE, DEFAULT_BACKOFF_CAP,
                         CheckpointJournal, CheckpointMismatch,
                         TargetError, TargetTimeout, backoff_delay,
                         deadline)
from .specs import CampaignOutcome, CampaignSpec

__all__ = ["FleetResult", "FleetExecutionError", "run_fleet"]


class FleetExecutionError(RuntimeError):
    """A target kept failing after exhausting its retry budget."""

    def __init__(self, spec: CampaignSpec, attempts: int,
                 cause: BaseException) -> None:
        super().__init__(
            f"campaign {spec.label()} failed {attempts} time(s); "
            f"last error: {cause!r}")
        self.spec = spec
        self.attempts = attempts


@dataclass
class FleetResult:
    """Ordered outcomes of a fleet run plus aggregate counters.

    Attributes:
        outcomes: one :class:`CampaignOutcome` per *successful* input
            spec, in the input order.  In strict mode (the default)
            every spec succeeds or the fleet raises, so this is one
            outcome per spec; in degraded mode the targets listed in
            ``errors`` have no outcome.
        stats: fleet-wide merged I/O counters (successes only).
        jobs: worker count the fleet ran with.
        attempts: total executions *started* (== number of targets
            when nothing had to be retried).  Distinct from the
            per-target retry budget, which is only charged for
            failures attributable to that target - pool-break
            casualties and checkpoint hits consume neither.
        errors: per-target failure records (empty unless the fleet ran
            with ``strict=False`` and a target exhausted its budget).
        checkpoint_hits: targets restored from the checkpoint journal
            instead of being executed.
        metrics: merged worker metrics registries (None unless some
            spec ran with ``trace=True`` in a worker process); merged
            with :meth:`~repro.obs.MetricsRegistry.merge`, the same
            aggregation path as :meth:`TestStats.merge`.
    """

    outcomes: List[CampaignOutcome]
    stats: TestStats = field(default_factory=TestStats)
    jobs: int = 1
    attempts: int = 0
    errors: List[TargetError] = field(default_factory=list)
    checkpoint_hits: int = 0
    metrics: Optional[obs.MetricsRegistry] = None

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> bool:
        """Whether every target produced an outcome."""
        return not self.errors

    def trace_records(self) -> List[dict]:
        """Worker-collected trace records, in fleet order."""
        return [record for outcome in self.outcomes
                for record in (outcome.trace_records or [])]

    def signatures(self) -> List[tuple]:
        """Per-target digests for equivalence checks across ``jobs``."""
        return [o.signature() for o in self.outcomes]

    def comparisons(self) -> List[object]:
        """The non-None ``comparison`` records, in fleet order."""
        return [o.comparison for o in self.outcomes
                if o.comparison is not None]


#: Free (uncharged) watchdog passes granted to a submission whose
#: worker never provably started before the deadline.  Under heavy
#: machine load a forked worker can take seconds to begin executing;
#: charging the *target* for that would burn its retry budget on a
#: scheduler problem.  Bounded so a pathological host still converges.
MAX_STALL_PASSES = 3


def _execute_target(spec: CampaignSpec,
                    started_path: Optional[str] = None) -> CampaignOutcome:
    """Worker entry point; must stay module-level for pickling.

    ``started_path`` is the parallel watchdog's start marker: touching
    it proves this submission actually began executing, so an expired
    deadline can be attributed to the target rather than to a worker
    that never got scheduled.
    """
    if started_path is not None:
        try:
            with open(started_path, "w"):
                pass
        except OSError:
            pass
    return spec.run()


@contextmanager
def _cow_friendly_fork() -> Iterator[None]:
    """Freeze the gc heap while worker processes are forked.

    On fork-start platforms every tracked object the parent holds is
    shared copy-on-write with the workers; the first collection in a
    worker touches all of their headers and copies the pages.  Parking
    the parent's heap in the permanent generation for the duration of
    the pool keeps forked workers from un-sharing it.
    """
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every pool worker (the parallel-path watchdog's hammer).

    Outstanding futures settle with ``BrokenProcessPool``; the caller
    decides who gets charged.  Reaches into ``_processes`` because the
    executor API deliberately offers no way to kill a hung worker.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.kill()


class _FleetRun:
    """Bookkeeping shared by the serial and parallel paths.

    Owns the per-target attempt ledger, the checkpoint journal, the
    degraded-mode error list, and the charge/complete/fail state
    machine, so the two execution strategies differ only in *how* they
    execute targets, never in how failures are accounted.
    """

    def __init__(self, specs: Sequence[CampaignSpec], retries: int,
                 timeout_s: Optional[float], strict: bool,
                 max_failures: Optional[int],
                 journal: Optional[CheckpointJournal], verify: bool,
                 backoff_base: float, backoff_cap: float) -> None:
        self.specs = specs
        self.retries = retries
        self.timeout_s = timeout_s
        self.strict = strict
        self.max_failures = max_failures
        self.journal = journal
        self.verify = verify
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.outcomes: Dict[int, CampaignOutcome] = {}
        self.errors: List[TargetError] = []
        self.attempts: Dict[int, int] = {i: 0 for i in range(len(specs))}
        self.attempts_total = 0
        self.checkpoint_hits = 0

    def load_checkpointed(self) -> List[int]:
        """Restore journaled targets; return the indices left to run.

        In ``verify`` mode nothing is restored - every journaled
        target is re-executed and checked against its journal entry.
        """
        remaining: List[int] = []
        for i, spec in enumerate(self.specs):
            if (self.journal is not None and not self.verify
                    and self.journal.has(spec)):
                self.outcomes[i] = self.journal.outcome(spec)
                self.checkpoint_hits += 1
                obs.event("fleet.checkpoint_hit", target=spec.label())
                obs.inc("proc.fleet.checkpoint_hits")
            else:
                remaining.append(i)
        return remaining

    def launch(self) -> None:
        """Count one execution start (submission or serial attempt)."""
        self.attempts_total += 1

    def charge(self, i: int) -> int:
        """Charge one budgeted attempt against target ``i``.

        Called only for executions whose fate is attributable to the
        target itself - success, exception, timeout, or a crash with
        the target alone in flight.  Pool-break casualties are never
        charged.
        """
        self.attempts[i] += 1
        return self.attempts[i]

    def complete(self, i: int, outcome: CampaignOutcome) -> None:
        """Verify against the journal, record, and store an outcome."""
        spec = self.specs[i]
        if self.journal is not None and self.journal.has(spec):
            if not self.journal.signature_matches(spec, outcome):
                raise CheckpointMismatch(spec.label())
            obs.inc("proc.fleet.verified")
        elif self.journal is not None:
            self.journal.record(spec, outcome)
        self.outcomes[i] = outcome

    def note_failure(self, i: int, exc: BaseException,
                     kind: str) -> bool:
        """Record a charged failed attempt; True if it may retry."""
        spec = self.specs[i]
        if kind == "timeout":
            obs.event("fleet.timeout", target=spec.label(),
                      attempt=self.attempts[i],
                      timeout_s=self.timeout_s)
            obs.inc("proc.fleet.timeouts")
        elif kind == "corrupt":
            obs.event("fleet.corrupt", target=spec.label(),
                      attempt=self.attempts[i])
            obs.inc("proc.fleet.corrupt_outcomes")
        if self.attempts[i] <= self.retries:
            obs.event("fleet.retry", target=spec.label(),
                      attempt=self.attempts[i], error=repr(exc))
            obs.inc("proc.fleet.retries")
            return True
        if self.strict:
            raise FleetExecutionError(spec, self.attempts[i], exc)
        self.errors.append(TargetError(
            index=i, label=spec.label(), attempts=self.attempts[i],
            kind=kind, error=repr(exc)))
        obs.event("fleet.degraded", target=spec.label(),
                  attempts=self.attempts[i], kind=kind, error=repr(exc))
        obs.inc("proc.fleet.degraded_targets")
        if (self.max_failures is not None
                and len(self.errors) > self.max_failures):
            raise FleetExecutionError(spec, self.attempts[i], exc)
        return False

    def retry_delay(self, i: int) -> float:
        return backoff_delay(self.specs[i], self.attempts[i],
                             self.backoff_base, self.backoff_cap)

    def result(self, jobs: int) -> FleetResult:
        ordered = [self.outcomes[i] for i in sorted(self.outcomes)]
        return FleetResult(outcomes=ordered, jobs=jobs,
                           attempts=self.attempts_total,
                           errors=list(self.errors),
                           checkpoint_hits=self.checkpoint_hits)


def _run_serial(run: _FleetRun) -> FleetResult:
    for i in run.load_checkpointed():
        spec = run.specs[i]
        while True:
            run.launch()
            run.charge(i)
            kind = "exception"
            try:
                with deadline(run.timeout_s):
                    outcome = _execute_target(spec)
                run.complete(i, outcome)
                break
            except TargetTimeout as exc:
                error: BaseException = exc
                kind = "timeout"
            except CheckpointMismatch as exc:
                error = exc
                kind = "corrupt"
            except Exception as exc:  # noqa: BLE001 - retried below
                error = exc
            if not run.note_failure(i, error, kind):
                break
            delay = run.retry_delay(i)
            if delay > 0:
                time.sleep(delay)
    return run.result(jobs=1)


def _take_eligible(queue: List[int], gates: Dict[int, float]
                   ) -> Optional[int]:
    """Pop the first queued target whose backoff gate has passed."""
    now = time.monotonic()
    for position, i in enumerate(queue):
        if gates.get(i, 0.0) <= now:
            return queue.pop(position)
    return None


def _run_parallel(run: _FleetRun, jobs: int) -> FleetResult:
    ready: List[int] = run.load_checkpointed()
    # Targets implicated in an ambiguous pool break are re-run one at
    # a time: a crash with a single target in flight has an
    # unambiguous culprit, so only repeat-crashers are ever charged.
    isolate: List[int] = []
    gates: Dict[int, float] = {}
    # Start markers: per-submission files a worker touches before it
    # runs the target, so an expired deadline can distinguish "the
    # target hung" from "the worker never started" (slow fork under
    # load).  Only started executions are charged a timeout.
    marker_dir = tempfile.mkdtemp(prefix="repro-fleet-start-")
    stall_passes: Dict[int, int] = {}

    def requeue(i: int, queue: List[int]) -> None:
        gates[i] = time.monotonic() + run.retry_delay(i)
        queue.append(i)

    try:
        _run_parallel_loop(run, jobs, ready, isolate, gates, requeue,
                           marker_dir, stall_passes)
    finally:
        shutil.rmtree(marker_dir, ignore_errors=True)
    return run.result(jobs=jobs)


def _run_parallel_loop(run: _FleetRun, jobs: int, ready: List[int],
                       isolate: List[int], gates: Dict[int, float],
                       requeue, marker_dir: str,
                       stall_passes: Dict[int, int]) -> None:
    marker_seq = 0
    while ready or isolate:
        isolating = bool(isolate)
        queue = isolate if isolating else ready
        capacity = 1 if isolating else jobs
        # obs.detach keeps fork-started workers from recording into
        # the parent session's inherited (and discarded) copy.
        with _cow_friendly_fork(), \
                ProcessPoolExecutor(max_workers=capacity,
                                    initializer=obs.detach) as pool:
            in_flight: Dict[Future, int] = {}
            expiry: Dict[Future, float] = {}
            markers: Dict[Future, str] = {}
            broke = False
            try:
                while (queue or in_flight) and not broke:
                    while queue and len(in_flight) < capacity:
                        i = _take_eligible(queue, gates)
                        if i is None:
                            break
                        gates.pop(i, None)
                        marker = None
                        if run.timeout_s:
                            marker_seq += 1
                            marker = os.path.join(
                                marker_dir, f"{marker_seq}.started")
                        future = pool.submit(_execute_target,
                                             run.specs[i], marker)
                        run.launch()
                        in_flight[future] = i
                        if run.timeout_s:
                            expiry[future] = (time.monotonic()
                                              + run.timeout_s)
                            markers[future] = marker
                        obs.event("fleet.submit",
                                  target=run.specs[i].label())
                    if not in_flight:
                        # Everything runnable is behind a backoff
                        # gate; sleep until the earliest one opens.
                        wake = min(gates[i] for i in queue)
                        time.sleep(max(0.0, wake - time.monotonic()))
                        continue
                    timeout = None
                    if expiry:
                        timeout = max(0.0, min(expiry.values())
                                      - time.monotonic())
                    gated = [gates[i] for i in queue if i in gates]
                    if gated and len(in_flight) < capacity:
                        wake = max(0.0, min(gated) - time.monotonic())
                        timeout = wake if timeout is None \
                            else min(timeout, wake)
                    done, _ = wait(set(in_flight), timeout=timeout,
                                   return_when=FIRST_COMPLETED)
                    crashed: List[int] = []
                    crash_exc: Optional[BaseException] = None
                    for future in done:
                        i = in_flight.pop(future)
                        expiry.pop(future, None)
                        done_marker = markers.pop(future, None)
                        if done_marker is not None:
                            try:
                                os.unlink(done_marker)
                            except OSError:
                                pass
                        try:
                            outcome = future.result()
                        except BrokenProcessPool as exc:
                            crashed.append(i)
                            crash_exc = exc
                            continue
                        except Exception as exc:  # noqa: BLE001
                            run.charge(i)
                            if run.note_failure(i, exc, "exception"):
                                requeue(i, ready)
                            continue
                        run.charge(i)
                        try:
                            run.complete(i, outcome)
                            obs.event("fleet.done",
                                      target=run.specs[i].label(),
                                      attempt=run.attempts[i])
                        except CheckpointMismatch as exc:
                            if run.note_failure(i, exc, "corrupt"):
                                requeue(i, ready)
                    if crashed:
                        broke = True
                        casualties = sorted(crashed
                                            + list(in_flight.values()))
                        in_flight.clear()
                        expiry.clear()
                        markers.clear()
                        obs.inc("proc.fleet.pool_rebuilds")
                        if len(casualties) == 1:
                            # Alone in flight: unambiguous crasher.
                            i = casualties[0]
                            run.charge(i)
                            if run.note_failure(i, crash_exc, "crash"):
                                requeue(i, isolate)
                        else:
                            # Ambiguous: requeue everyone uncharged,
                            # isolated so the next crash convicts.
                            isolate.extend(casualties)
                        continue
                    if expiry:
                        now = time.monotonic()
                        expired = [f for f, t in expiry.items()
                                   if t <= now]
                        if expired:
                            # Watchdog: the executor cannot cancel a
                            # running task, so kill the workers and
                            # rebuild.  Only the overdue targets are
                            # charged; co-killed ones requeue free.
                            # An overdue submission whose start marker
                            # was never touched provably never began
                            # executing (slow fork under machine
                            # load) - that is not the target's fault,
                            # so it requeues uncharged, up to
                            # MAX_STALL_PASSES times.
                            _kill_pool(pool)
                            broke = True
                            obs.inc("proc.fleet.pool_rebuilds")
                            overdue: List[int] = []
                            stalled: List[int] = []
                            for f in expired:
                                i = in_flight.pop(f)
                                marker = markers.pop(f, None)
                                started = (marker is None
                                           or os.path.exists(marker))
                                if (started or stall_passes.get(i, 0)
                                        >= MAX_STALL_PASSES):
                                    overdue.append(i)
                                else:
                                    stall_passes[i] = \
                                        stall_passes.get(i, 0) + 1
                                    stalled.append(i)
                            survivors = sorted(in_flight.values())
                            in_flight.clear()
                            expiry.clear()
                            markers.clear()
                            for i in sorted(overdue):
                                run.charge(i)
                                timeout_exc = TargetTimeout(
                                    run.timeout_s)
                                if run.note_failure(i, timeout_exc,
                                                    "timeout"):
                                    requeue(i, ready)
                            for i in sorted(stalled):
                                obs.event(
                                    "fleet.stalled_start",
                                    target=run.specs[i].label(),
                                    passes=stall_passes[i])
                                obs.inc("proc.fleet.stalled_starts")
                            ready.extend(sorted(stalled))
                            ready.extend(survivors)
            except BaseException:
                # Strict failure or interrupt: do not let pool
                # shutdown block on a worker that may be hung.
                _kill_pool(pool)
                raise


def run_fleet(targets: Sequence[CampaignSpec], jobs: int = 1,
              retries: int = 2, *,
              timeout_s: Optional[float] = None,
              strict: bool = True,
              max_failures: Optional[int] = None,
              checkpoint: Optional[str] = None,
              resume: Union[bool, str] = False,
              checkpoint_fsync: bool = False,
              backoff_base: float = DEFAULT_BACKOFF_BASE,
              backoff_cap: float = DEFAULT_BACKOFF_CAP) -> FleetResult:
    """Run a fleet of campaign targets, serially or in parallel.

    Args:
        targets: campaign specs to execute.
        jobs: worker processes; ``jobs <= 1`` (or a single target)
            runs everything in the calling process.
        retries: extra attempts granted to a failing target before it
            is declared failed.
        timeout_s: per-target deadline; a worker exceeding it is
            killed (serial path: interrupted via ``SIGALRM``) and the
            target charged a ``timeout`` attempt.  ``None`` disables
            the watchdog.
        strict: with ``True`` (default) the first target to exhaust
            its budget raises :class:`FleetExecutionError`; with
            ``False`` it becomes a :class:`TargetError` on the result
            and the fleet keeps going.
        max_failures: in non-strict mode, abort once more than this
            many targets have failed (``None`` = unlimited).
        checkpoint: path of the JSON Lines checkpoint journal; every
            completed outcome is flushed to it immediately.
        resume: ``False`` starts a fresh journal; ``True`` loads
            completed targets from ``checkpoint`` instead of
            re-running them; ``"verify"`` re-runs them and requires
            byte-identical signatures (a mismatch is a retryable
            ``corrupt`` failure).
        checkpoint_fsync: fsync the journal after every record, so
            completed targets survive power-loss-style kills (the
            service daemon runs in this mode).
        backoff_base: base delay of the deterministic exponential
            retry backoff (seconds); ``0`` disables sleeping.
        backoff_cap: upper bound on a single backoff delay.

    Returns:
        A :class:`FleetResult` whose ``outcomes`` are in the order of
        ``targets`` and identical for every value of ``jobs``.
    """
    specs = list(targets)
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    if retries < 0:
        raise ValueError("retries must be non-negative")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive")
    if max_failures is not None and max_failures < 0:
        raise ValueError("max_failures must be non-negative")
    if resume not in (False, True, "verify"):
        raise ValueError('resume must be False, True, or "verify"')
    if resume and checkpoint is None:
        raise ValueError("resume requires a checkpoint path")
    if not specs:
        return FleetResult(outcomes=[], jobs=max(1, jobs))

    journal = (CheckpointJournal(checkpoint, resume=bool(resume),
                                 fsync=checkpoint_fsync)
               if checkpoint else None)
    run = _FleetRun(specs, retries=retries, timeout_s=timeout_s,
                    strict=strict, max_failures=max_failures,
                    journal=journal, verify=(resume == "verify"),
                    backoff_base=backoff_base, backoff_cap=backoff_cap)
    try:
        with obs.span("fleet", targets=len(specs),
                      jobs=jobs) as fleet_span:
            if jobs <= 1 or len(specs) == 1:
                result = _run_serial(run)
            else:
                result = _run_parallel(run, min(jobs, len(specs)))
            fleet_span.set(attempts=result.attempts)
    finally:
        # Journaled progress survives any exit - including interrupts
        # and strict failures - so the next run can resume from it.
        if journal is not None:
            journal.close()
    result.stats = TestStats.merge(o.stats for o in result.outcomes
                                   if o.stats is not None)
    worker_metrics = [o.metrics for o in result.outcomes
                      if o.metrics is not None]
    if worker_metrics:
        result.metrics = obs.MetricsRegistry.merge(worker_metrics)
    return result

"""Fleet-campaign execution engine.

:func:`run_fleet` runs a list of :class:`~repro.runtime.specs.CampaignSpec`
targets either serially (``jobs <= 1``) or across a
``ProcessPoolExecutor`` (``jobs > 1``), and guarantees that the two
paths produce **identical** outcomes:

* every target's randomness comes from seeds embedded in its spec, so
  scheduling order cannot leak into results;
* outcomes are keyed by submission index and returned in submission
  order, regardless of completion order;
* per-target statistics travel back with the outcome and are merged
  with :meth:`repro.dram.controller.TestStats.merge`, so the fleet's
  aggregate counters match a serial run exactly.

Failures are retried: a worker that raises is given ``retries`` more
attempts, and a worker that *dies* (``BrokenProcessPool``) triggers a
pool rebuild with every unfinished target resubmitted.  Since specs
are pure functions of their seeds, a retry cannot change the result -
only recover it.
"""

from __future__ import annotations

import gc
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from .. import obs
from ..dram.controller import TestStats
from .specs import CampaignOutcome, CampaignSpec

__all__ = ["FleetResult", "FleetExecutionError", "run_fleet"]


class FleetExecutionError(RuntimeError):
    """A target kept failing after exhausting its retry budget."""

    def __init__(self, spec: CampaignSpec, attempts: int,
                 cause: BaseException) -> None:
        super().__init__(
            f"campaign {spec.label()} failed {attempts} time(s); "
            f"last error: {cause!r}")
        self.spec = spec
        self.attempts = attempts


@dataclass
class FleetResult:
    """Ordered outcomes of a fleet run plus aggregate counters.

    Attributes:
        outcomes: one :class:`CampaignOutcome` per input spec, in the
            input order.
        stats: fleet-wide merged I/O counters.
        jobs: worker count the fleet ran with.
        attempts: total execution attempts (== number of targets when
            nothing had to be retried).
        metrics: merged worker metrics registries (None unless some
            spec ran with ``trace=True`` in a worker process); merged
            with :meth:`~repro.obs.MetricsRegistry.merge`, the same
            aggregation path as :meth:`TestStats.merge`.
    """

    outcomes: List[CampaignOutcome]
    stats: TestStats = field(default_factory=TestStats)
    jobs: int = 1
    attempts: int = 0
    metrics: Optional[obs.MetricsRegistry] = None

    def __len__(self) -> int:
        return len(self.outcomes)

    def trace_records(self) -> List[dict]:
        """Worker-collected trace records, in fleet order."""
        return [record for outcome in self.outcomes
                for record in (outcome.trace_records or [])]

    def signatures(self) -> List[tuple]:
        """Per-target digests for equivalence checks across ``jobs``."""
        return [o.signature() for o in self.outcomes]

    def comparisons(self) -> List[object]:
        """The non-None ``comparison`` records, in fleet order."""
        return [o.comparison for o in self.outcomes
                if o.comparison is not None]


def _execute_target(spec: CampaignSpec) -> CampaignOutcome:
    """Worker entry point; must stay module-level for pickling."""
    return spec.run()


@contextmanager
def _cow_friendly_fork() -> Iterator[None]:
    """Freeze the gc heap while worker processes are forked.

    On fork-start platforms every tracked object the parent holds is
    shared copy-on-write with the workers; the first collection in a
    worker touches all of their headers and copies the pages.  Parking
    the parent's heap in the permanent generation for the duration of
    the pool keeps forked workers from un-sharing it.
    """
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


def _run_serial(specs: Sequence[CampaignSpec], retries: int
                ) -> FleetResult:
    outcomes: List[CampaignOutcome] = []
    attempts_total = 0
    for spec in specs:
        last: Optional[BaseException] = None
        for attempt in range(1 + retries):
            attempts_total += 1
            try:
                outcomes.append(_execute_target(spec))
                break
            except Exception as exc:  # noqa: BLE001 - retried below
                last = exc
                obs.event("fleet.retry", target=spec.label(),
                          attempt=attempt + 1, error=repr(exc))
                obs.inc("proc.fleet.retries")
        else:
            raise FleetExecutionError(spec, 1 + retries, last)
    return FleetResult(outcomes=outcomes, jobs=1, attempts=attempts_total)


def _run_parallel(specs: Sequence[CampaignSpec], jobs: int,
                  retries: int) -> FleetResult:
    outcomes: Dict[int, CampaignOutcome] = {}
    attempts: Dict[int, int] = {i: 0 for i in range(len(specs))}
    attempts_total = 0
    pending = list(range(len(specs)))
    failure: Optional[FleetExecutionError] = None

    while pending and failure is None:
        requeue: List[int] = []
        # A dead worker poisons the whole pool (BrokenProcessPool on
        # every outstanding future), so the pool lives inside the
        # retry loop: each round gets a fresh, healthy pool.
        pool_broke = False
        # obs.detach keeps fork-started workers from recording into
        # the parent session's inherited (and discarded) copy.
        with _cow_friendly_fork(), \
                ProcessPoolExecutor(max_workers=jobs,
                                    initializer=obs.detach) as pool:
            futures = {i: pool.submit(_execute_target, specs[i])
                       for i in pending}
            for i in pending:
                obs.event("fleet.submit", target=specs[i].label())
            for i, future in futures.items():
                attempts[i] += 1
                attempts_total += 1
                try:
                    outcomes[i] = future.result()
                    obs.event("fleet.done", target=specs[i].label(),
                              attempt=attempts[i])
                except (Exception, BrokenProcessPool) as exc:
                    if attempts[i] > retries:
                        failure = FleetExecutionError(
                            specs[i], attempts[i], exc)
                        break
                    requeue.append(i)
                    obs.event("fleet.retry", target=specs[i].label(),
                              attempt=attempts[i], error=repr(exc))
                    obs.inc("proc.fleet.retries")
                    pool_broke |= isinstance(exc, BrokenProcessPool)
        if pool_broke and requeue:
            obs.inc("proc.fleet.pool_rebuilds")
        pending = requeue
    if failure is not None:
        raise failure

    ordered = [outcomes[i] for i in range(len(specs))]
    return FleetResult(outcomes=ordered, jobs=jobs,
                       attempts=attempts_total)


def run_fleet(targets: Sequence[CampaignSpec], jobs: int = 1,
              retries: int = 2) -> FleetResult:
    """Run a fleet of campaign targets, serially or in parallel.

    Args:
        targets: campaign specs to execute.
        jobs: worker processes; ``jobs <= 1`` (or a single target)
            runs everything in the calling process.
        retries: extra attempts granted to a failing target before
            :class:`FleetExecutionError` is raised.

    Returns:
        A :class:`FleetResult` whose ``outcomes`` are in the order of
        ``targets`` and identical for every value of ``jobs``.
    """
    specs = list(targets)
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    if retries < 0:
        raise ValueError("retries must be non-negative")
    if not specs:
        return FleetResult(outcomes=[], jobs=max(1, jobs))

    with obs.span("fleet", targets=len(specs), jobs=jobs) as fleet_span:
        if jobs <= 1 or len(specs) == 1:
            result = _run_serial(specs, retries)
        else:
            result = _run_parallel(specs, min(jobs, len(specs)), retries)
        fleet_span.set(attempts=result.attempts)
    result.stats = TestStats.merge(o.stats for o in result.outcomes
                                   if o.stats is not None)
    worker_metrics = [o.metrics for o in result.outcomes
                      if o.metrics is not None]
    if worker_metrics:
        result.metrics = obs.MetricsRegistry.merge(worker_metrics)
    return result

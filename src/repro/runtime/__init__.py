"""Parallel fleet-campaign runtime.

The paper characterizes 96 DIMMs from three vendors; this package is
the engine that makes such fleet campaigns cheap in the simulator:

* :mod:`repro.runtime.seeds` - a SHA-256 seed ladder that derives
  every target's randomness from one root seed and the target's
  identity, independent of scheduling;
* :mod:`repro.runtime.specs` - frozen, picklable campaign specs that
  rebuild their chip/module inside any process;
* :mod:`repro.runtime.fleet` - :func:`run_fleet`, fanning specs over
  a ``ProcessPoolExecutor`` with crash recovery, returning outcomes
  byte-identical to the serial path for every ``jobs`` setting;
* :mod:`repro.runtime.compat` - the reference-kernel switch that keeps
  the original per-cell loops executable as the specification the
  optimized engine is differentially tested against.
"""

from .chaos import (ChaosError, ChaosSpec, NoisySpec,
                    ServiceFaultPlan, apply_service_fault,
                    chaos_schedule, corrupt_queue_record,
                    device_noise_schedule, service_chaos_plan,
                    wrap_spec)
from .compat import (reference_kernels, reference_kernels_enabled,
                     use_reference_kernels)
from .fleet import FleetExecutionError, FleetResult, run_fleet
from .resilience import (CheckpointJournal, CheckpointMismatch,
                         TargetError, TargetTimeout, backoff_delay,
                         render_degraded)
from .seeds import chip_seed, ladder_seed, module_seed, seed_ladder
from .specs import CampaignOutcome, CampaignSpec

__all__ = [
    "CampaignOutcome", "CampaignSpec", "FleetExecutionError",
    "FleetResult", "run_fleet",
    "CheckpointJournal", "CheckpointMismatch", "TargetError",
    "TargetTimeout", "backoff_delay", "render_degraded",
    "ChaosError", "ChaosSpec", "NoisySpec", "ServiceFaultPlan",
    "apply_service_fault", "chaos_schedule", "corrupt_queue_record",
    "device_noise_schedule", "service_chaos_plan", "wrap_spec",
    "ladder_seed", "chip_seed", "module_seed", "seed_ladder",
    "reference_kernels", "reference_kernels_enabled",
    "use_reference_kernels",
]

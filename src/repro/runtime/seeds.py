"""Deterministic seed ladder for fleet campaigns.

A fleet campaign runs many chips/modules, possibly spread over worker
processes, and must produce *identical* results no matter how the work
is scheduled.  That requires every target's randomness to be a pure
function of (root seed, target identity) - never of submission order,
process identity, or Python's per-process ``hash`` randomisation.

``ladder_seed`` derives a 63-bit seed from a root seed and an
arbitrary identity path (e.g. ``("vendor", "A", "module", 3)``) with
SHA-256 over a length-prefixed canonical encoding, giving:

* **determinism across processes/platforms** - unlike ``hash()``,
  SHA-256 has no per-process salt;
* **order independence** - the seed depends only on the arguments,
  not on how many seeds were drawn before it (contrast drawing from a
  shared ``Generator``, where inserting one chip shifts every
  subsequent seed);
* **injectivity in practice** - distinct paths collide with
  probability ~2^-63; the length-prefixed encoding prevents the
  classic ``("ab",)`` vs ``("a", "b")`` ambiguity.
"""

from __future__ import annotations

import hashlib
from typing import List, Union

__all__ = ["ladder_seed", "chip_seed", "module_seed", "seed_ladder"]

PathPart = Union[int, str]


def _encode(part: PathPart) -> bytes:
    if isinstance(part, bool) or not isinstance(part, (int, str)):
        raise TypeError(f"seed path parts must be int or str, got "
                        f"{type(part).__name__}")
    if isinstance(part, int):
        raw = part.to_bytes(16, "big", signed=True)
        tag = b"i"
    else:
        raw = part.encode("utf-8")
        tag = b"s"
    return tag + len(raw).to_bytes(4, "big") + raw


def ladder_seed(root_seed: int, *path: PathPart) -> int:
    """Derive a 63-bit seed from a root seed and an identity path.

    Args:
        root_seed: the fleet's single root seed.
        path: identity components of the target (vendor letters,
            module/chip indices, purpose strings...).

    Returns:
        An integer in ``[0, 2**63)`` suitable for
        ``numpy.random.default_rng``.
    """
    h = hashlib.sha256()
    h.update(_encode(int(root_seed)))
    for part in path:
        h.update(_encode(part))
    return int.from_bytes(h.digest()[:8], "big") >> 1


def chip_seed(root_seed: int, vendor: str, chip_index: int,
              purpose: str = "build") -> int:
    """Seed for one chip of a fleet (``purpose`` separates streams)."""
    return ladder_seed(root_seed, "chip", vendor, chip_index, purpose)


def module_seed(root_seed: int, vendor: str, module_index: int,
                purpose: str = "build") -> int:
    """Seed for one module of a fleet."""
    return ladder_seed(root_seed, "module", vendor, module_index, purpose)


def seed_ladder(root_seed: int, n: int, *prefix: PathPart) -> List[int]:
    """The first ``n`` rungs of the ladder under a common prefix."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [ladder_seed(root_seed, *prefix, i) for i in range(n)]

"""Reference-kernel switch, re-exported for the runtime package.

The optimized campaign engine (vectorized bank verification, memoized
schedules and pattern batteries) is proven against the original
per-cell loops, which are kept executable behind this switch.  The
differential test-suite and the fleet benchmark flip it to measure
and verify the optimized path against the serial-path specification:

    from repro.runtime.compat import reference_kernels

    with reference_kernels():
        baseline = run_parbor(chip, cfg, seed=7)   # original loops
    optimized = run_parbor(chip, cfg, seed=7)      # vectorized
    assert baseline.detected == optimized.detected

The switch lives in the dependency-free :mod:`repro._kernels` so the
DRAM substrate can consult it without importing this package.
"""

from __future__ import annotations

from .._kernels import (reference_kernels, reference_kernels_enabled,
                        use_reference_kernels)

__all__ = ["reference_kernels", "reference_kernels_enabled",
           "use_reference_kernels"]

"""Picklable campaign specifications for fleet execution.

A :class:`CampaignSpec` captures everything needed to rebuild and run
one campaign target - vendor, seeds, geometry, configuration - as a
small frozen value object.  Worker processes receive the *spec*, not
the simulated chip: each worker reconstructs its chip from the spec's
seeds, so the bytes shipped across the process boundary stay tiny and
the outcome is a pure function of the spec.

The two experiment kinds mirror the serial drivers exactly:

* ``"characterize"`` - one chip, :func:`repro.core.detector.run_parbor`
  (the ``repro characterize`` / Table 1 / Figure 11 path);
* ``"compare"`` - one module, PARBOR vs. the equal-budget random test
  (the ``repro compare`` / ``repro fleet`` / Figure 12/13 path).

``spec.run()`` in a worker produces byte-identical results to calling
the serial driver with the same seeds in the parent process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .. import obs
from ..core.config import ParborConfig
from ..core.detector import ParborResult
from ..dram.controller import TestStats
from .seeds import ladder_seed

__all__ = ["CampaignSpec", "CampaignOutcome"]

Coord = Tuple[int, int, int, int]  # (chip, bank, row, sys_col)

EXPERIMENTS = ("characterize", "compare")


@dataclass
class CampaignOutcome:
    """What one campaign target produced.

    Attributes:
        spec: the spec that produced this outcome.
        distances: final signed neighbour distances.
        detected: coordinates flagged by the campaign (empty when the
            sweep was skipped).
        total_tests: the campaign's whole-chip test budget.
        tests_per_level: recursion tests per level (Table 1 row).
        stats: the campaign's merged I/O counters.
        comparison: PARBOR vs. random comparison ("compare" only).
        result: the full :class:`ParborResult` for downstream
            reporting (levels, schedule, sample).
        trace_records: span/event records collected by a worker-side
            observability session (only when ``spec.trace`` and the
            campaign ran outside an already-active session).
        metrics: the worker-side metrics registry, merged fleet-wide
            by :func:`repro.runtime.fleet.run_fleet` exactly like
            :meth:`TestStats.merge` merges the I/O counters.
        quarantine: unstable cells
            (:class:`repro.robust.QuarantineSet`) when the campaign
            ran with ``rounds > 1``; None on the legacy path.
    """

    spec: "CampaignSpec"
    distances: List[int]
    detected: Set[Coord]
    total_tests: int
    tests_per_level: List[int]
    stats: TestStats
    comparison: Optional[object] = None
    result: Optional[ParborResult] = None
    trace_records: Optional[List[Dict[str, Any]]] = None
    metrics: Optional["obs.MetricsRegistry"] = None
    quarantine: Optional[object] = None

    def signature(self) -> Tuple:
        """A comparable digest of the result-bearing fields.

        Two outcomes are equivalent iff their signatures are equal;
        the parallel-equivalence tests compare these across ``jobs``
        settings.  The quarantine joins the signature only when the
        campaign produced one, so legacy signatures (and the
        checkpoints storing them) are unchanged.
        """
        base = (self.spec.label(), tuple(self.distances),
                self.total_tests, tuple(self.tests_per_level),
                tuple(sorted(self.detected)))
        if self.quarantine is not None:
            base += (self.quarantine.signature(),)
        return base


@dataclass(frozen=True)
class CampaignSpec:
    """One rebuildable campaign target.

    Attributes:
        experiment: ``"characterize"`` (single chip, neighbour search)
            or ``"compare"`` (module, PARBOR vs. random).
        vendor: vendor letter "A" | "B" | "C".
        index: module index (used by "compare"; cosmetic otherwise).
        build_seed: seed that manufactures the chip/module.
        run_seed: seed of the campaign itself.
        n_rows: rows per simulated bank.
        sample_size: victim sample size when ``config`` is None
            ("characterize" only; "compare" uses the driver default).
        run_sweep: run the final neighbour-aware sweep
            ("characterize" only; "compare" always sweeps).
        rounds: repeat-and-vote repetitions per test round (see
            :class:`repro.robust.RoundsPolicy`).  The default ``1``
            is the legacy single-pass path and leaves checkpoint keys
            and outcome signatures byte-identical to earlier releases.
        config: full configuration override (wins over sample_size).
        trace: collect an observability trace for this target.  Inside
            a worker process this opens a fresh session and ships the
            records/metrics back on the outcome; in-process it joins
            the caller's active session.  Results are bit-identical
            either way.
    """

    experiment: str
    vendor: str
    index: int = 1
    build_seed: int = 0
    run_seed: int = 0
    n_rows: int = 128
    sample_size: int = 2000
    run_sweep: bool = True
    rounds: int = 1
    config: Optional[ParborConfig] = field(default=None, compare=False)
    trace: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.experiment not in EXPERIMENTS:
            raise ValueError(f"unknown experiment {self.experiment!r}; "
                             f"expected one of {EXPERIMENTS}")

    def label(self) -> str:
        return f"{self.experiment}:{self.vendor}{self.index}"

    def checkpoint_key(self) -> str:
        """Deterministic signature keying this spec in a checkpoint.

        Hashes every result-affecting field through the seed ladder's
        canonical encoding (plus the ``config`` override's repr, which
        is deterministic for the frozen config dataclass), so two
        specs share a key iff they are guaranteed to produce the same
        outcome.  Cosmetic fields (``trace``) are excluded.
        """
        parts: List[Any] = ["checkpoint", self.experiment, self.vendor,
                            self.index, self.run_seed, self.n_rows,
                            self.sample_size, int(self.run_sweep)]
        if self.config is not None:
            parts.append(repr(self.config))
        # Robust-profiling fields join the key only when they diverge
        # from the legacy defaults, so existing checkpoints stay valid.
        if self.rounds != 1:
            parts.extend(["rounds", self.rounds])
        parts.extend(self._identity_extras())
        digest = ladder_seed(self.build_seed, *parts)
        return f"{self.label()}#{digest:016x}"

    def _identity_extras(self) -> Tuple:
        """Extra result-affecting identity parts (subclass hook).

        Subclasses that change what a campaign *measures* (not how it
        is scheduled) - e.g. :class:`repro.runtime.chaos.NoisySpec`'s
        injected device noise - return the extra parts here so their
        checkpoint keys never collide with the clean spec's.
        """
        return ()

    def _prepare_chips(self, chips: List) -> None:
        """Post-build hook over the freshly manufactured chips.

        Called once per run, after the chip/module is rebuilt from the
        spec's seeds and before the campaign starts.  The default does
        nothing; :class:`repro.runtime.chaos.NoisySpec` attaches its
        seeded device-noise models here.
        """

    def trace_id(self) -> str:
        """Stable trace identity: the seed-ladder path of this target.

        The ID hashes the same identity components the seed ladder
        uses (experiment, vendor, index, seeds), so the same target
        traced in any process / on any machine / at any ``--jobs``
        value carries the same trace ID.
        """
        digest = ladder_seed(self.build_seed, "trace", self.experiment,
                             self.vendor, self.index, self.run_seed)
        return f"{self.label()}#{digest:016x}"

    def run(self) -> CampaignOutcome:
        """Rebuild the target from seeds and run its campaign.

        Imports the drivers lazily so that unpickling a spec in a
        worker never races module initialisation, and so that
        ``repro.analysis`` can itself import this package.
        """
        if self.trace and not obs.enabled():
            # Worker-side (or standalone) tracing: open a session for
            # this one target and ship the records back picklably.
            with obs.session(self.trace_id(),
                             label=self.label()) as sess:
                outcome = self._run_instrumented()
            outcome.trace_records = sess.export_records()
            outcome.metrics = sess.metrics
            return outcome
        if obs.enabled():
            return self._run_instrumented()
        return self._dispatch()

    def _dispatch(self) -> CampaignOutcome:
        if self.experiment == "characterize":
            return self._run_characterize()
        return self._run_compare()

    def _run_instrumented(self) -> CampaignOutcome:
        """Run under the active session, inside a ``campaign`` span."""
        with obs.span("campaign", label=self.label(),
                      experiment=self.experiment, vendor=self.vendor,
                      index=self.index, build_seed=self.build_seed,
                      run_seed=self.run_seed,
                      n_rows=self.n_rows) as campaign_span:
            outcome = self._dispatch()
            campaign_span.set(total_tests=outcome.total_tests,
                              detected=len(outcome.detected),
                              distances=list(outcome.distances))
        obs.inc("campaigns")
        obs.inc(f"campaigns.vendor[{self.vendor}]")
        if outcome.stats is not None:
            obs.inc("io.tests", outcome.stats.tests)
            obs.inc("io.rows_written", outcome.stats.rows_written)
            obs.inc("io.rows_read", outcome.stats.rows_read)
            obs.inc("io.retention_waits", outcome.stats.retention_waits)
        return outcome

    def _run_characterize(self) -> CampaignOutcome:
        from ..core.detector import run_parbor
        from ..dram.vendors import vendor

        profile = vendor(self.vendor)
        chip = profile.make_chip(seed=self.build_seed, n_rows=self.n_rows)
        self._prepare_chips([chip])
        cfg = self.config or ParborConfig(sample_size=self.sample_size)
        result = run_parbor(chip, cfg, seed=self.run_seed,
                            run_sweep=self.run_sweep, rounds=self.rounds)
        return CampaignOutcome(
            spec=self, distances=list(result.distances),
            detected=set(result.detected),
            total_tests=result.total_tests,
            tests_per_level=list(result.recursion.tests_per_level),
            stats=result.stats, result=result,
            quarantine=result.quarantine)

    def _run_compare(self) -> CampaignOutcome:
        from ..analysis.experiments import compare_module
        from ..dram.vendors import make_module

        module = make_module(self.vendor, self.index,
                             seed=self.build_seed, n_rows=self.n_rows)
        self._prepare_chips(list(module.chips))
        comparison, result = compare_module(module, seed=self.run_seed,
                                            config=self.config,
                                            rounds=self.rounds)
        return CampaignOutcome(
            spec=self, distances=list(result.distances),
            detected=set(result.detected),
            total_tests=result.total_tests,
            tests_per_level=list(result.recursion.tests_per_level),
            stats=result.stats, comparison=comparison, result=result,
            quarantine=result.quarantine)

"""Picklable campaign specifications for fleet execution.

A :class:`CampaignSpec` captures everything needed to rebuild and run
one campaign target - vendor, seeds, geometry, configuration - as a
small frozen value object.  Worker processes receive the *spec*, not
the simulated chip: each worker reconstructs its chip from the spec's
seeds, so the bytes shipped across the process boundary stay tiny and
the outcome is a pure function of the spec.

The two experiment kinds mirror the serial drivers exactly:

* ``"characterize"`` - one chip, :func:`repro.core.detector.run_parbor`
  (the ``repro characterize`` / Table 1 / Figure 11 path);
* ``"compare"`` - one module, PARBOR vs. the equal-budget random test
  (the ``repro compare`` / ``repro fleet`` / Figure 12/13 path).

``spec.run()`` in a worker produces byte-identical results to calling
the serial driver with the same seeds in the parent process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..core.config import ParborConfig
from ..core.detector import ParborResult
from ..dram.controller import TestStats

__all__ = ["CampaignSpec", "CampaignOutcome"]

Coord = Tuple[int, int, int, int]  # (chip, bank, row, sys_col)

EXPERIMENTS = ("characterize", "compare")


@dataclass
class CampaignOutcome:
    """What one campaign target produced.

    Attributes:
        spec: the spec that produced this outcome.
        distances: final signed neighbour distances.
        detected: coordinates flagged by the campaign (empty when the
            sweep was skipped).
        total_tests: the campaign's whole-chip test budget.
        tests_per_level: recursion tests per level (Table 1 row).
        stats: the campaign's merged I/O counters.
        comparison: PARBOR vs. random comparison ("compare" only).
        result: the full :class:`ParborResult` for downstream
            reporting (levels, schedule, sample).
    """

    spec: "CampaignSpec"
    distances: List[int]
    detected: Set[Coord]
    total_tests: int
    tests_per_level: List[int]
    stats: TestStats
    comparison: Optional[object] = None
    result: Optional[ParborResult] = None

    def signature(self) -> Tuple:
        """A comparable digest of the result-bearing fields.

        Two outcomes are equivalent iff their signatures are equal;
        the parallel-equivalence tests compare these across ``jobs``
        settings.
        """
        return (self.spec.label(), tuple(self.distances),
                self.total_tests, tuple(self.tests_per_level),
                tuple(sorted(self.detected)))


@dataclass(frozen=True)
class CampaignSpec:
    """One rebuildable campaign target.

    Attributes:
        experiment: ``"characterize"`` (single chip, neighbour search)
            or ``"compare"`` (module, PARBOR vs. random).
        vendor: vendor letter "A" | "B" | "C".
        index: module index (used by "compare"; cosmetic otherwise).
        build_seed: seed that manufactures the chip/module.
        run_seed: seed of the campaign itself.
        n_rows: rows per simulated bank.
        sample_size: victim sample size when ``config`` is None
            ("characterize" only; "compare" uses the driver default).
        run_sweep: run the final neighbour-aware sweep
            ("characterize" only; "compare" always sweeps).
        config: full configuration override (wins over sample_size).
    """

    experiment: str
    vendor: str
    index: int = 1
    build_seed: int = 0
    run_seed: int = 0
    n_rows: int = 128
    sample_size: int = 2000
    run_sweep: bool = True
    config: Optional[ParborConfig] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.experiment not in EXPERIMENTS:
            raise ValueError(f"unknown experiment {self.experiment!r}; "
                             f"expected one of {EXPERIMENTS}")

    def label(self) -> str:
        return f"{self.experiment}:{self.vendor}{self.index}"

    def run(self) -> CampaignOutcome:
        """Rebuild the target from seeds and run its campaign.

        Imports the drivers lazily so that unpickling a spec in a
        worker never races module initialisation, and so that
        ``repro.analysis`` can itself import this package.
        """
        if self.experiment == "characterize":
            return self._run_characterize()
        return self._run_compare()

    def _run_characterize(self) -> CampaignOutcome:
        from ..core.detector import run_parbor
        from ..dram.vendors import vendor

        profile = vendor(self.vendor)
        chip = profile.make_chip(seed=self.build_seed, n_rows=self.n_rows)
        cfg = self.config or ParborConfig(sample_size=self.sample_size)
        result = run_parbor(chip, cfg, seed=self.run_seed,
                            run_sweep=self.run_sweep)
        return CampaignOutcome(
            spec=self, distances=list(result.distances),
            detected=set(result.detected),
            total_tests=result.total_tests,
            tests_per_level=list(result.recursion.tests_per_level),
            stats=result.stats, result=result)

    def _run_compare(self) -> CampaignOutcome:
        from ..analysis.experiments import compare_module
        from ..dram.vendors import make_module

        module = make_module(self.vendor, self.index,
                             seed=self.build_seed, n_rows=self.n_rows)
        comparison, result = compare_module(module, seed=self.run_seed,
                                            config=self.config)
        return CampaignOutcome(
            spec=self, distances=list(result.distances),
            detected=set(result.detected),
            total_tests=result.total_tests,
            tests_per_level=list(result.recursion.tests_per_level),
            stats=result.stats, comparison=comparison, result=result)

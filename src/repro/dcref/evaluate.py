"""The Figure 16 experiment: DC-REF vs. RAIDR vs. 64 ms baseline.

For every multi-programmed workload, the same request streams run
under the three refresh policies; weighted speedup is computed against
baseline alone-runs, and policy improvements are reported relative to
the uniform-64 ms system, exactly as the paper plots them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..sim.apps import AppProfile, app
from ..sim.engine import SimResult, alone_ipc, simulate
from ..sim.engine_detailed import alone_ipc_detailed, simulate_detailed
from ..sim.metrics import weighted_speedup
from ..sim.params import DEFAULT_CONFIG_32G, SystemConfig
from ..sim.refresh import make_policy
from ..sim.workloads import make_workloads, workload_profiles

__all__ = ["WorkloadOutcome", "Fig16Summary", "evaluate_workload",
           "run_fig16"]

POLICIES = ("baseline", "raidr", "dcref")


@dataclass
class WorkloadOutcome:
    """Weighted speedups and refresh stats for one workload."""

    workload_id: int
    apps: List[str]
    weighted_speedup: Dict[str, float]
    row_refreshes: Dict[str, float]
    high_rate_fraction: Dict[str, float]

    def improvement(self, policy: str, over: str = "baseline") -> float:
        """Relative weighted-speedup gain of ``policy`` (percent)."""
        return 100.0 * (self.weighted_speedup[policy]
                        / self.weighted_speedup[over] - 1.0)

    def refresh_reduction(self, policy: str,
                          over: str = "baseline") -> float:
        """Relative refresh-count reduction of ``policy`` (percent)."""
        return 100.0 * (1.0 - self.row_refreshes[policy]
                        / self.row_refreshes[over])


@dataclass
class Fig16Summary:
    """Averages over all workloads (the paper's headline numbers)."""

    outcomes: List[WorkloadOutcome]

    def mean_improvement(self, policy: str,
                         over: str = "baseline") -> float:
        return float(np.mean([o.improvement(policy, over)
                              for o in self.outcomes]))

    def mean_refresh_reduction(self, policy: str,
                               over: str = "baseline") -> float:
        return float(np.mean([o.refresh_reduction(policy, over)
                              for o in self.outcomes]))

    def mean_high_rate_fraction(self, policy: str) -> float:
        return float(np.mean([o.high_rate_fraction[policy]
                              for o in self.outcomes]))


def _match_prob_for(profiles: Sequence[AppProfile]) -> float:
    """Workload-level worst-pattern match probability for writes."""
    return float(np.mean([p.worst_match_prob for p in profiles]))


def evaluate_workload(workload: List[str], workload_id: int,
                      config: SystemConfig,
                      alone: Dict[str, float], seed: int,
                      n_instructions: int = 120_000,
                      engine: str = "detailed") -> WorkloadOutcome:
    """Run one workload under all three refresh policies.

    ``engine`` selects the memory model: "detailed" (command-level
    FR-FCFS controller, the default for evaluation) or "fast" (the
    first-order model, for quick runs and the engine ablation).
    """
    run = _engine_fn(engine)
    profiles = workload_profiles(workload)
    alone_ipcs = [alone[name] for name in workload]
    ws: Dict[str, float] = {}
    refreshes: Dict[str, float] = {}
    hot: Dict[str, float] = {}
    for policy_name in POLICIES:
        policy = make_policy(policy_name, config,
                             match_prob=_match_prob_for(profiles),
                             seed=seed)
        result: SimResult = run(profiles, policy, config, seed=seed,
                                n_instructions=n_instructions)
        ws[policy_name] = weighted_speedup(result.ipcs, alone_ipcs)
        refreshes[policy_name] = result.row_refreshes_per_window
        hot[policy_name] = result.avg_high_rate_fraction
    return WorkloadOutcome(workload_id=workload_id, apps=list(workload),
                           weighted_speedup=ws, row_refreshes=refreshes,
                           high_rate_fraction=hot)


def _engine_fn(engine: str):
    if engine == "detailed":
        return simulate_detailed
    if engine == "fast":
        return simulate
    raise ValueError(f"unknown engine {engine!r}")


def run_fig16(n_workloads: int = 32, config: Optional[SystemConfig] = None,
              seed: int = 2016,
              n_instructions: int = 120_000,
              engine: str = "detailed") -> Fig16Summary:
    """The full Figure 16 sweep.

    Alone-run IPCs (the weighted-speedup denominators) are measured
    once per application on the baseline-refresh system, as is
    standard for multi-programmed studies.
    """
    cfg = config or DEFAULT_CONFIG_32G
    workloads = make_workloads(n_workloads=n_workloads, seed=seed)
    needed = sorted({name for mix in workloads for name in mix})
    alone_fn = (alone_ipc_detailed if engine == "detailed"
                else alone_ipc)
    alone: Dict[str, float] = {}
    for name in needed:
        policy = make_policy("baseline", cfg)
        alone[name] = alone_fn(app(name), policy, cfg, seed=seed,
                               n_instructions=n_instructions)
    outcomes = [
        evaluate_workload(mix, i + 1, cfg, alone, seed=seed + i,
                          n_instructions=n_instructions, engine=engine)
        for i, mix in enumerate(workloads)
    ]
    return Fig16Summary(outcomes=outcomes)

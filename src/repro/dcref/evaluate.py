"""The Figure 16 experiment: DC-REF vs. RAIDR vs. 64 ms baseline.

For every multi-programmed workload, the same request streams run
under the three refresh policies; weighted speedup is computed against
baseline alone-runs, and policy improvements are reported relative to
the uniform-64 ms system, exactly as the paper plots them.

The module also holds the **guardbanded binning contract** the robust
profiling layer feeds: :func:`guardbanded_bins` derives the weak-row
mask from a campaign's trusted detections OR'd with its quarantined
cells' rows (an unstable cell must never let its row refresh at the
relaxed rate), and :func:`under_refresh_report` audits any mask
against a ground-truth set of truly failing rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..sim.apps import AppProfile, app
from ..sim.engine import SimResult, alone_ipc, simulate
from ..sim.engine_detailed import alone_ipc_detailed, simulate_detailed
from ..sim.metrics import weighted_speedup
from ..sim.params import DEFAULT_CONFIG_32G, SystemConfig
from ..sim.refresh import make_policy
from ..sim.workloads import make_workloads, workload_profiles
from .raidr import bins_from_failures

__all__ = ["WorkloadOutcome", "Fig16Summary", "UnderRefreshReport",
           "evaluate_workload", "guardbanded_bins", "run_fig16",
           "under_refresh_report"]

Coord = Tuple[int, int, int, int]


def guardbanded_bins(detected: Set[Coord], quarantine,
                     n_chips: int, n_banks: int,
                     n_rows: int) -> np.ndarray:
    """Weak-row mask from trusted detections plus the quarantine.

    The refresh-safety contract of robust profiling: a row goes to the
    relaxed bin only if *neither* a trusted (definite/probabilistic)
    detection *nor* a quarantined (unstable) cell lives in it.  Pass
    ``quarantine=None`` for the legacy behaviour
    (:func:`~repro.dcref.raidr.bins_from_failures` alone).
    """
    mask = bins_from_failures(detected, n_chips, n_banks, n_rows)
    if quarantine:
        mask |= quarantine.row_mask(n_chips, n_banks, n_rows)
    return mask


@dataclass
class UnderRefreshReport:
    """Audit of a weak-row mask against ground-truth failing rows.

    Attributes:
        n_weak_rows: rows the mask keeps at the fast rate.
        n_true_failing: ground-truth rows that genuinely need it.
        under_refreshed: truly failing rows the mask left at the
            relaxed rate - each one is a data-loss hazard.
    """

    n_weak_rows: int
    n_true_failing: int
    under_refreshed: Set[Tuple[int, int, int]] = field(
        default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.under_refreshed


def under_refresh_report(bins: np.ndarray,
                         true_failing_rows: Iterable[Tuple[int, int, int]]
                         ) -> UnderRefreshReport:
    """Check that every truly failing row stays at the fast rate.

    Args:
        bins: ``(chips, banks, rows)`` bool mask (True = fast rate).
        true_failing_rows: ground-truth ``(chip, bank, row)`` tuples
            (e.g. rows of the noise-free profile's detections plus any
            injected-noise cells).
    """
    truth = {(int(c), int(b), int(r)) for c, b, r in true_failing_rows}
    missed = {(c, b, r) for c, b, r in truth
              if not (0 <= c < bins.shape[0] and 0 <= b < bins.shape[1]
                      and 0 <= r < bins.shape[2]) or not bins[c, b, r]}
    return UnderRefreshReport(n_weak_rows=int(bins.sum()),
                              n_true_failing=len(truth),
                              under_refreshed=missed)

POLICIES = ("baseline", "raidr", "dcref")


@dataclass
class WorkloadOutcome:
    """Weighted speedups and refresh stats for one workload."""

    workload_id: int
    apps: List[str]
    weighted_speedup: Dict[str, float]
    row_refreshes: Dict[str, float]
    high_rate_fraction: Dict[str, float]

    def improvement(self, policy: str, over: str = "baseline") -> float:
        """Relative weighted-speedup gain of ``policy`` (percent)."""
        return 100.0 * (self.weighted_speedup[policy]
                        / self.weighted_speedup[over] - 1.0)

    def refresh_reduction(self, policy: str,
                          over: str = "baseline") -> float:
        """Relative refresh-count reduction of ``policy`` (percent)."""
        return 100.0 * (1.0 - self.row_refreshes[policy]
                        / self.row_refreshes[over])


@dataclass
class Fig16Summary:
    """Averages over all workloads (the paper's headline numbers)."""

    outcomes: List[WorkloadOutcome]

    def mean_improvement(self, policy: str,
                         over: str = "baseline") -> float:
        return float(np.mean([o.improvement(policy, over)
                              for o in self.outcomes]))

    def mean_refresh_reduction(self, policy: str,
                               over: str = "baseline") -> float:
        return float(np.mean([o.refresh_reduction(policy, over)
                              for o in self.outcomes]))

    def mean_high_rate_fraction(self, policy: str) -> float:
        return float(np.mean([o.high_rate_fraction[policy]
                              for o in self.outcomes]))


def _match_prob_for(profiles: Sequence[AppProfile]) -> float:
    """Workload-level worst-pattern match probability for writes."""
    return float(np.mean([p.worst_match_prob for p in profiles]))


def evaluate_workload(workload: List[str], workload_id: int,
                      config: SystemConfig,
                      alone: Dict[str, float], seed: int,
                      n_instructions: int = 120_000,
                      engine: str = "detailed") -> WorkloadOutcome:
    """Run one workload under all three refresh policies.

    ``engine`` selects the memory model: "detailed" (command-level
    FR-FCFS controller, the default for evaluation) or "fast" (the
    first-order model, for quick runs and the engine ablation).
    """
    run = _engine_fn(engine)
    profiles = workload_profiles(workload)
    alone_ipcs = [alone[name] for name in workload]
    ws: Dict[str, float] = {}
    refreshes: Dict[str, float] = {}
    hot: Dict[str, float] = {}
    for policy_name in POLICIES:
        policy = make_policy(policy_name, config,
                             match_prob=_match_prob_for(profiles),
                             seed=seed)
        result: SimResult = run(profiles, policy, config, seed=seed,
                                n_instructions=n_instructions)
        ws[policy_name] = weighted_speedup(result.ipcs, alone_ipcs)
        refreshes[policy_name] = result.row_refreshes_per_window
        hot[policy_name] = result.avg_high_rate_fraction
    return WorkloadOutcome(workload_id=workload_id, apps=list(workload),
                           weighted_speedup=ws, row_refreshes=refreshes,
                           high_rate_fraction=hot)


def _engine_fn(engine: str):
    if engine == "detailed":
        return simulate_detailed
    if engine == "fast":
        return simulate
    raise ValueError(f"unknown engine {engine!r}")


def run_fig16(n_workloads: int = 32, config: Optional[SystemConfig] = None,
              seed: int = 2016,
              n_instructions: int = 120_000,
              engine: str = "detailed") -> Fig16Summary:
    """The full Figure 16 sweep.

    Alone-run IPCs (the weighted-speedup denominators) are measured
    once per application on the baseline-refresh system, as is
    standard for multi-programmed studies.
    """
    cfg = config or DEFAULT_CONFIG_32G
    workloads = make_workloads(n_workloads=n_workloads, seed=seed)
    needed = sorted({name for mix in workloads for name in mix})
    alone_fn = (alone_ipc_detailed if engine == "detailed"
                else alone_ipc)
    alone: Dict[str, float] = {}
    for name in needed:
        policy = make_policy("baseline", cfg)
        alone[name] = alone_fn(app(name), policy, cfg, seed=seed,
                               n_instructions=n_instructions)
    outcomes = [
        evaluate_workload(mix, i + 1, cfg, alone, seed=seed + i,
                          n_instructions=n_instructions, engine=engine)
        for i, mix in enumerate(workloads)
    ]
    return Fig16Summary(outcomes=outcomes)

"""RAIDR-style retention binning (the paper's refresh baseline [46]).

RAIDR profiles which rows contain weak cells and refreshes those rows
at the full 64 ms rate, everything else at 256 ms - regardless of what
the rows currently hold. DC-REF starts from the same profile but adds
the content check. This module derives the row bins, either
statistically (fleet fraction) or from an actual PARBOR campaign.
"""

from __future__ import annotations

from typing import Set, Tuple

import numpy as np

__all__ = ["retention_bins", "bins_from_failures", "weak_row_fraction"]

Coord = Tuple[int, int, int, int]


def retention_bins(n_rows: int, weak_fraction: float,
                   rng: np.random.Generator) -> np.ndarray:
    """Random weak-row mask at the profiled fleet fraction (16.4%)."""
    if not 0.0 <= weak_fraction <= 1.0:
        raise ValueError("weak_fraction must be a probability")
    return rng.random(n_rows) < weak_fraction


def bins_from_failures(detected: Set[Coord], n_chips: int, n_banks: int,
                       n_rows: int) -> np.ndarray:
    """Weak-row mask derived from PARBOR's detected failures.

    Returns a bool array of shape ``(n_chips, n_banks, n_rows)``: True
    where the row holds at least one data-dependent failure and must
    stay at the fast refresh rate unless DC-REF clears it.
    """
    mask = np.zeros((n_chips, n_banks, n_rows), dtype=bool)
    for chip, bank, row, _col in detected:
        if chip < n_chips and bank < n_banks and row < n_rows:
            mask[chip, bank, row] = True
    return mask


def weak_row_fraction(mask: np.ndarray) -> float:
    """Fraction of rows binned weak (RAIDR's high-rate fraction)."""
    return float(mask.mean()) if mask.size else 0.0

"""DC-REF: data content-based refresh (the paper's Section 8)."""

from .dclat import DcLatPolicy
from .content import (VulnerableRow, build_vulnerability_map,
                      row_matches_worst_case)
from .evaluate import (Fig16Summary, UnderRefreshReport, WorkloadOutcome,
                       evaluate_workload, guardbanded_bins, run_fig16,
                       under_refresh_report)
from .profiling import RetentionProfile, profile_retention
from .raidr import bins_from_failures, retention_bins, weak_row_fraction

__all__ = [
    "Fig16Summary", "UnderRefreshReport", "VulnerableRow",
    "WorkloadOutcome", "bins_from_failures", "build_vulnerability_map",
    "evaluate_workload", "guardbanded_bins",
    "DcLatPolicy", "RetentionProfile", "profile_retention",
    "retention_bins", "row_matches_worst_case", "run_fig16",
    "under_refresh_report", "weak_row_fraction",
]

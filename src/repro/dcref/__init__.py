"""DC-REF: data content-based refresh (the paper's Section 8)."""

from .dclat import DcLatPolicy
from .content import (VulnerableRow, build_vulnerability_map,
                      row_matches_worst_case)
from .evaluate import (Fig16Summary, WorkloadOutcome, evaluate_workload,
                       run_fig16)
from .profiling import RetentionProfile, profile_retention
from .raidr import bins_from_failures, retention_bins, weak_row_fraction

__all__ = [
    "Fig16Summary", "VulnerableRow", "WorkloadOutcome",
    "bins_from_failures", "build_vulnerability_map", "evaluate_workload",
    "DcLatPolicy", "RetentionProfile", "profile_retention",
    "retention_bins", "row_matches_worst_case", "run_fig16",
    "weak_row_fraction",
]

"""Retention profiling: deriving RAIDR's row bins from real tests.

RAIDR (the paper's refresh baseline, its ref [46]) needs to know which
rows contain low-retention cells; the paper "collected the fraction of
weak cells ... from real chips, using our FPGA-based infrastructure".
This module is that profiling campaign against the simulated chips:
write solid backgrounds (both polarities, covering true and anti
cells), wait out a *relaxed* refresh interval, and bin every row by
whether anything failed.

Rows that fail at the relaxed interval must keep the fast 64 ms rate
(under RAIDR unconditionally; under DC-REF only while their content
matches the worst-case pattern); everything else can refresh at the
relaxed rate.

Two robustness hooks harden the profile against an unstable substrate:

* a **quarantine guardband** - rows holding cells a repeat-and-vote
  campaign classified unstable (:class:`repro.robust.QuarantineSet`)
  are forced into the weak bin, so a cell that failed *inconsistently*
  can never end up at the relaxed refresh rate;
* a **drift gate** - each profiling round's failing-row set is
  signed (:func:`repro.robust.profile_signature`) and the maximum
  pairwise drift is checked against a threshold, failing closed
  (:class:`repro.robust.ProfileDriftError`) or degrading to a flagged
  profile when ``strict=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import obs
from ..core.patterns import solid
from ..dram.controller import MemoryController

__all__ = ["RetentionProfile", "profile_retention"]


@dataclass
class RetentionProfile:
    """Outcome of a retention-profiling campaign.

    Attributes:
        interval_s: the relaxed interval rows were screened at.
        weak_rows: (chip, bank) -> bool row mask; True rows failed.
        tests: whole-chip tests spent.
        integrity: per-round signature comparison
            (:class:`repro.robust.ProfileIntegrity`); None unless the
            campaign ran with a ``drift_threshold``.
        guardbanded_rows: rows forced into the weak bin purely by the
            quarantine guardband (they passed the screen itself).
    """

    interval_s: float
    weak_rows: Dict[Tuple[int, int], np.ndarray]
    tests: int
    integrity: Optional[object] = None
    guardbanded_rows: int = 0

    def weak_row_fraction(self) -> float:
        total = sum(mask.size for mask in self.weak_rows.values())
        weak = sum(int(mask.sum()) for mask in self.weak_rows.values())
        return weak / total if total else 0.0

    def mask_array(self, n_chips: int, n_banks: int,
                   n_rows: int) -> np.ndarray:
        """Dense ``(chips, banks, rows)`` mask for policy construction."""
        out = np.zeros((n_chips, n_banks, n_rows), dtype=bool)
        for (chip, bank), mask in self.weak_rows.items():
            out[chip, bank, :len(mask)] = mask
        return out


def profile_retention(controllers: Sequence[MemoryController],
                      interval_s: float = 0.256,
                      temperature_c: float = 45.0,
                      rounds: int = 2,
                      quarantine=None,
                      drift_threshold: Optional[float] = None,
                      strict: bool = True) -> RetentionProfile:
    """Screen every row at a relaxed refresh interval.

    Args:
        controllers: one per chip.
        interval_s: the relaxed interval to qualify rows for (RAIDR
            and DC-REF use 256 ms).
        temperature_c: operating temperature during the screen.
        rounds: repetitions of the solid-pattern pair (randomly-timed
            failures like VRT need more than one exposure to surface).
        quarantine: optional :class:`repro.robust.QuarantineSet`;
            every quarantined cell's row is guardbanded into the weak
            bin regardless of what the screen observed.
        drift_threshold: when set (and ``rounds > 1``), compare the
            per-round failing-row signatures and gate on their maximum
            pairwise drift (see :func:`repro.robust.check_drift`).
        strict: with a tripped drift gate, raise
            :class:`repro.robust.ProfileDriftError` (True) or return
            the profile with ``integrity.ok == False`` (False).

    Returns:
        A :class:`RetentionProfile`. Chip conditions are restored to
        the test defaults afterwards.
    """
    if not controllers:
        raise ValueError("need at least one controller")
    weak: Dict[Tuple[int, int], np.ndarray] = {}
    round_rows: List[Set[Tuple[int, int, int]]] = [
        set() for _ in range(rounds)]
    tests = 0
    for chip_idx, ctrl in enumerate(controllers):
        chip = ctrl.chip
        chip.set_conditions(temperature_c=temperature_c,
                            refresh_interval_s=interval_s)
        for bank_idx in range(chip.n_banks):
            weak[(chip_idx, bank_idx)] = np.zeros(chip.n_rows, dtype=bool)
        try:
            for round_idx in range(rounds):
                for value in (0, 1):
                    per_bank = ctrl.test_pattern(solid(ctrl.row_bits,
                                                       value))
                    tests += 1
                    for bank_idx, (rows, _cols) in enumerate(per_bank):
                        weak[(chip_idx, bank_idx)][rows] = True
                        round_rows[round_idx].update(
                            (chip_idx, bank_idx, int(r))
                            for r in rows.tolist())
        finally:
            chip.set_conditions()

    integrity = None
    if drift_threshold is not None and rounds > 1:
        from ..robust.integrity import check_drift

        integrity = check_drift(round_rows, drift_threshold,
                                strict=strict,
                                context="retention-profile")

    guardbanded = 0
    if quarantine:
        for chip_idx, bank_idx, row in quarantine.rows():
            mask = weak.get((chip_idx, bank_idx))
            if mask is not None and 0 <= row < len(mask) \
                    and not mask[row]:
                mask[row] = True
                guardbanded += 1
    if obs.enabled():
        obs.inc("profile.rounds", tests)
        if guardbanded:
            obs.inc("profile.guardbanded_rows", guardbanded)
    return RetentionProfile(interval_s=interval_s, weak_rows=weak,
                            tests=tests, integrity=integrity,
                            guardbanded_rows=guardbanded)

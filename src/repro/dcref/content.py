"""Exact worst-case-pattern content matching (DC-REF's write check).

DC-REF flags a row for fast refresh when the data just written matches
the worst-case pattern at any of the row's vulnerable cells: the
victim holds the charged value while its PARBOR-located neighbours
hold the opposite (paper Section 8). This module is the exact matcher
used when a real failure profile is available (examples, tests); the
system simulator uses its statistical image (per-app match
probability) for speed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

__all__ = ["VulnerableRow", "row_matches_worst_case",
           "build_vulnerability_map"]

Coord = Tuple[int, int, int, int]


class VulnerableRow:
    """The vulnerable columns of one row plus the distance set."""

    def __init__(self, columns: Sequence[int],
                 distances: Sequence[int], row_bits: int) -> None:
        self.columns = np.asarray(sorted(set(columns)), dtype=np.int64)
        self.distances = sorted({int(d) for d in distances if d != 0},
                                key=lambda d: (abs(d), d))
        if not self.distances:
            raise ValueError("need a non-empty distance set")
        self.row_bits = row_bits

    def matches(self, content: np.ndarray) -> bool:
        return row_matches_worst_case(content, self.columns,
                                      self.distances)


def row_matches_worst_case(content: np.ndarray,
                           vulnerable_cols: Sequence[int],
                           distances: Sequence[int]) -> bool:
    """Does this row content hit any vulnerable cell's worst case?

    A vulnerable cell at column ``c`` is in the worst case when it
    holds 1 while every in-row neighbour ``c + d`` holds 0 (the
    inverse polarity - 0 surrounded by 1s - is equally dangerous for
    anti cells, so both are checked).
    """
    content = np.asarray(content, dtype=np.uint8)
    cols = np.asarray(vulnerable_cols, dtype=np.int64)
    if len(cols) == 0:
        return False
    n = len(content)
    for polarity in (1, 0):
        candidate = content[cols] == polarity
        if not candidate.any():
            continue
        worst = candidate.copy()
        for d in distances:
            pos = cols + d
            in_row = (pos >= 0) & (pos < n)
            opposite = np.ones(len(cols), dtype=bool)
            opposite[in_row] = content[pos[in_row]] != polarity
            worst &= opposite
        if worst.any():
            return True
    return False


def build_vulnerability_map(detected: Set[Coord], distances: List[int],
                            row_bits: int
                            ) -> Dict[Tuple[int, int, int], VulnerableRow]:
    """Index PARBOR's detected failures by (chip, bank, row).

    The result maps each row with at least one data-dependent failure
    to a :class:`VulnerableRow` matcher - the bridge between a PARBOR
    campaign and a deployable DC-REF write filter.
    """
    per_row: Dict[Tuple[int, int, int], List[int]] = {}
    for chip, bank, row, col in detected:
        per_row.setdefault((chip, bank, row), []).append(col)
    return {key: VulnerableRow(cols, distances, row_bits)
            for key, cols in per_row.items()}

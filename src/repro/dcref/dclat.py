"""DC-LAT: data-content-aware DRAM latency reduction.

The paper's closing suggestion (Section 8): "similar data-content
aware optimizations can also be developed on top of DRAM latency
reduction mechanisms [17, 18, 27, 43, 69] to achieve further latency
reduction benefits." Adaptive-Latency DRAM (its ref [43]) shortens
tRCD/tCAS for accesses that can tolerate a reduced charge margin;
content awareness extends the eligible set: a row whose *current*
content cannot trigger its coupling failures can be accessed with the
reduced timings even if it holds vulnerable cells.

:class:`DcLatPolicy` therefore extends DC-REF's per-row content
tracking with an access-time query: rows that are not "hot" (no
vulnerable cell in its worst-case configuration) are eligible for
scaled tRCD/tCAS. The command-level controller honours the scaling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.params import SystemConfig
from ..sim.refresh import DcRefPolicy

__all__ = ["DcLatPolicy"]


class DcLatPolicy(DcRefPolicy):
    """DC-REF refresh plus content-gated access-latency reduction.

    Attributes:
        access_scale: multiplier applied to tRCD and tCAS for accesses
            to content-safe rows. AL-DRAM measures 20-30% reductions
            at typical conditions; 0.75 is the conservative default.
    """

    name = "dc-lat"

    def __init__(self, config: SystemConfig, match_prob: float,
                 seed: int = 0, access_scale: float = 0.75,
                 initial_match: Optional[float] = None,
                 weak_mask: Optional[np.ndarray] = None) -> None:
        if not 0.0 < access_scale <= 1.0:
            raise ValueError("access_scale must be in (0, 1]")
        super().__init__(config, match_prob=match_prob, seed=seed,
                         initial_match=initial_match,
                         weak_mask=weak_mask)
        self.access_scale = float(access_scale)

    def fast_ok(self, bank: int, row: int) -> bool:
        """May this row be accessed with the reduced timings?

        Safe unless the row currently holds the worst-case pattern at
        one of its vulnerable cells (the same "hot" state that forces
        the fast refresh rate).
        """
        return not self.hot[bank, row]

    def fast_fraction(self) -> float:
        """Fraction of rows currently eligible for fast access."""
        return 1.0 - self._hot_count / self.total_rows

"""Paper-style formatting of experiment results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_distance_set", "format_percent"]


def format_distance_set(distances: Iterable[int]) -> str:
    """Render a signed distance set the way the paper does.

    Symmetric pairs collapse to ``+-d``; lone signs keep their sign.
    """
    ds = set(int(d) for d in distances)
    parts: List[str] = []
    for mag in sorted({abs(d) for d in ds}):
        if mag == 0:
            parts.append("0")
        elif mag in ds and -mag in ds:
            parts.append(f"+-{mag}")
        elif mag in ds:
            parts.append(f"+{mag}")
        else:
            parts.append(f"-{mag}")
    return "{" + ", ".join(parts) + "}"


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-padded columns."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(c) for c in row] for row in rows)
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = "  ".join(c.ljust(w) for c, w in zip(row, widths))
        lines.append(line.rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)

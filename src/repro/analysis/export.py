"""Machine-readable export of experiment results (CSV / JSON).

The paper promised a data release alongside the source; these helpers
serialise the experiment drivers' outputs so downstream analysis
(plotting, statistics) does not have to re-run the simulations.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Sequence, TextIO

from ..core.detector import ParborResult
from ..obs import MetricsRegistry
from .experiments import CoverageSplit, ModuleComparison

__all__ = ["comparisons_to_csv", "comparisons_to_json",
           "campaign_to_json", "metrics_to_json", "ranking_to_csv"]


def comparisons_to_csv(comparisons: Sequence[ModuleComparison],
                       fh: TextIO) -> None:
    """Figure 12 rows as CSV."""
    writer = csv.writer(fh)
    writer.writerow(["module", "budget", "parbor_failures",
                     "random_failures", "extra_failures",
                     "extra_percent", "parbor_only", "random_only",
                     "both"])
    for c in comparisons:
        writer.writerow([c.module_id, c.budget, c.parbor_failures,
                         c.random_failures, c.extra_failures,
                         round(c.extra_percent, 3), c.parbor_only,
                         c.random_only, c.both])


def comparisons_to_json(comparisons: Sequence[ModuleComparison],
                        fh: TextIO) -> None:
    """Figure 12/13 rows as JSON (includes the coverage split)."""
    payload = []
    for c in comparisons:
        split = CoverageSplit.from_comparison(c)
        payload.append({
            "module": c.module_id,
            "budget": c.budget,
            "parbor_failures": c.parbor_failures,
            "random_failures": c.random_failures,
            "extra_percent": round(c.extra_percent, 3),
            "only_parbor": round(split.only_parbor, 5),
            "only_random": round(split.only_random, 5),
            "both": round(split.both, 5),
        })
    json.dump(payload, fh, indent=2)


def campaign_to_json(result: ParborResult, fh: TextIO) -> None:
    """One PARBOR campaign: distances, per-level record, budget."""
    payload = {
        "distances": result.distances,
        "magnitudes": result.magnitudes(),
        "tests_per_level": result.recursion.tests_per_level,
        "budget": {
            "discovery": result.n_discovery_tests,
            "recursion": result.n_recursion_tests,
            "sweep": result.n_sweep_rounds,
            "total": result.total_tests,
        },
        "detected_failures": len(result.detected),
        "levels": [
            {
                "level": lv.level,
                "region_size": lv.region_size,
                "tests": lv.tests,
                "kept_distances": lv.kept_distances,
                "discarded_marginal": lv.discarded_marginal,
                "active_victims": lv.active_victims,
            }
            for lv in result.recursion.levels
        ],
    }
    if result.recovery is not None:
        payload["recovery"] = {
            "attempted": result.recovery.attempted,
            "recovered": len(result.recovery),
            "tests": result.recovery.tests,
        }
    json.dump(payload, fh, indent=2)


def metrics_to_json(metrics: MetricsRegistry, fh: TextIO) -> None:
    """An observability metrics registry as JSON.

    The payload is :meth:`MetricsRegistry.to_dict` - ``counters`` plus
    ``histograms`` - sorted for diff-stable output.  Counters outside
    the ``proc.`` namespace are identical for every ``--jobs`` value;
    histograms carry wall-clock time and are not.
    """
    json.dump(metrics.to_dict(), fh, indent=2, sort_keys=True)


def ranking_to_csv(histograms: Dict[int, Dict[int, float]],
                   fh: TextIO) -> None:
    """Figure 15-style sample-size sweep as CSV (distance x size)."""
    sizes = sorted(histograms)
    distances: List[int] = sorted({d for hist in histograms.values()
                                   for d in hist})
    writer = csv.writer(fh)
    writer.writerow(["distance"] + [f"n_{s}" for s in sizes])
    for d in distances:
        writer.writerow([d] + [round(histograms[s].get(d, 0.0), 5)
                               for s in sizes])

"""High-level drivers for every evaluation experiment in the paper.

Each function regenerates one table or figure of the paper's Section 7
against the simulated chip fleet. The benchmarks under ``benchmarks/``
call these drivers and print paper-style rows; the examples use them
interactively. Figure 16 (DC-REF) lives in :mod:`repro.sim` /
:mod:`repro.dcref`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.config import ParborConfig
from ..core.baselines import random_pattern_test
from ..core.detector import ParborResult, controllers_for, run_parbor
from ..core.ranking import normalised_ranking
from ..dram.module import DramModule
from ..dram.vendors import make_module, vendor
from ..runtime.fleet import run_fleet
from ..runtime.specs import CampaignSpec

__all__ = [
    "ModuleComparison", "CoverageSplit", "recursion_for_vendor",
    "compare_module", "fleet_comparison", "fleet_specs",
    "coverage_split", "ranking_histogram", "sample_size_sweep",
    "temperature_sensitivity", "random_budget_sweep", "DEFAULT_N_ROWS",
]

#: Rows per simulated bank in the fleet experiments. The paper's chips
#: have 32 K rows; we scale down for tractable pure-Python runs - the
#: per-module failure counts scale accordingly (see EXPERIMENTS.md).
DEFAULT_N_ROWS = 128


def recursion_for_vendor(vendor_name: str, seed: int = 2016,
                         n_rows: int = DEFAULT_N_ROWS,
                         sample_size: int = 2000,
                         config: Optional[ParborConfig] = None,
                         rounds: int = 1,
                         noise=None) -> ParborResult:
    """Run PARBOR's neighbour search on one chip of a vendor.

    Drives Table 1 (tests per level) and Figure 11 (distances per
    level).

    Args:
        rounds: repeat-and-vote repetitions (``1`` = legacy).
        noise: optional :class:`repro.dram.faults.NoiseSpec` - injects
            a seeded device-noise model into every bank before the
            campaign (the Figure 14/15 robustness goldens).
    """
    profile = vendor(vendor_name)
    chip = profile.make_chip(seed=seed, n_rows=n_rows)
    if noise is not None:
        from ..dram.faults import DeviceNoiseModel
        from ..runtime.seeds import ladder_seed

        for bank_idx, bank in enumerate(chip.banks):
            bank.noise = DeviceNoiseModel(
                noise, n_rows=bank.n_rows, row_bits=bank.row_bits,
                seed=ladder_seed(seed, "device-noise", 0, bank_idx))
    cfg = config or ParborConfig(sample_size=sample_size)
    return run_parbor(chip, cfg, seed=seed + 1, run_sweep=False,
                      rounds=rounds)


@dataclass
class ModuleComparison:
    """PARBOR vs. equal-budget random test on one module (Figure 12)."""

    module_id: str
    budget: int
    parbor_failures: int
    random_failures: int
    parbor_only: int
    random_only: int
    both: int

    @property
    def extra_failures(self) -> int:
        return self.parbor_failures - self.random_failures

    @property
    def extra_percent(self) -> float:
        if self.random_failures == 0:
            return 0.0
        return 100.0 * self.extra_failures / self.random_failures


def compare_module(module: DramModule, seed: int = 0,
                   config: Optional[ParborConfig] = None,
                   rounds: int = 1
                   ) -> Tuple[ModuleComparison, ParborResult]:
    """Run the full PARBOR campaign and the equal-budget random test.

    ``rounds > 1`` runs PARBOR with the repeat-and-vote policy; the
    random baseline keeps the (now larger) equal budget.
    """
    cfg = config or ParborConfig(sample_size=4000)
    result = run_parbor(module, cfg, seed=seed, rounds=rounds)
    controllers = controllers_for(module)
    rng = np.random.default_rng(seed + 7919)
    rand = random_pattern_test(controllers, n_tests=max(1, result.total_tests),
                               rng=rng)
    p, r = result.detected, rand
    comparison = ModuleComparison(
        module_id=module.module_id, budget=result.total_tests,
        parbor_failures=len(p), random_failures=len(r),
        parbor_only=len(p - r), random_only=len(r - p), both=len(p & r))
    return comparison, result


def fleet_specs(modules_per_vendor: int, seed: int = 2016,
                n_rows: int = DEFAULT_N_ROWS,
                config: Optional[ParborConfig] = None,
                trace: bool = False,
                rounds: int = 1) -> List[CampaignSpec]:
    """Module-compare specs with the historical seed-draw order.

    The per-module seeds are drawn from one generator in the exact
    sequence the original serial loop used (build seed then run seed,
    vendors A/B/C outer, modules inner), so fleets stay byte-identical
    to the pre-runtime code for any ``jobs``.

    Args:
        trace: mark every spec for observability collection (the
            ``--trace``/``--metrics`` CLI path); results are identical
            either way.
        rounds: repeat-and-vote repetitions (``1`` = legacy).
    """
    rng = np.random.default_rng(seed)
    specs: List[CampaignSpec] = []
    for name in ("A", "B", "C"):
        for i in range(modules_per_vendor):
            build_seed = int(rng.integers(0, 2**63))
            run_seed = int(rng.integers(0, 2**31))
            specs.append(CampaignSpec(
                experiment="compare", vendor=name, index=i + 1,
                build_seed=build_seed, run_seed=run_seed,
                n_rows=n_rows, config=config, trace=trace,
                rounds=rounds))
    return specs


#: Backwards-compatible private alias (pre-observability name).
_fleet_specs = fleet_specs


def fleet_comparison(modules_per_vendor: int = 6, seed: int = 2016,
                     n_rows: int = DEFAULT_N_ROWS,
                     config: Optional[ParborConfig] = None,
                     jobs: int = 1) -> List[ModuleComparison]:
    """Figure 12: extra failures across the whole 18-module fleet.

    Args:
        jobs: worker processes for the campaign fan-out; results are
            identical for every value (see :mod:`repro.runtime`).
    """
    specs = fleet_specs(modules_per_vendor, seed, n_rows, config)
    fleet = run_fleet(specs, jobs=jobs)
    return [o.comparison for o in fleet.outcomes]


@dataclass
class CoverageSplit:
    """Figure 13: who found which share of the union of failures."""

    module_id: str
    only_parbor: float
    only_random: float
    both: float

    @classmethod
    def from_comparison(cls, comparison: ModuleComparison
                        ) -> "CoverageSplit":
        union = comparison.parbor_only + comparison.random_only \
            + comparison.both
        if union == 0:
            return cls(comparison.module_id, 0.0, 0.0, 0.0)
        return cls(module_id=comparison.module_id,
                   only_parbor=comparison.parbor_only / union,
                   only_random=comparison.random_only / union,
                   both=comparison.both / union)


def coverage_split(seed: int = 2016, n_rows: int = DEFAULT_N_ROWS,
                   config: Optional[ParborConfig] = None,
                   jobs: int = 1) -> List[CoverageSplit]:
    """Figure 13 for the first module of each vendor (A1, B1, C1)."""
    fleet = run_fleet(fleet_specs(1, seed, n_rows, config), jobs=jobs)
    return [CoverageSplit.from_comparison(o.comparison)
            for o in fleet.outcomes]


def ranking_histogram(vendor_name: str, level: int = 4, seed: int = 2016,
                      n_rows: int = DEFAULT_N_ROWS,
                      sample_size: int = 2000, rounds: int = 1,
                      noise=None) -> Dict[int, float]:
    """Figure 14: normalised frequency of region distances at a level."""
    result = recursion_for_vendor(vendor_name, seed=seed, n_rows=n_rows,
                                  sample_size=sample_size, rounds=rounds,
                                  noise=noise)
    for lv in result.recursion.levels:
        if lv.level == level:
            return normalised_ranking(lv.reporters)
    raise ValueError(f"recursion never reached level {level}")


def sample_size_sweep(vendor_name: str, sample_sizes: Sequence[int],
                      level: int = 4, seed: int = 2016,
                      n_rows: int = 256, rounds: int = 1,
                      noise=None) -> Dict[int, Dict[int, float]]:
    """Figure 15: ranking histograms for several initial sample sizes.

    The same module is re-tested with progressively larger victim
    samples; small samples leave noise distances looking frequent.
    """
    out: Dict[int, Dict[int, float]] = {}
    for size in sample_sizes:
        result = recursion_for_vendor(vendor_name, seed=seed,
                                      n_rows=n_rows, sample_size=size,
                                      rounds=rounds, noise=noise)
        for lv in result.recursion.levels:
            if lv.level == level:
                out[size] = normalised_ranking(lv.reporters)
                break
        else:
            out[size] = {}
    return out


def temperature_sensitivity(vendor_name: str,
                            temperatures_c: Sequence[float] = (40.0, 45.0,
                                                               50.0),
                            seed: int = 2016,
                            n_rows: int = DEFAULT_N_ROWS,
                            sample_size: int = 2000):
    """Section 6's sensitivity study: PARBOR across temperatures.

    The paper runs at 45 degC with sensitivity tests at 40 and 50 degC
    and finds that the neighbour locations PARBOR determines are *not*
    temperature dependent (more cells fail when hotter, but they fail
    at the same distances). Returns ``{temperature: ParborResult}`` for
    the same chip re-tested at each temperature.
    """
    profile = vendor(vendor_name)
    chip = profile.make_chip(seed=seed, n_rows=n_rows)
    cfg = ParborConfig(sample_size=sample_size)
    results = {}
    for t in temperatures_c:
        chip.set_conditions(temperature_c=t)
        results[t] = run_parbor(chip, cfg, seed=seed + 1, run_sweep=False)
    chip.set_conditions()
    return results


def random_budget_sweep(vendor_name: str,
                        budget_multipliers: Sequence[float] = (1, 2, 4,
                                                               8, 16),
                        seed: int = 2016,
                        n_rows: int = DEFAULT_N_ROWS,
                        config: Optional[ParborConfig] = None):
    """How much budget must random testing burn to match PARBOR?

    The paper's Section 3 argues random-pattern testing "takes very
    long ... and makes it difficult to provide any guarantees". This
    driver runs PARBOR once, then gives the random test multiples of
    PARBOR's budget and reports the coverage of PARBOR's detected set
    it reaches at each multiple.

    Returns:
        ``(parbor_result, {multiplier: coverage_fraction})``.
    """
    from .experiments import DEFAULT_N_ROWS  # self-import guard
    profile = vendor(vendor_name)
    chip = profile.make_chip(seed=seed, n_rows=n_rows)
    cfg = config or ParborConfig(sample_size=2000)
    result = run_parbor(chip, cfg, seed=seed + 1)

    controllers = controllers_for(chip)
    rng = np.random.default_rng(seed + 7919)
    coverages: Dict[float, float] = {}
    found: set = set()
    spent = 0
    target = result.detected
    for multiplier in sorted(budget_multipliers):
        budget = int(round(multiplier * result.total_tests))
        extra = budget - spent
        if extra > 0:
            found |= random_pattern_test(controllers, n_tests=extra,
                                         rng=rng)
            spent = budget
        coverages[multiplier] = (len(found & target) / len(target)
                                 if target else 1.0)
    return result, coverages

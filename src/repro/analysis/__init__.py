"""Experiment drivers and report formatting for the evaluation."""

from .experiments import (DEFAULT_N_ROWS, CoverageSplit, ModuleComparison,
                          compare_module, coverage_split, fleet_comparison,
                          fleet_specs, ranking_histogram,
                          recursion_for_vendor, random_budget_sweep,
                          sample_size_sweep, temperature_sensitivity)
from .ascii import grouped_hbar_chart, hbar_chart
from .export import (campaign_to_json, comparisons_to_csv,
                     comparisons_to_json, metrics_to_json, ranking_to_csv)
from .tables import format_distance_set, format_percent, format_table

__all__ = [
    "DEFAULT_N_ROWS", "CoverageSplit", "ModuleComparison", "compare_module",
    "coverage_split", "fleet_comparison", "fleet_specs",
    "format_distance_set", "format_percent", "format_table",
    "ranking_histogram", "recursion_for_vendor", "sample_size_sweep",
    "temperature_sensitivity", "random_budget_sweep", "campaign_to_json",
    "comparisons_to_csv", "comparisons_to_json", "metrics_to_json",
    "ranking_to_csv", "grouped_hbar_chart", "hbar_chart",
]

"""Terminal bar charts for the evaluation figures.

The paper's figures are bar/line charts; in a dependency-free terminal
environment these render them as horizontal ASCII bars, used by the
examples (and handy in CI logs). Values are scaled to a fixed width;
labels and values stay exact.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = ["hbar_chart", "grouped_hbar_chart"]

Number = Union[int, float]
FULL = "#"


def _bar(value: float, peak: float, width: int) -> str:
    if peak <= 0:
        return ""
    n = int(round(width * max(0.0, value) / peak))
    return FULL * n


def hbar_chart(data: Mapping[str, Number], width: int = 40,
               fmt: str = "{:.1f}",
               title: Optional[str] = None) -> str:
    """One horizontal bar per (label, value) pair.

    Args:
        data: label -> value (insertion order preserved).
        width: bar width of the largest value.
        fmt: value format.
        title: optional heading line.

    Returns:
        The chart as a multi-line string.
    """
    if not data:
        return title or ""
    labels = [str(k) for k in data]
    values = [float(v) for v in data.values()]
    peak = max(values)
    label_w = max(len(lb) for lb in labels)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        lines.append(f"{label.rjust(label_w)} | "
                     f"{_bar(value, peak, width)} {fmt.format(value)}")
    return "\n".join(lines)


def grouped_hbar_chart(groups: Mapping[str, Mapping[str, Number]],
                       width: int = 40, fmt: str = "{:.1f}",
                       title: Optional[str] = None) -> str:
    """Grouped bars: one block per outer key, one bar per inner key.

    All bars share a single scale so groups are comparable.
    """
    if not groups:
        return title or ""
    all_values = [float(v) for g in groups.values() for v in g.values()]
    if not all_values:
        return title or ""
    peak = max(all_values)
    inner_labels = [str(k) for g in groups.values() for k in g]
    label_w = max(len(lb) for lb in inner_labels) if inner_labels else 0
    lines: List[str] = [title] if title else []
    for group_name, series in groups.items():
        lines.append(f"{group_name}:")
        for label, value in series.items():
            value = float(value)
            lines.append(f"  {str(label).rjust(label_w)} | "
                         f"{_bar(value, peak, width)} "
                         f"{fmt.format(value)}")
    return "\n".join(lines)

#!/usr/bin/env python3
"""Quickstart: find a chip's neighbour distances and its failures.

Builds one simulated vendor-A DRAM chip (scrambled addresses, planted
coupling faults), runs the full PARBOR campaign against it through the
system-level memory-controller interface, and compares the result with
an equal-budget random-pattern test - the paper's core experiment in
~30 seconds.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import format_distance_set, format_table
from repro.core import (ParborConfig, controllers_for,
                        random_pattern_test, run_parbor)
from repro.dram import vendor


def main() -> None:
    profile = vendor("A")
    chip = profile.make_chip(seed=11, n_rows=128)
    print(f"Simulated vendor-{profile.name} chip: "
          f"{chip.n_rows} rows x {chip.row_bits} bits, "
          f"{chip.coupled_cell_count()} coupled cells "
          f"(ground-truth distances "
          f"{format_distance_set(chip.ground_truth_distances())})")

    # --- the PARBOR campaign -----------------------------------------
    result = run_parbor(chip, ParborConfig(sample_size=2000), seed=5)
    print(f"\nPARBOR found distances "
          f"{format_distance_set(result.distances)} using "
          f"{result.n_recursion_tests} recursive tests"
          f" (paper Table 1: 90 for vendor A)")
    rows = [[f"L{lv.level}", lv.region_size, lv.tests,
             format_distance_set(lv.kept_distances)]
            for lv in result.recursion.levels]
    print(format_table(["Level", "Region size", "Tests",
                        "Kept distances"], rows))

    # --- equal-budget comparison with the random baseline -------------
    rand = random_pattern_test(controllers_for(chip),
                               n_tests=result.total_tests,
                               rng=np.random.default_rng(99))
    p, r = result.detected, rand
    print(f"\nBudget: {result.total_tests} whole-chip tests each")
    print(f"PARBOR detected {len(p)} failing cells, "
          f"random patterns {len(r)} "
          f"({100 * (len(p) - len(r)) / len(r):+.1f}%)")
    print(f"Only PARBOR: {len(p - r)}, only random: {len(r - p)}, "
          f"both: {len(p & r)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Explore address scramblers: built-in vendors and your own.

Shows, for each vendor (and a custom step set), the physical layout of
one repeating block, the induced first- and second-order neighbour
distance sets, and the analytically planned PARBOR campaign against it
- a sandbox for the "what if the scrambler looked like X?" question.

Run:  python examples/scrambler_explorer.py
"""

from repro.analysis import format_distance_set, format_table
from repro.core import ParborConfig, plan_campaign
from repro.dram import custom_vendor, vendor


def describe(profile, threshold=0.06) -> list:
    mapping = profile.mapping(8192)
    plan = plan_campaign(mapping.neighbour_distance_set(),
                         ParborConfig(ranking_threshold=threshold))
    return [profile.name,
            format_distance_set(mapping.neighbour_distance_set(1)),
            format_distance_set(mapping.neighbour_distance_set(2)),
            " ".join(str(t) for t, _ in plan.levels),
            plan.total_tests,
            f"{plan.wall_clock_s():.0f} s"]


def show_block(profile, width=16) -> None:
    mapping = profile.mapping(8192)
    block = [int(x) for x in
             mapping.phys_to_sys()[:mapping.block_bits]]
    print(f"\nVendor {profile.name}: physical order of one "
          f"{mapping.block_bits}-bit block "
          f"(tiles of {mapping.tile_bits}):")
    for i in range(0, min(len(block), 4 * width), width):
        print("  " + " ".join(f"{b:4d}" for b in block[i:i + width]))
    if len(block) > 4 * width:
        print("  ...")


def main() -> None:
    profiles = [vendor(n) for n in "ABC"]
    profiles.append(custom_vendor("X", steps=(3, 11, 27),
                                  block_bits=256))
    rows = [describe(p, threshold=0.04 if p.name == "X" else 0.06)
            for p in profiles]
    print(format_table(
        ["Vendor", "1st-order distances", "2nd-order distances",
         "Planned tests/level", "Budget", "Wall clock"], rows))

    for p in profiles[:2]:
        show_block(p)

    print("\nThe planner predicts each campaign before any test runs; "
          "the recursion benches confirm the counts empirically.")


if __name__ == "__main__":
    main()

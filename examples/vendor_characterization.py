#!/usr/bin/env python3
"""Characterise the three vendors' address scramblers with PARBOR.

Each DRAM vendor scrambles system addresses differently; PARBOR learns
each mapping's neighbour distances from the outside, using only
write/wait/read. This example reproduces the paper's Section 7.1
characterisation - Table 1 test counts and Figure 11 distance sets -
for vendors A, B, and C, and shows the neighbour-aware sweep schedule
each distance set induces.

Run:  python examples/vendor_characterization.py
"""

from repro.analysis import format_distance_set, format_table
from repro.core import ParborConfig, build_schedule, run_parbor
from repro.dram import vendor


def characterise(name: str) -> list:
    profile = vendor(name)
    chip = profile.make_chip(seed=7, n_rows=128)
    result = run_parbor(chip, ParborConfig(sample_size=2000), seed=3,
                        run_sweep=False)
    schedule = build_schedule(chip.row_bits, result.distances)
    ok = tuple(result.magnitudes()) == profile.expected_magnitudes
    return [name,
            format_distance_set(result.distances),
            " ".join(str(t) for t in result.recursion.tests_per_level),
            result.recursion.total_tests,
            schedule.total_rounds,
            "yes" if ok else "NO"]


def main() -> None:
    print("Characterising vendors A, B, C "
          "(paper: 90/66/90 recursive tests)...\n")
    rows = [characterise(name) for name in "ABC"]
    print(format_table(
        ["Vendor", "Neighbour distances", "Tests per level", "Total",
         "Sweep rounds", "Matches design"], rows))
    print("\nEach vendor needs only a constant number of tests; the "
          "naive pair test would need 67 million per row (49 days).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""What PARBOR's failure map enables: a mitigation trade-off study.

Section 1 of the paper argues that system-level detection enables
better DRAM scaling by mitigating failures in the field. This example
characterises a chip, then compares the classic mitigation mechanisms
(its ref [35] runs the same comparison on real chips):

* word-level SEC-DED ECC - fixed 12.5% storage, covers sparse failures;
* row retirement - total coverage, costs the retired capacity;
* refresh binning - no capacity cost, keeps vulnerable rows fast;
* DC-REF - refresh binning plus the content check (see
  examples/dcref_refresh_study.py for its system-level evaluation).

Run:  python examples/mitigation_study.py
"""

from repro.analysis import format_table, hbar_chart
from repro.core import ParborConfig, run_parbor
from repro.dram import vendor
from repro.mitigate import compare_mitigations


def main() -> None:
    chip = vendor("A").make_chip(seed=17, n_rows=256, vulnerability=0.06)
    print("Characterising a lightly vulnerable vendor-A chip...")
    result = run_parbor(chip, ParborConfig(sample_size=1200), seed=2)
    print(f"PARBOR detected {len(result.detected)} data-dependent "
          f"failures at distances {result.magnitudes()}.\n")

    report = compare_mitigations(chip, result)
    print(format_table(
        ["Mechanism", "Coverage", "Overhead kind", "Overhead"],
        report.as_table_rows()))

    print("\nOverhead comparison (fraction of the protected resource):")
    print(hbar_chart({r.mechanism: 100 * r.overhead
                      for r in report.rows},
                     width=36, fmt="{:.1f}%"))

    print(f"\nECC detail: {report.ecc.words_with_failures} words hold "
          f"failures; {report.ecc.uncorrectable_words} have 2+ "
          f"vulnerable cells (uncorrectable by SEC-DED).")
    print("Without the failure map, none of these numbers - and none "
          "of these choices - are available to the system.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Future-node study: wider coupling and remapped-column recovery.

Two forward-looking scenarios the paper motivates but could not test
on 2011-2014 chips:

1. **More interfering neighbours** (Sections 1/3): scaled-down cells
   let the *second* physical neighbour disturb a victim. The naive
   search grows to O(n^3) - 1115 years - while the unchanged PARBOR
   campaign simply discovers the extended distance set.
2. **More remapped columns** (Section 7.3): victims steered to spare
   columns have irregular neighbourhoods that the regular sweep
   misses; adaptive per-victim group testing recovers their exact
   aggressors in O(log n) tests each.

Run:  python examples/future_node_study.py
"""

from repro.analysis import format_distance_set, format_table
from repro.core import (ParborConfig, exhaustive_test_time_s,
                        humanise_seconds, run_parbor)
from repro.dram import CouplingSpec, DramChip, vendor


def scenario_wider_coupling() -> None:
    print("=== Scenario 1: second-order coupling ===")
    profile = vendor("B")
    rows = []
    for frac in (0.0, 0.45):
        spec = CouplingSpec(n_cells=1500, second_order_fraction=frac)
        chip = DramChip(mapping=profile.mapping(8192), n_rows=96,
                        coupling_spec=spec, fault_spec=profile.faults,
                        seed=9)
        result = run_parbor(chip, ParborConfig(sample_size=1500),
                            seed=2, run_sweep=False)
        rows.append([f"{frac:.0%}",
                     format_distance_set(result.distances),
                     result.recursion.total_tests])
    print(format_table(
        ["2nd-order victims", "Distances PARBOR finds", "Tests"], rows))
    print(f"Naive 3-neighbour search: "
          f"{humanise_seconds(exhaustive_test_time_s(8192, 3))} per row.")


def scenario_remapped_columns() -> None:
    print("\n=== Scenario 2: remapped-column recovery ===")
    chip = vendor("B").make_chip(seed=13, n_rows=96)
    result = run_parbor(chip, ParborConfig(sample_size=1500), seed=4,
                        recover_remapped=True)
    recovery = result.recovery
    print(f"Residual victims probed: {recovery.attempted}")
    print(f"Recovered aggressor maps: {len(recovery)} "
          f"({recovery.tests} extra tests, "
          f"~{recovery.tests / max(1, recovery.attempted):.0f} per victim)")
    for coord, aggs in list(sorted(recovery.aggressors.items()))[:5]:
        _chip, bank, row, col = coord
        print(f"  bank {bank} row {row:3d} bit {col:4d} "
              f"<- aggressors at bits {aggs}")


def main() -> None:
    scenario_wider_coupling()
    scenario_remapped_columns()


if __name__ == "__main__":
    main()

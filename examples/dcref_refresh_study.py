#!/usr/bin/env python3
"""From PARBOR's failure map to DC-REF refresh savings.

The paper's Section 8 end to end: (1) run PARBOR on a chip to locate
its data-dependent failures and the worst-case pattern, (2) profile
row retention the way RAIDR does and derive the per-row vulnerability
map the memory controller would hold, (3) show the DC-REF write filter
deciding refresh rates from live content, and (4) run the multicore
simulation comparing refresh policies.

Run:  python examples/dcref_refresh_study.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ParborConfig, controllers_for, run_parbor
from repro.dcref import (bins_from_failures, build_vulnerability_map,
                         profile_retention, run_fig16,
                         weak_row_fraction)
from repro.dram import vendor
from repro.sim import DEFAULT_CONFIG_32G


def main() -> None:
    # -- 1. PARBOR campaign -------------------------------------------
    # A lightly vulnerable chip, so the per-row failure density at our
    # compressed geometry (128 rows vs the real 32 K) stays realistic.
    chip = vendor("A").make_chip(seed=21, n_rows=128, vulnerability=0.06)
    result = run_parbor(chip, ParborConfig(sample_size=2000), seed=8)
    print(f"PARBOR: {len(result.detected)} data-dependent failures, "
          f"distances {result.magnitudes()}")

    # -- 2. retention profiling + vulnerability map ---------------------
    profile = profile_retention(controllers_for(chip), interval_s=0.256)
    print(f"Retention profiling at 256 ms: "
          f"{profile.weak_row_fraction():.1%} of rows hold weak cells "
          f"(RAIDR profiled 16.4% on its fleet).")
    vmap = build_vulnerability_map(result.detected, result.distances,
                                   chip.row_bits)
    bins = bins_from_failures(result.detected, n_chips=1, n_banks=1,
                              n_rows=chip.n_rows)
    print(f"Rows holding data-dependent cells: {int(bins.sum())} "
          f"({weak_row_fraction(bins):.1%}) - RAIDR would refresh all "
          f"of them at 64 ms forever.")

    # -- 3. the DC-REF write filter ------------------------------------
    key, vrow = next(iter(sorted(vmap.items())))
    rng = np.random.default_rng(0)
    benign = np.zeros(chip.row_bits, dtype=np.uint8)
    hostile = np.ones(chip.row_bits, dtype=np.uint8)
    col = int(vrow.columns[0])
    for d in vrow.distances:
        if 0 <= col + d < chip.row_bits:
            hostile[col + d] = 0
    random_content = rng.integers(0, 2, chip.row_bits, dtype=np.uint8)
    print(f"\nDC-REF write filter on row {key}:")
    for label, content in (("all-zeros write", benign),
                           ("worst-case write", hostile),
                           ("random write", random_content)):
        rate = "64 ms" if vrow.matches(content) else "256 ms"
        print(f"  {label:18s} -> refresh at {rate}")

    # -- 4. system-level evaluation ------------------------------------
    print("\nSimulating 8 workloads x 3 refresh policies (32 Gbit)...")
    summary = run_fig16(n_workloads=8, config=DEFAULT_CONFIG_32G,
                        seed=2016, n_instructions=80_000)
    rows = [
        ["RAIDR", f"{summary.mean_improvement('raidr'):+.1f}%",
         f"{summary.mean_refresh_reduction('raidr'):.1f}%",
         f"{100 * summary.mean_high_rate_fraction('raidr'):.1f}%"],
        ["DC-REF", f"{summary.mean_improvement('dcref'):+.1f}%",
         f"{summary.mean_refresh_reduction('dcref'):.1f}%",
         f"{100 * summary.mean_high_rate_fraction('dcref'):.1f}%"],
    ]
    print(format_table(
        ["Policy", "Speedup vs 64ms", "Refresh cut", "Fast-rate rows"],
        rows))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's Figures 8-10 walk-through on a 16-bit toy row.

The paper illustrates the recursive test with a 16-cell row whose
physical neighbours sit at system distances {+-1, +-5} and four
strongly coupled victims (A, B, C, D). This example rebuilds that
setting - a scrambler with exactly those distances, four planted
victims - and prints the region distances found at every level,
mirroring Figure 10's union-of-distances table.

Run:  python examples/recursion_walkthrough.py
"""

import numpy as np

from repro.analysis import format_distance_set, format_table
from repro.core import ParborConfig, VictimSample, \
    recursive_neighbour_search
from repro.dram import (CouplingSpec, DramChip, FaultSpec,
                        MemoryController, find_step_path)
from repro.dram.cells import CoupledCellPopulation, NO_NEIGHBOUR
from repro.dram.mapping import AddressMapping


def toy_chip():
    """A 4-row chip of 16-bit rows with neighbour distances {+-1, +-5}."""
    path = find_step_path(16, steps=(1, -1, 5, -5))
    mapping = AddressMapping(row_bits=16, block_bits=16,
                             block_path=tuple(path), tile_bits=16)
    chip = DramChip(mapping=mapping, n_rows=4,
                    coupling_spec=CouplingSpec(n_cells=0),
                    fault_spec=FaultSpec(soft_error_rate=0.0), seed=0)
    return chip, mapping


def plant(chip, victims):
    """Strongly coupled victims with explicit dominant sides."""
    n = len(victims)
    rows = np.array([r for r, _, _ in victims])
    phys = np.array([p for _, p, _ in victims])
    left_dominant = np.array([side == "L" for _, _, side in victims])
    pop = CoupledCellPopulation(
        row=rows, phys=phys,
        left_phys=np.where(phys > 0, phys - 1, NO_NEIGHBOUR),
        right_phys=np.where(phys < 15, phys + 1, NO_NEIGHBOUR),
        w_left=np.where(left_dominant, 1.5, 0.1),
        w_right=np.where(left_dominant, 0.1, 1.5),
        p_fail=np.ones(n))
    chip.banks[0].coupled = pop
    return pop


def main() -> None:
    chip, mapping = toy_chip()
    print("Toy scrambler (physical order -> system address):")
    print(" ", [int(x) for x in mapping.phys_to_sys()])
    print("Induced neighbour distances:",
          format_distance_set(mapping.neighbour_distance_set()))

    # Four strongly coupled victims like the paper's A-D, with sides
    # chosen so that together they expose all four signed distances.
    victims = [(0, 3, "L"), (1, 2, "R"), (2, 6, "R"), (3, 12, "R")]
    plant(chip, victims)
    p2s = mapping.phys_to_sys()
    coords = [(0, 0, r, int(p2s[p])) for r, p, _ in victims]
    names = "ABCD"
    for name, (_, _, r, c) in zip(names, coords):
        print(f"Victim {name}: row {r}, system address {c}")

    config = ParborConfig(fanouts=(2, 2, 2, 2), sample_size=10,
                          ranking_threshold=0.2)
    ctrl = MemoryController(chip)
    result = recursive_neighbour_search(
        [ctrl], VictimSample.from_coords(coords), config)

    print("\nUnion of region distances per level (paper Figure 10):")
    rows = [[f"L{lv.level}", lv.region_size, lv.tests,
             format_distance_set(lv.kept_distances)]
            for lv in result.levels]
    print(format_table(["Level", "Region size", "Tests",
                        "Distances"], rows))
    print(f"\nFinal neighbour distances: "
          f"{format_distance_set(result.distances)} "
          f"(ground truth {{+-1, +-5}}) in {result.total_tests} tests "
          f"vs 16^2 = 256 for the naive pair test.")


if __name__ == "__main__":
    main()

"""DC-LAT: content-aware latency reduction."""

import pytest

from repro.dcref import DcLatPolicy
from repro.sim import (ChannelModel, DEFAULT_CONFIG_32G, DetailedTiming,
                       Request, app, make_policy, simulate_detailed)


def dclat(match_prob=0.165, seed=0, **kwargs):
    return DcLatPolicy(DEFAULT_CONFIG_32G, match_prob=match_prob,
                       seed=seed, **kwargs)


class TestPolicy:
    def test_is_also_a_refresh_policy(self):
        policy = dclat()
        # Inherits DC-REF's content-tracked refresh behaviour.
        assert policy.work_fraction() < 0.4
        assert policy.name == "dc-lat"

    def test_fast_ok_tracks_hot_state(self):
        import numpy as np
        policy = dclat(match_prob=1.0, initial_match=0.0)
        bank, row = map(int, np.argwhere(policy.weak)[0])
        assert policy.fast_ok(bank, row)
        policy.on_write(bank, row, match_draw=0.0)   # now worst-case
        assert not policy.fast_ok(bank, row)

    def test_fast_fraction_high(self):
        policy = dclat()
        assert policy.fast_fraction() > 0.95

    def test_access_scale_validated(self):
        with pytest.raises(ValueError):
            dclat(access_scale=0.0)
        with pytest.raises(ValueError):
            dclat(access_scale=1.5)


class TestControllerIntegration:
    def test_safe_row_gets_scaled_timings(self):
        tm = DetailedTiming()
        policy = dclat(match_prob=0.0, access_scale=0.5)  # all safe
        ch = ChannelModel(0, DEFAULT_CONFIG_32G, policy)
        ch.enqueue(Request(core=0, bank=0, row=5, is_write=False,
                           arrival=4000))
        done = ch.drain(10**9)[0]
        expected = 4000 + round(tm.t_rcd * 0.5) \
            + round(tm.t_cas * 0.5) + tm.t_burst
        assert done.completion == expected

    def test_hot_row_keeps_full_timings(self):
        import numpy as np
        tm = DetailedTiming()
        policy = dclat(match_prob=1.0, initial_match=1.0,
                       access_scale=0.5)
        # Find a weak (hence hot) row on a channel-0 bank.
        coords = np.argwhere(policy.hot)
        bank, row = next((int(b), int(r)) for b, r in coords
                         if b % DEFAULT_CONFIG_32G.n_channels == 0)
        ch = ChannelModel(0, DEFAULT_CONFIG_32G, policy)
        ch.enqueue(Request(core=0, bank=bank, row=row, is_write=False,
                           arrival=4000))
        done = ch.drain(10**9)[0]
        assert done.completion == 4000 + tm.t_rcd + tm.t_cas \
            + tm.t_burst

    def test_plain_policies_unaffected(self):
        tm = DetailedTiming()
        policy = make_policy("baseline", DEFAULT_CONFIG_32G)
        ch = ChannelModel(0, DEFAULT_CONFIG_32G, policy)
        ch.enqueue(Request(core=0, bank=0, row=5, is_write=False,
                           arrival=4000))
        done = ch.drain(10**9)[0]
        assert done.completion == 4000 + tm.t_rcd + tm.t_cas \
            + tm.t_burst


class TestEndToEnd:
    def test_dclat_beats_dcref(self):
        profiles = [app(n) for n in ("mcf", "libquantum", "lbm",
                                     "soplex")]
        cfg = DEFAULT_CONFIG_32G
        dcref_res = simulate_detailed(
            profiles, make_policy("dcref", cfg, seed=3), cfg, seed=3,
            n_instructions=30_000)
        dclat_res = simulate_detailed(
            profiles, dclat(seed=3), cfg, seed=3,
            n_instructions=30_000)
        assert sum(dclat_res.ipcs) > sum(dcref_res.ipcs)
        # Refresh behaviour identical to DC-REF (same content model).
        assert dclat_res.avg_work_fraction == pytest.approx(
            dcref_res.avg_work_fraction, abs=0.02)

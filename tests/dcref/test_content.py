"""Worst-case-pattern content matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dcref import (VulnerableRow, build_vulnerability_map,
                         row_matches_worst_case)


def content(bits):
    return np.asarray(bits, dtype=np.uint8)


class TestMatcher:
    def test_exact_worst_case_matches(self):
        # Victim at 4, neighbours at +-2: 1 surrounded by 0s.
        row = content([0, 0, 0, 0, 1, 0, 0, 0])
        assert row_matches_worst_case(row, [4], [-2, 2])

    def test_partial_pattern_does_not_match(self):
        row = content([0, 0, 1, 0, 1, 0, 0, 0])   # +(-2) neighbour is 1
        assert not row_matches_worst_case(row, [4], [-2, 2])

    def test_inverse_polarity_matches_too(self):
        # Anti cells: 0 surrounded by 1s is equally dangerous.
        row = content([1, 1, 1, 1, 0, 1, 1, 1])
        assert row_matches_worst_case(row, [4], [-2, 2])

    def test_uniform_content_never_matches(self):
        for v in (0, 1):
            row = content([v] * 16)
            assert not row_matches_worst_case(row, [4, 8], [-2, 2])

    def test_out_of_row_neighbours_ignored(self):
        # Victim at 0: the -2 neighbour is off-row; only +2 matters.
        row = content([1, 1, 0, 1])
        assert row_matches_worst_case(row, [0], [-2, 2])

    def test_empty_vulnerable_set_never_matches(self):
        assert not row_matches_worst_case(content([1, 0, 1]), [], [1])

    def test_any_vulnerable_cell_suffices(self):
        row = content([1, 1, 1, 0, 1, 0, 1, 1])
        # Cell 4 is in the worst case (1 with both +-1 neighbours 0);
        # cell 1 is not.
        assert row_matches_worst_case(row, [1, 4], [-1, 1])

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force_reference(self, seed):
        rng = np.random.default_rng(seed)
        row = rng.integers(0, 2, size=32, dtype=np.uint8)
        cols = sorted(rng.choice(32, size=4, replace=False).tolist())
        dists = [-3, -1, 1, 3]

        def brute():
            for c in cols:
                for pol in (0, 1):
                    if row[c] != pol:
                        continue
                    neigh = [row[c + d] for d in dists
                             if 0 <= c + d < 32]
                    if all(v != pol for v in neigh):
                        return True
            return False

        assert row_matches_worst_case(row, cols, dists) == brute()


class TestVulnerableRow:
    def test_wraps_matcher(self):
        vr = VulnerableRow([4], [-2, 2], row_bits=8)
        assert vr.matches(content([0, 0, 0, 0, 1, 0, 0, 0]))
        assert not vr.matches(content([0] * 8))

    def test_empty_distances_rejected(self):
        with pytest.raises(ValueError):
            VulnerableRow([4], [0], row_bits=8)


class TestVulnerabilityMap:
    def test_groups_by_row(self):
        detected = {(0, 0, 3, 10), (0, 0, 3, 20), (0, 1, 7, 5)}
        vmap = build_vulnerability_map(detected, distances=[-1, 1],
                                       row_bits=64)
        assert set(vmap) == {(0, 0, 3), (0, 1, 7)}
        assert list(vmap[(0, 0, 3)].columns) == [10, 20]

"""RAIDR binning and the Figure 16 experiment driver."""

import numpy as np
import pytest

from repro.dcref import (bins_from_failures, retention_bins, run_fig16,
                         weak_row_fraction)
from repro.sim import DEFAULT_CONFIG_32G


class TestRaidrBins:
    def test_fraction_respected(self):
        bins = retention_bins(100_000, 0.164, np.random.default_rng(0))
        assert weak_row_fraction(bins) == pytest.approx(0.164, abs=0.01)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            retention_bins(10, 1.5, np.random.default_rng(0))

    def test_bins_from_failures(self):
        detected = {(0, 0, 3, 10), (0, 0, 3, 55), (1, 0, 7, 2)}
        mask = bins_from_failures(detected, n_chips=2, n_banks=1,
                                  n_rows=16)
        assert mask.shape == (2, 1, 16)
        assert mask[0, 0, 3] and mask[1, 0, 7]
        assert mask.sum() == 2

    def test_empty_mask_fraction(self):
        assert weak_row_fraction(np.zeros((0,), dtype=bool)) == 0.0


class TestFig16:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_fig16(n_workloads=3, config=DEFAULT_CONFIG_32G,
                         seed=7, n_instructions=30_000)

    def test_policy_ordering(self, summary):
        assert summary.mean_improvement("dcref") \
            > summary.mean_improvement("raidr") > 0

    def test_refresh_reduction_near_paper(self, summary):
        # Paper Section 8: DC-REF cuts refreshes by 73% vs baseline
        # and 27.6% vs RAIDR.
        assert summary.mean_refresh_reduction("dcref") \
            == pytest.approx(73.0, abs=2.0)
        assert summary.mean_refresh_reduction("dcref", "raidr") \
            == pytest.approx(27.6, abs=2.5)

    def test_high_rate_fractions_near_paper(self, summary):
        # 2.7% of rows hot under DC-REF vs RAIDR's fixed 16.4%.
        assert summary.mean_high_rate_fraction("dcref") \
            == pytest.approx(0.027, abs=0.01)
        assert summary.mean_high_rate_fraction("raidr") \
            == pytest.approx(0.164, abs=0.001)

    def test_outcome_accessors(self, summary):
        outcome = summary.outcomes[0]
        assert len(outcome.apps) == 8
        assert outcome.improvement("baseline") == 0.0
        assert outcome.refresh_reduction("baseline") == 0.0

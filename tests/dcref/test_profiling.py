"""Retention profiling: RAIDR's row bins from actual screening."""

import numpy as np
import pytest

from repro.core import controllers_for
from repro.dcref import profile_retention
from repro.dram import vendor


@pytest.fixture(scope="module")
def chip():
    return vendor("A").make_chip(seed=5, n_rows=128)


class TestProfiling:
    def test_fraction_near_raidr_value(self, chip):
        prof = profile_retention(controllers_for(chip),
                                 interval_s=0.256)
        # RAIDR's profiled fleet fraction is 16.4%; our chips land in
        # the same band.
        assert 0.05 <= prof.weak_row_fraction() <= 0.30

    def test_shorter_interval_qualifies_more_rows(self, chip):
        ctrls = controllers_for(chip)
        at_256 = profile_retention(ctrls, interval_s=0.256)
        at_1000 = profile_retention(ctrls, interval_s=1.0)
        assert at_256.weak_row_fraction() \
            <= at_1000.weak_row_fraction()

    def test_conditions_restored(self, chip):
        profile_retention(controllers_for(chip), interval_s=0.256)
        assert chip.banks[0].stress == 1.0
        assert chip.refresh_interval_s == 4.0

    def test_coupled_cells_do_not_pollute_bins(self):
        """Solid backgrounds cannot trigger data-dependent failures,
        so profiling sees only true retention weakness."""
        from repro.dram import CouplingSpec, DramChip, FaultSpec
        profile = vendor("A")
        chip = DramChip(mapping=profile.mapping(8192), n_rows=64,
                        coupling_spec=CouplingSpec(n_cells=5000),
                        fault_spec=FaultSpec(soft_error_rate=0.0),
                        seed=3)
        prof = profile_retention(controllers_for(chip),
                                 interval_s=0.256)
        assert prof.weak_row_fraction() == 0.0

    def test_mask_array_shape(self, chip):
        prof = profile_retention(controllers_for(chip),
                                 interval_s=0.256)
        mask = prof.mask_array(n_chips=1, n_banks=1, n_rows=128)
        assert mask.shape == (1, 1, 128)
        assert mask.sum() == sum(int(m.sum())
                                 for m in prof.weak_rows.values())

    def test_test_budget_counted(self, chip):
        prof = profile_retention(controllers_for(chip),
                                 interval_s=0.256, rounds=3)
        assert prof.tests == 6  # 3 rounds x 2 polarities

    def test_requires_controllers(self):
        with pytest.raises(ValueError):
            profile_retention([], interval_s=0.256)

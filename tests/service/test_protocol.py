"""Wire-protocol contracts: spec round-trips, strict validation,
content-addressed campaign identity, and record CRCs."""

import json

import pytest

from repro.runtime import CampaignSpec, chip_seed, wrap_spec
from repro.runtime.chaos import ChaosSpec
from repro.service import campaign_id, spec_from_json, spec_to_json
from repro.service.protocol import (ProtocolError, error_response,
                                    read_message, record_crc,
                                    write_message)


def _spec(vendor="A", **overrides):
    fields = dict(experiment="characterize", vendor=vendor, index=1,
                  build_seed=chip_seed(7, vendor, 0, "build"),
                  run_seed=chip_seed(7, vendor, 0, "run"),
                  n_rows=32, sample_size=200, run_sweep=False)
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestSpecRoundTrip:
    def test_roundtrip_preserves_identity(self):
        spec = _spec()
        rebuilt = spec_from_json(spec_to_json(spec))
        assert rebuilt == spec
        assert rebuilt.checkpoint_key() == spec.checkpoint_key()

    def test_roundtrip_survives_json_encoding(self):
        spec = _spec(run_sweep=True)
        wire = json.loads(json.dumps(spec_to_json(spec)))
        assert spec_from_json(wire) == spec

    def test_chaos_wrapper_crosses_the_wire(self, tmp_path):
        spec = wrap_spec(_spec(), ("transient",), str(tmp_path),
                         hang_s=9.0)
        rebuilt = spec_from_json(spec_to_json(spec))
        assert isinstance(rebuilt, ChaosSpec)
        assert rebuilt.plan == ("transient",)
        assert rebuilt.chaos_dir == str(tmp_path)
        assert rebuilt.hang_s == 9.0
        # Fault plans never join the identity.
        assert rebuilt.checkpoint_key() == _spec().checkpoint_key()

    def test_config_overrides_are_rejected(self):
        from repro.core import ParborConfig
        spec = _spec(config=ParborConfig())
        with pytest.raises(ProtocolError, match="config"):
            spec_to_json(spec)

    @pytest.mark.parametrize("payload,match", [
        ([], "object"),
        ({"vendor": "A"}, "experiment"),
        ({"experiment": "characterize", "vendor": "A",
          "surprise": 1}, "unknown"),
        ({"experiment": "characterize", "vendor": "A",
          "n_rows": "32"}, "int"),
        ({"experiment": "characterize", "vendor": "A",
          "run_sweep": 1}, "bool"),
        ({"experiment": "nope", "vendor": "A"}, "invalid spec"),
        ({"experiment": "characterize", "vendor": "A",
          "chaos": {"plan": ["crash"]}}, "chaos"),
    ])
    def test_strict_validation(self, payload, match):
        with pytest.raises(ProtocolError, match=match):
            spec_from_json(payload)


class TestCampaignId:
    def test_content_addressed_and_order_independent(self):
        specs = [_spec("A"), _spec("B"), _spec("C")]
        assert (campaign_id("t", specs)
                == campaign_id("t", list(reversed(specs))))

    def test_tenant_and_work_sensitive(self):
        specs = [_spec("A"), _spec("B")]
        assert campaign_id("t1", specs) != campaign_id("t2", specs)
        assert (campaign_id("t1", specs)
                != campaign_id("t1", specs[:1]))

    def test_chaos_wrapping_does_not_change_identity(self, tmp_path):
        specs = [_spec("A"), _spec("B")]
        wrapped = [wrap_spec(s, ("crash",), str(tmp_path))
                   for s in specs]
        assert campaign_id("t", wrapped) == campaign_id("t", specs)


class TestRecordCrc:
    def test_detects_tampering(self):
        record = {"kind": "shard_done", "id": "c1", "shard": 0}
        record["crc"] = record_crc(record)
        assert record_crc(record) == record["crc"]
        record["shard"] = 1
        assert record_crc(record) != record["crc"]

    def test_key_order_independent(self):
        a = {"b": 2, "a": 1}
        b = {"a": 1, "b": 2}
        assert record_crc(a) == record_crc(b)


class TestFraming:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        with open(path, "w") as fh:
            write_message(fh, {"op": "ping"})
            write_message(fh, error_response("nope", retry_after=1.5))
        lines = path.read_text().splitlines()
        assert read_message(lines[0]) == {"op": "ping"}
        rejection = read_message(lines[1])
        assert rejection == {"ok": False, "error": "nope",
                             "retry_after": 1.5}

    @pytest.mark.parametrize("line", ["", "   ", "not json", "[1, 2]"])
    def test_bad_frames_raise(self, line):
        with pytest.raises(ProtocolError):
            read_message(line)

    def test_oversized_message_rejected(self):
        from repro.service.protocol import MAX_MESSAGE_BYTES
        with pytest.raises(ProtocolError, match="size"):
            read_message(b"x" * (MAX_MESSAGE_BYTES + 1))

    def test_error_response_without_hint_omits_retry_after(self):
        assert "retry_after" not in error_response("permanent")

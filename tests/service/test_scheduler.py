"""Fair-share scheduler contracts: rotation, priority, determinism,
weights, and tenant degradation."""

from repro import obs
from repro.runtime import CampaignSpec, chip_seed
from repro.service import FairShareScheduler, partition_shards
from repro.service.queue import CampaignState


def _spec(i):
    vendor = "ABC"[i % 3]
    return CampaignSpec(experiment="characterize", vendor=vendor,
                        index=1 + i // 3,
                        build_seed=chip_seed(7, vendor, i, "build"),
                        run_seed=chip_seed(7, vendor, i, "run"),
                        n_rows=32, sample_size=200, run_sweep=False)


def _campaign(cid, tenant, priority, seq, n_specs=2, shard_size=2):
    specs = [_spec(seq * 10 + i) for i in range(n_specs)]
    return CampaignState(
        id=cid, tenant=tenant, priority=priority, seq=seq,
        specs=specs,
        shards=partition_shards(cid, specs, shard_size))


def _drain(scheduler, campaigns):
    """Run the scheduler dry, returning the execution order."""
    order = []
    while True:
        pending = [s for c in sorted(campaigns.values(),
                                     key=lambda c: c.seq)
                   for s in c.pending_shards()]
        shard = scheduler.next_shard(pending, campaigns)
        if shard is None:
            return order
        shard.done = True
        order.append((shard.campaign, shard.index))


class TestFairShare:
    def test_tenants_alternate(self):
        campaigns = {
            "a": _campaign("a", "alice", 0, 0, n_specs=4),
            "b": _campaign("b", "bob", 0, 1, n_specs=4),
        }
        order = _drain(FairShareScheduler(), campaigns)
        # alice got in first (lexicographic tie-break at served=0),
        # after which the tenants strictly alternate.
        assert [c for c, _ in order] == ["a", "b", "a", "b"]

    def test_flooding_tenant_cannot_starve_light_one(self):
        campaigns = {
            "flood": _campaign("flood", "flood", 0, 0, n_specs=8),
            "light": _campaign("light", "light", 0, 1, n_specs=2),
        }
        order = _drain(FairShareScheduler(), campaigns)
        # The light tenant's only shard runs second, not fifth.
        assert order[1] == ("light", 0)

    def test_priority_orders_within_tenant(self):
        campaigns = {
            "lo": _campaign("lo", "t", 0, 0),
            "hi": _campaign("hi", "t", 5, 1),
        }
        order = _drain(FairShareScheduler(), campaigns)
        assert order == [("hi", 0), ("lo", 0)]

    def test_deterministic_for_same_submission_history(self):
        def build():
            return {
                "a": _campaign("a", "t1", 0, 0, n_specs=4),
                "b": _campaign("b", "t2", 2, 1, n_specs=4),
                "c": _campaign("c", "t1", 1, 2, n_specs=2),
            }
        assert (_drain(FairShareScheduler(), build())
                == _drain(FairShareScheduler(), build()))

    def test_weight_buys_share(self):
        scheduler = FairShareScheduler()
        scheduler.tenant("heavy").weight = 2.0
        campaigns = {
            "h": _campaign("h", "heavy", 0, 0, n_specs=8),
            "l": _campaign("l", "light", 0, 1, n_specs=8),
        }
        order = _drain(scheduler, campaigns)
        # First four picks: heavy gets twice light's share.
        assert [c for c, _ in order[:3]] == ["h", "l", "h"]


class TestDegradation:
    def test_degrades_past_threshold_and_fires_obs(self):
        scheduler = FairShareScheduler(max_tenant_failures=1)
        with obs.session("sched") as sess:
            assert scheduler.note_failure("t") is False
            assert scheduler.note_failure("t") is True
            assert scheduler.note_failure("t") is False  # only once
        assert scheduler.tenant("t").degraded
        assert sess.metrics.counter(
            "proc.service.degraded_tenants") == 1

    def test_degraded_tenant_never_scheduled(self):
        scheduler = FairShareScheduler(max_tenant_failures=0)
        campaigns = {
            "bad": _campaign("bad", "bad", 9, 0),
            "good": _campaign("good", "good", 0, 1),
        }
        scheduler.note_failure("bad")
        order = _drain(scheduler, campaigns)
        assert [c for c, _ in order] == ["good"]
        pending = campaigns["bad"].pending_shards()
        assert (scheduler.degraded_shards(pending, campaigns)
                == pending)

    def test_no_threshold_never_degrades(self):
        scheduler = FairShareScheduler()
        for _ in range(100):
            assert scheduler.note_failure("t") is False
        assert not scheduler.tenant("t").degraded

"""Durable queue contracts: deterministic sharding, journal-first
admission, crash replay, CRC detection, and truncated tails."""

import json

import pytest

from repro import obs
from repro.runtime import CampaignSpec, chip_seed, corrupt_queue_record
from repro.service import DurableQueue, partition_shards
from repro.service.protocol import record_crc


def _specs(n=3):
    vendors = ("A", "B", "C", "A", "B", "C")
    return [
        CampaignSpec(experiment="characterize", vendor=vendors[i],
                     index=1 + i // 3,
                     build_seed=chip_seed(7, vendors[i], i, "build"),
                     run_seed=chip_seed(7, vendors[i], i, "run"),
                     n_rows=32, sample_size=200, run_sweep=False)
        for i in range(n)
    ]


class TestPartition:
    def test_membership_is_order_independent(self):
        specs = _specs(5)
        forward = partition_shards("c", specs, shard_size=2)
        backward = partition_shards("c", list(reversed(specs)),
                                    shard_size=2)
        assert [[s.checkpoint_key() for s in shard.specs]
                for shard in forward] \
            == [[s.checkpoint_key() for s in shard.specs]
                for shard in backward]

    def test_sizes_and_indices(self):
        shards = partition_shards("c", _specs(5), shard_size=2)
        assert [len(s.specs) for s in shards] == [2, 2, 1]
        assert [s.index for s in shards] == [0, 1, 2]

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ValueError):
            partition_shards("c", _specs(1), shard_size=0)


class TestDurableQueue:
    def test_submit_is_journaled_before_visible(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        with DurableQueue(str(path), shard_size=2) as queue:
            campaign = queue.submit("t", 0, _specs())
            on_disk = [json.loads(line) for line
                       in path.read_text().splitlines()]
            assert [r["kind"] for r in on_disk] \
                == ["service", "submit"]
            assert on_disk[1]["id"] == campaign.id

    def test_submit_idempotent(self, tmp_path):
        with DurableQueue(str(tmp_path / "q.jsonl")) as queue:
            first = queue.submit("t", 0, _specs())
            again = queue.submit("t", 0, list(reversed(_specs())))
            assert again is first
            assert len(queue.campaigns) == 1

    def test_replay_restores_shard_progress(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with DurableQueue(path, shard_size=2) as queue:
            campaign = queue.submit("t", 3, _specs())
            queue.mark_shard_done(campaign.shards[0])
        with DurableQueue(path, shard_size=2) as replayed:
            restored = replayed.campaigns[campaign.id]
            assert restored.tenant == "t"
            assert restored.priority == 3
            assert restored.shards[0].done
            assert [s.index for s in restored.pending_shards()] == [1]
            assert ([s.checkpoint_key()
                     for s in restored.shards[1].specs]
                    == [s.checkpoint_key()
                        for s in campaign.shards[1].specs])

    def test_replay_restores_failures_and_completion(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with DurableQueue(path, shard_size=2) as queue:
            campaign = queue.submit("t", 0, _specs())
            queue.mark_shard_done(campaign.shards[0])
            queue.mark_shard_failed(campaign.shards[1], "boom")
            queue.mark_campaign_done(campaign)
        with DurableQueue(path, shard_size=2) as replayed:
            restored = replayed.campaigns[campaign.id]
            assert restored.done and restored.settled
            assert restored.failed_shards() == [1]
            assert restored.shards[1].error == "boom"
            assert replayed.pending_targets() == 0

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with DurableQueue(path, shard_size=2) as queue:
            campaign = queue.submit("t", 0, _specs())
        with open(path, "a") as fh:
            fh.write('{"kind": "shard_done", "id": "' + campaign.id)
        with DurableQueue(path, shard_size=2) as replayed:
            assert replayed.corrupt_records == 0
            assert campaign.id in replayed.campaigns
            # The torn record never applied: shard 0 still pending.
            assert len(replayed.pending_shards()) == 2

    def test_corrupt_record_detected_and_skipped(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with DurableQueue(path, shard_size=2) as queue:
            campaign = queue.submit("t", 0, _specs())
            queue.mark_shard_done(campaign.shards[0])
        corrupt_queue_record(path, seed=1, kinds=("shard_done",))
        with obs.session("q-corrupt") as sess:
            with DurableQueue(path, shard_size=2) as replayed:
                assert replayed.corrupt_records == 1
                # Dropping shard_done re-queues the shard, nothing else.
                assert len(replayed.pending_shards()) == 2
        assert sess.metrics.counter(
            "proc.service.corrupt_records") == 1

    def test_corrupt_helper_without_victims_raises(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with DurableQueue(path) as queue:
            queue.submit("t", 0, _specs())
        with pytest.raises(ValueError, match="no record"):
            corrupt_queue_record(path, seed=1, kinds=("shard_done",))

    def test_every_record_carries_a_valid_crc(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with DurableQueue(str(path), shard_size=2) as queue:
            campaign = queue.submit("t", 0, _specs())
            queue.mark_shard_done(campaign.shards[0])
            queue.mark_campaign_done(campaign)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert record_crc(record) == record["crc"]

    def test_close_idempotent_and_append_after_close_raises(
            self, tmp_path):
        queue = DurableQueue(str(tmp_path / "q.jsonl"))
        queue.close()
        queue.close()
        with pytest.raises(ValueError, match="closed"):
            queue.submit("t", 0, _specs())

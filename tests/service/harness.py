"""Shared helpers for exercising the campaign daemon as a subprocess.

Every test that needs a *real* daemon - separate process, real unix
socket, killable - goes through :func:`start_daemon`, so the chaos
suite and the service suite drive the exact binary entry point
(``repro.service.serve``) a production ``repro serve`` uses.
"""

import json
import pathlib
import subprocess
import sys

from repro.runtime.resilience import signature_json
from repro.service import client

HERE = pathlib.Path(__file__).parent
SRC = HERE.parents[1] / "src"

DAEMON_CHILD = """\
import json, sys
from repro.service import ServiceConfig, serve
sys.exit(serve(ServiceConfig(**json.loads(sys.argv[1]))))
"""


def start_daemon(socket_path, state_dir, wait=True, **overrides):
    """Launch a daemon subprocess; by default block until it pings."""
    config = {"socket_path": str(socket_path),
              "state_dir": str(state_dir)}
    config.update(overrides)
    proc = subprocess.Popen(
        [sys.executable, "-c", DAEMON_CHILD, json.dumps(config)],
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    if wait:
        try:
            client.wait_for_service(str(socket_path), timeout=60.0)
        except Exception:
            proc.kill()
            proc.wait()
            raise
    return proc


def stop_daemon(proc, socket_path=None, timeout=60.0):
    """Drain (when reachable) and reap; kill as a last resort."""
    try:
        if socket_path is not None and proc.poll() is None:
            try:
                client.drain(str(socket_path), timeout=timeout)
            except (OSError, client.ServiceError):
                pass
        return proc.wait(timeout=timeout)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def signature_map(fleet):
    """label -> JSON-normalised signature, for comparing against the
    service's streamed result records."""
    return {outcome.signature()[0]: signature_json(outcome.signature())
            for outcome in fleet.outcomes}


def result_signature_map(results):
    """The same shape from ``client.wait_results`` records."""
    assert all("signature" in record for record in results), results
    return {record["label"]: record["signature"]
            for record in results}

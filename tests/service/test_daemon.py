"""Daemon behaviour over the real socket: admission control and
backpressure, idempotent resubmission, shard retry, tenant
degradation, and protocol-level error handling.

Crash/kill/corruption recovery lives in
``tests/chaos/test_service_chaos.py``; this module covers the
daemon's steady-state contracts.
"""

import socket as socket_mod

import pytest

from repro.runtime import CampaignSpec, chip_seed, wrap_spec
from repro.service import ServiceConfig, client
from tests.service.harness import start_daemon, stop_daemon


def _specs(n=3, rows=32, sample=200):
    vendors = ("A", "B", "C", "A", "B", "C")
    return [
        CampaignSpec(experiment="characterize", vendor=vendors[i],
                     index=1 + i // 3,
                     build_seed=chip_seed(11, vendors[i], i, "build"),
                     run_seed=chip_seed(11, vendors[i], i, "run"),
                     n_rows=rows, sample_size=sample,
                     run_sweep=False)
        for i in range(n)
    ]


class TestConfig:
    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            ServiceConfig(socket_path="s", state_dir="d", jobs=0)
        with pytest.raises(ValueError):
            ServiceConfig(socket_path="s", state_dir="d",
                          max_queued_targets=0)
        with pytest.raises(ValueError):
            ServiceConfig(socket_path="s", state_dir="d",
                          resume_mode="later")


def test_overload_rejected_with_retry_after_then_accepted(tmp_path):
    """The bounded queue rejects overload with a retry hint, counts
    it, and accepts the same work once the backlog clears."""
    sock = tmp_path / "svc.sock"
    first, second = _specs(3), _specs(6)[3:]
    proc = start_daemon(sock, tmp_path / "state", shard_size=4,
                        max_queued_targets=4)
    try:
        accepted = client.submit(str(sock), first, tenant="t1")
        assert accepted["ok"]
        # 3 targets pending (one shard, still running or queued);
        # 3 more would exceed the bound of 4.
        with pytest.raises(client.ServiceRejected) as rejected:
            client.submit(str(sock), second, tenant="t2")
        assert rejected.value.retry_after > 0
        assert "queue full" in str(rejected.value)
        counters = client.status(str(sock))["counters"]
        assert counters.get("proc.service.rejected") == 1

        # Backlog drains -> the same submission is admitted.
        client.wait_results(str(sock), accepted["campaign"])
        retried = client.submit(str(sock), second, tenant="t2")
        assert retried["ok"] and not retried.get("attached")
        results = client.wait_results(str(sock), retried["campaign"])
        assert results["end"]["ok"]
    finally:
        assert stop_daemon(proc, sock) == 0


def test_resubmission_attaches_idempotently(tmp_path):
    sock = tmp_path / "svc.sock"
    specs = _specs(2)
    proc = start_daemon(sock, tmp_path / "state", shard_size=2)
    try:
        first = client.submit(str(sock), specs, tenant="t")
        again = client.submit(str(sock), list(reversed(specs)),
                              tenant="t")
        assert again["campaign"] == first["campaign"]
        assert again["attached"]
        counters = client.status(str(sock))["counters"]
        assert counters.get("proc.service.submitted") == 1
    finally:
        assert stop_daemon(proc, sock) == 0


def test_failing_shard_is_retried_with_backoff(tmp_path):
    """A shard whose fleet raises gets a second attempt; the chaos
    attempt counter makes that attempt clean."""
    sock = tmp_path / "svc.sock"
    state = tmp_path / "state"
    chaos_dir = state / "chaos"
    chaos_dir.mkdir(parents=True)
    specs = _specs(2)
    # retries=0 means the transient fault fails the whole fleet ->
    # the *shard* retry (not the fleet's) must recover it.
    specs[0] = wrap_spec(specs[0], ("transient",), str(chaos_dir))
    proc = start_daemon(sock, state, shard_size=2, retries=0,
                        shard_retries=1)
    try:
        response = client.submit(str(sock), specs, tenant="t")
        results = client.wait_results(str(sock),
                                      response["campaign"])
        assert results["end"]["ok"]
        assert all("signature" in r for r in results["results"])
        counters = client.status(str(sock))["counters"]
        assert counters.get("proc.service.shard_retries") == 1
        assert not counters.get("proc.service.shards_failed")
    finally:
        assert stop_daemon(proc, sock) == 0


def test_exhausted_tenant_is_degraded_and_locked_out(tmp_path):
    """A tenant whose shards keep failing is degraded: the campaign
    settles with failed shards and new submissions are refused."""
    sock = tmp_path / "svc.sock"
    state = tmp_path / "state"
    chaos_dir = state / "chaos"
    chaos_dir.mkdir(parents=True)
    doomed = _specs(2)
    doomed[0] = wrap_spec(doomed[0],
                          ("transient", "transient", "transient"),
                          str(chaos_dir))
    proc = start_daemon(sock, state, shard_size=2, retries=0,
                        shard_retries=1, max_tenant_failures=0)
    try:
        response = client.submit(str(sock), doomed, tenant="bad")
        results = client.wait_results(str(sock),
                                      response["campaign"])
        assert not results["end"]["ok"]
        assert results["end"]["failed_shards"] == [0]
        status = client.status(str(sock))
        assert status["tenants"]["bad"]["degraded"]
        assert status["counters"].get(
            "proc.service.degraded_tenants") == 1
        with pytest.raises(client.ServiceError, match="degraded"):
            client.submit(str(sock), _specs(1), tenant="bad")
        # Other tenants are unaffected.
        ok = client.submit(str(sock), _specs(1), tenant="good")
        assert client.wait_results(str(sock),
                                   ok["campaign"])["end"]["ok"]
    finally:
        assert stop_daemon(proc, sock) == 0


def test_protocol_errors_answered_not_fatal(tmp_path):
    sock = tmp_path / "svc.sock"
    proc = start_daemon(sock, tmp_path / "state")
    try:
        with pytest.raises(client.ServiceError, match="unknown op"):
            client.request(str(sock), {"op": "explode"})
        with pytest.raises(client.ServiceError, match="non-empty"):
            client.request(str(sock), {"op": "submit", "specs": []})
        with pytest.raises(client.ServiceError, match="unknown spec"):
            client.request(str(sock), {
                "op": "submit",
                "specs": [{"experiment": "characterize",
                           "vendor": "A", "surprise": 1}]})
        with pytest.raises(client.ServiceError,
                           match="unknown campaign"):
            client.status(str(sock), campaign="c000")
        # Raw garbage on the wire gets an error response, and the
        # daemon keeps serving afterwards.
        with socket_mod.socket(socket_mod.AF_UNIX,
                               socket_mod.SOCK_STREAM) as raw:
            raw.connect(str(sock))
            raw.sendall(b"this is not json\n")
            assert b'"ok": false' in raw.recv(4096)
        assert client.ping(str(sock))["ok"]
    finally:
        assert stop_daemon(proc, sock) == 0


def test_results_for_missing_campaign_errors(tmp_path):
    sock = tmp_path / "svc.sock"
    proc = start_daemon(sock, tmp_path / "state")
    try:
        with pytest.raises(client.ServiceError,
                           match="unknown campaign"):
            client.wait_results(str(sock), "c-missing")
    finally:
        assert stop_daemon(proc, sock) == 0

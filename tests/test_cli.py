"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_vendor_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["characterize", "--vendor", "Z"])

    def test_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.vendor == "A"
        assert args.rows == 128


class TestCommands:
    def test_characterize(self, capsys, tmp_path):
        out = tmp_path / "c.json"
        rc = main(["characterize", "--vendor", "B", "--rows", "96",
                   "--sample", "800", "--json", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "{+-1, +-64}" in captured
        payload = json.loads(out.read_text())
        assert payload["total_tests"] == 66
        assert set(payload["distances"]) == {-1, 1, -64, 64}

    def test_appendix(self, capsys, tmp_path):
        out = tmp_path / "a.json"
        rc = main(["appendix", "--json", str(out)])
        assert rc == 0
        assert "745,654x" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["campaign_92_s"] == pytest.approx(38.08, rel=0.01)

    def test_dcref_small(self, capsys):
        rc = main(["dcref", "--workloads", "2",
                   "--instructions", "20000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "refresh cut vs baseline" in out

    def test_compare_small(self, capsys):
        rc = main(["compare", "--vendor", "A", "--rows", "48"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PARBOR failures" in out


class TestNewCommands:
    def test_march(self, capsys, tmp_path):
        out = tmp_path / "m.json"
        rc = main(["march", "--test", "mats+", "--vendor", "A",
                   "--rows", "32", "--json", str(out)])
        assert rc == 0
        assert "MATS+" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["test"] == "MATS+"

    def test_march_checker_background(self, capsys):
        rc = main(["march", "--background", "checker", "--vendor", "B",
                   "--rows", "32"])
        assert rc == 0
        assert "checker" in capsys.readouterr().out

    def test_fleet_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fleet.csv"
        rc = main(["fleet", "--modules-per-vendor", "1",
                   "--rows", "48", "--csv", str(csv_path)])
        assert rc == 0
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("module,budget")

    def test_plan(self, capsys, tmp_path):
        out = tmp_path / "p.json"
        rc = main(["plan", "8", "16", "48", "--json", str(out)])
        assert rc == 0
        assert "{+-8, +-16, +-48}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["tests_per_level"] == [2, 8, 8, 24, 48]

    def test_dataset(self, capsys, tmp_path):
        out = tmp_path / "ds"
        rc = main(["dataset", "--out", str(out),
                   "--modules-per-vendor", "1", "--rows", "48"])
        assert rc == 0
        files = {p.name for p in out.iterdir()}
        assert {"campaign_A1.json", "campaign_B1.json",
                "campaign_C1.json", "fleet.csv",
                "fleet.json"} <= files
        payload = json.loads((out / "campaign_B1.json").read_text())
        assert payload["magnitudes"] == [1, 64]

class TestServiceCommands:
    def test_report_journal_renders_live_journal(self, capsys,
                                                 tmp_path):
        from repro.runtime import CampaignSpec, chip_seed, run_fleet
        ckpt = tmp_path / "fleet.ckpt"
        spec = CampaignSpec(experiment="characterize", vendor="A",
                            index=1,
                            build_seed=chip_seed(7, "A", 0, "build"),
                            run_seed=chip_seed(7, "A", 0, "run"),
                            n_rows=32, sample_size=200,
                            run_sweep=False)
        run_fleet([spec], jobs=1, checkpoint=str(ckpt))
        with open(ckpt, "a") as fh:
            fh.write('{"kind": "outcome", "key": "torn')  # live tail
        rc = main(["report", "--journal", str(ckpt)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 completed target(s)" in out
        assert "characterize:A1" in out

    def test_report_without_inputs_errors(self, capsys):
        rc = main(["report"])
        assert rc == 2
        assert "nothing to render" in capsys.readouterr().err

    def test_report_missing_journal_errors(self, capsys, tmp_path):
        rc = main(["report", "--journal", str(tmp_path / "absent")])
        assert rc == 2

    def test_serve_parser_and_config_validation(self, capsys,
                                                tmp_path):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--socket", str(tmp_path / "s.sock"),
             "--state-dir", str(tmp_path), "--jobs", "2",
             "--no-fsync", "--resume", "skip"])
        assert args.resume == "skip" and args.no_fsync
        rc = main(["serve", "--socket", str(tmp_path / "s.sock"),
                   "--state-dir", str(tmp_path),
                   "--max-queued-targets", "0"])
        assert rc == 2
        assert "max_queued_targets" in capsys.readouterr().err

    def test_submit_against_dead_socket_fails_cleanly(self, capsys,
                                                      tmp_path):
        rc = main(["submit", "--socket", str(tmp_path / "none.sock"),
                   "--vendors", "A"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

"""Cross-package integration: the PARBOR -> DC-REF pipeline.

The paper's story end to end: characterise a chip with PARBOR, derive
the rows needing fast refresh, then let DC-REF clear rows whose live
content is benign.
"""

import numpy as np
import pytest

from repro.core import ParborConfig, run_parbor
from repro.dcref import (bins_from_failures, build_vulnerability_map,
                         weak_row_fraction)
from repro.dram import vendor


@pytest.fixture(scope="module")
def campaign():
    chip = vendor("A").make_chip(seed=21, n_rows=64)
    result = run_parbor(chip, ParborConfig(sample_size=1000), seed=8)
    return chip, result


class TestParborToDcRef:
    def test_vulnerability_map_covers_detected_rows(self, campaign):
        chip, result = campaign
        vmap = build_vulnerability_map(result.detected, result.distances,
                                       chip.row_bits)
        detected_rows = {(c, b, r) for c, b, r, _ in result.detected}
        assert set(vmap) == detected_rows

    def test_weak_row_bins_from_campaign(self, campaign):
        chip, result = campaign
        mask = bins_from_failures(result.detected, n_chips=1, n_banks=1,
                                  n_rows=chip.n_rows)
        frac = weak_row_fraction(mask)
        assert 0.0 < frac <= 1.0

    def test_worst_pattern_write_triggers_matcher(self, campaign):
        chip, result = campaign
        vmap = build_vulnerability_map(result.detected, result.distances,
                                       chip.row_bits)
        key, vrow = next(iter(sorted(vmap.items())))
        # Build content that puts one vulnerable cell in its worst case.
        content = np.ones(chip.row_bits, dtype=np.uint8)
        col = int(vrow.columns[0])
        for d in vrow.distances:
            if 0 <= col + d < chip.row_bits:
                content[col + d] = 0
        assert vrow.matches(content)
        # Uniform content is always benign.
        assert not vrow.matches(np.zeros(chip.row_bits, dtype=np.uint8))

    def test_distances_feed_scheduler_and_matcher_alike(self, campaign):
        _chip, result = campaign
        assert result.magnitudes() == [8, 16, 48]
        assert result.schedule is not None
        assert result.schedule.total_rounds >= 4

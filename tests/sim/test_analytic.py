"""Closed-form refresh model, and its agreement with the engine."""

import pytest

from repro.sim import (DEFAULT_CONFIG_32G, app, blocking_fraction,
                       expected_refresh_wait_cycles, make_policy,
                       refresh_reduction, simulate,
                       throughput_speedup_bound)


class TestFormulas:
    def test_baseline_blocking_matches_trfc_ratio(self):
        base = make_policy("baseline", DEFAULT_CONFIG_32G)
        assert blocking_fraction(base) == pytest.approx(0.128, rel=0.01)

    def test_dcref_blocking_scaled_by_work(self):
        base = make_policy("baseline", DEFAULT_CONFIG_32G)
        dcref = make_policy("dcref", DEFAULT_CONFIG_32G)
        ratio = blocking_fraction(dcref) / blocking_fraction(base)
        assert ratio == pytest.approx(dcref.work_fraction(), rel=1e-6)

    def test_throughput_bound_above_one(self):
        base = make_policy("baseline", DEFAULT_CONFIG_32G)
        dcref = make_policy("dcref", DEFAULT_CONFIG_32G)
        bound = throughput_speedup_bound(dcref, base)
        assert 1.05 < bound < 1.20

    def test_expected_wait_quadratic_in_block(self):
        base = make_policy("baseline", DEFAULT_CONFIG_32G)
        raidr = make_policy("raidr", DEFAULT_CONFIG_32G)
        w_base = expected_refresh_wait_cycles(base)
        w_raidr = expected_refresh_wait_cycles(raidr)
        expected_ratio = raidr.work_fraction() ** 2
        assert w_raidr / w_base == pytest.approx(expected_ratio,
                                                 rel=1e-6)

    def test_refresh_reduction_paper_values(self):
        base = make_policy("baseline", DEFAULT_CONFIG_32G)
        raidr = make_policy("raidr", DEFAULT_CONFIG_32G)
        dcref = make_policy("dcref", DEFAULT_CONFIG_32G)
        assert refresh_reduction(raidr, base) == pytest.approx(0.627,
                                                               abs=0.002)
        assert refresh_reduction(dcref, base) == pytest.approx(0.73,
                                                               abs=0.01)


class TestEngineAgreement:
    def test_engine_speedup_within_analytic_bound(self):
        """The first-order engine cannot beat the bandwidth bound by
        more than simulation noise."""
        profiles = [app("mcf"), app("lbm"), app("libquantum"),
                    app("soplex")]
        cfg = DEFAULT_CONFIG_32G
        base_pol = make_policy("baseline", cfg)
        dcref_pol = make_policy("dcref", cfg)
        bound = throughput_speedup_bound(dcref_pol, base_pol)

        base = simulate(profiles, make_policy("baseline", cfg), cfg,
                        seed=3, n_instructions=60_000)
        fast = simulate(profiles, make_policy("dcref", cfg), cfg,
                        seed=3, n_instructions=60_000)
        speedup = sum(fast.ipcs) / sum(base.ipcs)
        assert 1.0 < speedup <= bound * 1.05

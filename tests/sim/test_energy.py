"""DDR3 energy model."""

import pytest

from repro.sim import (DEFAULT_CONFIG_32G, EnergyParams, app, energy_of,
                       make_policy, simulate_detailed)

MIX = [app(n) for n in ("mcf", "lbm", "libquantum", "gcc")]


def run(policy_name, seed=3, n=30_000):
    policy = make_policy(policy_name, DEFAULT_CONFIG_32G, seed=seed)
    return simulate_detailed(MIX, policy, DEFAULT_CONFIG_32G, seed=seed,
                             n_instructions=n)


class TestEnergy:
    def test_baseline_refresh_share_is_refresh_wall_scale(self):
        e = energy_of(run("baseline"), DEFAULT_CONFIG_32G)
        # At 32 Gbit the refresh wall puts refresh at a large share of
        # DRAM energy (the paper's refs [46, 62] project 25-50%).
        assert 0.15 <= e.refresh_share <= 0.5

    def test_policy_energy_ordering(self):
        base = energy_of(run("baseline"), DEFAULT_CONFIG_32G)
        raidr = energy_of(run("raidr"), DEFAULT_CONFIG_32G)
        dcref = energy_of(run("dcref"), DEFAULT_CONFIG_32G)
        assert dcref.total_uj < raidr.total_uj < base.total_uj
        assert dcref.refresh_uj < raidr.refresh_uj < base.refresh_uj

    def test_components_sum_to_total(self):
        e = energy_of(run("baseline"), DEFAULT_CONFIG_32G)
        assert e.total_uj == pytest.approx(
            e.activation_uj + e.rw_uj + e.refresh_uj + e.background_uj)

    def test_event_counts_populated_by_detailed_engine(self):
        result = run("baseline")
        assert result.n_activations > 0
        assert result.n_reads + result.n_writes == result.total_requests

    def test_custom_params_scale_components(self):
        result = run("baseline")
        cheap = energy_of(result, DEFAULT_CONFIG_32G,
                          EnergyParams(act_pre_nj=0.0, read_nj=0.0,
                                       write_nj=0.0,
                                       refresh_active_w=0.0,
                                       background_w=1.0))
        assert cheap.activation_uj == 0.0
        assert cheap.refresh_uj == 0.0
        assert cheap.total_uj == pytest.approx(cheap.background_uj)

    def test_refresh_energy_tracks_blocking(self):
        base = run("baseline")
        dcref = run("dcref")
        e_base = energy_of(base, DEFAULT_CONFIG_32G)
        e_dcref = energy_of(dcref, DEFAULT_CONFIG_32G)
        # Refresh energy per unit time scales with the work fraction.
        rate_base = e_base.refresh_uj / max(c.cycles
                                            for c in base.cores)
        rate_dcref = e_dcref.refresh_uj / max(c.cycles
                                              for c in dcref.cores)
        assert rate_dcref / rate_base == pytest.approx(
            dcref.avg_work_fraction / base.avg_work_fraction, rel=0.05)

"""Command-level memory controller and the detailed engine."""

import pytest

from repro.sim import (ChannelModel, DEFAULT_CONFIG_32G, DetailedTiming,
                       Request, app, make_policy, simulate,
                       simulate_detailed)


def channel(policy_name="baseline", channel_id=0):
    policy = make_policy(policy_name, DEFAULT_CONFIG_32G)
    return ChannelModel(channel_id, DEFAULT_CONFIG_32G, policy)


def req(bank=0, row=5, arrival=0, is_write=False, core=0):
    return Request(core=core, bank=bank, row=row, is_write=is_write,
                   arrival=arrival)


class TestChannelMechanics:
    def test_wrong_channel_rejected(self):
        ch = channel(channel_id=0)
        with pytest.raises(ValueError):
            ch.enqueue(req(bank=1))   # bank 1 belongs to channel 1

    def test_empty_channel_serves_nothing(self):
        ch = channel()
        assert ch.next_start() is None
        assert ch.serve_one() is None
        assert ch.drain(10**9) == []

    def test_row_miss_pays_activate(self):
        tm = DetailedTiming()
        ch = channel()
        # Arrive clear of rank 0's refresh window [0, tRFC).
        ch.enqueue(req(row=5, arrival=4000))
        done = ch.drain(10**9)
        # Cold bank: tRCD + tCAS + burst.
        assert done[0].completion == 4000 + tm.t_rcd + tm.t_cas \
            + tm.t_burst

    def test_arrival_inside_refresh_window_waits(self):
        cfg = DEFAULT_CONFIG_32G
        ch = channel()
        ch.enqueue(req(row=5, arrival=0))   # rank 0 refreshes [0, tRFC)
        done = ch.drain(10**9)
        assert done[0].completion > cfg.t_rfc_cycles

    def test_row_hit_faster_than_miss(self):
        tm = DetailedTiming()
        ch = channel()
        ch.enqueue(req(row=5, arrival=4000))
        first = ch.drain(10**9)[0]
        ch.enqueue(req(row=5, arrival=first.completion))
        hit = ch.drain(10**9)[0]
        hit_latency = hit.completion - hit.arrival
        assert hit_latency == tm.t_cas + tm.t_burst

    def test_conflict_pays_precharge(self):
        tm = DetailedTiming()
        ch = channel()
        ch.enqueue(req(row=5, arrival=4000))
        first = ch.drain(10**9)[0]
        ch.enqueue(req(row=9, arrival=first.completion))
        miss = ch.drain(10**9)[0]
        miss_latency = miss.completion - miss.arrival
        assert miss_latency >= tm.t_rp + tm.t_rcd + tm.t_cas + tm.t_burst

    def test_fr_fcfs_prefers_row_hit(self):
        ch = channel()
        ch.enqueue(req(row=5, arrival=4000))
        first = ch.drain(10**9)[0]
        # Both requests pending once the bank frees: the row hit jumps
        # ahead of the older conflicting request.
        ch.enqueue(req(row=9, arrival=first.completion - 10))
        ch.enqueue(req(row=5, arrival=first.completion - 5))
        served = ch.drain(10**9)
        assert served[0].row == 5
        assert ch.row_hit_rate > 0

    def test_write_recovery_delays_bank(self):
        ch = channel()
        ch.enqueue(req(row=5, arrival=4000, is_write=True))
        w = ch.drain(10**9)[0]
        ch.enqueue(req(row=5, arrival=w.completion))
        r = ch.drain(10**9)[0]
        assert r.completion - w.completion \
            >= DetailedTiming().t_wr + DetailedTiming().t_cas

    def test_refresh_window_blocks_rank(self):
        ch = channel("baseline")
        cfg = DEFAULT_CONFIG_32G
        # A request arriving right at a refresh-slot start waits out
        # the full tRFC (baseline work fraction 1.0).
        start, end = ch._refresh_window(rank=0, t=0)
        assert end - start == cfg.t_rfc_cycles
        assert ch._rank_ready(0, start) == end

    def test_dcref_refresh_window_shorter(self):
        base = channel("baseline")
        dcref = channel("dcref")
        b0, b1 = base._refresh_window(0, 0)
        d0, d1 = dcref._refresh_window(0, 0)
        assert (d1 - d0) < 0.5 * (b1 - b0)

    def test_ranks_staggered(self):
        ch = channel()
        s0, _ = ch._refresh_window(rank=0, t=10**6)
        s1, _ = ch._refresh_window(rank=1, t=10**6)
        assert s0 != s1


MIX = [app(n) for n in ("mcf", "libquantum", "gcc", "povray")]


class TestDetailedEngine:
    def run(self, policy_name, n=30_000, profiles=MIX):
        policy = make_policy(policy_name, DEFAULT_CONFIG_32G, seed=3)
        return simulate_detailed(profiles, policy, DEFAULT_CONFIG_32G,
                                 seed=3, n_instructions=n)

    def test_deterministic(self):
        assert self.run("baseline").ipcs == self.run("baseline").ipcs

    def test_serves_every_request(self):
        result = self.run("baseline")
        fast = simulate(MIX, make_policy("baseline", DEFAULT_CONFIG_32G),
                        DEFAULT_CONFIG_32G, seed=3, n_instructions=30_000)
        assert result.total_requests == fast.total_requests

    def test_policy_ordering(self):
        base = self.run("baseline")
        raidr = self.run("raidr")
        dcref = self.run("dcref")
        assert sum(dcref.ipcs) >= sum(raidr.ipcs) > sum(base.ipcs)

    def test_queueing_amplifies_refresh_effect(self):
        """The headline of the detailed model: its DC-REF gain exceeds
        the first-order engine's (closer to the paper's +18%)."""
        def gain(sim_fn):
            base = sim_fn(MIX, make_policy("baseline",
                                           DEFAULT_CONFIG_32G, seed=3),
                          DEFAULT_CONFIG_32G, seed=3,
                          n_instructions=30_000)
            fast = sim_fn(MIX, make_policy("dcref", DEFAULT_CONFIG_32G,
                                           seed=3),
                          DEFAULT_CONFIG_32G, seed=3,
                          n_instructions=30_000)
            return sum(fast.ipcs) / sum(base.ipcs)

        assert gain(simulate_detailed) > gain(simulate)

    def test_compute_bound_app_unaffected(self):
        povray = app("povray")
        result = simulate_detailed(
            [povray], make_policy("baseline", DEFAULT_CONFIG_32G),
            DEFAULT_CONFIG_32G, seed=1, n_instructions=30_000)
        assert result.cores[0].ipc == pytest.approx(povray.ipc_base,
                                                    rel=0.15)


class TestControllerPolicies:
    def test_closed_page_never_hits(self):
        policy = make_policy("baseline", DEFAULT_CONFIG_32G)
        ch = ChannelModel(0, DEFAULT_CONFIG_32G, policy,
                          page_policy="closed")
        ch.enqueue(req(row=5, arrival=4000))
        first = ch.drain(10**9)[0]
        ch.enqueue(req(row=5, arrival=first.completion + 10_000))
        ch.drain(10**9)
        assert ch.row_hits == 0

    def test_unknown_page_policy_rejected(self):
        policy = make_policy("baseline", DEFAULT_CONFIG_32G)
        with pytest.raises(ValueError):
            ChannelModel(0, DEFAULT_CONFIG_32G, policy,
                         page_policy="magic")

    def test_tfaw_limits_activation_bursts(self):
        """Five activations to five banks of one rank: the fifth waits
        for the four-activate window."""
        policy = make_policy("baseline", DEFAULT_CONFIG_32G)
        ch = ChannelModel(0, DEFAULT_CONFIG_32G, policy)
        cfg = DEFAULT_CONFIG_32G
        # Banks 0, 2, 4, 6, 8 (channel 0, rank 0 holds local banks
        # 0..7 -> global banks 0, 2, ..., 14).
        for i, bank in enumerate([0, 2, 4, 6, 8]):
            ch.enqueue(req(bank=bank, row=1, arrival=4000))
        done = sorted(ch.drain(10**9), key=lambda r: r.completion)
        acts = ch._rank_acts[0]
        assert len(acts) == 4      # rolling window keeps last four
        # The fifth ACT is at least tFAW after the first.
        first_act = 4000
        assert acts[-1] >= first_act + ch.timing.t_faw

    def test_trrd_spaces_back_to_back_acts(self):
        policy = make_policy("baseline", DEFAULT_CONFIG_32G)
        ch = ChannelModel(0, DEFAULT_CONFIG_32G, policy)
        ch.enqueue(req(bank=0, row=1, arrival=4000))
        ch.enqueue(req(bank=2, row=1, arrival=4000))
        ch.drain(10**9)
        acts = ch._rank_acts[0]
        assert acts[1] - acts[0] >= ch.timing.t_rrd

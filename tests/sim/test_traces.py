"""Synthetic trace generation."""

import numpy as np
import pytest

from repro.sim import DEFAULT_CONFIG_32G, app, generate_trace


class TestTraceGeneration:
    def test_deterministic_given_seed(self):
        a = generate_trace(app("gcc"), 100_000, DEFAULT_CONFIG_32G, 7)
        b = generate_trace(app("gcc"), 100_000, DEFAULT_CONFIG_32G, 7)
        assert np.array_equal(a.banks, b.banks)
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.inst_gaps, b.inst_gaps)

    def test_request_count_tracks_mpki(self):
        heavy = generate_trace(app("mcf"), 100_000, DEFAULT_CONFIG_32G, 1)
        light = generate_trace(app("povray"), 100_000,
                               DEFAULT_CONFIG_32G, 1)
        assert len(heavy) > 50 * len(light)

    def test_mean_gap_matches_mpki(self):
        trace = generate_trace(app("milc"), 500_000,
                               DEFAULT_CONFIG_32G, 2)
        mean_gap = trace.inst_gaps.mean()
        assert mean_gap == pytest.approx(1000 / 25.0, rel=0.1)

    def test_addresses_in_range(self):
        cfg = DEFAULT_CONFIG_32G
        trace = generate_trace(app("lbm"), 200_000, cfg, 3)
        assert (trace.banks >= 0).all()
        assert (trace.banks < cfg.n_banks_total).all()
        assert (trace.rows >= 0).all()
        assert (trace.rows < cfg.rows_per_bank).all()

    def test_row_locality_reflected_in_hits(self):
        streaming = generate_trace(app("libquantum"), 300_000,
                                   DEFAULT_CONFIG_32G, 4)
        chasing = generate_trace(app("mcf"), 300_000,
                                 DEFAULT_CONFIG_32G, 4)
        assert streaming.row_hits.mean() > chasing.row_hits.mean() + 0.3

    def test_row_hits_reuse_open_row(self):
        cfg = DEFAULT_CONFIG_32G
        trace = generate_trace(app("libquantum"), 100_000, cfg, 5)
        open_rows = {}
        for i in range(len(trace)):
            b = int(trace.banks[i])
            if trace.row_hits[i]:
                assert open_rows.get(b) == int(trace.rows[i])
            open_rows[b] = int(trace.rows[i])

    def test_write_fraction(self):
        trace = generate_trace(app("lbm"), 500_000, DEFAULT_CONFIG_32G, 6)
        assert trace.is_write.mean() == pytest.approx(0.45, abs=0.05)

    def test_zero_instructions_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(app("gcc"), 0, DEFAULT_CONFIG_32G, 0)

"""Refresh policies: work fractions and DC-REF content tracking."""

import numpy as np
import pytest

from repro.sim import (DEFAULT_CONFIG_32G, DcRefPolicy, RaidrRefresh,
                       UniformRefresh, make_policy)


class TestUniform:
    def test_full_work(self):
        policy = UniformRefresh(DEFAULT_CONFIG_32G)
        assert policy.work_fraction() == 1.0
        assert policy.high_rate_fraction() == 1.0

    def test_row_refreshes_cover_everything(self):
        policy = UniformRefresh(DEFAULT_CONFIG_32G)
        assert policy.row_refreshes_per_window() == policy.total_rows


class TestRaidr:
    def test_paper_work_fraction(self):
        policy = RaidrRefresh(DEFAULT_CONFIG_32G)
        # 0.164 + 0.836 / 4 = 0.373.
        assert policy.work_fraction() == pytest.approx(0.373)

    def test_refresh_reduction_vs_baseline(self):
        base = UniformRefresh(DEFAULT_CONFIG_32G)
        raidr = RaidrRefresh(DEFAULT_CONFIG_32G)
        reduction = 1 - (raidr.row_refreshes_per_window()
                         / base.row_refreshes_per_window())
        assert reduction == pytest.approx(0.627, abs=0.001)

    def test_high_rate_is_weak_fraction(self):
        policy = RaidrRefresh(DEFAULT_CONFIG_32G)
        assert policy.high_rate_fraction() == pytest.approx(0.164)


class TestDcRef:
    def test_initial_hot_fraction(self):
        policy = DcRefPolicy(DEFAULT_CONFIG_32G, match_prob=0.165, seed=0)
        # 0.164 weak x 0.165 match ~= 2.7% of rows hot.
        assert policy.high_rate_fraction() == pytest.approx(0.027,
                                                            abs=0.006)

    def test_paper_work_fraction(self):
        policy = DcRefPolicy(DEFAULT_CONFIG_32G, match_prob=0.165, seed=0)
        # ~0.027 + 0.973/4 ~= 0.27 -> 73% fewer refreshes than baseline.
        assert policy.work_fraction() == pytest.approx(0.27, abs=0.01)

    def test_write_to_weak_row_updates_hot_state(self):
        policy = DcRefPolicy(DEFAULT_CONFIG_32G, match_prob=0.5, seed=1,
                             initial_match=0.0)
        assert policy.high_rate_fraction() == 0.0
        bank, row = np.argwhere(policy.weak)[0]
        policy.on_write(int(bank), int(row), match_draw=0.1)  # < 0.5
        assert policy._hot_count == 1
        policy.on_write(int(bank), int(row), match_draw=0.9)  # >= 0.5
        assert policy._hot_count == 0

    def test_write_to_strong_row_is_ignored(self):
        policy = DcRefPolicy(DEFAULT_CONFIG_32G, match_prob=1.0, seed=1,
                             initial_match=0.0)
        bank, row = np.argwhere(~policy.weak)[0]
        policy.on_write(int(bank), int(row), match_draw=0.0)
        assert policy._hot_count == 0

    def test_hot_count_matches_mask(self):
        policy = DcRefPolicy(DEFAULT_CONFIG_32G, match_prob=0.3, seed=2)
        rng = np.random.default_rng(0)
        for _ in range(500):
            b = int(rng.integers(0, policy.config.n_banks_total))
            r = int(rng.integers(0, policy.config.rows_per_bank))
            policy.on_write(b, r, float(rng.random()))
        assert policy._hot_count == int(policy.hot.sum())


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("baseline", UniformRefresh), ("raidr", RaidrRefresh),
        ("dcref", DcRefPolicy), ("DC-REF", DcRefPolicy)])
    def test_factory_names(self, name, cls):
        assert isinstance(make_policy(name, DEFAULT_CONFIG_32G), cls)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("nope", DEFAULT_CONFIG_32G)


class TestDcRefProfiledBins:
    def test_weak_mask_tiles_over_memory(self):
        import numpy as np
        mask = np.zeros(100, dtype=bool)
        mask[:25] = True
        policy = DcRefPolicy(DEFAULT_CONFIG_32G, match_prob=0.2, seed=0,
                             weak_mask=mask)
        assert policy.weak.mean() == pytest.approx(0.25, abs=0.01)

    def test_empty_mask_rejected(self):
        import numpy as np
        with pytest.raises(ValueError):
            DcRefPolicy(DEFAULT_CONFIG_32G, match_prob=0.2,
                        weak_mask=np.zeros(0, dtype=bool))

    def test_profiled_bins_end_to_end(self):
        """The full bridge: profile a chip, feed the bins to DC-REF."""
        from repro.core import controllers_for
        from repro.dcref import profile_retention
        from repro.dram import vendor
        chip = vendor("A").make_chip(seed=5, n_rows=128)
        prof = profile_retention(controllers_for(chip),
                                 interval_s=0.256)
        mask = prof.mask_array(1, 1, 128)
        policy = DcRefPolicy(DEFAULT_CONFIG_32G, match_prob=0.165,
                             seed=1, weak_mask=mask)
        assert policy.weak.mean() == pytest.approx(
            prof.weak_row_fraction(), abs=0.02)
        assert policy.work_fraction() < 0.5

"""The event-driven engine: ordering, determinism, refresh effects."""

import pytest

from repro.sim import (DEFAULT_CONFIG_16G, DEFAULT_CONFIG_32G, alone_ipc,
                       app, make_policy, simulate, weighted_speedup,
                       harmonic_speedup, make_workloads,
                       workload_profiles)
from repro.sim.engine import _refresh_adjust

MIXED = [app(n) for n in ("mcf", "libquantum", "gcc", "povray")]


def run(policy_name, config=DEFAULT_CONFIG_32G, seed=3, n=40_000,
        profiles=MIXED):
    policy = make_policy(policy_name, config, seed=seed)
    return simulate(profiles, policy, config, seed=seed,
                    n_instructions=n)


class TestRefreshAdjust:
    def test_inside_blocked_head_is_delayed(self):
        assert _refresh_adjust(t=10, block_cycles=100, t_refi=1000) == 100

    def test_outside_blocked_head_untouched(self):
        assert _refresh_adjust(t=500, block_cycles=100, t_refi=1000) == 500

    def test_later_slots(self):
        assert _refresh_adjust(t=2050, block_cycles=100,
                               t_refi=1000) == 2100


class TestEngine:
    def test_deterministic(self):
        a = run("baseline")
        b = run("baseline")
        assert a.ipcs == b.ipcs
        assert a.total_requests == b.total_requests

    def test_policy_ordering_dcref_fastest(self):
        base = run("baseline")
        raidr = run("raidr")
        dcref = run("dcref")
        assert sum(dcref.ipcs) >= sum(raidr.ipcs) >= sum(base.ipcs)

    def test_refresh_stats_recorded(self):
        dcref = run("dcref")
        base = run("baseline")
        assert dcref.avg_work_fraction < 0.5 * base.avg_work_fraction
        assert dcref.row_refreshes_per_window \
            < base.row_refreshes_per_window

    def test_higher_density_hurts_more(self):
        gain_32 = (sum(run("dcref", DEFAULT_CONFIG_32G).ipcs)
                   / sum(run("baseline", DEFAULT_CONFIG_32G).ipcs))
        gain_16 = (sum(run("dcref", DEFAULT_CONFIG_16G).ipcs)
                   / sum(run("baseline", DEFAULT_CONFIG_16G).ipcs))
        assert gain_32 > gain_16 > 1.0

    def test_compute_bound_apps_near_base_ipc(self):
        povray = app("povray")
        ipc = alone_ipc(povray, make_policy("baseline",
                                            DEFAULT_CONFIG_32G),
                        DEFAULT_CONFIG_32G, seed=1, n_instructions=50_000)
        assert ipc == pytest.approx(povray.ipc_base, rel=0.1)

    def test_memory_bound_apps_well_below_base_ipc(self):
        mcf = app("mcf")
        ipc = alone_ipc(mcf, make_policy("baseline", DEFAULT_CONFIG_32G),
                        DEFAULT_CONFIG_32G, seed=1, n_instructions=50_000)
        assert ipc < 0.7 * mcf.ipc_base

    def test_contention_slows_sharing(self):
        heavy = [app("mcf")] * 4
        shared = simulate(heavy, make_policy("baseline",
                                             DEFAULT_CONFIG_32G),
                          DEFAULT_CONFIG_32G, seed=2,
                          n_instructions=40_000)
        alone = alone_ipc(app("mcf"),
                          make_policy("baseline", DEFAULT_CONFIG_32G),
                          DEFAULT_CONFIG_32G, seed=2,
                          n_instructions=40_000)
        assert max(shared.ipcs) <= alone * 1.02


class TestMetrics:
    def test_weighted_speedup_identity(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == 2.0

    def test_harmonic_speedup_identity(self):
        assert harmonic_speedup([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])
        with pytest.raises(ValueError):
            harmonic_speedup([0.0], [1.0])


class TestWorkloads:
    def test_paper_shape(self):
        mixes = make_workloads()
        assert len(mixes) == 32
        assert all(len(m) == 8 for m in mixes)

    def test_names_resolve(self):
        for mix in make_workloads(n_workloads=4):
            profiles = workload_profiles(mix)
            assert len(profiles) == 8

    def test_deterministic(self):
        assert make_workloads(seed=5) == make_workloads(seed=5)
        assert make_workloads(seed=5) != make_workloads(seed=6)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_workloads(n_workloads=0)

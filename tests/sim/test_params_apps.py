"""System configuration (Table 2) and application profiles."""

import pytest

from repro.sim import (DEFAULT_CONFIG_16G, DEFAULT_CONFIG_32G, SPEC_2006,
                       SystemConfig, app, app_names)
from repro.sim.apps import AppProfile


class TestSystemConfig:
    def test_table2_defaults(self):
        cfg = DEFAULT_CONFIG_32G
        assert cfg.n_cores == 8
        assert cfg.issue_width == 3
        assert cfg.inst_window == 128
        assert cfg.n_channels == 2
        assert cfg.ranks_per_channel == 2
        assert cfg.weak_row_fraction == pytest.approx(0.164)

    def test_trfc_per_density(self):
        # Footnote 6: 590 ns / 1 us at 3.2 GHz.
        assert DEFAULT_CONFIG_16G.t_rfc_cycles == round(590 * 3.2)
        assert DEFAULT_CONFIG_32G.t_rfc_cycles == round(1000 * 3.2)

    def test_refresh_blocking_ratio(self):
        cfg = DEFAULT_CONFIG_32G
        ratio = cfg.t_rfc_cycles / cfg.t_refi_cycles
        assert ratio == pytest.approx(0.128, rel=0.01)

    def test_relax_factor(self):
        assert DEFAULT_CONFIG_32G.relax_factor == 4

    def test_bank_count(self):
        assert DEFAULT_CONFIG_32G.n_banks_total == 2 * 2 * 8

    def test_miss_slower_than_hit(self):
        cfg = DEFAULT_CONFIG_32G
        assert cfg.t_miss_cycles > cfg.t_hit_cycles > cfg.t_bus_cycles


class TestApps:
    def test_seventeen_applications(self):
        assert len(SPEC_2006) == 17
        assert len(app_names()) == 17

    def test_known_profiles(self):
        assert app("mcf").mpki > 50          # famously memory-bound
        assert app("povray").mpki < 1        # famously compute-bound
        assert app("libquantum").row_locality > 0.8   # streaming

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            app("doom")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            AppProfile("x", mpki=-1, row_locality=0.5, write_frac=0.2,
                       mlp=2, ipc_base=1, worst_match_prob=0.1)
        with pytest.raises(ValueError):
            AppProfile("x", mpki=1, row_locality=1.5, write_frac=0.2,
                       mlp=2, ipc_base=1, worst_match_prob=0.1)
        with pytest.raises(ValueError):
            AppProfile("x", mpki=1, row_locality=0.5, write_frac=0.2,
                       mlp=0.5, ipc_base=1, worst_match_prob=0.1)

    def test_fleet_average_match_prob_targets_hot_fraction(self):
        # 0.164 weak rows x avg match prob ~= 2.7% hot rows (Section 8).
        avg = sum(p.worst_match_prob for p in SPEC_2006.values()) / 17
        hot = 0.164 * avg
        assert 0.02 <= hot <= 0.035

"""Property tests: controller invariants under random request streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (ChannelModel, DEFAULT_CONFIG_32G, Request,
                       make_policy)


def random_requests(rng, n, channel_id=0):
    cfg = DEFAULT_CONFIG_32G
    banks = [b for b in range(cfg.n_banks_total)
             if b % cfg.n_channels == channel_id]
    arrival = 0
    out = []
    for _ in range(n):
        arrival += int(rng.integers(0, 400))
        out.append(Request(core=int(rng.integers(0, 8)),
                           bank=int(rng.choice(banks)),
                           row=int(rng.integers(0, 64)),
                           is_write=bool(rng.random() < 0.3),
                           arrival=arrival))
    return out


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=1, max_value=80))
@settings(max_examples=25, deadline=None)
def test_all_requests_complete_after_arrival(seed, n):
    rng = np.random.default_rng(seed)
    ch = ChannelModel(0, DEFAULT_CONFIG_32G,
                      make_policy("baseline", DEFAULT_CONFIG_32G))
    requests = random_requests(rng, n)
    for r in requests:
        ch.enqueue(r)
    done = ch.drain(2**60)
    assert len(done) == n
    for r in done:
        assert r.completion is not None
        assert r.completion > r.arrival


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_bus_serialises_transfers(seed):
    """No two completions can share a data-bus slot."""
    rng = np.random.default_rng(seed)
    ch = ChannelModel(0, DEFAULT_CONFIG_32G,
                      make_policy("baseline", DEFAULT_CONFIG_32G))
    for r in random_requests(rng, 40):
        ch.enqueue(r)
    done = ch.drain(2**60)
    t_burst = ch.timing.t_burst
    completions = sorted(r.completion for r in done)
    for a, b in zip(completions, completions[1:]):
        assert b - a >= t_burst


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_no_service_inside_refresh_window(seed):
    """A bank never delivers data while its rank refreshes.

    Data time = completion - t_burst (bus) - so the row access that
    produced it must have started at or after the rank became ready.
    """
    rng = np.random.default_rng(seed)
    ch = ChannelModel(0, DEFAULT_CONFIG_32G,
                      make_policy("baseline", DEFAULT_CONFIG_32G))
    requests = random_requests(rng, 40)
    for r in requests:
        ch.enqueue(r)
    done = ch.drain(2**60)
    for r in done:
        lb = ch._local_bank(r.bank)
        rank = ch._rank_of(lb)
        # The CAS that produced the data must start outside a window.
        cas_start = r.completion - ch.timing.t_burst - ch.timing.t_cas
        start, end = ch._refresh_window(rank, cas_start)
        assert not (start <= cas_start < end)


def test_drain_is_incremental():
    """Draining in steps serves the same set as draining at once."""
    rng = np.random.default_rng(7)
    requests = random_requests(rng, 30)

    ch_once = ChannelModel(0, DEFAULT_CONFIG_32G,
                           make_policy("baseline", DEFAULT_CONFIG_32G))
    for r in requests:
        ch_once.enqueue(r)
    at_once = {id(r): r.completion for r in ch_once.drain(2**60)}

    ch_steps = ChannelModel(0, DEFAULT_CONFIG_32G,
                            make_policy("baseline", DEFAULT_CONFIG_32G))
    import copy
    requests2 = [copy.replace(r) if hasattr(copy, "replace")
                 else Request(r.core, r.bank, r.row, r.is_write,
                              r.arrival, r.match_draw)
                 for r in requests]
    for r in requests2:
        ch_steps.enqueue(r)
    stepped = []
    for horizon in range(0, 200_000, 5_000):
        stepped.extend(ch_steps.drain(horizon))
    stepped.extend(ch_steps.drain(2**60))
    assert len(stepped) == len(at_once)

"""Trace-driven core model unit tests."""

import numpy as np
import pytest

from repro.sim import DEFAULT_CONFIG_32G, app
from repro.sim.cpu import Core, CoreResult
from repro.sim.traces import Trace


def manual_trace(gaps, banks=None, total=None):
    n = len(gaps)
    return Trace(inst_gaps=np.asarray(gaps, dtype=np.int64),
                 banks=np.asarray(banks or [0] * n, dtype=np.int64),
                 rows=np.zeros(n, dtype=np.int64),
                 row_hits=np.zeros(n, dtype=bool),
                 is_write=np.zeros(n, dtype=bool),
                 match_draws=np.zeros(n),
                 total_instructions=total or int(sum(gaps)))


def make_core(gaps, mlp=2.0, ipc=2.0):
    profile = app("gcc")
    profile = type(profile)(name="x", mpki=profile.mpki,
                            row_locality=0.5, write_frac=0.2, mlp=mlp,
                            ipc_base=ipc, worst_match_prob=0.1)
    return Core(0, profile, manual_trace(gaps), DEFAULT_CONFIG_32G)


class TestCore:
    def test_gap_converts_at_base_ipc(self):
        core = make_core([100], ipc=2.0)
        assert core.next_issue_time() == 50

    def test_issue_advances_clock(self):
        core = make_core([100, 100], ipc=2.0)
        core.record_issue(50, 500)
        assert core.next_issue_time() == 100

    def test_mlp_window_blocks(self):
        core = make_core([10, 10, 10], mlp=2.0, ipc=1.0)
        core.record_issue(10, 1000)
        core.record_issue(20, 2000)
        # Window of 2 full: next issue gated by the oldest completion.
        assert core.next_issue_time() == 1000

    def test_finish_time_covers_last_completion(self):
        core = make_core([10])
        core.record_issue(10, 999)
        assert core.done
        assert core.finish_time == 999
        result = core.result()
        assert isinstance(result, CoreResult)
        assert result.cycles == 999

    def test_result_before_finish_rejected(self):
        core = make_core([10, 10])
        with pytest.raises(RuntimeError):
            core.result()

    def test_issue_past_end_rejected(self):
        core = make_core([10])
        core.record_issue(10, 20)
        with pytest.raises(RuntimeError):
            core.next_issue_time()

    def test_ipc_property(self):
        result = CoreResult(app="x", instructions=300, cycles=150)
        assert result.ipc == 2.0

    def test_window_capped_by_inst_window(self):
        core = make_core([10], mlp=1000.0)
        assert core.mlp_window <= DEFAULT_CONFIG_32G.inst_window // 4

"""Differential tests: vectorized kernels vs. the reference loops.

The optimized engine (broadcast writes, patched sparse writes, batched
retention verification, memoized schedules/batteries) must be
*bit-identical* to the original per-cell code, which stays executable
behind :func:`repro.runtime.reference_kernels`.  These tests drive the
same seeded operations through both paths and require equality of
charge arrays, read-back data, and full campaign outputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParborConfig, run_parbor
from repro.core.patterns import discovery_patterns
from repro.core.scheduler import build_schedule
from repro.dram import vendor
from repro.runtime import reference_kernels


def _chip(vendor_name="A", seed=5, n_rows=32):
    return vendor(vendor_name).make_chip(seed=seed, n_rows=n_rows)


def _bank(vendor_name="A", seed=5, n_rows=32):
    return _chip(vendor_name, seed, n_rows).banks[0]


# -- write path -----------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_write_rows_broadcast_matches_reference(seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, size=8192, dtype=np.uint8)
    rows = np.unique(rng.integers(0, 32, size=12))

    ref = _bank(seed=int(seed) % 97)
    fast = _bank(seed=int(seed) % 97)
    with reference_kernels():
        ref.write_rows(rows, data)
    fast.write_rows(rows, data)
    assert np.array_equal(ref.charge, fast.charge)


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=0, max_value=1),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=10, deadline=None)
def test_write_rows_patched_matches_dense_write(seed, base, span_size):
    """Sparse scatter == building the whole system image and writing it."""
    rng = np.random.default_rng(seed)
    n_rows = 16
    rows = np.unique(rng.integers(0, 32, size=n_rows))
    n = len(rows)
    n_spans = int(rng.integers(0, 5))
    span_rows = rng.integers(0, n, size=n_spans)
    starts = rng.integers(0, 8192 - span_size, size=n_spans)
    n_points = int(rng.integers(0, 20))
    point_rows = rng.integers(0, n, size=n_points)
    point_cols = rng.integers(0, 8192, size=n_points)
    value = 1 - base

    expected = np.full((n, 8192), base, dtype=np.uint8)
    for r, s in zip(span_rows.tolist(), starts.tolist()):
        expected[r, s:s + span_size] = value
    expected[point_rows, point_cols] = base

    dense = _bank(seed=3)
    dense.write_rows(rows, expected)
    patched = _bank(seed=3)
    patched.write_rows_patched(
        rows, base, spans=(span_rows, starts, span_size, value),
        points=(point_rows, point_cols, base))
    assert np.array_equal(dense.charge, patched.charge)


# -- retention verification ----------------------------------------------


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_retention_read_rows_matches_reference(seed):
    """Same seeded fault draws -> same observed data, both paths."""
    rng = np.random.default_rng(seed)
    rows = np.unique(rng.integers(0, 32, size=10))
    data = rng.integers(0, 2, size=8192, dtype=np.uint8)

    ref = _bank("B", seed=int(seed) % 89)
    fast = _bank("B", seed=int(seed) % 89)
    with reference_kernels():
        ref.write_rows(rows, data)
        ref_read = ref.retention_read_rows(rows)
    fast.write_rows(rows, data)
    fast_read = fast.retention_read_rows(rows)
    assert np.array_equal(ref_read, fast_read)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_retention_check_cells_matches_full_read(seed):
    """The sparse cell check equals comparing the full read-back."""
    rng = np.random.default_rng(seed)
    rows = np.unique(rng.integers(0, 32, size=10))
    data = rng.integers(0, 2, size=8192, dtype=np.uint8)
    n_check = 50
    check_row_idx = rng.integers(0, len(rows), size=n_check)
    check_cols = rng.integers(0, 8192, size=n_check)

    full = _bank("C", seed=int(seed) % 83)
    sparse = _bank("C", seed=int(seed) % 83)
    full.write_rows(rows, data)
    observed = full.retention_read_rows(rows)
    expected = observed[check_row_idx, check_cols] != data[check_cols]
    sparse.write_rows(rows, data)
    got = sparse.retention_check_cells(rows, check_row_idx, check_cols)
    assert np.array_equal(expected, got)


# -- memoized construction ------------------------------------------------


def test_memoized_schedule_matches_reference():
    for distances in ([8, -8, 16, -16, 48, -48], [1, -1, 64, -64]):
        with reference_kernels():
            ref = build_schedule(8192, distances)
        fast = build_schedule(8192, distances)
        assert ref.scheme == fast.scheme
        assert len(ref.patterns) == len(fast.patterns)
        for a, b in zip(ref.patterns, fast.patterns):
            assert np.array_equal(a, b)
        for a, b in zip(ref.victim_masks, fast.victim_masks):
            assert np.array_equal(a, b)


def test_memoized_schedule_is_shared_and_read_only():
    a = build_schedule(8192, [8, -8])
    b = build_schedule(8192, [-8, 8])  # normalised to the same key
    assert a is b
    with pytest.raises(ValueError):
        a.patterns[0][0] ^= 1


def test_memoized_battery_matches_reference():
    with reference_kernels():
        ref = discovery_patterns(8192, 8, np.random.default_rng(4))
    fast = discovery_patterns(8192, 8, np.random.default_rng(4))
    assert [n for n, _ in ref] == [n for n, _ in fast]
    for (_, a), (_, b) in zip(ref, fast):
        assert np.array_equal(a, b)


# -- whole campaign -------------------------------------------------------


@pytest.mark.parametrize("vendor_name", ["A", "B", "C"])
def test_campaign_identical_to_reference(vendor_name):
    cfg = ParborConfig(sample_size=300)

    with reference_kernels():
        ref = run_parbor(_chip(vendor_name, seed=17, n_rows=32), cfg,
                         seed=18)
    fast = run_parbor(_chip(vendor_name, seed=17, n_rows=32), cfg,
                      seed=18)

    assert ref.distances == fast.distances
    assert ref.detected == fast.detected
    assert ref.total_tests == fast.total_tests
    assert ref.recursion.tests_per_level == fast.recursion.tests_per_level
    assert ref.sample.coords() == fast.sample.coords()
    assert ref.stats.tests == fast.stats.tests
    assert ref.stats.rows_written == fast.stats.rows_written
    assert ref.stats.rows_read == fast.stats.rows_read

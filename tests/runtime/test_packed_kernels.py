"""Property tests of the bit-packed substrate kernels.

The packed kernels in :mod:`repro._kernels` must be the word-wise
image of the dense per-cell operations for *any* geometry - including
row widths that do not divide into whole 64-bit words - and the packed
bank must match :func:`repro.runtime.reference_kernels` on random bank
states under every vendor mapping.  The layout contract these tests
pin down is documented in ``docs/KERNELS.md``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._kernels import (WORD_BITS, diff_coords, gather_bits, pack_rows,
                            packed_words, popcount, scatter_assign_bits,
                            scatter_flip_bits, scatter_span_masks,
                            tail_mask, unpack_rows)
from repro.dram import (CoupledCellPopulation, CouplingSpec, DramChip,
                        FaultSpec, vendor)
from repro.dram.mapping import AddressMapping
from repro.runtime import reference_kernels

# Deliberately awkward row widths: 1 bit, sub-word, word-aligned,
# word+1, and multi-word with a partial tail.
SIZES = [1, 7, 63, 64, 65, 128, 200, 8192]


def _bits(rng, shape):
    return rng.integers(0, 2, size=shape, dtype=np.uint8)


# -- pack / unpack --------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.sampled_from(SIZES))
@settings(max_examples=25, deadline=None)
def test_pack_unpack_roundtrip(seed, n_bits):
    rng = np.random.default_rng(seed)
    bits = _bits(rng, (5, n_bits))
    words = pack_rows(bits)
    assert words.shape == (5, packed_words(n_bits))
    assert np.array_equal(unpack_rows(words, n_bits), bits)
    # Tail invariant: bits beyond n_bits are zero by construction.
    assert not (words[:, -1] & ~tail_mask(n_bits)).any()


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.sampled_from(SIZES))
@settings(max_examples=25, deadline=None)
def test_popcount_matches_dense_sum(seed, n_bits):
    rng = np.random.default_rng(seed)
    bits = _bits(rng, (4, n_bits))
    assert np.array_equal(popcount(pack_rows(bits)).sum(axis=-1),
                          bits.sum(axis=-1, dtype=np.uint64))


def test_bit_order_is_lsb_first():
    """The documented convention: cell p is bit p%64 of word p//64."""
    bits = np.zeros(130, dtype=np.uint8)
    bits[[0, 3, 64, 129]] = 1
    words = pack_rows(bits)
    assert words[0] == (1 << 0) | (1 << 3)
    assert words[1] == 1 << 0
    assert words[2] == 1 << 1


# -- gather / scatter -----------------------------------------------------


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.sampled_from(SIZES))
@settings(max_examples=25, deadline=None)
def test_gather_scatter_match_dense(seed, n_bits):
    rng = np.random.default_rng(seed)
    dense = _bits(rng, (6, n_bits))
    words = pack_rows(dense)
    k = int(rng.integers(0, 40))
    rows = rng.integers(0, 6, size=k)
    cols = rng.integers(0, n_bits, size=k)

    assert np.array_equal(gather_bits(words, rows, cols),
                          dense[rows, cols])

    # Flip: every event toggles; duplicates toggle repeatedly.
    np.bitwise_xor.at(dense, (rows, cols), np.uint8(1))
    scatter_flip_bits(words, rows, cols)
    assert np.array_equal(unpack_rows(words, n_bits), dense)

    # Assign: numpy fancy-assignment semantics (last duplicate wins).
    values = _bits(rng, k)
    dense[rows, cols] = values
    scatter_assign_bits(words, rows, cols, values)
    assert np.array_equal(unpack_rows(words, n_bits), dense)


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.sampled_from(SIZES))
@settings(max_examples=25, deadline=None)
def test_diff_coords_matches_dense_compare(seed, n_bits):
    rng = np.random.default_rng(seed)
    a = _bits(rng, (5, n_bits))
    b = a.copy()
    k = int(rng.integers(0, 25))
    b[rng.integers(0, 5, size=k), rng.integers(0, n_bits, size=k)] ^= 1
    rows, cols = diff_coords(pack_rows(a), pack_rows(b), n_bits)
    exp_rows, exp_cols = np.nonzero(a != b)
    assert np.array_equal(rows, exp_rows)
    assert np.array_equal(cols, exp_cols)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_scatter_span_masks_matches_dense(seed):
    rng = np.random.default_rng(seed)
    n_bits = 200
    n_rows = 5
    dense = _bits(rng, (n_rows, n_bits))
    words = pack_rows(dense)
    k = int(rng.integers(1, 12))
    rows = rng.integers(0, n_rows, size=k)
    starts = rng.integers(0, n_bits - 9, size=k)
    set_bits = np.zeros(k, dtype=bool)
    set_bits[:] = bool(rng.integers(0, 2))  # uniform per call: no
    # ordering between the set and clear passes is guaranteed on
    # overlapping spans of one row, so keep the value per-row-safe.
    span = 9
    n_w = packed_words(n_bits)
    word_idx = np.zeros((k, span), dtype=np.int64)
    masks = np.zeros((k, span), dtype=np.uint64)
    for i in range(k):
        cols = np.arange(starts[i], starts[i] + span)
        word_idx[i] = cols >> 6
        masks[i] = np.uint64(1) << (cols % 64).astype(np.uint64)
        dense[rows[i], cols] = np.uint8(1) if set_bits[i] else np.uint8(0)
    scatter_span_masks(words, rows, word_idx, masks, set_bits)
    assert np.array_equal(unpack_rows(words, n_bits), dense)


# -- bank-level equivalence ----------------------------------------------


def _random_chip(row_bits, seed):
    """A chip over a random scrambler with the given row width."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(row_bits)
    mapping = AddressMapping(row_bits=row_bits, block_bits=row_bits,
                             block_path=tuple(int(p) for p in perm),
                             tile_bits=row_bits)
    return DramChip(mapping=mapping, n_rows=12,
                    coupling_spec=CouplingSpec(n_cells=150),
                    fault_spec=FaultSpec(soft_error_rate=1e-6,
                                         n_vrt_cells=10,
                                         n_marginal_cells=10,
                                         n_weak_cells=10),
                    seed=seed)


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.sampled_from([63, 65, 200]))
@settings(max_examples=10, deadline=None)
def test_bank_cycle_matches_reference_on_odd_widths(seed, row_bits):
    """Write -> decay -> read parity on rows that end mid-word."""
    data_rng = np.random.default_rng(seed)
    rows = np.arange(12)
    data = _bits(data_rng, (12, row_bits))

    ref = _random_chip(row_bits, seed % 1009).banks[0]
    fast = _random_chip(row_bits, seed % 1009).banks[0]
    with reference_kernels():
        ref.write_rows(rows, data)
        ref_read = ref.retention_read_rows(rows)
        ref_fail = ref.retention_failures()
    fast.write_rows(rows, data)
    fast_read = fast.retention_read_rows(rows)
    fast_fail = fast.retention_failures()
    assert np.array_equal(ref.charge, fast.charge)
    assert np.array_equal(ref_read, fast_read)
    for a, b in zip(ref_fail, fast_fail):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("vendor_name", ["A", "B", "C"])
def test_evaluators_match_reference_across_vendors(vendor_name):
    """Coupled + fault evaluation parity on random states, per vendor."""
    chip_ref = vendor(vendor_name).make_chip(seed=23, n_rows=16)
    chip_fast = vendor(vendor_name).make_chip(seed=23, n_rows=16)
    data_rng = np.random.default_rng(99)
    for trial in range(5):
        data = _bits(data_rng, (16, chip_ref.row_bits))
        ref = chip_ref.banks[trial % len(chip_ref.banks)]
        fast = chip_fast.banks[trial % len(chip_fast.banks)]
        with reference_kernels():
            ref.write_rows(np.arange(16), data)
            ref_fail = ref.retention_failures()
        fast.write_rows(np.arange(16), data)
        fast_fail = fast.retention_failures()
        for a, b in zip(ref_fail, fast_fail):
            assert np.array_equal(a, b)


def test_population_packed_evaluation_matches_dense():
    """evaluate_failures_packed == evaluate_failures, same RNG draw."""
    rng = np.random.default_rng(11)
    pop = CoupledCellPopulation.generate(
        CouplingSpec(n_cells=400), n_rows=20, row_bits=200, tile_bits=100,
        rng=rng)
    charge = _bits(np.random.default_rng(12), (20, 200))
    words = pack_rows(charge)
    ref = pop.evaluate_failures(charge, np.random.default_rng(13))
    packed = pop.evaluate_failures_packed(words, np.random.default_rng(13))
    assert np.array_equal(ref, packed)


def test_charge_property_is_a_copy():
    """Mutating the unpacked view must not corrupt packed state."""
    bank = vendor("A").make_chip(seed=3, n_rows=4).banks[0]
    bank.write_rows(np.arange(4), np.ones(8192, dtype=np.uint8))
    view = bank.charge
    view[:] = 0
    assert bank.charge.any()

"""Durability contracts of the checkpoint journal and seed-ladder
backoff: fsync mode, idempotent/signal-safe close, the read-only
loader, cross-process backoff determinism, and checkpoint-key
properties.

These are the satellites of the campaign service: the daemon leans on
``fsync=True`` journals, closes them from drain paths and signal
handlers, renders them live with :meth:`CheckpointJournal.read`, and
schedules retries with :func:`backoff_delay` computed in *different
processes* than the one that will honour them.
"""

import json
import pathlib
import signal
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (CampaignSpec, CheckpointJournal,
                           backoff_delay, chip_seed, run_fleet)

HERE = pathlib.Path(__file__).parent
SRC = HERE.parents[1] / "src"

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _specs(n_rows=32, sample_size=200):
    return [
        CampaignSpec(experiment="characterize", vendor=v, index=1,
                     build_seed=chip_seed(7, v, 0, "build"),
                     run_seed=chip_seed(7, v, 0, "run"),
                     n_rows=n_rows, sample_size=sample_size,
                     run_sweep=False)
        for v in ("A", "B", "C")
    ]


# -- fsync mode ------------------------------------------------------------


class TestFsync:
    def test_fsync_journal_roundtrips(self, tmp_path):
        """A fleet checkpointed with ``checkpoint_fsync=True`` writes
        a journal an ordinary resume can consume."""
        ckpt = tmp_path / "fleet.ckpt"
        first = run_fleet(_specs(), jobs=1, checkpoint=str(ckpt),
                          checkpoint_fsync=True)
        resumed = run_fleet(_specs(), jobs=1, checkpoint=str(ckpt),
                            resume=True)
        assert resumed.checkpoint_hits == len(_specs())
        assert resumed.signatures() == first.signatures()

    def test_fsync_append_then_truncated_tail_tolerated(self, tmp_path):
        """fsync'd records survive; a torn final line does not poison
        them."""
        ckpt = tmp_path / "fleet.ckpt"
        spec = _specs()[0]
        journal = CheckpointJournal(str(ckpt), fsync=True)
        journal.record(spec, spec.run())
        journal.close()
        with open(ckpt, "a") as fh:
            fh.write('{"kind": "outcome", "key": "torn')  # no newline
        reopened = CheckpointJournal(str(ckpt), resume=True)
        try:
            assert reopened.has(spec)
            assert len(reopened) == 1
        finally:
            reopened.close()


# -- idempotent, signal-safe close ----------------------------------------


class TestClose:
    def test_close_is_idempotent(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.ckpt"))
        journal.close()
        journal.close()  # second close is a no-op, not an error

    def test_append_after_close_raises(self, tmp_path):
        spec = _specs()[0]
        journal = CheckpointJournal(str(tmp_path / "j.ckpt"))
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.record(spec, spec.run())

    def test_close_from_signal_handler_midstream(self, tmp_path):
        """A close racing in from a signal handler leaves a valid
        journal and the writer failing loudly, not corrupting.

        This is the drain-on-SIGTERM shape: the handler closes the
        journal while the main loop is still trying to append.
        """
        if not hasattr(signal, "setitimer"):
            pytest.skip("platform without setitimer")
        path = tmp_path / "j.ckpt"
        spec = _specs()[0]
        outcome = spec.run()
        journal = CheckpointJournal(str(path))

        def _close(signum, frame):
            journal.close()
            journal.close()  # reentrant double-close must hold too

        import dataclasses

        previous = signal.signal(signal.SIGALRM, _close)
        signal.setitimer(signal.ITIMER_REAL, 0.02)
        try:
            with pytest.raises(ValueError, match="closed"):
                attempt = 0
                while True:  # appends until the handler closes us
                    attempt += 1
                    journal.record(
                        dataclasses.replace(spec, run_seed=attempt),
                        outcome)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        # Every line that made it to disk is intact JSON.
        lines = path.read_text().splitlines()
        assert lines  # header at minimum
        for line in lines:
            json.loads(line)


# -- read-only loader ------------------------------------------------------


class TestRead:
    def test_read_matches_journal_and_tolerates_tail(self, tmp_path):
        ckpt = tmp_path / "fleet.ckpt"
        fleet = run_fleet(_specs(), jobs=1, checkpoint=str(ckpt))
        with open(ckpt, "a") as fh:
            fh.write('{"kind": "outcome", "key": "torn')
        records = CheckpointJournal.read(str(ckpt))
        assert [r["label"] for r in records] \
            == [o.signature()[0] for o in fleet.outcomes]
        assert all(r["kind"] == "outcome" for r in records)

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            CheckpointJournal.read(str(tmp_path / "absent.ckpt"))


# -- backoff determinism across processes ---------------------------------


BACKOFF_CHILD = """\
import json, sys
sys.path.insert(0, sys.argv[1])
from conftest_backoff import spec_for
from repro.runtime import backoff_delay
vendor = sys.argv[2]
print(json.dumps([backoff_delay(spec_for(vendor), attempt)
                  for attempt in range(1, 6)]))
"""

HELPER = """\
from repro.runtime import CampaignSpec, chip_seed

def spec_for(vendor):
    return CampaignSpec(experiment="characterize", vendor=vendor,
                        index=1,
                        build_seed=chip_seed(7, vendor, 0, "build"),
                        run_seed=chip_seed(7, vendor, 0, "run"),
                        n_rows=32, sample_size=200, run_sweep=False)
"""


class TestBackoffAcrossProcesses:
    def test_backoff_identical_in_fresh_interpreter(self, tmp_path):
        """The retry ladder a daemon computes before dying is the one
        its replacement recomputes: no per-process randomness."""
        (tmp_path / "conftest_backoff.py").write_text(HELPER)
        for vendor in ("A", "B"):
            out = subprocess.run(
                [sys.executable, "-c", BACKOFF_CHILD, str(tmp_path),
                 vendor],
                env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
                capture_output=True, text=True, check=True)
            child_delays = json.loads(out.stdout)
            spec = CampaignSpec(
                experiment="characterize", vendor=vendor, index=1,
                build_seed=chip_seed(7, vendor, 0, "build"),
                run_seed=chip_seed(7, vendor, 0, "run"),
                n_rows=32, sample_size=200, run_sweep=False)
            assert child_delays == [backoff_delay(spec, attempt)
                                    for attempt in range(1, 6)]


# -- checkpoint-key properties ---------------------------------------------


_spec_fields = st.fixed_dictionaries({
    "experiment": st.sampled_from(["characterize", "compare"]),
    "vendor": st.sampled_from(["A", "B", "C"]),
    "index": st.integers(min_value=0, max_value=3),
    "build_seed": st.integers(min_value=0, max_value=2 ** 16),
    "run_seed": st.integers(min_value=0, max_value=2 ** 16),
    "n_rows": st.sampled_from([32, 64]),
    "sample_size": st.sampled_from([100, 200]),
    "run_sweep": st.booleans(),
    "rounds": st.integers(min_value=1, max_value=3),
})


class TestCheckpointKeyProperties:
    @settings(max_examples=60, deadline=None)
    @given(fields=_spec_fields)
    def test_key_is_stable(self, fields):
        """Same identity, same key - across fresh spec objects."""
        assert (CampaignSpec(**fields).checkpoint_key()
                == CampaignSpec(**fields).checkpoint_key())

    @settings(max_examples=60, deadline=None)
    @given(a=_spec_fields, b=_spec_fields)
    def test_distinct_identities_never_collide(self, a, b):
        """Different result-affecting fields, different key.

        The durable queue, the shard partitioner, the campaign IDs
        and the checkpoint journal all key on this digest; a
        collision would silently alias two different targets.
        """
        key_a = CampaignSpec(**a).checkpoint_key()
        key_b = CampaignSpec(**b).checkpoint_key()
        assert (key_a == key_b) == (a == b)

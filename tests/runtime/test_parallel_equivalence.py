"""Differential tests: parallel fleets are identical to serial ones.

The central guarantee of :mod:`repro.runtime`: for any ``jobs``
setting, :func:`run_fleet` produces the same distances, detected sets
and test counts as the serial path - including when workers crash and
targets are retried, because every outcome is a pure function of its
spec's seeds.
"""

import os
from dataclasses import dataclass

import pytest

from repro.dram.controller import TestStats as Stats
from repro.runtime import (CampaignSpec, FleetExecutionError, chip_seed,
                           run_fleet)


def _characterize_specs(n_rows=48, sample_size=400):
    return [
        CampaignSpec(experiment="characterize", vendor=v, index=1,
                     build_seed=chip_seed(11, v, 0, "build"),
                     run_seed=chip_seed(11, v, 0, "run"),
                     n_rows=n_rows, sample_size=sample_size)
        for v in ("A", "B", "C")
    ]


@pytest.fixture(scope="module")
def serial_baseline():
    return run_fleet(_characterize_specs(), jobs=1)


def _assert_equivalent(a, b):
    assert len(a.outcomes) == len(b.outcomes)
    for x, y in zip(a.outcomes, b.outcomes):
        assert x.spec.label() == y.spec.label()
        assert x.distances == y.distances
        assert x.detected == y.detected
        assert x.total_tests == y.total_tests
        assert x.tests_per_level == y.tests_per_level
    assert a.signatures() == b.signatures()
    assert a.stats.tests == b.stats.tests
    assert a.stats.rows_written == b.stats.rows_written
    assert a.stats.rows_read == b.stats.rows_read
    assert a.stats.retention_waits == b.stats.retention_waits


def test_jobs4_identical_to_serial_all_vendors(serial_baseline):
    parallel = run_fleet(_characterize_specs(), jobs=4)
    _assert_equivalent(serial_baseline, parallel)
    assert parallel.jobs == 3  # capped at the number of targets


def test_jobs2_identical_to_serial(serial_baseline):
    _assert_equivalent(serial_baseline,
                       run_fleet(_characterize_specs(), jobs=2))


def test_compare_experiment_identical_across_jobs():
    specs = [CampaignSpec(experiment="compare", vendor=v, index=1,
                          build_seed=chip_seed(23, v, 0, "build"),
                          run_seed=chip_seed(23, v, 0, "run") % 2**31,
                          n_rows=32)
             for v in ("A", "B")]
    serial = run_fleet(specs, jobs=1)
    parallel = run_fleet(specs, jobs=4)
    _assert_equivalent(serial, parallel)
    for x, y in zip(serial.outcomes, parallel.outcomes):
        assert x.comparison == y.comparison


def test_outcomes_keep_submission_order():
    fleet = run_fleet(_characterize_specs(), jobs=3)
    assert [o.spec.vendor for o in fleet.outcomes] == ["A", "B", "C"]


def test_empty_fleet():
    fleet = run_fleet([], jobs=4)
    assert fleet.outcomes == []
    assert fleet.stats.tests == 0


# -- failure injection ----------------------------------------------------


@dataclass(frozen=True)
class CrashOnceSpec(CampaignSpec):
    """Hard-kills its process on first execution (sentinel on disk)."""

    sentinel: str = ""

    def run(self):
        if self.sentinel and not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            os._exit(13)  # simulates a segfaulting worker
        return super().run()


@dataclass(frozen=True)
class FlakyOnceSpec(CampaignSpec):
    """Raises on first execution, succeeds afterwards."""

    sentinel: str = ""

    def run(self):
        if self.sentinel and not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            raise RuntimeError("injected transient failure")
        return super().run()


@dataclass(frozen=True)
class AlwaysFailSpec(CampaignSpec):
    """Never succeeds."""

    sentinel: str = ""

    def run(self):
        raise RuntimeError("injected permanent failure")


def _with_crash(specs, crash_index, cls, sentinel):
    out = list(specs)
    s = out[crash_index]
    out[crash_index] = cls(
        experiment=s.experiment, vendor=s.vendor, index=s.index,
        build_seed=s.build_seed, run_seed=s.run_seed, n_rows=s.n_rows,
        sample_size=s.sample_size, run_sweep=s.run_sweep,
        sentinel=sentinel)
    return out


def test_worker_crash_is_retried_and_result_unchanged(tmp_path,
                                                      serial_baseline):
    """A dying worker breaks the pool; the rebuilt pool re-runs the
    unfinished targets and the fleet result is still byte-identical."""
    sentinel = str(tmp_path / "crashed")
    specs = _with_crash(_characterize_specs(), 1, CrashOnceSpec, sentinel)
    fleet = run_fleet(specs, jobs=3, retries=2)
    assert os.path.exists(sentinel)
    assert fleet.attempts > len(specs)
    _assert_equivalent(serial_baseline, fleet)


def test_serial_exception_is_retried_and_result_unchanged(tmp_path,
                                                          serial_baseline):
    sentinel = str(tmp_path / "flaked")
    specs = _with_crash(_characterize_specs(), 2, FlakyOnceSpec, sentinel)
    fleet = run_fleet(specs, jobs=1, retries=2)
    assert fleet.attempts == len(specs) + 1
    _assert_equivalent(serial_baseline, fleet)


def test_parallel_exception_is_retried_and_result_unchanged(
        tmp_path, serial_baseline):
    sentinel = str(tmp_path / "flaked-parallel")
    specs = _with_crash(_characterize_specs(), 0, FlakyOnceSpec, sentinel)
    fleet = run_fleet(specs, jobs=2, retries=2)
    assert fleet.attempts > len(specs)
    _assert_equivalent(serial_baseline, fleet)


@pytest.mark.parametrize("jobs", [1, 2])
def test_exhausted_retries_raise(jobs):
    specs = _with_crash(_characterize_specs(), 0, AlwaysFailSpec, "")
    with pytest.raises(FleetExecutionError) as err:
        run_fleet(specs, jobs=jobs, retries=1)
    assert "characterize:A1" in str(err.value)


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        run_fleet(_characterize_specs(), jobs=-1)
    with pytest.raises(ValueError):
        run_fleet(_characterize_specs(), retries=-1)
    with pytest.raises(ValueError):
        CampaignSpec(experiment="nonsense", vendor="A")


def test_stats_merge_matches_outcome_sum(serial_baseline):
    merged = Stats.merge(o.stats for o in serial_baseline.outcomes)
    assert merged.tests == serial_baseline.stats.tests
    assert merged.rows_written == serial_baseline.stats.rows_written

"""Tests for the parallel fleet-campaign runtime."""

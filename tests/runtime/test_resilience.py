"""Unit tests for the resilience layer: journal, backoff, deadlines,
degraded mode, and the pool-break retry-budget fix.

The scenario-level recovery proofs (seeded chaos schedules, SIGINT
resume, golden degraded report) live in ``tests/chaos``; this module
pins the contracts of the individual pieces.
"""

import os
import time

import pytest

from repro.runtime import (CampaignSpec, CheckpointJournal,
                           CheckpointMismatch, FleetExecutionError,
                           backoff_delay, chip_seed, run_fleet,
                           wrap_spec)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _specs(n_rows=32, sample_size=200):
    return [
        CampaignSpec(experiment="characterize", vendor=v, index=1,
                     build_seed=chip_seed(7, v, 0, "build"),
                     run_seed=chip_seed(7, v, 0, "run"),
                     n_rows=n_rows, sample_size=sample_size,
                     run_sweep=False)
        for v in ("A", "B", "C")
    ]


@pytest.fixture(scope="module")
def baseline():
    return run_fleet(_specs(), jobs=1)


# -- deterministic backoff ------------------------------------------------


class TestBackoff:
    def test_deterministic(self):
        spec = _specs()[0]
        assert backoff_delay(spec, 1) == backoff_delay(spec, 1)

    def test_exponential_envelope_and_jitter_range(self):
        spec = _specs()[0]
        for attempt in range(1, 6):
            delay = backoff_delay(spec, attempt, base=0.1, cap=1e9)
            lo = 0.1 * 2 ** (attempt - 1) * 0.5
            assert lo <= delay < 3 * lo

    def test_cap(self):
        spec = _specs()[0]
        assert backoff_delay(spec, 30, base=1.0, cap=2.5) == 2.5

    def test_zero_base_disables(self):
        assert backoff_delay(_specs()[0], 3, base=0.0) == 0.0

    def test_decorrelated_across_targets(self):
        a, b, c = _specs()
        delays = {backoff_delay(s, 1) for s in (a, b, c)}
        assert len(delays) == 3


# -- checkpoint keys and journal ------------------------------------------


class TestCheckpointKey:
    def test_stable_and_distinct(self):
        a, b, c = _specs()
        assert a.checkpoint_key() == a.checkpoint_key()
        assert len({s.checkpoint_key() for s in (a, b, c)}) == 3

    def test_sensitive_to_result_affecting_fields(self):
        import dataclasses
        spec = _specs()[0]
        assert spec.checkpoint_key() != dataclasses.replace(
            spec, n_rows=64).checkpoint_key()
        assert spec.checkpoint_key() != dataclasses.replace(
            spec, run_seed=spec.run_seed + 1).checkpoint_key()

    def test_insensitive_to_trace(self):
        import dataclasses
        spec = _specs()[0]
        assert spec.checkpoint_key() == dataclasses.replace(
            spec, trace=True).checkpoint_key()

    def test_chaos_wrapper_shares_key(self, tmp_path):
        spec = _specs()[0]
        wrapped = wrap_spec(spec, ("transient",), str(tmp_path))
        assert wrapped.checkpoint_key() == spec.checkpoint_key()


class TestJournal:
    def test_roundtrip(self, tmp_path, baseline):
        path = str(tmp_path / "fleet.ckpt")
        with CheckpointJournal(path) as journal:
            for spec, outcome in zip(_specs(), baseline.outcomes):
                journal.record(spec, outcome)
        reopened = CheckpointJournal(path, resume=True)
        assert len(reopened) == 3
        for spec, outcome in zip(_specs(), baseline.outcomes):
            assert reopened.has(spec)
            restored = reopened.outcome(spec)
            assert restored.signature() == outcome.signature()
            assert restored.stats.tests == outcome.stats.tests
        reopened.close()

    def test_truncated_tail_tolerated(self, tmp_path, baseline):
        path = str(tmp_path / "fleet.ckpt")
        with CheckpointJournal(path) as journal:
            for spec, outcome in zip(_specs(), baseline.outcomes):
                journal.record(spec, outcome)
        with open(path) as fh:
            lines = fh.readlines()
        # Simulate a crash mid-write of the final record.
        with open(path, "w") as fh:
            fh.writelines(lines[:-1])
            fh.write(lines[-1][:len(lines[-1]) // 2])
        reopened = CheckpointJournal(path, resume=True)
        assert len(reopened) == 2
        reopened.close()

    def test_mismatch_detected(self, tmp_path, baseline):
        path = str(tmp_path / "fleet.ckpt")
        spec = _specs()[0]
        with CheckpointJournal(path) as journal:
            journal.record(spec, baseline.outcomes[0])
            corrupted = run_fleet([spec]).outcomes[0]
            corrupted.distances = list(corrupted.distances) + [9999]
            assert not journal.signature_matches(spec, corrupted)
            with pytest.raises(CheckpointMismatch):
                journal.record(spec, corrupted)

    def test_fresh_journal_truncates(self, tmp_path, baseline):
        path = str(tmp_path / "fleet.ckpt")
        with CheckpointJournal(path) as journal:
            journal.record(_specs()[0], baseline.outcomes[0])
        with CheckpointJournal(path, resume=False) as journal:
            assert len(journal) == 0


# -- resume ---------------------------------------------------------------


class TestResume:
    def test_resume_skips_completed(self, tmp_path, baseline):
        path = str(tmp_path / "fleet.ckpt")
        partial = run_fleet(_specs()[:2], jobs=1, checkpoint=path)
        assert partial.checkpoint_hits == 0
        resumed = run_fleet(_specs(), jobs=1, checkpoint=path,
                            resume=True)
        assert resumed.checkpoint_hits == 2
        assert resumed.attempts == 1  # only vendor C executed
        assert resumed.signatures() == baseline.signatures()
        assert resumed.stats.tests == baseline.stats.tests

    def test_resume_parallel_matches_serial(self, tmp_path, baseline):
        path = str(tmp_path / "fleet.ckpt")
        run_fleet(_specs()[:1], jobs=1, checkpoint=path)
        resumed = run_fleet(_specs(), jobs=2, checkpoint=path,
                            resume=True)
        assert resumed.checkpoint_hits == 1
        assert resumed.signatures() == baseline.signatures()

    def test_verify_resume_reruns_and_matches(self, tmp_path, baseline):
        path = str(tmp_path / "fleet.ckpt")
        run_fleet(_specs(), jobs=1, checkpoint=path)
        verified = run_fleet(_specs(), jobs=1, checkpoint=path,
                             resume="verify")
        assert verified.checkpoint_hits == 0
        assert verified.attempts == 3
        assert verified.signatures() == baseline.signatures()

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError):
            run_fleet(_specs(), resume=True)
        with pytest.raises(ValueError):
            run_fleet(_specs(), checkpoint=None, resume="sometimes")


# -- graceful degradation -------------------------------------------------


class TestDegraded:
    def test_partial_outcomes_and_errors(self, tmp_path, baseline):
        specs = _specs()
        specs[1] = wrap_spec(specs[1], ("transient",) * 4,
                             str(tmp_path))
        fleet = run_fleet(specs, jobs=1, retries=1, strict=False,
                          backoff_base=0.0)
        assert not fleet.ok
        assert [e.label for e in fleet.errors] == ["characterize:B1"]
        assert fleet.errors[0].attempts == 2
        assert fleet.errors[0].kind == "exception"
        assert [o.spec.vendor for o in fleet.outcomes] == ["A", "C"]
        expected = [baseline.signatures()[0], baseline.signatures()[2]]
        assert fleet.signatures() == expected

    def test_max_failures_budget(self, tmp_path):
        specs = _specs()
        specs[0] = wrap_spec(specs[0], ("transient",) * 4,
                             str(tmp_path / "a"))
        specs[1] = wrap_spec(specs[1], ("transient",) * 4,
                             str(tmp_path / "b"))
        for sub in ("a", "b"):
            os.makedirs(str(tmp_path / sub), exist_ok=True)
        with pytest.raises(FleetExecutionError):
            run_fleet(specs, jobs=1, retries=0, strict=False,
                      max_failures=1, backoff_base=0.0)

    def test_strict_default_still_raises(self, tmp_path):
        specs = _specs()
        specs[0] = wrap_spec(specs[0], ("transient",) * 4,
                             str(tmp_path))
        with pytest.raises(FleetExecutionError):
            run_fleet(specs, jobs=1, retries=0, backoff_base=0.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            run_fleet(_specs(), timeout_s=0)
        with pytest.raises(ValueError):
            run_fleet(_specs(), strict=False, max_failures=-1)


# -- serial deadline ------------------------------------------------------


class TestSerialDeadline:
    def test_hang_interrupted_and_recovered(self, tmp_path, baseline):
        specs = _specs()
        specs[0] = wrap_spec(specs[0], ("hang",), str(tmp_path),
                             hang_s=30.0)
        t0 = time.perf_counter()
        fleet = run_fleet(specs, jobs=1, retries=1, timeout_s=2.0,
                          backoff_base=0.0)
        elapsed = time.perf_counter() - t0
        assert elapsed < 15.0  # nowhere near the 30 s hang
        assert fleet.signatures() == baseline.signatures()
        assert fleet.attempts == len(specs) + 1

    def test_exhausted_timeouts_degrade(self, tmp_path):
        specs = _specs()[:1]
        specs[0] = wrap_spec(specs[0], ("hang", "hang"), str(tmp_path),
                             hang_s=30.0)
        fleet = run_fleet(specs, jobs=1, retries=1, timeout_s=0.3,
                          strict=False, backoff_base=0.0)
        assert not fleet.ok
        assert fleet.errors[0].kind == "timeout"


# -- pool-break retry budget (the overcharging fix) -----------------------


class TestPoolBreakBudget:
    def test_repeat_crasher_does_not_exhaust_innocents(
            self, tmp_path, baseline):
        """Two crashes with retries=2: under the old accounting every
        collateral ``BrokenProcessPool`` charged the innocent targets
        too; now casualties requeue free and only the isolated crasher
        pays."""
        specs = _specs()
        specs[1] = wrap_spec(specs[1], ("crash", "crash"),
                             str(tmp_path), hang_s=1.0)
        fleet = run_fleet(specs, jobs=3, retries=2, backoff_base=0.01)
        assert fleet.signatures() == baseline.signatures()
        assert fleet.attempts > len(specs)

    def test_crasher_alone_is_charged_and_fails(self, tmp_path):
        specs = _specs()[:1]
        specs[0] = wrap_spec(specs[0], ("crash",) * 5, str(tmp_path))
        # Single-target fleets run serially; force the pool path with
        # a second clean target and strict failure on the crasher.
        specs.append(_specs()[1])
        with pytest.raises(FleetExecutionError) as err:
            run_fleet(specs, jobs=2, retries=1, backoff_base=0.01)
        assert "characterize:A1" in str(err.value)

    def test_degraded_crash_keeps_innocents(self, tmp_path, baseline):
        specs = _specs()
        specs[2] = wrap_spec(specs[2], ("crash",) * 5, str(tmp_path))
        fleet = run_fleet(specs, jobs=3, retries=1, strict=False,
                          backoff_base=0.01)
        assert [e.label for e in fleet.errors] == ["characterize:C1"]
        assert fleet.errors[0].kind == "crash"
        expected = baseline.signatures()[:2]
        assert fleet.signatures() == expected

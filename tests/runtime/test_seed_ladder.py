"""Property-based tests of the SHA-256 seed ladder.

The ladder is the determinism root of the fleet runtime: every
campaign's randomness is a pure function of (root seed, identity
path).  These tests pin down the properties the runtime relies on -
injectivity, order independence, process/platform stability, and
range - with hypothesis where the property is universal and exact
constants where the guarantee is "this value never changes".
"""

import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import chip_seed, ladder_seed, module_seed, seed_ladder

part = st.one_of(st.integers(min_value=-2**40, max_value=2**40),
                 st.text(max_size=8))
path = st.lists(part, max_size=5)
root = st.integers(min_value=-2**40, max_value=2**63 - 1)


@given(root, path)
def test_seed_in_63_bit_range(root_seed, p):
    seed = ladder_seed(root_seed, *p)
    assert 0 <= seed < 2**63


@given(root, path)
def test_deterministic(root_seed, p):
    assert ladder_seed(root_seed, *p) == ladder_seed(root_seed, *p)


@given(root, path, path)
def test_injective_on_distinct_paths(root_seed, p1, p2):
    if p1 == p2:
        assert ladder_seed(root_seed, *p1) == ladder_seed(root_seed, *p2)
    else:
        assert ladder_seed(root_seed, *p1) != ladder_seed(root_seed, *p2)


@given(root, st.text(max_size=6), st.text(max_size=6))
def test_no_concatenation_ambiguity(root_seed, a, b):
    """("ab",) and ("a", "b") must never alias (length prefixing)."""
    if (a + b,) != (a, b):
        assert ladder_seed(root_seed, a + b) != ladder_seed(root_seed, a, b)


@given(root, path)
def test_order_independent_of_draw_history(root_seed, p):
    """The seed depends only on the path, not on prior ladder use."""
    before = ladder_seed(root_seed, *p)
    for i in range(5):
        ladder_seed(root_seed, "other", i)
    assert ladder_seed(root_seed, *p) == before


@given(st.integers(min_value=0, max_value=2**31), st.permutations(
    [("chip", "A", 0), ("chip", "B", 1), ("module", "C", 2)]))
def test_path_set_seeds_independent_of_enumeration_order(root_seed, order):
    seeds = {p: ladder_seed(root_seed, *p) for p in order}
    expected = {p: ladder_seed(root_seed, *p)
                for p in sorted(seeds)}
    assert seeds == expected


@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=1, max_value=16))
def test_fleet_sizes_1_to_16_never_collide(root_seed, n):
    seeds = []
    for vendor in ("A", "B", "C"):
        for i in range(n):
            seeds.append(chip_seed(root_seed, vendor, i, "build"))
            seeds.append(chip_seed(root_seed, vendor, i, "run"))
    assert len(set(seeds)) == len(seeds)


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=0, max_value=16))
def test_seed_ladder_matches_elementwise(root_seed, n):
    rungs = seed_ladder(root_seed, n, "stage")
    assert rungs == [ladder_seed(root_seed, "stage", i) for i in range(n)]
    assert len(set(rungs)) == len(rungs)


def test_known_values_are_frozen():
    """Changing these breaks reproducibility of recorded campaigns."""
    assert ladder_seed(0) == 8355753865950210623
    assert ladder_seed(2016, "chip", "A", 0, "build") == \
        4685162828485611071
    assert chip_seed(2016, "A", 0) == 4685162828485611071
    assert module_seed(2016, "B", 3, "run") == 8349913051080603713
    assert ladder_seed(7, "x", 1) == 5751183139008487530


def test_stable_across_process_boundaries():
    """A fresh interpreter derives the same seeds (no hash() salt)."""
    code = ("from repro.runtime import ladder_seed; "
            "print(ladder_seed(2016, 'chip', 'A', 0, 'build'))")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, check=True)
    assert int(out.stdout.strip()) == 4685162828485611071


def test_rejects_unhashable_path_types():
    import pytest
    with pytest.raises(TypeError):
        ladder_seed(0, 1.5)
    with pytest.raises(TypeError):
        ladder_seed(0, True)
    with pytest.raises(TypeError):
        ladder_seed(0, ("a",))


def test_negative_ladder_length_rejected():
    import pytest
    with pytest.raises(ValueError):
        seed_ladder(0, -1)

"""Golden-file tests for the paper-table benchmarks.

Tiny-geometry versions of the Figure 11 / Table 1 / Figure 13
benchmarks, diffed character-for-character against checked-in golden
tables.  The full benchmarks assert paper-level facts; these goldens
pin the *exact* output - any engine change that perturbs a seeded
campaign (RNG draw order, scheduling, vectorization) shows up as a
table diff long before it would move a paper-level number.

Regenerate after an intentional behaviour change with:

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/test_bench_goldens.py
"""

import os
import pathlib

import pytest

from repro.analysis import (coverage_split, format_distance_set,
                            format_percent, format_table,
                            ranking_histogram, recursion_for_vendor)
from repro.dram.faults import NoiseSpec

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDENS"))

TINY = dict(seed=2016, n_rows=48, sample_size=500)


def _check(name: str, text: str) -> None:
    path = GOLDEN_DIR / f"{name}.txt"
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden {path}; run with REPRO_REGEN_GOLDENS=1")
    assert text == path.read_text(), (
        f"{name} drifted from its golden; if the change is intentional, "
        f"regenerate with REPRO_REGEN_GOLDENS=1")


@pytest.fixture(scope="module")
def recursions():
    return {name: recursion_for_vendor(name, **TINY)
            for name in ("A", "B", "C")}


@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_fig11_distances_golden(recursions, name):
    result = recursions[name]
    rows = [[f"L{lv.level}", lv.region_size,
             format_distance_set(lv.kept_distances)]
            for lv in result.recursion.levels]
    _check(f"fig11_vendor_{name}", format_table(
        ["Level", "Region size", "Neighbour-region distances"], rows))


@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_table1_test_counts_golden(recursions, name):
    result = recursions[name]
    counts = result.recursion.tests_per_level
    rows = [[name, *counts, sum(counts)]]
    _check(f"table1_vendor_{name}", format_table(
        ["Mfr", "L1", "L2", "L3", "L4", "L5", "Total"], rows))


NOISE = NoiseSpec(n_vrt_cells=4, vrt_fail_prob=0.9,
                  n_marginal_cells=4, marginal_fail_prob=0.6,
                  soft_error_rate=2e-6)

TRUE_REGIONS = {"A": {-1, 1, -2, 2, -6, 6}, "B": {0, -8, 8}}


@pytest.mark.parametrize("name", ["A", "B"])
def test_fig14_ranking_robust_noise_golden(name):
    """Tiny-geometry Figure 14 with injected noise + rounds=3 voting,
    pinned character-for-character.  Also asserts the paper-level fact
    at this geometry: the true regions outrank every noise distance."""
    hist = ranking_histogram(name, level=4, **TINY, rounds=3,
                             noise=NOISE)
    rows = [[d, f"{v:.3f}", "*" if d in TRUE_REGIONS[name] else ""]
            for d, v in sorted(hist.items())]
    true_found = TRUE_REGIONS[name] & set(hist)
    tail = set(hist) - TRUE_REGIONS[name]
    assert true_found
    assert (min(hist[d] for d in true_found)
            > max((hist[d] for d in tail), default=0.0))
    _check(f"fig14_robust_noise_{name}", format_table(
        ["Distance", "Normalised frequency", "True region"], rows))


def test_fig13_coverage_golden():
    splits = coverage_split(seed=2016, n_rows=48)
    rows = [[s.module_id, format_percent(s.only_parbor),
             format_percent(s.only_random), format_percent(s.both)]
            for s in splits]
    _check("fig13_coverage", format_table(
        ["Module", "Only PARBOR", "Only random", "Both"], rows))

"""Smoke tests: the runnable examples stay runnable.

Each example is executed as a subprocess, exactly as a user would run
it; only the faster ones run here (the DC-REF study and future-node
study are covered functionally by the dcref/extension test suites).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "recursion_walkthrough.py",
    "scrambler_explorer.py",
    "mitigation_study.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "example produced no output"


def test_walkthrough_recovers_toy_distances():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "recursion_walkthrough.py")],
        capture_output=True, text=True, timeout=600)
    assert "{+-1, +-5}" in proc.stdout


def test_all_examples_present():
    expected = {
        "quickstart.py", "vendor_characterization.py",
        "recursion_walkthrough.py", "dcref_refresh_study.py",
        "future_node_study.py", "mitigation_study.py",
        "scrambler_explorer.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}

"""Appendix analytics: the paper's headline time and reduction numbers."""

import pytest

from repro.core import (exhaustive_cost_table, exhaustive_test_time_s,
                        humanise_seconds, module_test_time_s,
                        parbor_campaign_time_s, per_bit_test_time_ns,
                        recursion_test_count, reduction_factor)
from repro.core.complexity import SECONDS_PER_DAY, SECONDS_PER_YEAR


class TestPerBitTime:
    def test_dominated_by_retention_wait(self):
        # Appendix: ~64 ms per tested bit.
        assert per_bit_test_time_ns() == pytest.approx(64e6, rel=1e-4)


class TestExhaustiveTimes:
    def test_linear_test_takes_minutes(self):
        # Appendix: 64 * 8192 ms = 8.73 minutes.
        t = exhaustive_test_time_s(8192, 1)
        assert t / 60 == pytest.approx(8.74, rel=0.01)

    def test_pair_test_takes_49_days(self):
        t = exhaustive_test_time_s(8192, 2)
        assert t / SECONDS_PER_DAY == pytest.approx(49.7, rel=0.01)

    def test_triple_test_takes_1115_years(self):
        t = exhaustive_test_time_s(8192, 3)
        assert t / SECONDS_PER_YEAR == pytest.approx(1115, rel=0.01)

    def test_quad_test_takes_9_megayears(self):
        t = exhaustive_test_time_s(8192, 4)
        assert t / (1e6 * SECONDS_PER_YEAR) == pytest.approx(9.13,
                                                             rel=0.01)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            exhaustive_test_time_s(8192, 0)

    def test_cost_table_shape(self):
        rows = exhaustive_cost_table()
        assert [r.k_neighbours for r in rows] == [1, 2, 3, 4]
        assert rows[1].human.endswith("days")
        assert rows[3].human.endswith("M years")


class TestModuleTimes:
    def test_single_test_time_matches_appendix(self):
        # 174.98 + 64 + 174.98 ms = 413.96 ms per whole-module test.
        t = module_test_time_s(1)
        assert t == pytest.approx(0.41396, rel=0.001)

    def test_92_tests_take_38_seconds(self):
        # 92 * 413.96 ms = 38.08 s (the paper's Section 7.2 quotes the
        # 38-55 s range).
        assert module_test_time_s(92) == pytest.approx(38.08, rel=0.01)

    def test_132_tests_take_55_seconds(self):
        assert module_test_time_s(132) == pytest.approx(54.64, rel=0.01)

    def test_campaign_time_composition(self):
        total = parbor_campaign_time_s(recursion_tests=66,
                                       sweep_rounds=16,
                                       discovery_tests=10)
        assert total == pytest.approx(module_test_time_s(92), rel=1e-9)

    def test_negative_tests_rejected(self):
        with pytest.raises(ValueError):
            module_test_time_s(-1)


class TestReductions:
    def test_paper_reduction_factors(self):
        # "a 90X and 745,654X reduction" for O(n) and O(n^2).
        assert reduction_factor(8192, 1, 90) == pytest.approx(91.0,
                                                              rel=0.02)
        assert reduction_factor(8192, 2, 90) == pytest.approx(745_654,
                                                              rel=0.001)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            reduction_factor(8192, 2, 0)


class TestRecursionCount:
    def test_vendor_a_count(self):
        # Table 1 row A: kept regions per level 1, 1, 3, 6, -.
        assert recursion_test_count((2, 8, 8, 8, 8),
                                    (1, 1, 3, 6, 6)) == 90

    def test_vendor_b_count(self):
        assert recursion_test_count((2, 8, 8, 8, 8),
                                    (1, 1, 3, 3, 4)) == 66

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            recursion_test_count((2, 8), (1,))


class TestHumanise:
    @pytest.mark.parametrize("seconds,needle", [
        (30, "s"), (600, "min"), (7200, "h"),
        (10 * SECONDS_PER_DAY, "days"),
        (5 * SECONDS_PER_YEAR, "years"),
        (2e6 * SECONDS_PER_YEAR, "M years"),
    ])
    def test_units(self, seconds, needle):
        assert humanise_seconds(seconds).endswith(needle)

"""The five-step PARBOR pipeline end to end."""

import numpy as np
import pytest

from repro.core import (ParborConfig, controllers_for, run_parbor)
from repro.dram import DramModule, MemoryController, vendor


class TestRunParbor:
    def test_detects_most_coupled_cells(self):
        chip = vendor("A").make_chip(seed=11, n_rows=64)
        result = run_parbor(chip, ParborConfig(sample_size=1000), seed=5)
        pop = chip.banks[0].coupled
        p2s = chip.mapping.phys_to_sys()
        coupled = {(0, 0, int(r), int(p2s[p]))
                   for r, p in zip(pop.row, pop.phys)
                   if not pop.remapped[list(pop.row).index(r)]}
        # Regular (non-remapped) coupled cells: PARBOR should find the
        # vast majority.
        regular = {(0, 0, int(pop.row[i]), int(p2s[pop.phys[i]]))
                   for i in range(len(pop)) if not pop.remapped[i]}
        hit = len(regular & result.detected) / len(regular)
        assert hit > 0.9

    def test_budget_itemisation(self):
        chip = vendor("B").make_chip(seed=3, n_rows=64)
        result = run_parbor(chip, ParborConfig(sample_size=1000), seed=1)
        assert result.total_tests == (result.n_discovery_tests
                                      + result.n_recursion_tests
                                      + result.n_sweep_rounds)
        assert result.n_discovery_tests == 10
        assert result.n_sweep_rounds == result.schedule.total_rounds

    def test_run_sweep_false_skips_detection(self):
        chip = vendor("A").make_chip(seed=3, n_rows=64)
        result = run_parbor(chip, ParborConfig(sample_size=500), seed=1,
                            run_sweep=False)
        assert result.detected == set()
        assert result.n_sweep_rounds == 0
        assert result.schedule is None

    def test_detected_includes_discovery_failures(self):
        chip = vendor("A").make_chip(seed=9, n_rows=64)
        result = run_parbor(chip, ParborConfig(sample_size=500), seed=2)
        assert result.sample.observed_failures <= result.detected

    def test_module_target_pools_chips(self):
        profile = vendor("B")
        chips = [profile.make_chip(seed=i, n_rows=32,
                                   chip_id=f"c{i}") for i in range(2)]
        module = DramModule("B9", chips)
        result = run_parbor(module, ParborConfig(sample_size=500),
                            seed=4, run_sweep=False)
        assert set(result.sample.chip.tolist()) <= {0, 1}
        assert result.magnitudes() == [1, 64]

    def test_controllers_for_variants(self):
        chip = vendor("A").make_chip(seed=0, n_rows=16)
        assert len(controllers_for(chip)) == 1
        assert len(controllers_for([chip, chip])) == 2
        module = DramModule("A9", [chip])
        assert len(controllers_for(module)) == 1
        assert isinstance(controllers_for(chip)[0], MemoryController)

"""Property tests: adaptive group testing finds arbitrary aggressors."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import ParborConfig, recover_irregular_victims
from repro.dram import MemoryController

from .conftest import quiet_chip, tiny_mapping
from .test_extensions import plant_irregular


@given(st.integers(min_value=0, max_value=63),
       st.integers(min_value=0, max_value=63),
       st.integers(min_value=0, max_value=63))
@settings(max_examples=25, deadline=None)
def test_weak_pair_recovered_anywhere(victim, left, right):
    """Any distinct victim/aggressor placement is located exactly."""
    assume(len({victim, left, right}) == 3)
    mapping = tiny_mapping()
    chip = quiet_chip(mapping, n_rows=2)
    s2p = mapping.sys_to_phys()
    plant_irregular(chip, [dict(row=0, phys=int(s2p[victim]),
                                left=int(s2p[left]),
                                right=int(s2p[right]),
                                w_left=0.7, w_right=0.7)])
    ctrl = MemoryController(chip)
    result = recover_irregular_victims([ctrl], [(0, 0, 0, victim)],
                                       ParborConfig())
    assert set(result.aggressors.get((0, 0, 0, victim), [])) \
        == {left, right}


@given(st.integers(min_value=0, max_value=63),
       st.integers(min_value=0, max_value=63))
@settings(max_examples=25, deadline=None)
def test_strong_single_recovered_anywhere(victim, aggressor):
    assume(victim != aggressor)
    mapping = tiny_mapping()
    chip = quiet_chip(mapping, n_rows=2)
    s2p = mapping.sys_to_phys()
    plant_irregular(chip, [dict(row=0, phys=int(s2p[victim]),
                                left=int(s2p[aggressor]),
                                w_left=1.5)])
    ctrl = MemoryController(chip)
    result = recover_irregular_victims([ctrl], [(0, 0, 0, victim)],
                                       ParborConfig())
    assert result.aggressors.get((0, 0, 0, victim)) == [aggressor]


def test_recovery_test_count_scales_logarithmically():
    """Doubling the row width adds a bounded number of extra tests."""
    from repro.dram import boustrophedon_path
    from repro.dram.mapping import AddressMapping

    counts = {}
    for bits in (64, 256, 1024):
        path = boustrophedon_path(bits, block=bits // 2)
        mapping = AddressMapping(row_bits=bits, block_bits=bits,
                                 block_path=tuple(path), tile_bits=bits)
        chip = quiet_chip(mapping, n_rows=2)
        s2p = mapping.sys_to_phys()
        plant_irregular(chip, [dict(row=0, phys=int(s2p[5]),
                                    left=int(s2p[1]),
                                    right=int(s2p[bits - 3]),
                                    w_left=0.7, w_right=0.7)])
        ctrl = MemoryController(chip)
        result = recover_irregular_victims([ctrl], [(0, 0, 0, 5)],
                                           ParborConfig())
        assert (0, 0, 0, 5) in result.aggressors
        counts[bits] = result.tests
    # 16x the bits, far less than 16x the tests.
    assert counts[1024] < 3 * counts[64]

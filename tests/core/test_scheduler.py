"""Neighbour-aware sweep scheduling: validity and coverage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (build_schedule, greedy_colouring,
                        paper_round_count)
from repro.core.scheduler import sparse_stride

VENDOR_SETS = {
    "A": [-8, 8, -16, 16, -48, 48],
    "B": [-1, 1, -64, 64],
    "C": [-16, 16, -33, 33, -49, 49],
}


def assert_valid_schedule(schedule, row_bits, distances):
    """Every bit a victim exactly once; no victim is another's
    aggressor; aggressor positions of every victim are written 0."""
    mags = sorted({abs(d) for d in distances})
    coverage = np.zeros(row_bits, dtype=int)
    for pattern, victims in zip(schedule.patterns, schedule.victim_masks):
        coverage += victims
        idx = np.flatnonzero(victims)
        assert (pattern[idx] == 1).all()
        for m in mags:
            for sign in (1, -1):
                agg = idx + sign * m
                agg = agg[(agg >= 0) & (agg < row_bits)]
                assert (pattern[agg] == 0).all()
                # Aggressor positions are never same-round victims.
                assert not victims[agg].any()
    assert (coverage == 1).all()


class TestGreedyColouring:
    @given(st.sets(st.integers(min_value=1, max_value=100),
                   min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_colouring_is_proper(self, mags):
        colours = greedy_colouring(512, sorted(mags))
        for v in range(512):
            for m in mags:
                if v + m < 512:
                    assert colours[v] != colours[v + m]

    def test_distance_exceeding_row_rejected(self):
        with pytest.raises(ValueError):
            greedy_colouring(64, [64])


class TestSparseStride:
    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_stride_divides_no_distance(self, name):
        mags = [abs(d) for d in VENDOR_SETS[name]]
        s = sparse_stride(mags)
        assert all(m % s for m in set(mags))

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            sparse_stride([])

    def test_composed_distances_protected(self):
        mags = (16, 33, 49)
        s = sparse_stride(mags)
        signed = {m for x in mags for m in (x, -x)}
        composed = {a + b for a in signed for b in signed} - signed - {0}
        residues = {m % s for m in signed}
        for c in composed:
            assert c % s not in residues


class TestSchedules:
    @pytest.mark.parametrize("name", ["A", "B", "C"])
    @pytest.mark.parametrize("scheme", ["sparse", "greedy"])
    def test_schedule_validity(self, name, scheme):
        distances = VENDOR_SETS[name]
        schedule = build_schedule(1024, distances, scheme=scheme)
        assert_valid_schedule(schedule, 1024, distances)

    def test_paper_scheme_validity_vendor_a(self):
        distances = VENDOR_SETS["A"]
        schedule = build_schedule(1024, distances, scheme="paper")
        assert_valid_schedule(schedule, 1024, distances)

    def test_round_counts_in_paper_ballpark(self):
        # Paper: 16-32 total rounds; our schedulers land 24-58.
        for name, distances in VENDOR_SETS.items():
            sparse = build_schedule(1024, distances, scheme="sparse")
            greedy = build_schedule(1024, distances, scheme="greedy")
            assert greedy.total_rounds <= sparse.total_rounds <= 64
            assert greedy.total_rounds >= 4

    def test_paper_round_count_vendor_a(self):
        # Chunk 96, gap 8 -> 12 groups -> 24 rounds with inverses
        # (the paper reports 32 with its global 128-bit chunk).
        assert paper_round_count(VENDOR_SETS["A"]) == 24

    def test_one_sided_distances_protect_both_sides(self):
        schedule = build_schedule(256, [8])   # only +8 discovered
        assert_valid_schedule(schedule, 256, [-8, 8])

    def test_empty_distances_rejected(self):
        with pytest.raises(ValueError):
            build_schedule(256, [])
        with pytest.raises(ValueError):
            build_schedule(256, [0])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_schedule(256, [8], scheme="magic")

    def test_total_rounds_doubles_base(self):
        schedule = build_schedule(256, [8])
        assert schedule.total_rounds == 2 * schedule.base_rounds

"""Initial victim-set discovery."""

import numpy as np
import pytest

from repro.core import ParborConfig, find_initial_victims
from repro.dram import (CouplingSpec, DramChip, FaultSpec,
                        MemoryController, vendor)

from .conftest import plant_victims, quiet_chip, tiny_mapping


def discover(chip, sample_size=1000, seed=0, n_tests=10):
    cfg = ParborConfig(sample_size=sample_size,
                       n_discovery_tests=n_tests)
    ctrl = MemoryController(chip)
    return find_initial_victims([ctrl], cfg, np.random.default_rng(seed))


class TestDiscovery:
    def test_finds_planted_strong_victims(self):
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=8)
        plant_victims(chip, [
            dict(row=1, phys=20, w_left=1.5, w_right=0.2),
            dict(row=3, phys=40, w_left=0.2, w_right=1.5),
        ])
        sample = discover(chip)
        coords = set(sample.coords())
        p2s = mapping.phys_to_sys()
        assert (0, 0, 1, int(p2s[20])) in coords
        assert (0, 0, 3, int(p2s[40])) in coords

    def test_clean_chip_yields_empty_sample(self):
        chip = quiet_chip(tiny_mapping(), n_rows=8)
        sample = discover(chip)
        assert len(sample) == 0
        assert sample.observed_failures == set()

    def test_sample_size_cap(self):
        chip = vendor("C").make_chip(seed=1, n_rows=64)
        ctrl = MemoryController(chip)
        cfg = ParborConfig(sample_size=50)
        sample = find_initial_victims([ctrl], cfg,
                                      np.random.default_rng(0))
        assert len(sample) == 50

    def test_observed_failures_superset_of_sample(self):
        chip = vendor("A").make_chip(seed=1, n_rows=64)
        ctrl = MemoryController(chip)
        sample = find_initial_victims([ctrl], ParborConfig(),
                                      np.random.default_rng(0))
        assert set(sample.coords()) <= sample.observed_failures

    def test_budget_matches_battery(self):
        chip = vendor("A").make_chip(seed=1, n_rows=32)
        ctrl = MemoryController(chip)
        cfg = ParborConfig(n_discovery_tests=6)
        sample = find_initial_victims([ctrl], cfg,
                                      np.random.default_rng(0))
        assert sample.n_discovery_tests == 6
        assert ctrl.stats.tests == 6

    def test_requires_controllers(self):
        with pytest.raises(ValueError):
            find_initial_victims([], ParborConfig(),
                                 np.random.default_rng(0))

    def test_mixed_row_width_rejected(self):
        a = MemoryController(vendor("A").make_chip(seed=0, n_rows=16))
        b = MemoryController(vendor("A").make_chip(seed=0, n_rows=16,
                                                   row_bits=4096))
        with pytest.raises(ValueError):
            find_initial_victims([a, b], ParborConfig(),
                                 np.random.default_rng(0))

    def test_subset_and_from_coords_roundtrip(self):
        chip = vendor("A").make_chip(seed=1, n_rows=32)
        ctrl = MemoryController(chip)
        sample = find_initial_victims([ctrl], ParborConfig(),
                                      np.random.default_rng(0))
        mask = np.zeros(len(sample), dtype=bool)
        mask[: len(sample) // 2] = True
        half = sample.subset(mask)
        assert len(half) == int(mask.sum())
        assert set(half.coords()) <= set(sample.coords())

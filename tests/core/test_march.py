"""March tests: notation, mechanics, and the Challenge-2 gap."""

import numpy as np
import pytest

from repro.core import (MARCH_B, MARCH_C_MINUS, MATS_PLUS, MarchElement,
                        MarchOp, MarchTest, checkerboard, controllers_for,
                        parse_march, run_march)
from repro.dram import MemoryController, vendor

from .conftest import plant_victims, quiet_chip, tiny_mapping


class TestNotation:
    def test_parse_mats_plus(self):
        test = parse_march("MATS+", "{b(w0); u(r0,w1); d(r1,w0)}")
        assert len(test.elements) == 3
        assert test.elements[0].direction == 0
        assert test.elements[1].direction == 1
        assert test.elements[2].direction == -1
        assert test.ops_per_cell == 5

    def test_standard_complexities(self):
        assert MATS_PLUS.ops_per_cell == 5       # 5n
        assert MARCH_C_MINUS.ops_per_cell == 10  # 10n
        assert MARCH_B.ops_per_cell == 17        # 17n

    def test_roundtrip_str(self):
        assert "u(r0,w1)" in str(MATS_PLUS)

    @pytest.mark.parametrize("bad", [
        "b(w0); u(r0)",          # missing braces
        "{x(w0)}",               # bad direction
        "{u(w2)}",               # bad value
        "{u()}",                 # empty ops
        "{}",                    # empty test
    ])
    def test_bad_notation_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_march("bad", bad)

    def test_op_validation(self):
        with pytest.raises(ValueError):
            MarchOp(kind="x", value=0)
        with pytest.raises(ValueError):
            MarchOp(kind="r", value=2)
        with pytest.raises(ValueError):
            MarchElement(direction=2, ops=(MarchOp("r", 0),))


class TestMechanics:
    def test_clean_chip_passes(self):
        chip = quiet_chip(tiny_mapping(), n_rows=8)
        outcome = run_march(controllers_for(chip), MARCH_C_MINUS)
        assert outcome.detected == set()

    def test_operation_count(self):
        chip = quiet_chip(tiny_mapping(), n_rows=8)
        outcome = run_march(controllers_for(chip), MARCH_C_MINUS)
        assert outcome.row_operations == 10 * 8
        assert outcome.retention_waits == 5

    def test_pause_free_variant_skips_waits(self):
        chip = quiet_chip(tiny_mapping(), n_rows=8)
        fast = MarchTest("fast", MARCH_C_MINUS.elements,
                         pause_between=False)
        outcome = run_march(controllers_for(chip), fast)
        assert outcome.retention_waits == 0

    def test_requires_controllers(self):
        with pytest.raises(ValueError):
            run_march([], MATS_PLUS)


class TestChallengeTwo:
    """Section 3, Challenge 2: simple tests miss data-dependent
    failures behind the scrambler."""

    def test_solid_march_misses_coupled_cells(self):
        mapping = tiny_mapping()          # distances {+-1, +-8}
        chip = quiet_chip(mapping, n_rows=8)
        plant_victims(chip, [dict(row=0, phys=20, w_left=1.5,
                                  w_right=0.2)])
        outcome = run_march(controllers_for(chip), MARCH_C_MINUS)
        assert outcome.detected == set()   # uniform data: invisible

    def test_checkerboard_march_catches_adjacent_coupling_only(self):
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=8)
        # Victim at phys 20: aggressor at system distance -1 (odd ->
        # checkerboard puts opposite values there).
        # Victim at phys 8: aggressor at system distance -8 (even ->
        # checkerboard puts the SAME value there; invisible).
        plant_victims(chip, [
            dict(row=0, phys=20, w_left=1.5, w_right=0.2),
            dict(row=1, phys=8, w_left=1.5, w_right=0.2),
        ])
        p2s = mapping.phys_to_sys()
        outcome = run_march(controllers_for(chip), MARCH_C_MINUS,
                            background=checkerboard(64))
        assert (0, 0, 0, int(p2s[20])) in outcome.detected
        assert (0, 0, 1, int(p2s[8])) not in outcome.detected

    def test_march_finds_weak_cells(self):
        """Weak (content-independent) cells DO fall to solid marches -
        they are what manufacturing tests screen."""
        chip = vendor("A").make_chip(seed=11, n_rows=64)
        outcome = run_march(controllers_for(chip), MARCH_C_MINUS)
        faults = chip.banks[0].faults
        p2s = chip.mapping.phys_to_sys()
        weak = {(0, 0, int(r), int(p2s[c]))
                for r, c in zip(faults.weak_row, faults.weak_phys)
                if faults.weak_threshold[list(faults.weak_row).index(r)]
                <= 1.0}
        # The solid march caught a healthy share of the weak cells but
        # almost none of the (far larger) coupled population.
        coupled = chip.coupled_cell_count()
        assert len(outcome.detected & weak) >= len(weak) // 2
        assert len(outcome.detected) < 0.2 * coupled


class TestExtendedMarches:
    def test_march_ss_complexity(self):
        from repro.core import MARCH_SS
        assert MARCH_SS.ops_per_cell == 22

    def test_march_lr_complexity(self):
        from repro.core import MARCH_LR
        assert MARCH_LR.ops_per_cell == 14

    def test_extended_marches_run_clean(self):
        from repro.core import MARCH_LR, MARCH_SS
        chip = quiet_chip(tiny_mapping(), n_rows=4)
        for test in (MARCH_SS, MARCH_LR):
            assert run_march(controllers_for(chip), test).detected \
                == set()


class TestNotationRoundtrip:
    @pytest.mark.parametrize("test_name", ["MATS_PLUS", "MARCH_C_MINUS",
                                           "MARCH_B", "MARCH_SS",
                                           "MARCH_LR"])
    def test_parse_notation_roundtrip(self, test_name):
        import repro.core as core
        original = getattr(core, test_name)
        reparsed = parse_march(original.name, original.notation())
        assert reparsed.elements == original.elements
        assert reparsed.ops_per_cell == original.ops_per_cell

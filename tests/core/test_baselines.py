"""Baseline tests: exhaustive/linear searches and the random sweep."""

import numpy as np
import pytest

from repro.core import (exhaustive_neighbour_search,
                        linear_neighbour_search, random_pattern_test,
                        simple_pattern_test)
from repro.dram import MemoryController

from .conftest import plant_victims, quiet_chip, tiny_mapping


def chip_with_strong_victim():
    """Strong left-coupled victim; returns (chip, sys coords)."""
    mapping = tiny_mapping()
    chip = quiet_chip(mapping, n_rows=4)
    plant_victims(chip, [dict(row=0, phys=20, w_left=1.5, w_right=0.2)])
    p2s = mapping.phys_to_sys()
    return chip, int(p2s[20]), int(p2s[19]), int(p2s[21])


class TestLinearSearch:
    def test_finds_strong_aggressor(self):
        chip, victim, left_sys, _right = chip_with_strong_victim()
        ctrl = MemoryController(chip)
        found = linear_neighbour_search(ctrl, bank=0, row=0, col=victim)
        assert found == [left_sys]

    def test_weak_victim_invisible_to_linear_search(self):
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=4)
        plant_victims(chip, [dict(row=0, phys=20, w_left=0.6,
                                  w_right=0.6)])
        ctrl = MemoryController(chip)
        victim = int(mapping.phys_to_sys()[20])
        assert linear_neighbour_search(ctrl, 0, 0, victim) == []


class TestExhaustiveSearch:
    def test_pairs_containing_strong_aggressor(self):
        chip, victim, left_sys, _right = chip_with_strong_victim()
        ctrl = MemoryController(chip)
        pairs = exhaustive_neighbour_search(ctrl, 0, 0, victim)
        # Every failing pair contains the true aggressor; the
        # aggressor appears in n-2 pairs.
        assert pairs
        assert all(left_sys in pair for pair in pairs)
        assert len(pairs) == 62

    def test_weak_victim_needs_both_neighbours_in_pair(self):
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=4)
        plant_victims(chip, [dict(row=0, phys=20, w_left=0.7,
                                  w_right=0.7)])
        ctrl = MemoryController(chip)
        p2s = mapping.phys_to_sys()
        victim = int(p2s[20])
        expected = tuple(sorted((int(p2s[19]), int(p2s[21]))))
        pairs = exhaustive_neighbour_search(ctrl, 0, 0, victim)
        assert pairs == [expected]


class TestSweeps:
    def test_random_test_budget_accounting(self):
        chip = quiet_chip(tiny_mapping(), n_rows=4)
        ctrl = MemoryController(chip)
        random_pattern_test([ctrl], n_tests=5,
                            rng=np.random.default_rng(0))
        assert ctrl.stats.tests == 5

    def test_random_test_rejects_zero_budget(self):
        chip = quiet_chip(tiny_mapping(), n_rows=4)
        with pytest.raises(ValueError):
            random_pattern_test([MemoryController(chip)], n_tests=0,
                                rng=np.random.default_rng(0))

    def test_random_test_finds_strong_victims_eventually(self):
        chip, victim, _l, _r = chip_with_strong_victim()
        ctrl = MemoryController(chip)
        found = random_pattern_test([ctrl], n_tests=40,
                                    rng=np.random.default_rng(1))
        assert (0, 0, 0, victim) in found

    def test_simple_patterns_miss_scrambled_victims(self):
        # Challenge 2 of the paper: all-0s/1s backgrounds are uniform
        # (no interference), and a checkerboard puts the SAME value on
        # cells whose system distance is even - like this victim whose
        # aggressor sits at system distance -8 across the snake fold.
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=4)
        plant_victims(chip, [dict(row=0, phys=8, w_left=1.5,
                                  w_right=0.2)])
        p2s = mapping.phys_to_sys()
        victim, aggressor = int(p2s[8]), int(p2s[7])
        assert victim - aggressor == 8   # scrambled, not adjacent
        ctrl = MemoryController(chip)
        assert simple_pattern_test([ctrl]) == set()

"""PARBOR configuration and the data-pattern library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (ParborConfig, checkerboard, discovery_patterns,
                        inverse, random_pattern, region_sizes, solid,
                        walking_ones, with_inverses)


class TestRegionSizes:
    def test_paper_fanouts(self):
        assert region_sizes(8192, (2, 8, 8, 8, 8)) \
            == (4096, 512, 64, 8, 1)

    def test_non_dividing_fanout_rejected(self):
        with pytest.raises(ValueError):
            region_sizes(100, (3, 8))

    def test_incomplete_reduction_rejected(self):
        with pytest.raises(ValueError):
            region_sizes(8192, (2, 8))


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ParborConfig()
        assert cfg.fanouts == (2, 8, 8, 8, 8)
        assert cfg.n_discovery_tests == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ParborConfig(n_discovery_tests=1)
        with pytest.raises(ValueError):
            ParborConfig(ranking_threshold=0.0)
        with pytest.raises(ValueError):
            ParborConfig(marginal_region_fraction=1.5)
        with pytest.raises(ValueError):
            ParborConfig(scheduler="magic")

    def test_sizes_for(self):
        assert ParborConfig().sizes_for(8192)[-1] == 1


class TestPatterns:
    def test_solid_values(self):
        assert solid(16, 0).sum() == 0
        assert solid(16, 1).sum() == 16
        with pytest.raises(ValueError):
            solid(16, 2)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_checkerboard_period(self, period):
        row = checkerboard(1024, period=period)
        # Runs of equal bits have exactly `period` length (except the
        # tail).
        changes = np.flatnonzero(np.diff(row.astype(np.int8)))
        if len(changes) > 1:
            assert set(np.diff(changes).tolist()) == {period}

    def test_checkerboard_phase_shifts(self):
        a = checkerboard(64, period=4, phase=0)
        b = checkerboard(64, period=4, phase=4)
        assert np.array_equal(a[4:], b[:-4])

    def test_walking_ones(self):
        row = walking_ones(32, 7)
        assert row.sum() == 1 and row[7] == 1
        with pytest.raises(ValueError):
            walking_ones(32, 32)

    def test_inverse_involution(self):
        row = random_pattern(128, np.random.default_rng(0))
        assert np.array_equal(inverse(inverse(row)), row)

    def test_with_inverses_pairs(self):
        battery = list(with_inverses([("solid0", solid(8, 0))]))
        assert len(battery) == 2
        assert battery[1][0] == "~solid0"
        assert np.array_equal(battery[1][1], solid(8, 1))

    def test_discovery_battery_size_and_determinism(self):
        a = discovery_patterns(64, 10, np.random.default_rng(5))
        b = discovery_patterns(64, 10, np.random.default_rng(5))
        assert len(a) == 10
        for (na, pa), (nb, pb) in zip(a, b):
            assert na == nb and np.array_equal(pa, pb)

    def test_discovery_battery_includes_classics(self):
        names = [n for n, _ in discovery_patterns(64, 10,
                                                  np.random.default_rng(0))]
        assert "solid0" in names and "checker1" in names

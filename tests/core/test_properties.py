"""Property-based end-to-end tests: PARBOR against random scramblers.

The strongest correctness property of the whole stack: for *any*
scrambler built from a random step set, planting strongly coupled
victims and running the recursion must report only *true* neighbour
distances of that scrambler.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParborConfig, VictimSample, \
    recursive_neighbour_search
from repro.dram import (CouplingSpec, DramChip, FaultSpec,
                        MemoryController, find_step_path)
from repro.dram.mapping import AddressMapping

STEP_SETS = [(1, 3), (1, 5), (2, 3), (1, 7), (3, 4), (1, 6), (2, 5)]


def random_scrambler_chip(steps, n_cells, seed):
    """A 256-bit-row chip with a random step-path scrambler."""
    signed = [s for m in steps for s in (m, -m)]
    path = find_step_path(256, signed)
    mapping = AddressMapping(row_bits=256, block_bits=256,
                             block_path=tuple(path), tile_bits=256)
    spec = CouplingSpec(n_cells=n_cells, strong_fraction=1.0,
                        p_fail_range=(1.0, 1.0))
    chip = DramChip(mapping=mapping, n_rows=32, coupling_spec=spec,
                    fault_spec=FaultSpec(soft_error_rate=0.0), seed=seed)
    return chip, mapping


@given(st.sampled_from(STEP_SETS), st.integers(min_value=0,
                                               max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_recursion_reports_only_true_distances(steps, seed):
    chip, mapping = random_scrambler_chip(steps, n_cells=300, seed=seed)
    pop = chip.banks[0].coupled
    p2s = mapping.phys_to_sys()
    # Sparse rows (<= 2 victims each): 256-bit rows are 32x shorter
    # than real ones, so row crowding must be capped the same way
    # ParborConfig.max_victims_per_row does for real discovery.
    coords = []
    per_row = {}
    for i in range(len(pop)):
        r = int(pop.row[i])
        if per_row.get(r, 0) < 2:
            per_row[r] = per_row.get(r, 0) + 1
            coords.append((0, 0, r, int(p2s[pop.phys[i]])))
    ctrl = MemoryController(chip)
    config = ParborConfig(fanouts=(2, 8, 4, 4), sample_size=300)
    result = recursive_neighbour_search(
        [ctrl], VictimSample.from_coords(coords), config)

    truth = set(mapping.neighbour_distance_set())
    assert set(result.distances) <= truth
    # With hundreds of strong victims, the frequent magnitudes appear.
    assert set(result.magnitudes()) <= set(steps)
    assert result.magnitudes(), "no distances recovered at all"


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_full_pipeline_deterministic_for_fixed_seeds(seed):
    """Identical chips + identical campaign seeds => identical output."""
    from repro.core import run_parbor
    from repro.dram import vendor

    def once():
        chip = vendor("B").make_chip(seed=seed % 1000, n_rows=48)
        res = run_parbor(chip, ParborConfig(sample_size=400),
                         seed=seed % 97, run_sweep=False)
        return res.distances, res.recursion.tests_per_level

    assert once() == once()


class TestNoiseRobustness:
    @pytest.mark.parametrize("n_vrt,n_marginal", [(50, 50), (150, 150)])
    def test_distances_survive_heavy_noise(self, n_vrt, n_marginal):
        """Even with several hundred noise cells per bank, the ranking
        and marginal filters keep the distance set clean."""
        from repro.core import run_parbor
        from repro.dram import vendor
        profile = vendor("A")
        spec = FaultSpec(soft_error_rate=1e-7, n_vrt_cells=n_vrt,
                         n_marginal_cells=n_marginal)
        chip = DramChip(mapping=profile.mapping(8192), n_rows=96,
                        coupling_spec=CouplingSpec(n_cells=900),
                        fault_spec=spec, seed=31)
        result = run_parbor(chip, ParborConfig(sample_size=1500),
                            seed=7, run_sweep=False)
        assert result.magnitudes() == [8, 16, 48]

"""Recursive neighbour search: paper counts and ground-truth recovery."""

import numpy as np
import pytest

from repro.core import (ParborConfig, VictimSample,
                        exhaustive_neighbour_search,
                        recursive_neighbour_search)
from repro.dram import MemoryController, vendor

from .conftest import plant_victims, quiet_chip, tiny_mapping

PAPER_TESTS = {"A": [2, 8, 8, 24, 48],
               "B": [2, 8, 8, 24, 24],
               "C": [2, 8, 8, 24, 48]}
PAPER_MAGS = {"A": [8, 16, 48], "B": [1, 64], "C": [16, 33, 49]}

TINY_CFG = ParborConfig(fanouts=(2, 8, 4), sample_size=100)


@pytest.mark.parametrize("name", ["A", "B", "C"])
def test_paper_table1_counts_and_figure11_distances(name):
    """The headline result: Table 1 test counts per level and the full
    signed distance sets of Figure 11, per vendor."""
    from repro.core import run_parbor
    chip = vendor(name).make_chip(seed=7, n_rows=128)
    res = run_parbor(chip, ParborConfig(sample_size=2000), seed=3,
                     run_sweep=False)
    assert res.recursion.tests_per_level == PAPER_TESTS[name]
    assert res.magnitudes() == PAPER_MAGS[name]
    # Both signs of every magnitude are recovered.
    for mag in PAPER_MAGS[name]:
        assert mag in res.distances and -mag in res.distances


class TestTinyChipRecursion:
    def _search(self, chip, victims_sys):
        ctrl = MemoryController(chip)
        coords = [(0, 0, r, c) for r, c in victims_sys]
        sample = VictimSample.from_coords(coords)
        return recursive_neighbour_search([ctrl], sample, TINY_CFG)

    def test_recovers_known_distance(self):
        mapping = tiny_mapping()          # distances {+-1, +-8}
        chip = quiet_chip(mapping, n_rows=8)
        # Strong victims spread over rows; snake-fold cells have the
        # +-8 relation, run cells the +-1 relation.
        victims = [dict(row=r, phys=p, w_left=1.5, w_right=0.2)
                   for r, p in [(0, 8), (1, 24), (2, 40), (3, 9),
                                (4, 25), (5, 41), (6, 10), (7, 26)]]
        plant_victims(chip, victims)
        p2s = mapping.phys_to_sys()
        sys_coords = [(v["row"], int(p2s[v["phys"]])) for v in victims]
        result = self._search(chip, sys_coords)
        assert set(result.magnitudes()) <= {1, 8}
        assert 8 in result.magnitudes()

    def test_agrees_with_exhaustive_search(self):
        """PARBOR's answer matches the O(n^2) ground-truth test."""
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=8)
        victims = [dict(row=r, phys=8 + 16 * (r % 4), w_left=1.5,
                        w_right=0.2) for r in range(8)]
        plant_victims(chip, victims)
        p2s = mapping.phys_to_sys()
        sys_coords = [(v["row"], int(p2s[v["phys"]])) for v in victims]
        result = self._search(chip, sys_coords)

        ctrl = MemoryController(chip)
        row, col = sys_coords[0]
        pairs = exhaustive_neighbour_search(ctrl, 0, row, col)
        exhaustive_aggressors = {a for pair in pairs for a in pair
                                 if abs(a - col) != 0}
        # The aggressor distance found exhaustively is in PARBOR's set.
        true_distance = {a - col for a in exhaustive_aggressors
                         if (a - col) in result.distances}
        assert true_distance

    def test_empty_sample_returns_empty(self):
        chip = quiet_chip(tiny_mapping(), n_rows=4)
        result = self._search(chip, [])
        assert result.distances == []
        assert result.total_tests == 0

    def test_marginal_victims_discarded(self):
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=8)
        # One real victim plus a cell failing everywhere (a "weak
        # cell": coupled to nothing, modelled as w=9 on both sides and
        # context-free, so any opposite neighbour flips it).
        plant_victims(chip, [
            dict(row=0, phys=8, w_left=1.5, w_right=0.2),
        ])
        # Marginal noise cell: inject via the fault model instead.
        bank = chip.banks[0]
        bank.faults.marginal_row = np.array([1])
        bank.faults.marginal_phys = np.array([30])
        bank.faults.marginal_threshold = np.array([0.1])
        bank.faults.spec = bank.faults.spec.__class__(
            soft_error_rate=0.0, n_marginal_cells=1,
            marginal_fail_prob=1.0)
        p2s = mapping.phys_to_sys()
        noise_sys = int(p2s[30])
        result = self._search(
            chip, [(0, int(p2s[8])), (1, noise_sys)])
        total_marginal = sum(lv.discarded_marginal
                             for lv in result.levels)
        assert total_marginal >= 1

    def test_tests_counted_per_level(self):
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=8)
        plant_victims(chip, [dict(row=0, phys=20, w_left=1.5,
                                  w_right=0.2)])
        p2s = mapping.phys_to_sys()
        result = self._search(chip, [(0, int(p2s[20]))])
        # Level 1 always costs exactly its fanout.
        assert result.levels[0].tests == 2
        assert result.total_tests == sum(result.tests_per_level)

"""Shared fixtures: small hand-crafted chips with known ground truth."""

import numpy as np
import pytest

from repro.dram import (CoupledCellPopulation, CouplingSpec, DramChip,
                        FaultSpec, NO_NEIGHBOUR, boustrophedon_path)
from repro.dram.cells import MAX_CONTEXT
from repro.dram.mapping import AddressMapping


def tiny_mapping(row_bits=64, block=16):
    """A small boustrophedon scrambler with distances {+-1, +-8}."""
    path = boustrophedon_path(block, block=block // 2)
    return AddressMapping(row_bits=row_bits, block_bits=block,
                          block_path=tuple(path), tile_bits=block)


def quiet_chip(mapping, n_rows=16, seed=0):
    """A chip with no coupled cells and no random faults."""
    return DramChip(mapping=mapping, n_rows=n_rows,
                    coupling_spec=CouplingSpec(n_cells=0),
                    fault_spec=FaultSpec(soft_error_rate=0.0),
                    seed=seed)


def plant_victims(chip, victims, bank=0):
    """Install a known victim population into one bank.

    Args:
        chip: target chip.
        victims: list of dicts with keys row, phys, w_left, w_right
            (and optional p_fail, context - physical positions).
    """
    n = len(victims)
    ctx = np.full((n, 2 * MAX_CONTEXT), NO_NEIGHBOUR, dtype=np.int64)
    for i, v in enumerate(victims):
        for j, pos in enumerate(v.get("context", [])):
            ctx[i, j] = pos
    tile = chip.mapping.tile_bits
    phys = np.array([v["phys"] for v in victims])
    left = np.where(phys % tile == 0, NO_NEIGHBOUR, phys - 1)
    right = np.where(phys % tile == tile - 1, NO_NEIGHBOUR, phys + 1)
    pop = CoupledCellPopulation(
        row=np.array([v["row"] for v in victims]),
        phys=phys, left_phys=left, right_phys=right,
        w_left=np.array([v["w_left"] for v in victims], dtype=float),
        w_right=np.array([v["w_right"] for v in victims], dtype=float),
        p_fail=np.array([v.get("p_fail", 1.0) for v in victims],
                        dtype=float),
        context=ctx)
    chip.banks[bank].coupled = pop
    return pop


@pytest.fixture
def tiny_chip():
    """64-bit rows, {+-1, +-8} scrambler, no cells planted yet."""
    return quiet_chip(tiny_mapping())

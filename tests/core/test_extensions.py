"""Paper-sketched extensions: remapped-cell recovery (Section 7.3) and
future-node multi-neighbour coupling (Sections 1/3)."""

import numpy as np
import pytest

from repro.core import (ParborConfig, recover_irregular_victims,
                        run_parbor)
from repro.dram import CouplingSpec, DramChip, FaultSpec, MemoryController
from repro.dram.cells import CoupledCellPopulation, NO_NEIGHBOUR

from .conftest import quiet_chip, tiny_mapping


def plant_irregular(chip, victims):
    """Victims with explicit (possibly far-away) aggressor positions."""
    n = len(victims)
    pop = CoupledCellPopulation(
        row=np.array([v["row"] for v in victims]),
        phys=np.array([v["phys"] for v in victims]),
        left_phys=np.array([v.get("left", NO_NEIGHBOUR)
                            for v in victims]),
        right_phys=np.array([v.get("right", NO_NEIGHBOUR)
                             for v in victims]),
        w_left=np.array([v.get("w_left", 0.0) for v in victims]),
        w_right=np.array([v.get("w_right", 0.0) for v in victims]),
        p_fail=np.ones(n),
        remapped=np.ones(n, dtype=bool))
    chip.banks[0].coupled = pop
    return pop


class TestRemapRecovery:
    def test_recovers_weak_pair_at_arbitrary_positions(self):
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=4)
        plant_irregular(chip, [dict(row=0, phys=20, left=5, right=45,
                                    w_left=0.7, w_right=0.7)])
        p2s = mapping.phys_to_sys()
        coord = (0, 0, 0, int(p2s[20]))
        ctrl = MemoryController(chip)
        result = recover_irregular_victims([ctrl], [coord],
                                           ParborConfig())
        assert result.attempted == 1
        assert set(result.aggressors[coord]) == {int(p2s[5]),
                                                 int(p2s[45])}

    def test_recovers_strong_single_aggressor(self):
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=4)
        plant_irregular(chip, [dict(row=1, phys=10, left=50,
                                    w_left=1.5)])
        p2s = mapping.phys_to_sys()
        coord = (0, 0, 1, int(p2s[10]))
        ctrl = MemoryController(chip)
        result = recover_irregular_victims([ctrl], [coord],
                                           ParborConfig())
        assert result.aggressors[coord] == [int(p2s[50])]

    def test_non_reproducible_victim_skipped(self):
        chip = quiet_chip(tiny_mapping(), n_rows=4)
        ctrl = MemoryController(chip)
        result = recover_irregular_victims([ctrl], [(0, 0, 0, 7)],
                                           ParborConfig())
        assert result.attempted == 1
        assert len(result) == 0

    def test_test_budget_logarithmic(self):
        mapping = tiny_mapping()
        chip = quiet_chip(mapping, n_rows=4)
        plant_irregular(chip, [dict(row=0, phys=20, left=5, right=45,
                                    w_left=0.7, w_right=0.7)])
        p2s = mapping.phys_to_sys()
        ctrl = MemoryController(chip)
        result = recover_irregular_victims(
            [ctrl], [(0, 0, 0, int(p2s[20]))], ParborConfig())
        # O(log n): far below the 64^2/2 pair tests.
        assert result.tests < 120

    def test_max_victims_cap(self):
        chip = quiet_chip(tiny_mapping(), n_rows=4)
        ctrl = MemoryController(chip)
        residual = [(0, 0, 0, c) for c in range(10)]
        result = recover_irregular_victims([ctrl], residual,
                                           ParborConfig(), max_victims=3)
        assert result.attempted == 3

    def test_end_to_end_recovery_improves_coverage(self):
        from repro.dram import vendor
        # Two identical chips: campaigns are stochastic, so the
        # comparison needs independent-but-equal targets.
        chip_a = vendor("B").make_chip(seed=13, n_rows=96)
        chip_b = vendor("B").make_chip(seed=13, n_rows=96)
        base = run_parbor(chip_a, ParborConfig(sample_size=1500), seed=4)
        with_rec = run_parbor(chip_b, ParborConfig(sample_size=1500),
                              seed=4, recover_remapped=True)
        assert with_rec.recovery is not None
        assert with_rec.recovery.attempted > 0
        assert len(with_rec.recovery) > 0
        # Recovered victims are remapped-column cells: their recovered
        # aggressor sets exist and the campaign's budget grew.
        assert with_rec.total_tests > base.total_tests


class TestSecondOrderCoupling:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CouplingSpec(n_cells=1, second_order_fraction=1.5)

    def test_default_has_no_second_order(self):
        from repro.dram import vendor
        chip = vendor("A").make_chip(seed=0, n_rows=16)
        pop = chip.banks[0].coupled
        gap = np.abs(pop.phys - pop.left_phys)
        # Remapped victims have arbitrary aggressors; regular ones are
        # immediate neighbours by default.
        ok = (pop.left_phys != NO_NEIGHBOUR) & ~pop.remapped
        assert (gap[ok] == 1).all()

    def test_second_order_aggressors_two_out(self):
        from repro.dram import vendor
        mapping = vendor("A").mapping(8192)
        spec = CouplingSpec(n_cells=2000, second_order_fraction=0.5)
        chip = DramChip(mapping=mapping, n_rows=16, coupling_spec=spec,
                        fault_spec=FaultSpec(soft_error_rate=0.0), seed=3)
        pop = chip.banks[0].coupled
        strong = pop.strong_mask
        gaps = []
        for side in (pop.left_phys, pop.right_phys):
            ok = strong & (side != NO_NEIGHBOUR)
            gaps.extend(np.abs(pop.phys - side)[ok].tolist())
        assert 2 in gaps and 1 in gaps

    def test_order2_distance_set(self):
        from repro.dram import vendor
        mapping = vendor("B").mapping(8192)
        first = set(mapping.distance_magnitudes(order=1))
        second = set(mapping.distance_magnitudes(order=2))
        assert first == {1, 64}
        # Pair-block path: consecutive steps +-64, +-1 compose to 63/65.
        assert second == {63, 65}

    def test_order_validated(self):
        from repro.dram import identity_mapping
        with pytest.raises(ValueError):
            identity_mapping(64).neighbour_distance_set(order=0)

    def test_parbor_discovers_second_order_distances(self):
        """On a future-node chip, the same PARBOR campaign finds the
        extended distance set - no algorithm change needed."""
        from repro.dram import vendor
        profile = vendor("B")
        mapping = profile.mapping(8192)
        spec = CouplingSpec(n_cells=1500, second_order_fraction=0.45)
        chip = DramChip(mapping=mapping, n_rows=96, coupling_spec=spec,
                        fault_spec=profile.faults, seed=9)
        result = run_parbor(chip, ParborConfig(sample_size=1500),
                            seed=2, run_sweep=False)
        mags = set(result.magnitudes())
        assert {1, 64} <= mags
        # At least one second-order distance (63 or 65) surfaces.
        assert mags & {63, 65}

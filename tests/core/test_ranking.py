"""Distance ranking and noise filtering."""

import pytest

from repro.core import normalised_ranking, rank_distances


class TestRankDistances:
    def test_keeps_frequent_drops_rare(self):
        reporters = {0: 500, -1: 120, 1: 110, 7: 3, -9: 2}
        out = rank_distances(reporters, n_active=1000, threshold=0.06)
        assert out.kept == [0, -1, 1]
        assert set(out.dropped) == {7, -9}
        assert out.max_reporters == 500

    def test_threshold_relative_to_sample(self):
        reporters = {0: 500, 5: 10}
        # 10/1000 = 1% < 6%.
        assert rank_distances(reporters, 1000, 0.06).kept == [0]
        # 10/100 = 10% >= 6%.
        assert set(rank_distances(reporters, 100, 0.06).kept) == {0, 5}

    def test_empty_reporters(self):
        out = rank_distances({}, n_active=100, threshold=0.1)
        assert out.kept == [] and out.dropped == []

    def test_zero_active_sample(self):
        out = rank_distances({1: 5}, n_active=0, threshold=0.1)
        assert out.kept == []

    def test_minimum_support_of_one(self):
        # With a tiny sample the cut never drops below one reporter.
        out = rank_distances({3: 1}, n_active=2, threshold=0.06)
        assert out.kept == [3]

    def test_kept_sorted_by_magnitude(self):
        reporters = {8: 50, -1: 50, -8: 50, 1: 50}
        out = rank_distances(reporters, 100, 0.06)
        assert out.kept == [-1, 1, -8, 8]

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            rank_distances({0: 1}, 10, 0.0)
        with pytest.raises(ValueError):
            rank_distances({0: 1}, 10, 1.5)


class TestNormalisedRanking:
    def test_normalises_to_most_frequent(self):
        hist = normalised_ranking({0: 200, 1: 100, 2: 50})
        assert hist[0] == 1.0
        assert hist[1] == pytest.approx(0.5)
        assert hist[2] == pytest.approx(0.25)

    def test_empty(self):
        assert normalised_ranking({}) == {}

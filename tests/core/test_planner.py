"""Analytic campaign planner vs. the paper and the empirical runs."""

import pytest

from repro.core import (ParborConfig, plan_campaign,
                        predict_level_distances)

VENDOR_SETS = {"A": [-8, 8, -16, 16, -48, 48],
               "B": [-1, 1, -64, 64],
               "C": [-16, 16, -33, 33, -49, 49]}
PAPER_TESTS = {"A": [2, 8, 8, 24, 48],
               "B": [2, 8, 8, 24, 24],
               "C": [2, 8, 8, 24, 48]}


class TestPlanner:
    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_predicts_table1_exactly(self, name):
        plan = plan_campaign(VENDOR_SETS[name])
        assert [t for t, _ in plan.levels] == PAPER_TESTS[name]
        assert plan.recursion_tests == sum(PAPER_TESTS[name])

    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_predicts_figure11_final_level(self, name):
        plan = plan_campaign(VENDOR_SETS[name])
        assert plan.levels[-1][1] == sorted(
            VENDOR_SETS[name], key=lambda d: (abs(d), d))

    def test_vendor_b_intermediate_levels(self):
        plan = plan_campaign(VENDOR_SETS["B"])
        kept = [k for _, k in plan.levels]
        assert kept[2] == [0, -1, 1]
        assert kept[3] == [0, -8, 8]   # the +-1 stragglers filtered

    def test_wall_clock_in_paper_band(self):
        # Paper Section 7.2: campaigns take tens of seconds per module.
        for name in VENDOR_SETS:
            plan = plan_campaign(VENDOR_SETS[name])
            assert 30 <= plan.wall_clock_s() <= 90

    def test_budget_itemisation(self):
        plan = plan_campaign(VENDOR_SETS["A"])
        assert plan.total_tests == (plan.discovery_tests
                                    + plan.recursion_tests
                                    + plan.sweep_rounds)

    def test_matches_empirical_run(self):
        """The analytic plan agrees with an actual campaign."""
        from repro.core import run_parbor
        from repro.dram import vendor
        chip = vendor("B").make_chip(seed=7, n_rows=96)
        result = run_parbor(chip, ParborConfig(sample_size=1500),
                            seed=3, run_sweep=False)
        plan = plan_campaign(VENDOR_SETS["B"])
        assert result.recursion.tests_per_level \
            == [t for t, _ in plan.levels]

    def test_empty_distances_rejected(self):
        with pytest.raises(ValueError):
            predict_level_distances([], 8192, (2, 8, 8, 8, 8), 0.06)

    def test_threshold_controls_pruning(self):
        # A permissive threshold keeps the rare boundary regions that
        # the default filters out (vendor B's +-1 at level 4).
        strict = predict_level_distances(VENDOR_SETS["B"], 8192,
                                         (2, 8, 8, 8, 8), 0.06)
        loose = predict_level_distances(VENDOR_SETS["B"], 8192,
                                        (2, 8, 8, 8, 8), 0.005)
        assert len(loose[3][1]) > len(strict[3][1])

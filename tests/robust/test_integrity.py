"""Profile signatures and the fail-closed drift gate."""

import pytest

from repro import obs
from repro.robust import (ProfileDriftError, check_drift,
                          profile_signature)

ROUND_A = {(0, 0, 1, 1), (0, 0, 2, 2)}
ROUND_B = {(0, 0, 1, 1), (0, 0, 3, 3)}


class TestSignature:
    def test_order_and_dtype_independent(self):
        import numpy as np
        listed = [(0, 0, 2, 2), (0, 0, 1, 1)]
        numpied = [tuple(np.int64(x) for x in c) for c in reversed(listed)]
        assert profile_signature(listed) == profile_signature(numpied)

    def test_different_sets_differ(self):
        assert profile_signature(ROUND_A) != profile_signature(ROUND_B)

    def test_empty_set_is_stable(self):
        assert profile_signature([]) == profile_signature(set())


class TestCheckDrift:
    def test_identical_rounds_have_zero_drift(self):
        integrity = check_drift([ROUND_A, set(ROUND_A)], threshold=0.0)
        assert integrity.ok and integrity.stable
        assert integrity.drift == 0.0
        assert integrity.rounds == 2
        assert len(set(integrity.signatures)) == 1

    def test_disjoint_rounds_have_full_drift(self):
        integrity = check_drift([{(0, 0, 1, 1)}, {(0, 0, 2, 2)}],
                                threshold=None)
        assert integrity.drift == 1.0
        assert integrity.ok  # gate disabled
        assert not integrity.stable

    def test_partial_overlap_drift_value(self):
        # |A ^ B| / |A | B| = 2 / 3
        integrity = check_drift([ROUND_A, ROUND_B], threshold=None)
        assert integrity.drift == pytest.approx(2 / 3)

    def test_worst_pair_wins(self):
        rounds = [ROUND_A, set(ROUND_A), {(0, 0, 9, 9)}]
        integrity = check_drift(rounds, threshold=None)
        assert integrity.drift == 1.0

    def test_empty_rounds_no_drift(self):
        assert check_drift([set(), set()], threshold=0.0).ok

    def test_strict_gate_raises(self):
        with pytest.raises(ProfileDriftError) as err:
            check_drift([ROUND_A, ROUND_B], threshold=0.1)
        assert err.value.drift == pytest.approx(2 / 3)
        assert err.value.threshold == 0.1

    def test_non_strict_gate_degrades(self):
        with obs.session("drift-test") as sess:
            integrity = check_drift([ROUND_A, ROUND_B], threshold=0.1,
                                    strict=False, context="unit")
        assert not integrity.ok
        events = [r for r in sess.tracer.records
                  if r.get("kind") == "event"
                  and r["name"] == "profile.drift"]
        assert events and events[0]["attrs"]["context"] == "unit"
        counters = sess.metrics.to_dict()["counters"]
        assert counters["profile.drift_gate_trips"] == 1

    def test_drift_observed_even_when_gate_passes(self):
        with obs.session("drift-ok") as sess:
            check_drift([ROUND_A, ROUND_B], threshold=0.9)
        hists = sess.metrics.to_dict()["histograms"]
        assert hists["profile.drift"]["max"] == pytest.approx(2 / 3)

"""Noise-robust verdict layer: repeat-and-vote, quarantine, gates."""

"""RoundsPolicy validation and the three-way verdict classification."""

import pytest

from repro.robust import (DEFINITE, PROBABILISTIC, UNSTABLE, CellVerdicts,
                          RoundsPolicy)


class TestRoundsPolicy:
    def test_defaults_are_legacy(self):
        policy = RoundsPolicy()
        assert policy.rounds == 1
        assert policy.is_legacy
        assert not policy.run_controls

    def test_rounds_above_one_is_robust(self):
        policy = RoundsPolicy(rounds=4)
        assert not policy.is_legacy
        assert policy.run_controls

    def test_controls_override(self):
        assert RoundsPolicy(rounds=4, controls=False).run_controls is False
        assert RoundsPolicy(rounds=1, controls=True).run_controls is True
        # Forced controls break the byte-identical legacy contract.
        assert not RoundsPolicy(rounds=1, controls=True).is_legacy

    @pytest.mark.parametrize("kwargs", [
        dict(rounds=0),
        dict(early_definite=0),
        dict(probabilistic_threshold=0.0),
        dict(probabilistic_threshold=1.5),
        dict(drift_threshold=-0.1),
        dict(drift_threshold=1.1),
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RoundsPolicy(**kwargs)

    def test_required_votes_ceiling(self):
        policy = RoundsPolicy(rounds=4, probabilistic_threshold=0.5)
        assert policy.required_votes(1) == 1
        assert policy.required_votes(3) == 2
        assert policy.required_votes(4) == 2

    def test_definite_votes_capped_by_rounds(self):
        assert RoundsPolicy(rounds=4, early_definite=2).definite_votes() == 2
        assert RoundsPolicy(rounds=1, early_definite=2).definite_votes() == 1


def ledger(rounds=4, **kwargs):
    policy = RoundsPolicy(rounds=rounds, **kwargs)
    return CellVerdicts(rounds=rounds, policy=policy)


COORD = (0, 0, 7, 42)


class TestCellVerdicts:
    def test_unseen_cell_has_no_verdict(self):
        assert ledger().verdict(COORD) is None

    def test_all_votes_is_definite(self):
        v = ledger()
        v.votes[COORD] = 4
        v.scored[COORD] = 4
        assert v.verdict(COORD) == DEFINITE

    def test_early_decided_cell_is_definite(self):
        v = ledger()
        v.votes[COORD] = 2  # early-exited after early_definite reps
        v.scored[COORD] = 2
        assert v.verdict(COORD) == DEFINITE

    def test_single_scored_round_is_not_definite(self):
        v = ledger()
        v.votes[COORD] = 1
        v.scored[COORD] = 1
        # One observation cannot clear early_definite=2: it is merely
        # probabilistic (observed, majority of its one scored round).
        assert v.verdict(COORD) == PROBABILISTIC

    def test_majority_votes_is_probabilistic(self):
        v = ledger()
        v.votes[COORD] = 3
        v.scored[COORD] = 4
        assert v.verdict(COORD) == PROBABILISTIC

    def test_minority_votes_is_unstable(self):
        v = ledger()
        v.votes[COORD] = 1
        v.scored[COORD] = 4
        assert v.verdict(COORD) == UNSTABLE

    def test_control_failure_overrides_votes(self):
        v = ledger()
        v.votes[COORD] = 4
        v.scored[COORD] = 4
        v.control_failures.add(COORD)
        assert v.verdict(COORD) == UNSTABLE

    def test_discovery_only_counts_as_probabilistic(self):
        v = ledger()
        v.discovery_only.add(COORD)
        assert v.verdict(COORD) == PROBABILISTIC

    def test_detected_is_definite_plus_probabilistic(self):
        v = ledger()
        v.votes[(0, 0, 1, 1)] = 4
        v.scored[(0, 0, 1, 1)] = 4
        v.votes[(0, 0, 2, 2)] = 3
        v.scored[(0, 0, 2, 2)] = 4
        v.votes[(0, 0, 3, 3)] = 1
        v.scored[(0, 0, 3, 3)] = 4
        assert v.detected() == {(0, 0, 1, 1), (0, 0, 2, 2)}
        assert v.definite() == {(0, 0, 1, 1)}
        assert v.probabilistic() == {(0, 0, 2, 2)}
        assert v.unstable() == {(0, 0, 3, 3)}

    def test_counts_cover_every_observed_cell(self):
        v = ledger()
        v.votes[(0, 0, 1, 1)] = 4
        v.scored[(0, 0, 1, 1)] = 4
        v.control_failures.add((0, 0, 2, 2))
        v.discovery_only.add((0, 0, 3, 3))
        counts = v.counts()
        assert counts == {DEFINITE: 1, PROBABILISTIC: 1, UNSTABLE: 1}
        assert sum(counts.values()) == len(v.observed())

    def test_stricter_threshold_demotes_to_unstable(self):
        v = ledger(probabilistic_threshold=1.0)
        v.votes[COORD] = 3
        v.scored[COORD] = 4
        assert v.verdict(COORD) == UNSTABLE

"""Quarantine guardbanding through DC-REF and the mitigation layers."""

import numpy as np
import pytest

from repro.core import controllers_for
from repro.dcref import (guardbanded_bins, profile_retention,
                         under_refresh_report)
from repro.dcref.raidr import bins_from_failures
from repro.dram import CouplingSpec, DramChip, FaultSpec, vendor
from repro.mitigate import ecc_coverage, row_retirement
from repro.robust import ProfileDriftError, QuarantineSet


@pytest.fixture(scope="module")
def chip():
    return vendor("A").make_chip(seed=5, n_rows=64)


def quiet_chip(seed=3, n_rows=64, **fault_kwargs):
    """A chip whose only failures come from the requested populations."""
    profile = vendor("A")
    return DramChip(mapping=profile.mapping(8192), n_rows=n_rows,
                    coupling_spec=CouplingSpec(n_cells=0),
                    fault_spec=FaultSpec(soft_error_rate=0.0,
                                         **fault_kwargs),
                    seed=seed)


class TestProfilingGuardband:
    def test_quarantined_row_forced_weak(self, chip):
        ctrls = controllers_for(chip)
        clean = profile_retention(ctrls, interval_s=0.256)
        # Pick a row the screen passed and quarantine a cell in it.
        mask = clean.weak_rows[(0, 0)]
        passing = int(np.flatnonzero(~mask)[0])
        quarantine = QuarantineSet()
        quarantine.add((0, 0, passing, 17), "unstable")
        guarded = profile_retention(ctrls, interval_s=0.256,
                                    quarantine=quarantine)
        assert guarded.weak_rows[(0, 0)][passing]
        assert guarded.guardbanded_rows == 1
        # Guardbanding only ever adds weak rows.
        for key, clean_mask in clean.weak_rows.items():
            assert (guarded.weak_rows[key] | ~clean_mask).all()

    def test_quarantine_never_relaxes_a_weak_row(self, chip):
        ctrls = controllers_for(chip)
        clean = profile_retention(ctrls, interval_s=0.256)
        failing = int(np.flatnonzero(clean.weak_rows[(0, 0)])[0]) \
            if clean.weak_rows[(0, 0)].any() else None
        if failing is None:
            pytest.skip("no weak rows at this geometry")
        quarantine = QuarantineSet()
        quarantine.add((0, 0, failing, 3), "unstable")
        guarded = profile_retention(ctrls, interval_s=0.256,
                                    quarantine=quarantine)
        # Already-weak row: no double count, still weak.
        assert guarded.weak_rows[(0, 0)][failing]
        assert guarded.guardbanded_rows == 0

    def test_drift_gate_trips_on_vrt_chip(self):
        chip = quiet_chip(n_vrt_cells=200, vrt_toggle_prob=0.5,
                          vrt_leaky_start_fraction=0.5,
                          vrt_marginal_threshold_range=(0.01, 0.05))
        ctrls = controllers_for(chip)
        with pytest.raises(ProfileDriftError):
            profile_retention(ctrls, interval_s=0.256, rounds=4,
                              drift_threshold=0.0)

    def test_drift_gate_degrades_when_not_strict(self):
        chip = quiet_chip(n_vrt_cells=200, vrt_toggle_prob=0.5,
                          vrt_leaky_start_fraction=0.5,
                          vrt_marginal_threshold_range=(0.01, 0.05))
        ctrls = controllers_for(chip)
        prof = profile_retention(ctrls, interval_s=0.256, rounds=4,
                                 drift_threshold=0.0, strict=False)
        assert prof.integrity is not None
        assert not prof.integrity.ok
        assert prof.integrity.rounds == 4

    def test_stable_chip_passes_drift_gate(self):
        chip = quiet_chip()  # no random populations at all
        prof = profile_retention(controllers_for(chip),
                                 interval_s=0.256, rounds=3,
                                 drift_threshold=0.0)
        assert prof.integrity.ok and prof.integrity.stable


class TestGuardbandedBins:
    DETECTED = {(0, 0, 3, 10), (0, 1, 5, 20)}

    def test_without_quarantine_matches_raidr(self):
        bins = guardbanded_bins(self.DETECTED, None, 1, 2, 8)
        assert (bins == bins_from_failures(self.DETECTED, 1, 2, 8)).all()

    def test_quarantined_rows_join_the_mask(self):
        quarantine = QuarantineSet()
        quarantine.add((0, 0, 6, 99), "unstable")
        bins = guardbanded_bins(self.DETECTED, quarantine, 1, 2, 8)
        assert bins[0, 0, 6]
        assert bins[0, 0, 3] and bins[0, 1, 5]
        assert bins.sum() == 3

    def test_under_refresh_report_flags_missed_rows(self):
        bins = np.zeros((1, 2, 8), dtype=bool)
        bins[0, 0, 3] = True
        report = under_refresh_report(bins, [(0, 0, 3), (0, 1, 5)])
        assert not report.ok
        assert report.under_refreshed == {(0, 1, 5)}
        assert report.n_weak_rows == 1
        assert report.n_true_failing == 2

    def test_under_refresh_report_ok_when_covered(self):
        bins = np.ones((1, 2, 8), dtype=bool)
        report = under_refresh_report(bins, [(0, 0, 3)])
        assert report.ok and not report.under_refreshed

    def test_out_of_range_truth_counts_as_missed(self):
        bins = np.ones((1, 1, 4), dtype=bool)
        report = under_refresh_report(bins, [(2, 0, 0)])
        assert not report.ok


class TestMitigationConsumers:
    DETECTED = [(0, 0, 1, 10), (0, 0, 1, 50), (0, 1, 2, 5)]

    def quarantine(self):
        q = QuarantineSet()
        q.add((0, 0, 1, 99), "unstable")   # row already retired
        q.add((0, 1, 7, 3), "unstable")    # new row
        return q

    def test_retirement_includes_quarantined_rows(self):
        plain = row_retirement(self.DETECTED, 1, 2, 8)
        guarded = row_retirement(self.DETECTED, 1, 2, 8,
                                 quarantine=self.quarantine())
        assert plain.retired_rows == 2
        assert guarded.retired_rows == 3
        assert guarded.quarantined_rows == 1  # only the *extra* row

    def test_ecc_counts_quarantined_cells_as_vulnerable(self):
        plain = ecc_coverage(self.DETECTED)
        guarded = ecc_coverage(self.DETECTED,
                               quarantine=self.quarantine())
        assert (guarded.total_vulnerable_cells
                == plain.total_vulnerable_cells + 2)
        assert guarded.uncorrectable_words >= plain.uncorrectable_words

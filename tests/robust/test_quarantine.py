"""QuarantineSet semantics and its JSON serialization contract."""

import numpy as np
import pytest

from repro.robust import QuarantineSet

A = (0, 0, 3, 17)
B = (0, 1, 5, 99)


class TestQuarantineSet:
    def test_first_reason_wins(self):
        q = QuarantineSet()
        q.add(A, "control-failure")
        q.add(A, "inconsistent-votes")
        assert q.reasons[A] == "control-failure"
        assert len(q) == 1

    def test_numpy_coords_normalised(self):
        q = QuarantineSet()
        q.add(tuple(np.int64(x) for x in A), "vrt")
        assert A in q
        assert tuple(np.int32(x) for x in A) in q
        assert all(isinstance(x, int) for x in next(iter(q.reasons)))

    def test_update_and_bool(self):
        q = QuarantineSet()
        assert not q
        q.update([A, B], "noise")
        assert q and q.cells == {A, B}

    def test_merge_keeps_first_reason(self):
        left = QuarantineSet()
        left.add(A, "control-failure")
        right = QuarantineSet()
        right.add(A, "inconsistent-votes")
        right.add(B, "noise")
        merged = left.merge(right)
        assert merged.reasons == {A: "control-failure", B: "noise"}
        # Inputs untouched.
        assert len(left) == 1 and len(right) == 2

    def test_rows_and_row_mask(self):
        q = QuarantineSet()
        q.update([A, (0, 0, 3, 900), B], "noise")
        assert q.rows() == {(0, 0, 3), (0, 1, 5)}
        mask = q.row_mask(1, 2, 8)
        assert mask.shape == (1, 2, 8)
        assert mask[0, 0, 3] and mask[0, 1, 5]
        assert mask.sum() == 2

    def test_row_mask_clips_out_of_range(self):
        q = QuarantineSet()
        q.add((5, 9, 999, 0), "noise")
        assert q.row_mask(1, 2, 8).sum() == 0

    def test_reason_counts_sorted(self):
        q = QuarantineSet()
        q.add(A, "vrt")
        q.add(B, "control-failure")
        q.add((1, 0, 0, 0), "vrt")
        assert q.reason_counts() == {"control-failure": 1, "vrt": 2}

    def test_signature_is_order_independent(self):
        q1 = QuarantineSet()
        q1.add(A, "x")
        q1.add(B, "y")
        q2 = QuarantineSet()
        q2.add(B, "y")
        q2.add(A, "x")
        assert q1.signature() == q2.signature()
        q2.add((2, 0, 0, 0), "z")
        assert q1.signature() != q2.signature()


class TestSerialization:
    def test_json_roundtrip(self):
        q = QuarantineSet()
        q.add(A, "control-failure")
        q.add(B, "inconsistent-votes")
        back = QuarantineSet.from_json(q.to_json())
        assert back.reasons == q.reasons
        assert back.signature() == q.signature()

    def test_save_load(self, tmp_path):
        q = QuarantineSet()
        q.update([A, B], "noise")
        path = str(tmp_path / "quarantine.json")
        q.save(path)
        assert QuarantineSet.load(path).reasons == q.reasons

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            QuarantineSet.from_json({"schema": 99, "cells": []})

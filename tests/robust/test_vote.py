"""Repeat-and-vote sweep: determinism, early exit, noise handling."""

import pytest

from repro.core import controllers_for
from repro.core.scheduler import build_schedule
from repro.dram import vendor
from repro.dram.faults import DeviceNoiseModel, NoiseSpec
from repro.robust import RoundsPolicy
from repro.robust.vote import robust_sweep
from repro.runtime.seeds import ladder_seed

SEED = 23
DISTANCES = (-1, 1)


def make_controllers(noise=None, seed=SEED, n_rows=48):
    chip = vendor("A").make_chip(seed=seed, n_rows=n_rows)
    if noise is not None:
        for bank_idx, bank in enumerate(chip.banks):
            bank.noise = DeviceNoiseModel(
                noise, n_rows=bank.n_rows, row_bits=bank.row_bits,
                seed=ladder_seed(99, "device-noise", 0, bank_idx))
    return controllers_for(chip)


def sweep(policy, noise=None, run_seed=7):
    controllers = make_controllers(noise=noise)
    schedule = build_schedule(controllers[0].row_bits, DISTANCES)
    return robust_sweep(controllers, schedule, policy, seed=run_seed)


class TestDeterminism:
    def test_identical_runs_identical_verdicts(self):
        policy = RoundsPolicy(rounds=3)
        a = sweep(policy)
        b = sweep(policy)
        assert a.detected == b.detected
        assert a.verdicts.votes == b.verdicts.votes
        assert a.verdicts.scored == b.verdicts.scored
        assert a.quarantine.signature() == b.quarantine.signature()
        assert a.rounds_executed == b.rounds_executed

    def test_strongly_coupled_cells_definite_under_any_seed(self):
        # A different run seed redraws every intrinsic noise stream,
        # but the strongly coupled (deterministic) cells must stay
        # definite: they fail every repetition under any coin stream.
        policy = RoundsPolicy(rounds=3)
        a = sweep(policy, run_seed=7)
        b = sweep(policy, run_seed=8)
        common = a.verdicts.definite() & b.verdicts.definite()
        assert common  # the deterministic core of the profile
        # and neither seed quarantines what the other proved definite
        # *and* reproduced itself (a cell definite under both streams
        # cannot be a noise artefact).
        assert not {c for c in common if c in a.quarantine.cells
                    or c in b.quarantine.cells}


class TestEarlyExit:
    def test_later_repetitions_shrink(self):
        schedule_rounds = None
        policy = RoundsPolicy(rounds=4)
        result = sweep(policy)
        controllers = make_controllers()
        schedule = build_schedule(controllers[0].row_bits, DISTANCES)
        schedule_rounds = len(schedule.patterns) * 2
        # Repetition 0 runs the full schedule; once every observed
        # cell is decided definite the remaining repetitions stop.
        assert result.rounds_executed < policy.rounds * schedule_rounds
        assert result.rounds_executed >= schedule_rounds

    def test_controls_run_per_repetition(self):
        result = sweep(RoundsPolicy(rounds=2))
        assert result.control_rounds in (2, 4)  # 2 per executed rep

    def test_rounds_one_with_controls_still_sweeps_once(self):
        result = sweep(RoundsPolicy(rounds=1, controls=True))
        controllers = make_controllers()
        schedule = build_schedule(controllers[0].row_bits, DISTANCES)
        assert result.rounds_executed == len(schedule.patterns) * 2
        assert result.control_rounds == 2


class TestInjectedNoise:
    NOISE = NoiseSpec(n_vrt_cells=4, vrt_fail_prob=1.0,
                      n_marginal_cells=4, marginal_fail_prob=0.8)

    def test_injected_cells_never_definite(self):
        policy = RoundsPolicy(rounds=4)
        clean = sweep(policy)
        noisy = sweep(policy, noise=self.NOISE)
        assert noisy.verdicts.definite() == clean.verdicts.definite()

    def test_injected_cells_quarantined(self):
        policy = RoundsPolicy(rounds=4)
        noisy = sweep(policy, noise=self.NOISE)
        controllers = make_controllers(noise=self.NOISE)
        injected = set()
        for chip_idx, ctrl in enumerate(controllers):
            for bank_idx, bank in enumerate(ctrl.chip.banks):
                rows, phys = bank.noise.cells()
                sys_cols = bank.mapping.phys_to_sys()[phys]
                injected.update(
                    (chip_idx, bank_idx, int(r), int(c))
                    for r, c in zip(rows.tolist(), sys_cols.tolist()))
        assert injected
        missing = {c for c in injected if c not in noisy.quarantine}
        assert not missing

    def test_quarantine_reasons_recorded(self):
        noisy = sweep(RoundsPolicy(rounds=4), noise=self.NOISE)
        reasons = set(noisy.quarantine.reasons.values())
        assert reasons <= {"control-failure", "inconsistent-votes"}
        assert "control-failure" in reasons


class TestObservability:
    def test_round_counters_emitted(self):
        from repro import obs

        with obs.session("robust-sweep") as sess:
            result = sweep(RoundsPolicy(rounds=2))
        counters = sess.metrics.to_dict()["counters"]
        assert counters["profile.rounds"] == result.rounds_executed
        assert counters["profile.control_rounds"] == result.control_rounds

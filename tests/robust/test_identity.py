"""The rounds=1 legacy contract: byte-identical to single-pass output.

The robust layer must be invisible until asked for: ``rounds=1`` with
the noise populations disabled takes the exact legacy code path - same
RNG draw order, same detections, same checkpoint keys and outcome
signatures - so enabling the feature flag nowhere changes nothing.
"""

import numpy as np
import pytest

from repro import ParborConfig, run_parbor
from repro.dram import FaultSpec, vendor
from repro.dram.faults import NoiseSpec, RandomFaultModel
from repro.robust import RoundsPolicy
from repro.runtime import CampaignSpec
from repro.runtime.chaos import device_noise_schedule

TINY = dict(seed=5, n_rows=48)


def campaign(rounds):
    chip = vendor("A").make_chip(**TINY)
    return run_parbor(chip, ParborConfig(sample_size=400), seed=6,
                      rounds=rounds)


class TestPipelineIdentity:
    def test_rounds_one_matches_default(self):
        chip = vendor("A").make_chip(**TINY)
        legacy = run_parbor(chip, ParborConfig(sample_size=400), seed=6)
        explicit = campaign(rounds=1)
        assert explicit.detected == legacy.detected
        assert explicit.distances == legacy.distances
        assert explicit.total_tests == legacy.total_tests
        assert (explicit.recursion.tests_per_level
                == legacy.recursion.tests_per_level)
        assert explicit.stats.tests == legacy.stats.tests

    def test_legacy_policy_object_matches_default(self):
        legacy = campaign(rounds=1)
        policied = campaign(rounds=RoundsPolicy())
        assert policied.detected == legacy.detected
        assert policied.total_tests == legacy.total_tests

    def test_legacy_path_produces_no_verdicts(self):
        result = campaign(rounds=1)
        assert result.verdicts is None
        assert result.quarantine is None

    def test_robust_path_fills_verdicts(self):
        result = campaign(rounds=2)
        assert result.verdicts is not None
        assert result.quarantine is not None
        assert result.detected == result.verdicts.detected()


class TestSpecIdentity:
    def spec(self, **kwargs):
        return CampaignSpec(experiment="characterize", vendor="A",
                            build_seed=5, run_seed=6, n_rows=48,
                            sample_size=400, run_sweep=False, **kwargs)

    def test_checkpoint_key_unchanged_for_legacy_rounds(self):
        assert (self.spec().checkpoint_key()
                == self.spec(rounds=1).checkpoint_key())

    def test_checkpoint_key_diverges_for_robust_rounds(self):
        assert (self.spec(rounds=2).checkpoint_key()
                != self.spec(rounds=1).checkpoint_key())

    def test_legacy_outcome_signature_has_no_quarantine_part(self):
        outcome = self.spec().run()
        assert outcome.quarantine is None
        assert len(outcome.signature()) == 5

    def test_empty_noise_spec_is_byte_equivalent(self):
        base = self.spec()
        (noisy,) = device_noise_schedule(3, [base], NoiseSpec())
        assert noisy.checkpoint_key() == base.checkpoint_key()
        assert noisy.run().signature() == base.run().signature()
        assert noisy.injected_cells() == set()


class TestRngConsumption:
    """The divergence the identity test exposed (and its fix): a
    disabled noise population must consume zero RNG state per read."""

    def test_zero_rate_spec_draws_nothing(self):
        spec = FaultSpec(soft_error_rate=0.0)
        rng = np.random.default_rng(42)
        model = RandomFaultModel(spec, n_rows=16, row_bits=64, rng=rng)
        witness = np.random.default_rng(42)
        RandomFaultModel(spec, n_rows=16, row_bits=64, rng=witness)
        charge = np.ones((16, 64), dtype=np.uint8)
        for _ in range(5):
            rows, cols = model.retention_flips(charge)
            assert len(rows) == 0 and len(cols) == 0
        # The model's stream advanced exactly as far as the witness
        # that never evaluated a read: disabled populations are free.
        assert rng.random() == witness.random()

    def test_enabled_rate_still_draws(self):
        spec = FaultSpec(soft_error_rate=1e-9)
        rng = np.random.default_rng(42)
        model = RandomFaultModel(spec, n_rows=16, row_bits=64, rng=rng)
        witness = np.random.default_rng(42)
        RandomFaultModel(spec, n_rows=16, row_bits=64, rng=witness)
        model.retention_flips(np.ones((16, 64), dtype=np.uint8))
        assert rng.random() != witness.random()


class TestCliDefaults:
    def test_rounds_defaults_to_legacy(self):
        from repro.cli import build_parser

        for command in (["characterize"], ["compare"],
                        ["fleet", "--modules-per-vendor", "1"]):
            args = build_parser().parse_args(command)
            assert args.rounds == 1
            assert args.quarantine_out is None

"""Mitigation mechanisms over PARBOR failure maps."""

import pytest

from repro.core import ParborConfig, run_parbor
from repro.dram import vendor
from repro.mitigate import (CLASSES, SecDedCode, compare_mitigations,
                            ecc_coverage, row_retirement)


class TestClassify:
    def test_bands(self):
        code = SecDedCode()
        assert code.classify(0) == "clean"
        assert code.classify(1) == "correctable"
        assert code.classify(2) == "detect-only"
        for n in (3, 4, 17):
            assert code.classify(n) == "miscorrection-prone"

    def test_classes_ordered_by_severity(self):
        assert CLASSES == ("clean", "correctable", "detect-only",
                           "miscorrection-prone")

    def test_three_way_report_counts(self):
        # Word 0: one cell; word 1: two cells; word 2: three cells.
        detected = {(0, 0, 0, 5),
                    (0, 0, 0, 64), (0, 0, 0, 100),
                    (0, 0, 0, 128), (0, 0, 0, 150), (0, 0, 0, 190)}
        report = ecc_coverage(detected)
        assert report.correctable_words == 1
        assert report.detect_only_words == 1
        assert report.miscorrection_prone_words == 1
        # The legacy two-way view groups detect-only with
        # miscorrection-prone.
        assert report.uncorrectable_words == 2

    def test_quarantined_cells_consume_correction_budget(self):
        detected = {(0, 0, 0, 5)}

        class Quarantine:
            reasons = {(0, 0, 0, 40): "unstable"}
        report = ecc_coverage(detected, quarantine=Quarantine())
        assert report.correctable_words == 0
        assert report.detect_only_words == 1


class TestEcc:
    def test_single_error_words_correctable(self):
        detected = {(0, 0, 0, 5), (0, 0, 0, 70), (0, 0, 1, 200)}
        report = ecc_coverage(detected)
        # Columns 5 (word 0), 70 (word 1), 200 (word 3): all singles.
        assert report.words_with_failures == 3
        assert report.correctable_words == 3
        assert report.coverage == 1.0

    def test_double_error_word_uncorrectable(self):
        detected = {(0, 0, 0, 5), (0, 0, 0, 60)}   # both in word 0
        report = ecc_coverage(detected)
        assert report.uncorrectable_words == 1
        assert report.coverage == 0.0

    def test_word_grouping_respects_row_and_bank(self):
        detected = {(0, 0, 0, 5), (0, 1, 0, 5), (0, 0, 1, 5)}
        report = ecc_coverage(detected)
        assert report.words_with_failures == 3
        assert report.coverage == 1.0

    def test_storage_overhead(self):
        assert SecDedCode().storage_overhead == 0.125
        assert ecc_coverage(set()).coverage == 1.0

    def test_wider_words_group_more_errors(self):
        detected = {(0, 0, 0, 5), (0, 0, 0, 120)}
        narrow = ecc_coverage(detected, SecDedCode(data_bits=64))
        wide = ecc_coverage(detected, SecDedCode(data_bits=128,
                                                 check_bits=9))
        assert narrow.uncorrectable_words == 0
        assert wide.uncorrectable_words == 1


class TestRetirement:
    def test_rows_counted_once(self):
        detected = {(0, 0, 3, 5), (0, 0, 3, 99), (0, 0, 7, 1)}
        report = row_retirement(detected, n_chips=1, n_banks=1,
                                n_rows=64)
        assert report.retired_rows == 2
        assert report.capacity_overhead == pytest.approx(2 / 64)

    def test_spares_absorb_retirement(self):
        detected = {(0, 0, 3, 5), (0, 0, 7, 1)}
        report = row_retirement(detected, 1, 1, 64, spare_rows=4)
        assert report.within_spares
        assert report.capacity_overhead == 0.0

    def test_empty_map(self):
        report = row_retirement(set(), 1, 1, 64)
        assert report.retired_rows == 0
        assert report.capacity_overhead == 0.0


class TestComparison:
    @pytest.fixture(scope="class")
    def campaign(self):
        chip = vendor("A").make_chip(seed=17, n_rows=64,
                                     vulnerability=0.3)
        result = run_parbor(chip, ParborConfig(sample_size=800), seed=2)
        return chip, result

    def test_report_structure(self, campaign):
        chip, result = campaign
        report = compare_mitigations(chip, result)
        mechanisms = [r.mechanism for r in report.rows]
        assert len(mechanisms) == 3
        assert any("ECC" in m for m in mechanisms)
        rows = report.as_table_rows()
        assert all(len(r) == 4 for r in rows)

    def test_ecc_covers_most_sparse_failures(self, campaign):
        chip, result = campaign
        report = compare_mitigations(chip, result)
        # Failures are sparse relative to 64-bit words; most words hold
        # a single vulnerable cell.
        assert report.ecc.coverage > 0.7

    def test_retirement_total_but_costly(self, campaign):
        chip, result = campaign
        report = compare_mitigations(chip, result)
        retire_row = next(r for r in report.rows
                          if "retirement" in r.mechanism)
        assert retire_row.coverage == 1.0
        assert retire_row.overhead > 0.0

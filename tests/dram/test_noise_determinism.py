"""Determinism of the noise populations themselves.

The robust verdict layer is only as deterministic as the substrate it
re-runs: VRT transition sequences, marginal-cell flip streams, and the
injected device-noise model must all be pure functions of the seed
ladder - independent of scheduling, worker count, and call sites.
"""

import numpy as np
import pytest

from repro.dram import FaultSpec, RandomFaultModel
from repro.dram.faults import DeviceNoiseModel, NoiseSpec
from repro.runtime import CampaignSpec, chip_seed, run_fleet
from repro.runtime.chaos import device_noise_schedule


def fault_model(seed, **kwargs):
    spec = FaultSpec(soft_error_rate=0.0, **kwargs)
    return RandomFaultModel(spec, n_rows=32, row_bits=256,
                            rng=np.random.default_rng(seed))


def flip_stream(model, reads=20):
    charge = np.ones((32, 256), dtype=np.uint8)
    stream = []
    for _ in range(reads):
        rows, cols = model.retention_flips(charge)
        stream.append((tuple(rows.tolist()), tuple(cols.tolist())))
    return stream


class TestIntrinsicStreams:
    VRT = dict(n_vrt_cells=30, vrt_toggle_prob=0.3,
               vrt_leaky_start_fraction=0.5,
               vrt_marginal_threshold_range=(0.01, 0.05))
    MARGINAL = dict(n_marginal_cells=30, marginal_fail_prob=0.5,
                    vrt_marginal_threshold_range=(0.01, 0.05))

    def test_vrt_transition_sequence_reproducible(self):
        a = fault_model(11, **self.VRT)
        b = fault_model(11, **self.VRT)
        assert (a.vrt_row == b.vrt_row).all()
        assert (a.vrt_leaky == b.vrt_leaky).all()
        assert flip_stream(a) == flip_stream(b)
        # The telegraph process really transitions (not a static set).
        stream = flip_stream(fault_model(11, **self.VRT))
        assert len({frozenset(zip(r, c)) for r, c in stream}) > 1

    def test_marginal_flip_stream_reproducible(self):
        a = fault_model(12, **self.MARGINAL)
        b = fault_model(12, **self.MARGINAL)
        assert flip_stream(a) == flip_stream(b)

    def test_different_seed_different_stream(self):
        a = fault_model(11, **self.VRT)
        b = fault_model(13, **self.VRT)
        assert flip_stream(a) != flip_stream(b)


class TestDeviceNoiseModel:
    SPEC = NoiseSpec(n_vrt_cells=5, vrt_fail_prob=0.6,
                     n_marginal_cells=5, marginal_fail_prob=0.5,
                     soft_error_rate=1e-5)

    def model(self, seed=77):
        return DeviceNoiseModel(self.SPEC, n_rows=32, row_bits=256,
                                seed=seed)

    def noise_stream(self, model, reads=15):
        return [tuple(map(tuple, (r.tolist(), c.tolist())))
                for r, c in (model.flips() for _ in range(reads))]

    def test_positions_pure_function_of_seed(self):
        a, b = self.model(), self.model()
        assert all((x == y).all()
                   for x, y in zip(a.cells(), b.cells()))
        other = self.model(seed=78)
        assert not all((x == y).all()
                       for x, y in zip(a.cells(), other.cells()))

    def test_coin_stream_reproducible(self):
        assert (self.noise_stream(self.model())
                == self.noise_stream(self.model()))

    def test_reseed_replays_coins_without_moving_positions(self):
        model = self.model()
        first = self.noise_stream(model, reads=5)
        cells_before = model.cells()
        model.reseed_coins(77)
        # Positions never move; the coin stream restarts from the
        # reseeded generator, but the activation clock keeps counting.
        assert all((x == y).all()
                   for x, y in zip(cells_before, model.cells()))
        replay = self.noise_stream(model, reads=5)
        assert replay == first

    def test_activation_clock_gates_injection(self):
        spec = NoiseSpec(n_vrt_cells=5, vrt_fail_prob=1.0,
                         active_after=3)
        model = DeviceNoiseModel(spec, n_rows=32, row_bits=256, seed=9)
        sizes = [len(model.flips()[0]) for _ in range(6)]
        assert sizes[:3] == [0, 0, 0]
        assert all(n == 5 for n in sizes[3:])

    def test_empty_spec_injects_nothing(self):
        model = DeviceNoiseModel(NoiseSpec(), n_rows=32, row_bits=256,
                                 seed=9)
        assert self.noise_stream(model) == [((), ())] * 15


@pytest.mark.slow
class TestJobsIndependence:
    """jobs=1 == jobs=2, with the noise populations switched on."""

    def specs(self):
        return [
            CampaignSpec(experiment="characterize", vendor=v, index=1,
                         build_seed=chip_seed(31, v, 0, "build"),
                         run_seed=chip_seed(31, v, 0, "run"),
                         n_rows=32, sample_size=200, run_sweep=True,
                         rounds=2)
            for v in ("A", "B")
        ]

    def test_noisy_robust_fleet_jobs_independent(self):
        noise = NoiseSpec(n_vrt_cells=3, vrt_fail_prob=0.7,
                          n_marginal_cells=3, marginal_fail_prob=0.6)
        wrapped = device_noise_schedule(4, self.specs(), noise)
        serial = run_fleet(wrapped, jobs=1)
        parallel = run_fleet(device_noise_schedule(4, self.specs(),
                                                   noise), jobs=2)
        assert serial.signatures() == parallel.signatures()
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a.quarantine.signature() == b.quarantine.signature()

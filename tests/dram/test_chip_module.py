"""Chips, modules, and the controller test interface."""

import numpy as np
import pytest

from repro.dram import (DramModule, MemoryController, make_module,
                        make_test_fleet, vendor)


class TestChip:
    def test_geometry(self):
        chip = vendor("A").make_chip(seed=0, n_rows=32)
        assert chip.n_rows == 32
        assert chip.row_bits == 8192
        assert chip.n_cells == 32 * 8192

    def test_multiple_banks_are_independent(self):
        chip = vendor("B").make_chip(seed=0, n_rows=16, n_banks=2)
        a, b = chip.banks
        assert a is not b
        assert not np.array_equal(a.coupled.phys, b.coupled.phys)

    def test_bank_index_validated(self):
        chip = vendor("A").make_chip(seed=0, n_rows=16)
        with pytest.raises(ValueError):
            chip.bank(5)

    def test_coupled_cell_counts_partition(self):
        chip = vendor("C").make_chip(seed=1, n_rows=16)
        total = chip.coupled_cell_count()
        strong = chip.coupled_cell_count(strong=True)
        weak = chip.coupled_cell_count(strong=False)
        assert total == strong + weak > 0

    def test_ground_truth_distances(self):
        chip = vendor("C").make_chip(seed=0, n_rows=16)
        assert {abs(d) for d in chip.ground_truth_distances()} \
            == {16, 33, 49}

    def test_vulnerability_scales_population(self):
        low = vendor("A").make_chip(seed=5, n_rows=16, vulnerability=0.5)
        high = vendor("A").make_chip(seed=5, n_rows=16, vulnerability=2.0)
        assert high.coupled_cell_count() > 2 * low.coupled_cell_count()


class TestModule:
    def test_module_shape(self):
        module = make_module("A", 1, seed=3, n_rows=16)
        assert len(module) == 8
        assert module.module_id == "A1"
        assert module.n_cells == 8 * 16 * 8192

    def test_fleet_matches_paper_scale(self):
        fleet = make_test_fleet(modules_per_vendor=2, seed=1, n_rows=16)
        modules = [m for mods in fleet.values() for m in mods]
        assert len(modules) == 6
        assert sum(len(m) for m in modules) == 48   # chips

    def test_module_requires_uniform_geometry(self):
        a = vendor("A").make_chip(seed=0, n_rows=16)
        b = vendor("A").make_chip(seed=0, n_rows=16, row_bits=4096)
        with pytest.raises(ValueError):
            DramModule("bad", [a, b])

    def test_empty_module_rejected(self):
        with pytest.raises(ValueError):
            DramModule("empty", [])

    def test_unknown_vendor_rejected(self):
        with pytest.raises(ValueError):
            vendor("Z")


class TestController:
    def test_stats_accounting(self):
        chip = vendor("A").make_chip(seed=0, n_rows=16)
        ctrl = MemoryController(chip)
        ctrl.test_pattern(np.zeros(8192, dtype=np.uint8))
        assert ctrl.stats.tests == 1
        assert ctrl.stats.rows_written == 16
        assert ctrl.stats.rows_read == 16
        assert ctrl.stats.retention_waits == 1

    def test_test_rows_counts_one_test(self):
        chip = vendor("A").make_chip(seed=0, n_rows=16)
        ctrl = MemoryController(chip)
        rows = np.array([1, 5, 9])
        out = ctrl.test_rows(0, rows, np.ones(8192, dtype=np.uint8))
        assert out.shape == (3, 8192)
        assert ctrl.stats.tests == 1
        assert ctrl.stats.rows_written == 3

    def test_estimated_time_dominated_by_retention(self):
        chip = vendor("A").make_chip(seed=0, n_rows=16)
        ctrl = MemoryController(chip)
        ctrl.test_pattern(np.zeros(8192, dtype=np.uint8))
        t_ns = ctrl.stats.estimated_time_ns()
        assert t_ns >= 64e6   # at least one 64 ms retention wait

    def test_write_then_read_roundtrip(self):
        chip = vendor("B").make_chip(seed=0, n_rows=16)
        ctrl = MemoryController(chip)
        data = np.random.default_rng(0).integers(0, 2, size=8192,
                                                 dtype=np.uint8)
        ctrl.write_row(0, 3, data)
        assert np.array_equal(ctrl.read_row(0, 3), data)
